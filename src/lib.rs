//! # graph-stream-matching
//!
//! Facade crate for the reproduction of *"Efficient Continuous Multi-Query
//! Processing over Graph Streams"* (Zervakis et al., EDBT 2020).
//!
//! It re-exports the workspace crates under stable module names so that the
//! runnable examples and the cross-crate integration tests can use a single
//! dependency:
//!
//! * [`core`] — data/query model, covering paths, relations, engine trait.
//! * [`tric`] — TRIC and TRIC+ (the paper's contribution).
//! * [`baselines`] — the INV / INV+ / INC / INC+ inverted-index baselines.
//! * [`graphdb`] — the embedded property-graph-database baseline
//!   (Neo4j substitute).
//! * [`datagen`] — SNB-like, NYC-taxi-like and BioGRID-like workload
//!   generators plus the query-set generator.
//! * [`persist`] — durable log-structured persistence: write-ahead update
//!   log, chunk-spill checkpoints, crash recovery for any engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gsm_baselines as baselines;
pub use gsm_core as core;
pub use gsm_datagen as datagen;
pub use gsm_graphdb as graphdb;
pub use gsm_persist as persist;
pub use gsm_tric as tric;

/// Returns every engine implementation known to the workspace, boxed behind
/// the [`gsm_core::ContinuousEngine`] trait, in the order the paper lists
/// them: TRIC, TRIC+, INV, INV+, INC, INC+, GraphDB.
pub fn all_engines() -> Vec<Box<dyn gsm_core::ContinuousEngine>> {
    vec![
        Box::new(gsm_tric::TricEngine::tric()),
        Box::new(gsm_tric::TricEngine::tric_plus()),
        Box::new(gsm_baselines::InvEngine::inv()),
        Box::new(gsm_baselines::InvEngine::inv_plus()),
        Box::new(gsm_baselines::IncEngine::inc()),
        Box::new(gsm_baselines::IncEngine::inc_plus()),
        Box::new(gsm_graphdb::GraphDbEngine::new()),
    ]
}

/// Factories for every engine implementation, in the same order as
/// [`all_engines`], boxed `Send` so the engines can be distributed across
/// the worker shards of [`gsm_core::ShardedEngine`].
pub fn all_engine_factories() -> Vec<fn() -> Box<dyn gsm_core::ContinuousEngine + Send>> {
    vec![
        || Box::new(gsm_tric::TricEngine::tric()),
        || Box::new(gsm_tric::TricEngine::tric_plus()),
        || Box::new(gsm_baselines::InvEngine::inv()),
        || Box::new(gsm_baselines::InvEngine::inv_plus()),
        || Box::new(gsm_baselines::IncEngine::inc()),
        || Box::new(gsm_baselines::IncEngine::inc_plus()),
        || Box::new(gsm_graphdb::GraphDbEngine::new()),
    ]
}

/// Returns every engine wrapped in a [`gsm_core::ShardedEngine`] with
/// `num_shards` shards, in the same order as [`all_engines`]. With
/// `num_shards <= 1` the wrapper delegates to the single inner engine, so
/// the result is observationally identical to [`all_engines`] either way —
/// the shard-count differential tests replay both and assert exactly that.
pub fn all_engines_sharded(num_shards: usize) -> Vec<Box<dyn gsm_core::ContinuousEngine>> {
    all_engine_factories()
        .into_iter()
        .map(|factory| {
            Box::new(gsm_core::ShardedEngine::new(num_shards, factory))
                as Box<dyn gsm_core::ContinuousEngine>
        })
        .collect()
}

/// Opens (or recovers) a [`gsm_persist::PersistentEngine`] wrapping engine
/// `engine_index` (the [`all_engine_factories`] order), sharded across
/// `num_shards` workers when `num_shards > 1`, over the given storage
/// namespace. This is the composition the crash-recovery suite and the
/// bench harness use: persistence sits **outside** the (possibly sharded)
/// engine and **inside** any pipelined front end, so staged batches are
/// WAL-logged at stage time.
pub fn open_persistent_engine(
    engine_index: usize,
    num_shards: usize,
    storage: Box<dyn gsm_persist::StorageFactory>,
    config: gsm_persist::PersistConfig,
) -> gsm_core::error::Result<(
    gsm_persist::PersistentEngine<Box<dyn gsm_core::ContinuousEngine + Send>>,
    gsm_persist::RecoveryReport,
)> {
    let factory = all_engine_factories()[engine_index];
    gsm_persist::PersistentEngine::open(storage, config, move || {
        if num_shards <= 1 {
            factory()
        } else {
            Box::new(gsm_core::ShardedEngine::new(num_shards, factory))
                as Box<dyn gsm_core::ContinuousEngine + Send>
        }
    })
}
