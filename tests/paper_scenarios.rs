//! End-to-end scenarios lifted directly from the paper's figures and
//! walkthrough examples, checked against every engine.

use graph_stream_matching::all_engines;
use graph_stream_matching::core::prelude::*;
use graph_stream_matching::core::ContinuousEngine;
use graph_stream_matching::tric::TricEngine;

struct Fixture {
    symbols: SymbolTable,
}

impl Fixture {
    fn new() -> Self {
        Fixture {
            symbols: SymbolTable::new(),
        }
    }
    fn q(&mut self, text: &str) -> QueryPattern {
        QueryPattern::parse(text, &mut self.symbols).unwrap()
    }
    fn u(&mut self, label: &str, src: &str, tgt: &str) -> Update {
        Update::new(
            self.symbols.intern(label),
            self.symbols.intern(src),
            self.symbols.intern(tgt),
        )
    }
}

/// Figure 2 of the paper: three check-in updates against the "friends visit
/// the same place" query of Figure 3.
#[test]
fn figure_2_and_3_checkin_scenario() {
    for mut engine in all_engines() {
        let mut f = Fixture::new();
        let query = f.q(
            "?p1 -knows-> ?p2; ?p1 -checksIn-> ?plc; ?p2 -checksIn-> ?plc; ?plc -isLocatedIn-> rio",
        );
        let qid = engine.register_query(&query).unwrap();

        // Initial graph G: P1—knows—P2, P2—knows—P3, P1—knows—P3, place in Rio.
        for u in [
            f.u("knows", "P1", "P2"),
            f.u("knows", "P2", "P3"),
            f.u("knows", "P1", "P3"),
            f.u("isLocatedIn", "plc", "rio"),
        ] {
            assert!(engine.apply_update(u).is_empty(), "{}", engine.name());
        }

        // Update stream S of Fig. 2(a): three check-ins at `plc`.
        assert!(
            engine.apply_update(f.u("checksIn", "P1", "plc")).is_empty(),
            "{}: a single check-in cannot satisfy the query",
            engine.name()
        );
        // P2 checks in: the pair (P1 knows P2) now both checked in.
        let r = engine.apply_update(f.u("checksIn", "P2", "plc"));
        assert_eq!(r.satisfied_queries(), vec![qid], "{}", engine.name());
        // P3 checks in: two more knowing pairs complete.
        let r = engine.apply_update(f.u("checksIn", "P3", "plc"));
        assert_eq!(r.satisfied_queries(), vec![qid], "{}", engine.name());
        assert_eq!(r.matches[0].new_embeddings, 2, "{}", engine.name());
    }
}

/// Figure 1 of the paper: the two spam-detection patterns share the
/// `?u -shares-> ?post -links-> domain` sub-pattern.
#[test]
fn figure_1_spam_patterns_share_subpattern() {
    let mut f = Fixture::new();
    // (a) users who know each other share posts linking to a flagged domain.
    let clique = f.q(
        "?u1 -knows-> ?u2; ?u1 -shares-> ?p1; ?p1 -links-> flagged; ?u2 -shares-> ?p2; ?p2 -links-> flagged",
    );
    // (b) users sharing the same flagged post from the same IP address.
    let same_ip = f.q(
        "?u1 -shares-> ?p; ?u2 -shares-> ?p; ?p -links-> flagged; ?u1 -usesIp-> ?ip; ?u2 -usesIp-> ?ip",
    );

    let mut tric = TricEngine::tric_plus();
    let id_clique = tric.register_query(&clique).unwrap();
    let id_same_ip = tric.register_query(&same_ip).unwrap();

    // The shared sub-pattern keeps the trie forest smaller than the total
    // number of covering-path nodes would be without clustering.
    let total_path_edges: usize = [&clique, &same_ip]
        .iter()
        .flat_map(|q| covering_paths(q))
        .map(|p| p.len())
        .sum();
    assert!(
        tric.num_trie_nodes() < total_path_edges,
        "expected trie sharing: {} nodes vs {} path edges",
        tric.num_trie_nodes(),
        total_path_edges
    );

    // Drive both patterns to completion and check they fire independently.
    for u in [
        f.u("knows", "alice", "bob"),
        f.u("shares", "alice", "post1"),
        f.u("links", "post1", "flagged"),
        f.u("shares", "bob", "post2"),
    ] {
        assert!(tric.apply_update(u).is_empty());
    }
    let r = tric.apply_update(f.u("links", "post2", "flagged"));
    assert_eq!(r.satisfied_queries(), vec![id_clique]);

    assert!(tric
        .apply_update(f.u("shares", "carol", "post1"))
        .is_empty());
    // Homomorphism semantics: ?u1 and ?u2 may bind to the same user, so the
    // very first usesIp edge already yields the degenerate alice/alice match.
    let r = tric.apply_update(f.u("usesIp", "alice", "ip9"));
    assert_eq!(r.satisfied_queries(), vec![id_same_ip]);
    // carol sharing the same flagged post from the same IP yields the real
    // two-user match.
    let r = tric.apply_update(f.u("usesIp", "carol", "ip9"));
    assert_eq!(r.satisfied_queries(), vec![id_same_ip]);
    assert!(r.matches[0].new_embeddings >= 2);
}

/// Figure 4 of the paper: the four forum-moderation queries and their
/// covering paths; the walkthrough updates of Example 4.6/4.7.
#[test]
fn figure_4_forum_queries() {
    let mut f = Fixture::new();
    let q1 = f.q("?f1 -hasMod-> ?p1; ?p1 -posted-> pst1; ?p1 -posted-> pst2; ?com1 -reply-> pst2");
    let q2 = f.q("?f1 -hasMod-> ?p1");
    let q3 = f.q("com1 -hasCreator-> ?v; ?v -posted-> pst1; pst1 -containedIn-> ?fo");
    let q4 = f.q("?f1 -hasMod-> ?p1; ?p1 -posted-> pst1; pst1 -containedIn-> ?fo");

    // Covering-path counts match Fig. 4(b): Q1 → 3 paths, Q2/Q3/Q4 → 1 path.
    assert_eq!(covering_paths(&q1).len(), 3);
    assert_eq!(covering_paths(&q2).len(), 1);
    assert_eq!(covering_paths(&q3).len(), 1);
    assert_eq!(covering_paths(&q4).len(), 1);

    for mut engine in all_engines() {
        let mut f = Fixture::new();
        let ids: Vec<QueryId> = [
            "?f1 -hasMod-> ?p1; ?p1 -posted-> pst1; ?p1 -posted-> pst2; ?com1 -reply-> pst2",
            "?f1 -hasMod-> ?p1",
            "com1 -hasCreator-> ?v; ?v -posted-> pst1; pst1 -containedIn-> ?fo",
            "?f1 -hasMod-> ?p1; ?p1 -posted-> pst1; pst1 -containedIn-> ?fo",
        ]
        .iter()
        .map(|text| {
            let q = f.q(text);
            engine.register_query(&q).unwrap()
        })
        .collect();

        // hasMod satisfies Q2 immediately.
        let r = engine.apply_update(f.u("hasMod", "f2", "p1"));
        assert_eq!(r.satisfied_queries(), vec![ids[1]], "{}", engine.name());
        let r = engine.apply_update(f.u("hasMod", "f1", "p1"));
        assert_eq!(r.satisfied_queries(), vec![ids[1]], "{}", engine.name());

        // Example 4.6: posted = (p2, pst1) affects tries but completes nothing
        // (p2 has no moderator edge).
        assert!(
            engine.apply_update(f.u("posted", "p2", "pst1")).is_empty(),
            "{}",
            engine.name()
        );

        // Build up the rest of Q4: p1 posted pst1, pst1 containedIn forum9.
        assert!(engine.apply_update(f.u("posted", "p1", "pst1")).is_empty());
        let r = engine.apply_update(f.u("containedIn", "pst1", "forum9"));
        assert_eq!(r.satisfied_queries(), vec![ids[3]], "{}", engine.name());

        // Complete Q3: com1 created by p1 (who already posted pst1).
        let r = engine.apply_update(f.u("hasCreator", "com1", "p1"));
        assert_eq!(r.satisfied_queries(), vec![ids[2]], "{}", engine.name());

        // Complete Q1: p1 posted pst2 and com1 replies to pst2.
        assert!(engine.apply_update(f.u("posted", "p1", "pst2")).is_empty());
        let r = engine.apply_update(f.u("reply", "com1", "pst2"));
        assert_eq!(r.satisfied_queries(), vec![ids[0]], "{}", engine.name());
    }
}
