//! Targeted tests for the nasty sharding cases: queries whose covering
//! paths span shards, batches that route entirely to one shard, and
//! self-loop root edges shared by queries on different shards.
//!
//! The generic guarantee (sharded ≡ unsharded on every workload) is pinned
//! by the differential matrix in `engine_equivalence.rs`; the tests here
//! construct the specific topologies by probing [`shard_of`] so the
//! interesting placement is *guaranteed*, not left to workload chance, and
//! they additionally assert the wrapper-internal facts (spanning
//! classification, routing counts, forest partitioning) that the black-box
//! matrix cannot see.

use graph_stream_matching::core::model::generic::{GenTerm, GenericEdge};
use graph_stream_matching::core::prelude::*;
use graph_stream_matching::tric::TricEngine;
use graph_stream_matching::{all_engines, all_engines_sharded};

/// Finds a label (from an open-ended candidate pool) whose variable-variable
/// generic edge lands on `target_shard` out of `num_shards`, interning it in
/// `symbols`. Panics only if FxHash degenerates completely.
fn label_on_shard(
    symbols: &mut SymbolTable,
    prefix: &str,
    target_shard: usize,
    num_shards: usize,
    same_var: bool,
) -> String {
    for i in 0..10_000 {
        let name = format!("{prefix}{i}");
        let label = symbols.intern(&name);
        let ge = GenericEdge {
            label,
            src: GenTerm::Any,
            tgt: GenTerm::Any,
            same_var,
        };
        if shard_of(&ge, num_shards) == target_shard {
            return name;
        }
    }
    panic!("no label found on shard {target_shard}/{num_shards}");
}

fn update(symbols: &mut SymbolTable, label: &str, src: &str, tgt: &str) -> Update {
    Update::new(
        symbols.intern(label),
        symbols.intern(src),
        symbols.intern(tgt),
    )
}

/// Replays `stream` against every unsharded engine and its sharded twin at
/// the given shard count, asserting identical per-update reports.
fn assert_all_engines_agree_sharded(
    queries: &[QueryPattern],
    stream: &[Update],
    num_shards: usize,
) {
    let mut plain = all_engines();
    let mut sharded = all_engines_sharded(num_shards);
    for engine in plain.iter_mut().chain(sharded.iter_mut()) {
        for q in queries {
            engine.register_query(q).expect("register");
        }
    }
    for (i, &u) in stream.iter().enumerate() {
        for (p, s) in plain.iter_mut().zip(sharded.iter_mut()) {
            let expected = p.apply_update(u);
            let got = s.apply_update(u);
            assert_eq!(
                got,
                expected,
                "{} × {num_shards} shards diverged at update #{i} ({u:?})",
                p.name()
            );
        }
    }
}

/// A star query whose two covering paths root at generic edges owned by
/// *different* shards: the paths become shard-local path states and every
/// match must come out of the post-merge covering-path join pass.
#[test]
fn covering_paths_spanning_two_shards() {
    let num_shards = 2;
    let mut symbols = SymbolTable::new();
    let la = label_on_shard(&mut symbols, "a", 0, num_shards, false);
    let lb = label_on_shard(&mut symbols, "b", 1, num_shards, false);
    let q = QueryPattern::parse(&format!("?c -{la}-> ?x; ?c -{lb}-> ?y"), &mut symbols).unwrap();

    // The wrapper must classify the query as spanning.
    let mut probe = TricEngine::tric_plus_sharded(num_shards);
    probe.register_query(&q).unwrap();
    assert_eq!(probe.num_spanning_queries(), 1);
    // …and neither inner engine holds a trie for it.
    assert!(probe.shard_engines().all(|e| e.num_trie_nodes() == 0));

    let mut stream = Vec::new();
    // Build up multiple embeddings around two hubs, with duplicates and
    // updates completing matches from either side of the shard split.
    for (hub, xs, ys) in [
        ("h1", ["x1", "x2"], ["y1", "y2"]),
        ("h2", ["x3", "x1"], ["y3", "y1"]),
    ] {
        for x in xs {
            stream.push(update(&mut symbols, &la, hub, x));
        }
        for y in ys {
            stream.push(update(&mut symbols, &lb, hub, y));
        }
    }
    stream.push(update(&mut symbols, &la, "h1", "x1")); // duplicate
    stream.push(update(&mut symbols, &la, "h1", "x9")); // completes 2 more
    stream.push(update(&mut symbols, &lb, "h2", "y9"));

    assert_all_engines_agree_sharded(std::slice::from_ref(&q), &stream, num_shards);

    // Sanity on the join pass itself: the final sharded replay above must
    // actually have produced matches (the test would otherwise pass
    // vacuously on an all-empty stream).
    let mut plain = TricEngine::tric();
    let mut sharded = TricEngine::tric_sharded(num_shards);
    plain.register_query(&q).unwrap();
    sharded.register_query(&q).unwrap();
    let mut total = 0;
    for &u in &stream {
        let a = plain.apply_update(u);
        assert_eq!(a, sharded.apply_update(u));
        total += a.total_embeddings();
    }
    assert!(total > 0, "spanning scenario produced no embeddings");
}

/// A batch whose edges all carry labels owned by one shard: the router must
/// hand the whole slice to that shard and nothing to the others, and the
/// result must still equal the unsharded batch report.
#[test]
fn batch_routed_entirely_to_one_shard() {
    let num_shards = 4;
    let mut symbols = SymbolTable::new();
    let lx = label_on_shard(&mut symbols, "x", 2, num_shards, false);
    // Probing may intern labels that hash elsewhere; the stream below only
    // uses `lx`, whose updates match only shapes of that label.
    let q = QueryPattern::parse(&format!("?a -{lx}-> ?b; ?b -{lx}-> ?c"), &mut symbols).unwrap();

    let mut plain = TricEngine::tric();
    let mut sharded = TricEngine::tric_sharded(num_shards);
    plain.register_query(&q).unwrap();
    sharded.register_query(&q).unwrap();

    let batch: Vec<Update> = (0..12)
        .map(|i| {
            update(
                &mut symbols,
                &lx,
                &format!("v{}", i % 5),
                &format!("v{}", (i + 1) % 5),
            )
        })
        .collect();
    let expected = plain.apply_batch(&batch);
    let got = sharded.apply_batch(&batch);
    assert_eq!(got, expected);

    let routed = sharded.routed_per_shard();
    assert_eq!(routed[2], batch.len() as u64, "owner shard got the slice");
    for (s, &count) in routed.iter().enumerate() {
        if s != 2 {
            assert_eq!(count, 0, "shard {s} received updates it does not own");
        }
    }
}

/// A variable self-loop generic edge that is simultaneously the root of a
/// shard-local query and a covering-path root of a *spanning* query whose
/// other path roots on a different shard. Self-loop updates must reach both
/// query kinds; non-loop updates with the same label must reach neither
/// self-loop view.
#[test]
fn self_loop_root_shared_by_queries_on_different_shards() {
    let num_shards = 2;
    let mut symbols = SymbolTable::new();
    // The *self-loop* shape of `ll` owns shard 0; the open shape of `lm`
    // owns shard 1, so q2 spans both shards while q1 is local to shard 0.
    let ll = label_on_shard(&mut symbols, "l", 0, num_shards, true);
    let lm = label_on_shard(&mut symbols, "m", 1, num_shards, false);
    let q1 = QueryPattern::parse(&format!("?a -{ll}-> ?a"), &mut symbols).unwrap();
    let q2 = QueryPattern::parse(&format!("?a -{ll}-> ?a; ?a -{lm}-> ?y"), &mut symbols).unwrap();

    let mut probe = TricEngine::tric_sharded(num_shards);
    probe.register_query(&q1).unwrap();
    probe.register_query(&q2).unwrap();
    assert_eq!(
        probe.num_spanning_queries(),
        1,
        "q2 must span, q1 must stay local"
    );

    let stream = vec![
        update(&mut symbols, &ll, "n1", "n2"), // not a loop: no match
        update(&mut symbols, &ll, "n1", "n1"), // q1 matches
        update(&mut symbols, &lm, "n1", "t1"), // completes q2
        update(&mut symbols, &lm, "n2", "t2"), // no loop on n2 yet
        update(&mut symbols, &ll, "n2", "n2"), // completes q2 via loop
        update(&mut symbols, &ll, "n2", "n2"), // duplicate loop
        update(&mut symbols, &lm, "n1", "t3"), // second embedding of q2
        update(&mut symbols, &ll, "n3", "n3"), // q1 only
    ];

    assert_all_engines_agree_sharded(&[q1, q2], &stream, num_shards);
}

/// Pins the **cross-shard backfill** contract of mid-stream registration
/// (the "Late registration" note in `gsm_core::shard`): a *spanning* query
/// registered after updates have streamed in catches up with the full
/// cross-query history via the wrapper-level history store, exactly like an
/// unsharded engine's shared view store would.
///
/// Topology: `q1` (shard-local, label `la` on shard 0) streams history
/// first; `q2` (spanning: `la` on shard 0 + `lb` on shard 1) registers
/// mid-stream. The unsharded engine shares one view store, so `q2`'s paths
/// catch up with `q1`'s `la` history and a single `lb` edge completes two
/// embeddings. With backfill, the sharded engine's spanning `la` path state
/// is seeded from the wrapper history at registration, so the same `lb`
/// edge completes the **same** two embeddings — the reports must be equal,
/// not merely the post-registration tail. (Earlier revisions pinned the
/// opposite: spanning path states started empty and the sharded report was
/// asserted empty here.)
#[test]
fn mid_stream_spanning_registration_catches_up_with_cross_shard_history() {
    let num_shards = 2;
    let mut symbols = SymbolTable::new();
    let la = label_on_shard(&mut symbols, "a", 0, num_shards, false);
    let lb = label_on_shard(&mut symbols, "b", 1, num_shards, false);
    let q1 = QueryPattern::parse(&format!("?a -{la}-> ?x"), &mut symbols).unwrap();
    let q2 = QueryPattern::parse(&format!("?c -{la}-> ?x; ?c -{lb}-> ?y"), &mut symbols).unwrap();

    for make in [TricEngine::tric, TricEngine::tric_plus] {
        let mut plain = make();
        let mut sharded = ShardedEngine::new(num_shards, make);
        plain.register_query(&q1).unwrap();
        sharded.register_query(&q1).unwrap();

        // Pre-registration history on la: routed to shard 0 for q1's inner
        // engine, but never into any spanning path state.
        for x in ["x1", "x2"] {
            let u = update(&mut symbols, &la, "hub", x);
            assert_eq!(plain.apply_update(u), sharded.apply_update(u));
        }

        plain.register_query(&q2).unwrap();
        sharded.register_query(&q2).unwrap();
        assert_eq!(sharded.num_spanning_queries(), 1, "q2 must span");

        // The lb edge that completes q2 against the pre-registration la
        // history: the unsharded engine catches up through the shared edge
        // view; the sharded engine's spanning la path state was backfilled
        // from the wrapper history store at registration. Both must report
        // the same two embeddings.
        let completing = update(&mut symbols, &lb, "hub", "y1");
        let plain_report = plain.apply_update(completing);
        let sharded_report = sharded.apply_update(completing);
        assert_eq!(
            plain_report.total_embeddings(),
            2,
            "unsharded q2 must catch up with q1's la history"
        );
        assert_eq!(
            sharded_report, plain_report,
            "sharded q2 must catch up with cross-query history via the \
             wrapper-level backfill (Late registration contract in \
             gsm_core::shard)"
        );

        // Embeddings built from post-registration edges keep agreeing:
        // fresh la edges land in the spanning path state too.
        let u = update(&mut symbols, &la, "hub2", "x9");
        assert_eq!(plain.apply_update(u), sharded.apply_update(u));
        let u = update(&mut symbols, &lb, "hub2", "y9");
        let p = plain.apply_update(u);
        let s = sharded.apply_update(u);
        assert_eq!(p, s, "post-registration embeddings must agree");
        assert_eq!(p.total_embeddings(), 1);
    }
}

/// A spanning query registered mid-stream, over labels the stream has not
/// used yet (fresh edges carry no history, so no backfill is even needed —
/// see the catch-up note in `gsm_core::shard`). Registration must grow the
/// routing sets and query-id mapping without disturbing the already-running
/// query.
/// GraphDB is excluded: it replays history from its store and has its own
/// late-registration semantics, covered in its crate.
#[test]
fn spanning_query_registered_mid_stream() {
    for num_shards in [2usize, 4, 8] {
        let mut symbols = SymbolTable::new();
        let q1 = QueryPattern::parse("?c -p-> ?x; ?c -q-> ?y", &mut symbols).unwrap();
        // Probe fresh labels on different shards so q2 is guaranteed to span.
        let ls = label_on_shard(&mut symbols, "s", 0, num_shards, false);
        let lt = label_on_shard(&mut symbols, "t", num_shards - 1, num_shards, false);
        let q2 =
            QueryPattern::parse(&format!("?c -{ls}-> ?x; ?c -{lt}-> ?y"), &mut symbols).unwrap();

        let mut plain: Vec<Box<dyn ContinuousEngine>> = all_engines();
        let mut sharded: Vec<Box<dyn ContinuousEngine>> = all_engines_sharded(num_shards);
        plain.retain(|e| e.name() != "GraphDB");
        sharded.retain(|e| e.name() != "GraphDB");
        for engine in plain.iter_mut().chain(sharded.iter_mut()) {
            engine.register_query(&q1).unwrap();
        }
        let phase1: Vec<Update> = (0..12)
            .map(|i| {
                update(
                    &mut symbols,
                    ["p", "q"][i % 2],
                    &format!("c{}", i % 3),
                    &format!("t{i}"),
                )
            })
            .collect();
        for (i, &u) in phase1.iter().enumerate() {
            for (p, s) in plain.iter_mut().zip(sharded.iter_mut()) {
                assert_eq!(p.apply_update(u), s.apply_update(u), "{} #{i}", p.name());
            }
        }
        // Register the spanning star mid-stream, then drive matches for both
        // queries (including hubs shared between old and new labels).
        for engine in plain.iter_mut().chain(sharded.iter_mut()) {
            engine.register_query(&q2).unwrap();
        }
        let phase2: Vec<Update> = (0..18)
            .map(|i| {
                let label = match i % 4 {
                    0 => "p",
                    1 => "q",
                    2 => ls.as_str(),
                    _ => lt.as_str(),
                };
                update(
                    &mut symbols,
                    label,
                    &format!("c{}", i % 3),
                    &format!("w{}", i % 5),
                )
            })
            .collect();
        let mut total = 0;
        for (i, &u) in phase2.iter().enumerate() {
            for (p, s) in plain.iter_mut().zip(sharded.iter_mut()) {
                let expected = p.apply_update(u);
                assert_eq!(
                    s.apply_update(u),
                    expected,
                    "{} × {num_shards} shards (late registration) #{i}",
                    p.name()
                );
                total += expected.total_embeddings();
            }
        }
        assert!(total > 0, "phase 2 produced no embeddings");
    }
}
