//! Server-mode vs library-mode differential testing.
//!
//! The same churn schedule — edge batches interleaved with mid-stream
//! query registration and unregistration, with explicit epoch boundaries
//! — runs once through a [`gsm_server::Server`] over real sockets and
//! once directly against a [`PipelinedEngine`], for every engine, with
//! and without sharding, inline and with threaded answer workers. The
//! per-query `(new, retracted)` embedding totals must be identical.
//!
//! Totals (not per-batch reports) are compared because the server's
//! deadline batcher may legally segment a span into different batches
//! than the library run; embedding totals between two epoch boundaries
//! are segmentation-invariant, while lifecycle placement is pinned by
//! the explicit boundaries in the schedule.
//!
//! A proptest at the end checks the epoch contract directly on the
//! pipeline: a registration queued mid-stream observes exactly the edge
//! history pushed after the boundary that activated it, never a prefix
//! that predates it.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use graph_stream_matching::all_engine_factories;
use graph_stream_matching::core::prelude::*;
use graph_stream_matching::core::ShardedEngine;
use gsm_server::{Client, Server, ServerConfig};

/// One step of the shared schedule. Lifecycle steps are always followed
/// by a `Boundary` before the next push, which pins where they take
/// effect in both runs (the server may drain on its own idle clock, but
/// with no lifecycle op pending between pinned boundaries an extra drain
/// cannot move totals).
#[derive(Debug, Clone)]
enum Step {
    /// Register this pattern; the i-th `Register` gets local index i.
    Register(&'static str),
    /// Unregister the query with local index i.
    Unregister(usize),
    /// Push signed edges: `(retract?, label, src, tgt)`.
    Push(&'static [(bool, &'static str, &'static str, &'static str)]),
    /// An explicit epoch boundary (library: `drain`, server: `flush`).
    Boundary,
}

use Step::{Boundary, Push, Register, Unregister};

/// A churn schedule over a small social-graph universe: queries come and
/// go mid-stream, edges (including retractions) keep flowing throughout.
fn churn_schedule() -> Vec<Step> {
    vec![
        Register("?u -likes-> ?p"),
        Boundary,
        Push(&[
            (false, "likes", "u1", "p1"),
            (false, "by", "p1", "a1"),
            (false, "likes", "u2", "p1"),
            (false, "likes", "u1", "p2"),
        ]),
        // Mid-stream registration: this query must not see the batch
        // above, only what comes after the boundary.
        Register("?u -likes-> ?p; ?p -by-> ?a"),
        Boundary,
        Push(&[
            (false, "by", "p2", "a1"),
            (false, "likes", "u3", "p2"),
            (false, "follows", "u1", "u3"),
            (false, "likes", "u3", "p1"),
        ]),
        Register("?a -follows-> ?b; ?b -likes-> ?p"),
        Boundary,
        Push(&[
            (false, "follows", "u2", "u1"),
            (true, "likes", "u1", "p1"),
            (false, "likes", "u4", "p2"),
        ]),
        // Mid-stream unregistration of the first query.
        Unregister(0),
        Boundary,
        Push(&[
            (false, "likes", "u1", "p3"),
            (false, "by", "p3", "a2"),
            (true, "likes", "u3", "p2"),
            (false, "follows", "u4", "u2"),
        ]),
        Unregister(1),
        Register("?u -likes-> ?p"),
        Boundary,
        Push(&[
            (false, "likes", "u5", "p3"),
            (true, "follows", "u1", "u3"),
            (false, "likes", "u2", "p3"),
        ]),
        Boundary,
    ]
}

type Totals = BTreeMap<u32, (u64, u64)>;

/// Library-mode run: the schedule against a bare [`PipelinedEngine`].
fn run_library(
    engine: Box<dyn ContinuousEngine + Send>,
    config: PipelineConfig,
    schedule: &[Step],
) -> Totals {
    let mut symbols = SymbolTable::new();
    let mut pipe = PipelinedEngine::new(engine, config);
    let mut ids: Vec<QueryId> = Vec::new();
    let mut totals: Totals = BTreeMap::new();
    let absorb = |totals: &mut Totals, done: Vec<CompletedBatch>| {
        for batch in done {
            for m in batch.report.matches {
                let entry = totals.entry(m.query.0).or_default();
                entry.0 += m.new_embeddings;
                entry.1 += m.retracted_embeddings;
            }
        }
    };
    for step in schedule {
        match step {
            Register(text) => {
                let pattern = QueryPattern::parse(text, &mut symbols).unwrap();
                ids.push(pipe.queue_register(&pattern));
            }
            Unregister(i) => pipe.queue_unregister(ids[*i]).unwrap(),
            Push(edges) => {
                let now = Instant::now();
                for &(retract, label, src, tgt) in *edges {
                    let (l, s, t) = (
                        symbols.intern(label),
                        symbols.intern(src),
                        symbols.intern(tgt),
                    );
                    let update = if retract {
                        Update::retraction(l, s, t)
                    } else {
                        Update::new(l, s, t)
                    };
                    let done = pipe.push_at(update, now);
                    absorb(&mut totals, done);
                }
            }
            Boundary => {
                let done = pipe.drain();
                absorb(&mut totals, done);
            }
        }
    }
    let done = pipe.drain();
    absorb(&mut totals, done);
    totals
}

/// Server-mode run: the same schedule through a TCP client. Query ids
/// are remapped to local registration indices on both sides, so the two
/// runs compare positionally.
fn run_server(
    engine: Box<dyn ContinuousEngine + Send>,
    config: PipelineConfig,
    schedule: &[Step],
) -> Totals {
    let server_config = ServerConfig {
        pipeline: config,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", engine, server_config).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let mut ids: Vec<u32> = Vec::new();
    for step in schedule {
        match step {
            Register(text) => ids.push(client.register(text).unwrap().0),
            Unregister(i) => {
                client.unregister(ids[*i]).unwrap();
            }
            Push(edges) => {
                client.push(edges).unwrap();
            }
            Boundary => {
                client.flush().unwrap();
            }
        }
    }
    client.flush().unwrap();
    client.notification_totals()
}

/// Both runs hand out ids in registration order starting at 0, so the
/// totals keys already align; this asserts that assumption too.
fn assert_equivalent(name: &str, config_desc: &str, schedule: &[Step]) {
    let factories = all_engine_factories();
    for (idx, factory) in factories.iter().enumerate() {
        for shards in [1usize, 2] {
            let build = move || -> Box<dyn ContinuousEngine + Send> {
                if shards == 1 {
                    factory()
                } else {
                    Box::new(ShardedEngine::new(shards, factory))
                }
            };
            let config = config_for(name);
            let lib = run_library(build(), config, schedule);
            let srv = run_server(build(), config, schedule);
            assert_eq!(
                lib, srv,
                "engine #{idx} ({shards} shard(s), {config_desc}) diverged between \
                 library mode and server mode"
            );
        }
    }
}

fn config_for(name: &str) -> PipelineConfig {
    let mut config = PipelineConfig::new(3, Duration::from_millis(1));
    if name == "threaded" {
        config.answer_thread = true;
        config.answer_workers = 2;
    }
    config
}

#[test]
fn server_matches_library_inline_answers() {
    assert_equivalent("inline", "inline answers", &churn_schedule());
}

#[test]
fn server_matches_library_threaded_answers() {
    assert_equivalent("threaded", "2 answer workers", &churn_schedule());
}

/// The epoch contract, on the pipeline directly: a registration queued
/// mid-stream and activated at edge position `b` reports exactly the
/// totals of a fresh engine that registers up front and sees only
/// `stream[b..]`.
fn epoch_totals(query: QueryId, done: Vec<CompletedBatch>) -> (u64, u64) {
    let mut totals = (0, 0);
    for batch in done {
        for m in batch.report.matches {
            if m.query == query {
                totals.0 += m.new_embeddings;
                totals.1 += m.retracted_embeddings;
            }
        }
    }
    totals
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn queued_registration_sees_exactly_the_post_boundary_history(
        stream_specs in proptest::collection::vec(
            // (label, src, tgt, sign): sign 0 of 0..5 → a retraction.
            (0u8..3, 0u8..6, 0u8..6, 0u8..5),
            4..60,
        ),
        queue_pos in 0usize..=100,
        boundary_pos in 0usize..=100,
    ) {
        let mut symbols = SymbolTable::new();
        let pattern =
            QueryPattern::parse("?x -e0-> ?y; ?y -e1-> ?z", &mut symbols).unwrap();
        let stream: Vec<Update> = stream_specs
            .iter()
            .map(|&(l, s, t, sign)| {
                let (l, s, t) = (
                    symbols.intern(&format!("e{l}")),
                    symbols.intern(&format!("v{s}")),
                    symbols.intern(&format!("v{t}")),
                );
                if sign == 0 {
                    Update::retraction(l, s, t)
                } else {
                    Update::new(l, s, t)
                }
            })
            .collect();
        // Queue the registration at position k; force the boundary at
        // position b ≥ k.
        let k = queue_pos * stream.len() / 100;
        let b = k + boundary_pos * (stream.len() - k) / 100;

        let mut pipe = PipelinedEngine::new(
            gsm_tric::TricEngine::tric_plus(),
            PipelineConfig::new(3, Duration::from_millis(1)),
        );
        let mut done = Vec::new();
        let now = Instant::now();
        for update in &stream[..k] {
            done.extend(pipe.push_at(*update, now));
        }
        let id = pipe.queue_register(&pattern);
        for update in &stream[k..b] {
            done.extend(pipe.push_at(*update, now));
        }
        done.extend(pipe.drain()); // the boundary: registration is live
        for update in &stream[b..] {
            done.extend(pipe.push_at(*update, now));
        }
        done.extend(pipe.drain());
        let pipelined = epoch_totals(id, done);

        // Oracle: registration happens at exactly position `b` — the
        // prefix builds graph state silently (registration backfills
        // from the live graph), and only post-boundary reports count.
        let mut oracle = gsm_tric::TricEngine::tric_plus();
        if b > 0 {
            oracle.apply_batch(&stream[..b]);
        }
        let oracle_id = oracle.register_query(&pattern).unwrap();
        let mut oracle_totals = (0, 0);
        for update in &stream[b..] {
            let report = oracle.apply_batch(std::slice::from_ref(update));
            for m in report.matches {
                if m.query == oracle_id {
                    oracle_totals.0 += m.new_embeddings;
                    oracle_totals.1 += m.retracted_embeddings;
                }
            }
        }
        prop_assert_eq!(
            pipelined, oracle_totals,
            "queued registration must observe exactly stream[{}..] (queued at {})",
            b, k
        );
    }
}
