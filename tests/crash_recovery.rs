//! Crash-injection differential recovery suite — the headline contract of
//! the persistence layer: **a crashed-and-recovered engine finishes the
//! stream with per-query totals byte-identical to an uninterrupted
//! from-scratch run.**
//!
//! Two fault surfaces are exercised, swept across every engine × {1, 2}
//! shards × {inline, 2 threaded answer workers}:
//!
//! * **Subprocess SIGKILL** — the test re-executes its own binary as a
//!   worker (the env-gated [`crash_worker_entry`] test) that feeds the
//!   workload through a persistent (optionally sharded, optionally
//!   pipelined) engine over a real on-disk [`DirFactory`] namespace and
//!   `kill -9`s itself at a randomized update boundary, optionally tearing
//!   bytes off a WAL stripe first (the mid-write crash). The parent
//!   respawns the worker over the same directory until a run finishes
//!   cleanly, then compares its totals to the oracle.
//! * **In-process corruption** — crash-survivable [`MemFactory`]
//!   namespaces: the engine is dropped mid-stream ("crash"), the raw WAL
//!   bytes are torn or bit-flipped (or the writes went through a
//!   [`FaultPlan::TornAfter`] storage that lied about a tail), recovery
//!   reopens the namespace, the stream resumes from
//!   [`RecoveryReport::resume_updates`], and the totals must again match.
//!
//! Per engine this sweeps 8 SIGKILL recoveries (2 per scenario shape) plus
//! 16 randomized in-process corruption runs — 24 recovery runs each, every
//! one compared against the oracle.
//!
//! Comparison is on per-query `embeddings`/`retracted` totals: those are
//! batch-segmentation invariant (`apply_batch` ≡ merged sequential
//! reports), while `notifications` counts per-batch events and legitimately
//! depends on where the crash split the stream.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use graph_stream_matching::core::prelude::*;
use graph_stream_matching::datagen::{Dataset, Workload, WorkloadConfig};
use graph_stream_matching::persist::{
    DirFactory, FaultPlan, MemFactory, PersistConfig, PersistentEngine, QueryTotals,
};
use graph_stream_matching::{all_engine_factories, open_persistent_engine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Updates fed per ack boundary (and per pipeline flush batch).
const BATCH: usize = 16;
/// Workload shape: small enough for debug-profile CI, mixed-sign stream.
const EDGES: usize = 240;
const QUERIES: usize = 10;
const DELETE_RATIO: f64 = 0.25;

type AnyPersistent = PersistentEngine<Box<dyn ContinuousEngine + Send>>;

fn workload(seed: u64) -> Workload {
    Workload::generate(
        WorkloadConfig::new(Dataset::Snb, EDGES, QUERIES)
            .with_seed(seed)
            .with_delete_ratio(DELETE_RATIO),
    )
}

/// From-scratch uninterrupted oracle: same engine/shard composition, fresh
/// in-memory namespace, whole stream in one sitting.
fn oracle_totals(engine_idx: usize, shards: usize, wl: &Workload) -> Vec<QueryTotals> {
    let (mut engine, _) = open_persistent_engine(
        engine_idx,
        shards,
        Box::new(MemFactory::new()),
        PersistConfig::default(),
    )
    .expect("oracle open");
    engine.note_symbols(&wl.symbols).expect("oracle symbols");
    for q in &wl.queries {
        engine.try_register_query(q).expect("oracle register");
    }
    for batch in wl.stream.as_slice().chunks(BATCH) {
        engine.try_apply_batch(batch).expect("oracle batch");
    }
    engine.totals().to_vec()
}

fn assert_totals_match(got: &[QueryTotals], oracle: &[QueryTotals], context: &str) {
    assert_eq!(got.len(), oracle.len(), "{context}: query count");
    for (i, (g, o)) in got.iter().zip(oracle).enumerate() {
        assert_eq!(
            (g.embeddings, g.retracted),
            (o.embeddings, o.retracted),
            "{context}: query {i} totals diverged from the oracle"
        );
    }
}

/// Registers whatever the recovered engine is missing (registration records
/// live strictly before batch records in the WAL, so a lost registration
/// implies a zero resume position — re-registering is never "late").
fn try_finish_setup(engine: &mut AnyPersistent, wl: &Workload) -> Result<()> {
    engine.note_symbols(&wl.symbols)?;
    let have = engine.num_queries();
    for q in &wl.queries[have..] {
        engine.try_register_query(q)?;
    }
    Ok(())
}

fn finish_setup(engine: &mut AnyPersistent, wl: &Workload) {
    try_finish_setup(engine, wl).expect("setup on a healthy namespace");
}

// ---------------------------------------------------------------------------
// Subprocess SIGKILL sweep
// ---------------------------------------------------------------------------

mod worker {
    //! The re-executed worker process: env-configured, self-SIGKILLing.
    use super::*;
    use std::env;
    use std::process::Command;

    fn env_num(name: &str) -> Option<u64> {
        env::var(name).ok()?.parse().ok()
    }

    fn self_sigkill() -> ! {
        let _ = Command::new("kill")
            .args(["-9", &std::process::id().to_string()])
            .status();
        // SIGKILL delivery is asynchronous; never continue past this point.
        loop {
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Chops `bytes` off the tail of WAL stripe 0 — the torn mid-write tail
    /// the crash leaves behind.
    fn tear_wal_tail(dir: &str, bytes: u64) {
        let path = PathBuf::from(dir).join("wal-00.log");
        if let Ok(meta) = fs::metadata(&path) {
            let file = fs::OpenOptions::new().write(true).open(&path).unwrap();
            file.set_len(meta.len().saturating_sub(bytes)).unwrap();
            file.sync_data().unwrap();
        }
    }

    pub fn run() {
        let dir = env::var("GSM_CRASH_DIR").expect("GSM_CRASH_DIR");
        let engine_idx = env_num("GSM_CRASH_ENGINE").unwrap() as usize;
        let shards = env_num("GSM_CRASH_SHARDS").unwrap() as usize;
        let answer_workers = env_num("GSM_CRASH_ANSWER").unwrap() as usize;
        let seed = env_num("GSM_CRASH_SEED").unwrap();
        let kill_after = env_num("GSM_CRASH_KILL_AFTER").unwrap() as usize;
        let tear = env_num("GSM_CRASH_TEAR").unwrap_or(0);
        let group_commit = env_num("GSM_CRASH_GROUP_COMMIT").unwrap_or(1) as usize;
        let ckpt_every = env_num("GSM_CRASH_CKPT_EVERY").unwrap_or(0);
        let out = env::var("GSM_CRASH_OUT").expect("GSM_CRASH_OUT");

        let wl = workload(seed);
        let config = PersistConfig::default()
            .with_group_commit(group_commit)
            .with_wal_stripes(shards)
            // Auto-checkpoint only on the inline apply path; the pipelined
            // path checkpoints explicitly at drained boundaries below.
            .with_checkpoint_every(if answer_workers == 0 { ckpt_every } else { 0 });
        let (mut engine, report) = open_persistent_engine(
            engine_idx,
            shards,
            Box::new(DirFactory::new(PathBuf::from(&dir)).expect("dir factory")),
            config,
        )
        .expect("worker open");
        finish_setup(&mut engine, &wl);
        let resume = report.resume_updates as usize;
        let stream = &wl.stream.as_slice()[resume..];

        let mut fed = 0usize;
        // `kill_after` is an absolute stream position; if recovery already
        // resumed past it, die at the first boundary instead (never later
        // than asked). An empty remainder is the one case with nothing left
        // to kill — the worker then finishes legitimately.
        let mut die_at: Option<usize> =
            (kill_after < wl.stream.len()).then(|| kill_after.saturating_sub(resume).max(1));
        if answer_workers == 0 {
            for batch in stream.chunks(BATCH) {
                engine.try_apply_batch(batch).expect("apply");
                fed += batch.len();
                if die_at.is_some_and(|k| fed >= k) {
                    tear_wal_tail(&dir, tear);
                    self_sigkill();
                }
            }
        } else {
            let cfg = PipelineConfig::new(BATCH, Duration::from_secs(60))
                .with_depth(2)
                .threaded()
                .with_answer_workers(answer_workers);
            let mut pipe = PipelinedEngine::new(engine, cfg);
            let mut batches = 0u64;
            for batch in stream.chunks(BATCH) {
                for &u in batch {
                    pipe.push(u);
                }
                fed += batch.len();
                batches += 1;
                if die_at.take_if(|k| fed >= *k).is_some() {
                    tear_wal_tail(&dir, tear);
                    self_sigkill();
                }
                if ckpt_every > 0 && batches.is_multiple_of(ckpt_every) {
                    // Checkpoint barrier: drain the window first, then
                    // rewrap. `into_inner` answers everything outstanding.
                    let mut inner = pipe.into_inner();
                    inner.checkpoint().expect("mid-stream checkpoint");
                    pipe = PipelinedEngine::new(inner, cfg);
                }
            }
            pipe.drain();
            engine = pipe.into_inner();
        }

        engine.try_sync().expect("final sync");
        engine.checkpoint().expect("final checkpoint");
        let mut lines = vec![format!("updates {}", engine.stats().updates_processed)];
        for (i, t) in engine.totals().iter().enumerate() {
            lines.push(format!("{i} {} {}", t.embeddings, t.retracted));
        }
        fs::write(&out, lines.join("\n")).expect("write totals");
    }
}

/// Env-gated worker entry point; a no-op under a normal test run.
#[test]
fn crash_worker_entry() {
    if std::env::var("GSM_CRASH_ROLE").as_deref() == Ok("worker") {
        worker::run();
    }
}

struct Scenario {
    shards: usize,
    answer_workers: usize,
    group_commit: usize,
    ckpt_every: u64,
}

/// The per-engine scenario shapes: engines × {1,2} shards × {inline, 2
/// answer workers}, varying group commit and checkpoint cadence alongside.
const SCENARIOS: [Scenario; 4] = [
    Scenario {
        shards: 1,
        answer_workers: 0,
        group_commit: 1,
        ckpt_every: 0,
    },
    Scenario {
        shards: 2,
        answer_workers: 0,
        group_commit: 4,
        ckpt_every: 5,
    },
    Scenario {
        shards: 1,
        answer_workers: 2,
        group_commit: 2,
        ckpt_every: 4,
    },
    Scenario {
        shards: 2,
        answer_workers: 2,
        group_commit: 1,
        ckpt_every: 0,
    },
];

fn spawn_worker(
    dir: &std::path::Path,
    out: &std::path::Path,
    engine_idx: usize,
    s: &Scenario,
    seed: u64,
    kill_after: usize,
    tear: u64,
) -> std::process::ExitStatus {
    let exe = std::env::current_exe().expect("current_exe");
    std::process::Command::new(exe)
        .args([
            "--exact",
            "crash_worker_entry",
            "--test-threads=1",
            "--nocapture",
        ])
        .env("GSM_CRASH_ROLE", "worker")
        .env("GSM_CRASH_DIR", dir.as_os_str())
        .env("GSM_CRASH_OUT", out.as_os_str())
        .env("GSM_CRASH_ENGINE", engine_idx.to_string())
        .env("GSM_CRASH_SHARDS", s.shards.to_string())
        .env("GSM_CRASH_ANSWER", s.answer_workers.to_string())
        .env("GSM_CRASH_SEED", seed.to_string())
        .env("GSM_CRASH_KILL_AFTER", kill_after.to_string())
        .env("GSM_CRASH_TEAR", tear.to_string())
        .env("GSM_CRASH_GROUP_COMMIT", s.group_commit.to_string())
        .env("GSM_CRASH_CKPT_EVERY", s.ckpt_every.to_string())
        .status()
        .expect("spawn worker")
}

fn read_totals(out: &std::path::Path, expected_updates: u64) -> Vec<QueryTotals> {
    let text = fs::read_to_string(out).expect("worker totals file");
    let mut totals = Vec::new();
    for line in text.lines() {
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields.as_slice() {
            ["updates", n] => assert_eq!(
                n.parse::<u64>().unwrap(),
                expected_updates,
                "worker finished at the wrong stream position"
            ),
            [i, emb, ret] => {
                assert_eq!(i.parse::<usize>().unwrap(), totals.len());
                totals.push(QueryTotals {
                    embeddings: emb.parse().unwrap(),
                    retracted: ret.parse().unwrap(),
                    notifications: 0,
                });
            }
            other => panic!("malformed totals line {other:?}"),
        }
    }
    totals
}

/// SIGKILLs the worker at `kills.len()` randomized boundaries (respawning
/// over the same directory each time), lets the final respawn finish, and
/// compares its totals to the uninterrupted oracle.
fn sigkill_sweep(engine_idx: usize) {
    let engine_name = all_engine_factories()[engine_idx]().name();
    let base = std::env::temp_dir().join(format!(
        "gsm-crash-{}-{engine_idx}-{}",
        std::process::id(),
        engine_name
    ));
    let mut rng = StdRng::seed_from_u64(0xC4A5 + engine_idx as u64);
    for (scenario_idx, scenario) in SCENARIOS.iter().enumerate() {
        let seed = 900 + engine_idx as u64;
        let wl = workload(seed);
        let total = wl.stream.len();
        let oracle = oracle_totals(engine_idx, scenario.shards, &wl);
        let dir = base.join(format!("s{scenario_idx}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let out = dir.join("totals.txt");

        // Two randomized SIGKILLs, the second possibly mid-write (torn
        // tail), then a clean finishing run.
        for kill_round in 0..2 {
            let kill_after = rng.gen_range(1..total.max(2));
            let tear = if kill_round == 1 {
                rng.gen_range(1..48)
            } else {
                0
            };
            let status = spawn_worker(&dir, &out, engine_idx, scenario, seed, kill_after, tear);
            if status.success() {
                // The previous crash landed inside the final batch, so the
                // whole stream was already durable and the respawn had
                // nothing left to kill itself over — it finished instead.
                break;
            }
        }
        let status = spawn_worker(&dir, &out, engine_idx, scenario, seed, usize::MAX, 0);
        assert!(
            status.success(),
            "{engine_name} s{scenario_idx}: finishing run failed"
        );
        let totals = read_totals(&out, total as u64);
        assert_totals_match(
            &totals,
            &oracle,
            &format!("{engine_name} s{scenario_idx} (SIGKILL)"),
        );
        let _ = fs::remove_dir_all(&dir);
    }
    let _ = fs::remove_dir_all(&base);
}

// ---------------------------------------------------------------------------
// In-process corruption sweep
// ---------------------------------------------------------------------------

/// One crash+corrupt+recover+finish cycle over an in-memory namespace.
/// Returns the recovered engine's totals after finishing the stream.
fn corruption_run(engine_idx: usize, wl: &Workload, rng: &mut StdRng) -> Vec<QueryTotals> {
    let shards = if rng.gen_bool(0.5) { 1 } else { 2 };
    let group_commit = rng.gen_range(1..4);
    let config = PersistConfig::default()
        .with_group_commit(group_commit)
        .with_wal_stripes(shards);
    let stream = wl.stream.as_slice();
    let crash_at = rng.gen_range(1..stream.len());
    let mode = rng.gen_range(0..3);

    let mut disk = MemFactory::new();
    // Mode 2: the writes themselves go through a lying torn storage — the
    // stripe silently loses everything past a byte offset while reporting
    // success, until a group-commit fsync notices.
    if mode == 2 {
        let stripe = format!("wal-{:02}", rng.gen_range(0..shards));
        disk.set_fault(
            &format!("{stripe}.log"),
            FaultPlan::TornAfter {
                at: rng.gen_range(1_000..20_000),
            },
        );
    }
    if let Ok((mut engine, _)) =
        open_persistent_engine(engine_idx, shards, Box::new(disk.handle()), config)
    {
        // Under the torn-storage fault ANY logged operation — symbol
        // interning, registration, a batch — may surface the typed sync
        // error; wherever it lands IS the crash, so errors just stop the
        // run.
        let _ = (|| -> Result<()> {
            try_finish_setup(&mut engine, wl)?;
            let mut fed = 0;
            let mut do_checkpoint = rng.gen_bool(0.4);
            for batch in stream.chunks(BATCH) {
                engine.try_apply_batch(batch)?;
                fed += batch.len();
                if do_checkpoint && fed >= crash_at / 2 {
                    do_checkpoint = false;
                    let _ = engine.checkpoint();
                }
                if fed >= crash_at {
                    break;
                }
            }
            Ok(())
        })();
        // Engine dropped here: the crash.
    }
    disk.clear_faults();
    match mode {
        0 => {
            // Torn tail: chop up to ~1.5 records off a random stripe.
            let stripe = format!("wal-{:02}.log", rng.gen_range(0..shards));
            if let Some(raw) = disk.raw(&stripe) {
                let mut bytes = raw.lock().unwrap();
                let cut = rng.gen_range(1usize..64).min(bytes.len());
                let keep = bytes.len() - cut;
                bytes.truncate(keep);
            }
        }
        1 => {
            // Bit flip at a random byte of a random stripe: CRC must stop
            // the reader at that record.
            let stripe = format!("wal-{:02}.log", rng.gen_range(0..shards));
            if let Some(raw) = disk.raw(&stripe) {
                let mut bytes = raw.lock().unwrap();
                if !bytes.is_empty() {
                    let pos = rng.gen_range(0..bytes.len());
                    bytes[pos] ^= 1u8 << rng.gen_range(0u32..8);
                }
            }
        }
        _ => {} // mode 2 already corrupted through the fault plan
    }

    let (mut engine, report) =
        open_persistent_engine(engine_idx, shards, Box::new(disk.handle()), config)
            .expect("recovery open");
    finish_setup(&mut engine, wl);
    let resume = report.resume_updates as usize;
    assert!(
        resume <= stream.len(),
        "recovered past the end of the stream"
    );
    for batch in stream[resume..].chunks(BATCH) {
        engine.try_apply_batch(batch).expect("post-recovery batch");
    }
    assert_eq!(engine.stats().updates_processed, stream.len() as u64);
    engine.totals().to_vec()
}

fn corruption_sweep(engine_idx: usize) {
    let engine_name = all_engine_factories()[engine_idx]().name();
    let seed = 7_000 + engine_idx as u64;
    let wl = workload(seed);
    // Totals are shard-count invariant (pinned by the shard differential
    // suites), so one oracle serves both shard counts.
    let oracle = oracle_totals(engine_idx, 1, &wl);
    let mut rng = StdRng::seed_from_u64(seed);
    // 16 randomized corruption recoveries here + 8 respawn recoveries in the
    // SIGKILL sweep = 24 recovery runs per engine.
    for run in 0..16 {
        let totals = corruption_run(engine_idx, &wl, &mut rng);
        assert_totals_match(
            &totals,
            &oracle,
            &format!("{engine_name} corruption run {run}"),
        );
    }
}

// ---------------------------------------------------------------------------
// Per-engine entry points (split so the suite parallelizes across the test
// harness' threads and failures name the engine directly).
// ---------------------------------------------------------------------------

macro_rules! crash_tests {
    ($($name:ident / $torn:ident => $idx:expr),+ $(,)?) => {
        $(
            #[test]
            fn $name() {
                sigkill_sweep($idx);
            }

            #[test]
            fn $torn() {
                corruption_sweep($idx);
            }
        )+
    };
}

crash_tests! {
    sigkill_recovery_tric / torn_write_recovery_tric => 0,
    sigkill_recovery_tric_plus / torn_write_recovery_tric_plus => 1,
    sigkill_recovery_inv / torn_write_recovery_inv => 2,
    sigkill_recovery_inv_plus / torn_write_recovery_inv_plus => 3,
    sigkill_recovery_inc / torn_write_recovery_inc => 4,
    sigkill_recovery_inc_plus / torn_write_recovery_inc_plus => 5,
    sigkill_recovery_graphdb / torn_write_recovery_graphdb => 6,
}
