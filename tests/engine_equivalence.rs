//! Cross-engine equivalence: every engine must report exactly the same
//! (query, new-embedding-count) notifications on every update, for every
//! dataset generator and a wide range of query shapes.
//!
//! This is the strongest correctness statement the workspace makes: TRIC and
//! TRIC+ (the paper's contribution), the four inverted-index baselines and
//! the graph-database baseline are independent implementations that share
//! only the covering-path decomposition and the relational kernel, so
//! agreement across all seven is strong evidence each one is right.

use std::time::{Duration, Instant};

use graph_stream_matching::core::prelude::*;
use graph_stream_matching::datagen::{Dataset, Workload, WorkloadConfig};
use graph_stream_matching::{all_engines, all_engines_sharded};

/// Replays a workload against every engine, asserting identical reports.
fn assert_engines_agree(workload: &Workload) {
    let mut engines = all_engines();
    for engine in engines.iter_mut() {
        for q in &workload.queries {
            engine.register_query(q).expect("register");
        }
    }
    for (i, update) in workload.stream.iter().enumerate() {
        let reference = engines[0].apply_update(*update);
        for engine in engines.iter_mut().skip(1) {
            let got = engine.apply_update(*update);
            assert_eq!(
                got,
                reference,
                "engine {} disagrees with {} on update #{i} ({update:?}) of {}",
                engine.name(),
                "TRIC",
                workload.name
            );
        }
    }
    // All engines saw the same stream; their cumulative stats must agree too.
    let reference = engines[0].stats();
    for engine in &engines {
        let s = engine.stats();
        assert_eq!(s.updates_processed, reference.updates_processed);
        assert_eq!(
            s.notifications,
            reference.notifications,
            "{}",
            engine.name()
        );
        assert_eq!(s.embeddings, reference.embeddings, "{}", engine.name());
    }
}

/// Chunk sizes the batch differential harness replays every workload with:
/// singleton batches (the engines' fast path), two odd sizes that never
/// divide the stream evenly (so the final short batch is exercised), and the
/// whole stream as one batch.
const BATCH_CHUNK_SIZES: [usize; 4] = [1, 3, 17, usize::MAX];

/// Differential batch-vs-sequential harness: replays `workload` sequentially
/// once per engine (recording every per-update report), then replays it with
/// `apply_batch` at each chunk size on fresh engines of the same kinds,
/// asserting that every batch report equals the merge of the per-update
/// reports of exactly that chunk — per engine, including the fold-based
/// default implementation (GraphDB).
fn assert_batch_equals_sequential(workload: &Workload) {
    // Sequential reference: per-engine, per-update reports.
    let mut seq_engines = all_engines();
    for engine in seq_engines.iter_mut() {
        for q in &workload.queries {
            engine.register_query(q).expect("register");
        }
    }
    let per_update: Vec<Vec<MatchReport>> = seq_engines
        .iter_mut()
        .map(|engine| {
            workload
                .stream
                .iter()
                .map(|u| engine.apply_update(*u))
                .collect()
        })
        .collect();

    for chunk_size in BATCH_CHUNK_SIZES {
        let chunk = chunk_size.min(workload.stream.len().max(1));
        let mut batch_engines = all_engines();
        for engine in batch_engines.iter_mut() {
            for q in &workload.queries {
                engine.register_query(q).expect("register");
            }
        }
        for (engine_idx, engine) in batch_engines.iter_mut().enumerate() {
            for (batch_idx, batch) in workload.stream.as_slice().chunks(chunk).enumerate() {
                let expected = MatchReport::from_counts(
                    per_update[engine_idx][batch_idx * chunk..]
                        .iter()
                        .take(batch.len())
                        .flat_map(|r| r.matches.iter().map(|m| (m.query, m.new_embeddings)))
                        .collect(),
                );
                let got = engine.apply_batch(batch);
                assert_eq!(
                    got,
                    expected,
                    "{} batch #{batch_idx} (chunk size {chunk}) of {} diverged from sequential",
                    engine.name(),
                    workload.name
                );
            }
            // Batch answering consumed the same stream and produced the same
            // embeddings; only notification granularity may differ.
            let seq_stats = seq_engines[engine_idx].stats();
            let stats = engine.stats();
            assert_eq!(stats.updates_processed, seq_stats.updates_processed);
            assert_eq!(stats.embeddings, seq_stats.embeddings, "{}", engine.name());
        }
    }
}

/// Shard counts the sharded differential matrix replays every workload
/// with. `GSM_SHARDS=<n>` (the CI shard job) narrows the matrix to a single
/// count; the default covers the degenerate single-shard delegation plus
/// three genuinely partitioned deployments.
fn shard_counts() -> Vec<usize> {
    match std::env::var("GSM_SHARDS") {
        Ok(v) => vec![v
            .parse()
            .unwrap_or_else(|_| panic!("invalid GSM_SHARDS value {v:?}"))],
        Err(_) => vec![1, 2, 4, 8],
    }
}

/// The shard-count differential matrix: for every engine and every shard
/// count, a sharded replay of `workload` must produce exactly the reports of
/// the unsharded engine — per update (chunk size 1, via `apply_update`) and
/// batched at the PR 2 chunk sizes, where the expected batch report is the
/// merge of the unsharded per-update reports of that chunk.
fn assert_sharded_equals_unsharded(workload: &Workload) {
    // Unsharded reference: per-engine, per-update reports.
    let mut ref_engines = all_engines();
    for engine in ref_engines.iter_mut() {
        for q in &workload.queries {
            engine.register_query(q).expect("register");
        }
    }
    let per_update: Vec<Vec<MatchReport>> = ref_engines
        .iter_mut()
        .map(|engine| {
            workload
                .stream
                .iter()
                .map(|u| engine.apply_update(*u))
                .collect()
        })
        .collect();

    for shards in shard_counts() {
        for chunk_size in BATCH_CHUNK_SIZES {
            let chunk = chunk_size.min(workload.stream.len().max(1));
            let mut engines = all_engines_sharded(shards);
            for engine in engines.iter_mut() {
                for q in &workload.queries {
                    engine.register_query(q).expect("register");
                }
            }
            for (engine_idx, engine) in engines.iter_mut().enumerate() {
                if chunk == 1 {
                    // Per-update replay through the single-update entry point.
                    for (i, u) in workload.stream.iter().enumerate() {
                        let got = engine.apply_update(*u);
                        assert_eq!(
                            got,
                            per_update[engine_idx][i],
                            "{} × {shards} shards diverged at update #{i} ({u:?}) of {}",
                            engine.name(),
                            workload.name
                        );
                    }
                } else {
                    for (batch_idx, batch) in workload.stream.as_slice().chunks(chunk).enumerate() {
                        let expected = MatchReport::from_counts(
                            per_update[engine_idx][batch_idx * chunk..]
                                .iter()
                                .take(batch.len())
                                .flat_map(|r| r.matches.iter().map(|m| (m.query, m.new_embeddings)))
                                .collect(),
                        );
                        let got = engine.apply_batch(batch);
                        assert_eq!(
                            got,
                            expected,
                            "{} × {shards} shards, batch #{batch_idx} (chunk {chunk}) of {} \
                             diverged from unsharded",
                            engine.name(),
                            workload.name
                        );
                    }
                }
                // Same stream, same embeddings; notification granularity is
                // per apply call and therefore comparable only at chunk 1.
                let ref_stats = ref_engines[engine_idx].stats();
                let stats = engine.stats();
                assert_eq!(stats.updates_processed, ref_stats.updates_processed);
                assert_eq!(stats.embeddings, ref_stats.embeddings, "{}", engine.name());
                if chunk == 1 {
                    assert_eq!(
                        stats.notifications,
                        ref_stats.notifications,
                        "{}",
                        engine.name()
                    );
                }
            }
        }
    }
}

/// The pipeline configurations the pipelined differential matrix drives,
/// as `(max_batch, max_delay_ticks, tick_advance)` with a synthetic clock
/// that advances `tick_advance` milliseconds per pushed update: a
/// size-driven sweep (deadline never fires), a deadline-driven sweep (the
/// buffer never fills, batches cut every `max_delay` ticks), and a mixed
/// config where both bounds fire. Singleton batches exercise the engines'
/// fast path through the staged window.
const PIPELINE_CONFIGS: [(usize, u64, u64); 4] =
    [(1, 1_000, 0), (7, 1_000, 0), (1_000, 5, 1), (10, 3, 1)];

/// Differential pipelined-vs-sequential harness: replays `workload`
/// sequentially once per engine (recording every per-update report), then
/// streams it through [`PipelinedEngine`] under each flush configuration on
/// fresh engines of the same kinds. Every completed batch must equal the
/// merge of the per-update reports of exactly the updates it covered —
/// whatever segmentation the size/deadline bounds chose — and the batches
/// must arrive in order and cover the stream exactly. `engines` lets the
/// sharded matrix reuse the harness.
fn assert_pipelined_equals_sequential_for(
    workload: &Workload,
    engines: impl Fn() -> Vec<Box<dyn ContinuousEngine>>,
) {
    // Sequential reference: per-engine, per-update reports.
    let mut seq_engines = engines();
    for engine in seq_engines.iter_mut() {
        for q in &workload.queries {
            engine.register_query(q).expect("register");
        }
    }
    let per_update: Vec<Vec<MatchReport>> = seq_engines
        .iter_mut()
        .map(|engine| {
            workload
                .stream
                .iter()
                .map(|u| engine.apply_update(*u))
                .collect()
        })
        .collect();

    // `GSM_THREADS>=2` (the CI threads job) re-runs the whole matrix with
    // the answer phase on the dedicated answer thread — same batches, same
    // reports, different thread.
    let threaded = std::env::var("GSM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .is_some_and(|n| n >= 2);
    for (max_batch, delay_ticks, tick_ms) in PIPELINE_CONFIGS {
        let mut config = PipelineConfig::new(max_batch, Duration::from_millis(delay_ticks));
        if threaded {
            config = config.threaded();
        }
        let mut pipe_engines: Vec<_> = engines()
            .into_iter()
            .map(|e| PipelinedEngine::new(e, config))
            .collect();
        for pipe in pipe_engines.iter_mut() {
            for q in &workload.queries {
                pipe.register_query(q).expect("register");
            }
        }
        let t0 = Instant::now();
        for (engine_idx, pipe) in pipe_engines.iter_mut().enumerate() {
            let mut completed: Vec<CompletedBatch> = Vec::new();
            for (i, u) in workload.stream.iter().enumerate() {
                let now = t0 + Duration::from_millis(i as u64 * tick_ms);
                completed.extend(pipe.push_at(*u, now));
            }
            completed.extend(pipe.drain());

            // The completed batches tile the stream in arrival order; each
            // report must equal the merged sequential reports of its tile.
            let mut offset = 0usize;
            for (batch_idx, batch) in completed.iter().enumerate() {
                assert!(batch.updates > 0, "empty completed batch");
                let expected = MatchReport::from_counts(
                    per_update[engine_idx][offset..offset + batch.updates]
                        .iter()
                        .flat_map(|r| r.matches.iter().map(|m| (m.query, m.new_embeddings)))
                        .collect(),
                );
                assert_eq!(
                    batch.report,
                    expected,
                    "{} pipelined batch #{batch_idx} (updates {offset}..{}) under \
                     (max_batch {max_batch}, delay {delay_ticks} ticks) of {} \
                     diverged from sequential",
                    pipe.name(),
                    offset + batch.updates,
                    workload.name
                );
                offset += batch.updates;
            }
            assert_eq!(
                offset,
                workload.stream.len(),
                "{} pipeline dropped or duplicated updates",
                pipe.name()
            );

            // Same stream, same embeddings; notification granularity is per
            // answered batch and therefore not compared.
            let seq_stats = seq_engines[engine_idx].stats();
            let stats = pipe.stats();
            assert_eq!(stats.updates_processed, seq_stats.updates_processed);
            assert_eq!(stats.embeddings, seq_stats.embeddings, "{}", pipe.name());
        }
    }
}

fn assert_pipelined_equals_sequential(workload: &Workload) {
    assert_pipelined_equals_sequential_for(workload, all_engines);
}

#[test]
fn engines_agree_on_snb_workload() {
    let workload =
        Workload::generate(WorkloadConfig::new(Dataset::Snb, 900, 40).with_selectivity(0.4));
    assert_engines_agree(&workload);
}

#[test]
fn engines_agree_on_taxi_workload() {
    let workload =
        Workload::generate(WorkloadConfig::new(Dataset::Taxi, 900, 40).with_query_size(3));
    assert_engines_agree(&workload);
}

#[test]
fn engines_agree_on_biogrid_workload() {
    // Scaled-down seed of the single-label BioGrid stress test (it explodes
    // quickly); the full-size scenario runs under `--features slow-tests`.
    let workload =
        Workload::generate(WorkloadConfig::new(Dataset::BioGrid, 250, 20).with_query_size(3));
    assert_engines_agree(&workload);
}

#[test]
#[cfg_attr(
    not(feature = "slow-tests"),
    ignore = "large BioGrid scenario; run with --features slow-tests"
)]
fn engines_agree_on_biogrid_workload_large() {
    let workload =
        Workload::generate(WorkloadConfig::new(Dataset::BioGrid, 400, 25).with_query_size(3));
    assert_engines_agree(&workload);
}

#[test]
fn engines_agree_with_high_overlap_and_long_queries() {
    // Scaled-down seed; the full-size scenario runs under
    // `--features slow-tests`.
    let workload = Workload::generate(
        WorkloadConfig::new(Dataset::Snb, 400, 20)
            .with_query_size(7)
            .with_overlap(0.8),
    );
    assert_engines_agree(&workload);
}

#[test]
#[cfg_attr(
    not(feature = "slow-tests"),
    ignore = "large overlap scenario; run with --features slow-tests"
)]
fn engines_agree_with_high_overlap_and_long_queries_large() {
    let workload = Workload::generate(
        WorkloadConfig::new(Dataset::Snb, 700, 30)
            .with_query_size(7)
            .with_overlap(0.8),
    );
    assert_engines_agree(&workload);
}

#[test]
fn batch_equals_sequential_on_snb_workload() {
    let workload =
        Workload::generate(WorkloadConfig::new(Dataset::Snb, 900, 40).with_selectivity(0.4));
    assert_batch_equals_sequential(&workload);
}

#[test]
fn batch_equals_sequential_on_taxi_workload() {
    let workload =
        Workload::generate(WorkloadConfig::new(Dataset::Taxi, 900, 40).with_query_size(3));
    assert_batch_equals_sequential(&workload);
}

#[test]
fn batch_equals_sequential_on_biogrid_workload() {
    // Same single-label stress generator as `engines_agree_on_biogrid`, at a
    // reduced size: the differential harness replays the stream five times
    // (once sequentially, once per chunk size) across seven engines, and the
    // BioGrid joins grow superlinearly with the stream.
    let workload =
        Workload::generate(WorkloadConfig::new(Dataset::BioGrid, 250, 20).with_query_size(3));
    assert_batch_equals_sequential(&workload);
}

#[test]
fn batch_equals_sequential_with_high_overlap_and_long_queries() {
    // Same shape as `engines_agree_with_high_overlap_and_long_queries`,
    // reduced for the five-fold replay of the differential harness.
    let workload = Workload::generate(
        WorkloadConfig::new(Dataset::Snb, 400, 20)
            .with_query_size(7)
            .with_overlap(0.8),
    );
    assert_batch_equals_sequential(&workload);
}

#[test]
fn sharded_equals_unsharded_on_snb_workload() {
    let workload =
        Workload::generate(WorkloadConfig::new(Dataset::Snb, 400, 20).with_selectivity(0.4));
    assert_sharded_equals_unsharded(&workload);
}

#[test]
fn sharded_equals_unsharded_on_taxi_workload() {
    let workload =
        Workload::generate(WorkloadConfig::new(Dataset::Taxi, 400, 20).with_query_size(3));
    assert_sharded_equals_unsharded(&workload);
}

#[test]
fn sharded_equals_unsharded_on_biogrid_workload() {
    // The matrix replays the stream (chunk sizes × shard counts) per engine,
    // so the explosive single-label generator stays small here.
    let workload =
        Workload::generate(WorkloadConfig::new(Dataset::BioGrid, 150, 12).with_query_size(3));
    assert_sharded_equals_unsharded(&workload);
}

#[test]
fn sharded_equals_unsharded_with_high_overlap_and_long_queries() {
    // High overlap plus long queries maximises shared trie prefixes and
    // multi-path (spanning-prone) query shapes.
    let workload = Workload::generate(
        WorkloadConfig::new(Dataset::Snb, 250, 14)
            .with_query_size(7)
            .with_overlap(0.8),
    );
    assert_sharded_equals_unsharded(&workload);
}

#[test]
fn pipelined_equals_sequential_on_snb_workload() {
    let workload =
        Workload::generate(WorkloadConfig::new(Dataset::Snb, 400, 20).with_selectivity(0.4));
    assert_pipelined_equals_sequential(&workload);
}

#[test]
fn pipelined_equals_sequential_on_taxi_workload() {
    let workload =
        Workload::generate(WorkloadConfig::new(Dataset::Taxi, 400, 20).with_query_size(3));
    assert_pipelined_equals_sequential(&workload);
}

#[test]
fn pipelined_equals_sequential_on_biogrid_workload() {
    // The explosive single-label generator stays small: the harness replays
    // the stream once sequentially plus once per pipeline config.
    let workload =
        Workload::generate(WorkloadConfig::new(Dataset::BioGrid, 200, 16).with_query_size(3));
    assert_pipelined_equals_sequential(&workload);
}

#[test]
fn pipelined_equals_sequential_with_high_overlap_and_long_queries() {
    // High overlap plus long queries maximises multi-path queries, whose
    // covering-path joins are exactly what the pipeline defers.
    let workload = Workload::generate(
        WorkloadConfig::new(Dataset::Snb, 250, 14)
            .with_query_size(7)
            .with_overlap(0.8),
    );
    assert_pipelined_equals_sequential(&workload);
}

#[test]
fn pipelined_sharded_equals_sequential_on_snb_workload() {
    // Pipeline × sharding composition: the pipelined executor in front of
    // the sharded wrapper, so the deferred spanning join pass runs after
    // later batches were absorbed on worker shards. `GSM_SHARDS=<n>` (the
    // CI shard job) pins the shard count like the other sharded suites.
    let workload =
        Workload::generate(WorkloadConfig::new(Dataset::Snb, 300, 16).with_selectivity(0.4));
    for shards in shard_counts() {
        assert_pipelined_equals_sequential_for(&workload, || all_engines_sharded(shards));
    }
}

#[test]
fn engines_agree_on_handwritten_corner_cases() {
    let mut symbols = SymbolTable::new();
    let queries = vec![
        // Self loop.
        QueryPattern::parse("?a -e0-> ?a", &mut symbols).unwrap(),
        // Cycle of length three.
        QueryPattern::parse("?a -e0-> ?b; ?b -e1-> ?c; ?c -e2-> ?a", &mut symbols).unwrap(),
        // Star with mixed directions.
        QueryPattern::parse("?c -e0-> ?x; ?y -e1-> ?c; ?c -e2-> ?z", &mut symbols).unwrap(),
        // Constants on both endpoints.
        QueryPattern::parse("v1 -e0-> v2", &mut symbols).unwrap(),
        // Repeated edge label along a chain.
        QueryPattern::parse("?a -e0-> ?b; ?b -e0-> ?c; ?c -e0-> ?d", &mut symbols).unwrap(),
        // Diamond.
        QueryPattern::parse(
            "?a -e0-> ?b; ?a -e1-> ?c; ?b -e2-> ?d; ?c -e3-> ?d",
            &mut symbols,
        )
        .unwrap(),
    ];

    let mut engines = all_engines();
    for engine in engines.iter_mut() {
        for q in &queries {
            engine.register_query(q).expect("register");
        }
    }

    // A small deterministic pseudo-random stream over few vertices and the
    // labels used above, exercising duplicates and self loops heavily.
    let labels: Vec<Sym> = (0..4).map(|i| symbols.intern(&format!("e{i}"))).collect();
    let vertices: Vec<Sym> = (0..6).map(|i| symbols.intern(&format!("v{i}"))).collect();
    let mut state = 0x12345678u64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    for i in 0..500 {
        let u = Update::new(
            labels[next() % labels.len()],
            vertices[next() % vertices.len()],
            vertices[next() % vertices.len()],
        );
        let reference = engines[0].apply_update(u);
        for engine in engines.iter_mut().skip(1) {
            assert_eq!(
                engine.apply_update(u),
                reference,
                "{} diverged at step {i} on {u:?}",
                engine.name()
            );
        }
    }
}

#[test]
fn late_registration_is_consistent_across_engines() {
    // Queries registered mid-stream only see edges arriving afterwards (none
    // of the engines replays history into its materialized views except the
    // graph database, which therefore is excluded here; its behaviour is
    // covered by its own crate tests).
    let mut symbols = SymbolTable::new();
    let q1 = QueryPattern::parse("?a -knows-> ?b; ?b -knows-> ?c", &mut symbols).unwrap();
    let knows = symbols.intern("knows");
    let v: Vec<Sym> = (0..5).map(|i| symbols.intern(&format!("p{i}"))).collect();

    let mut engines = all_engines();
    engines.retain(|e| e.name() != "GraphDB");
    for engine in engines.iter_mut() {
        engine.register_query(&q1).unwrap();
    }
    let updates = vec![
        Update::new(knows, v[0], v[1]),
        Update::new(knows, v[1], v[2]),
        Update::new(knows, v[2], v[3]),
        Update::new(knows, v[3], v[4]),
    ];
    for u in updates {
        let reference = engines[0].apply_update(u);
        for e in engines.iter_mut().skip(1) {
            assert_eq!(e.apply_update(u), reference, "{}", e.name());
        }
    }
}
