//! Property-based cross-engine testing: on randomly generated query sets and
//! update streams over a small label/vertex universe, all seven engines must
//! produce identical match reports on every update, and none may panic.

use proptest::prelude::*;

use graph_stream_matching::baselines::BaselineEngine;
use graph_stream_matching::core::prelude::*;
use graph_stream_matching::tric::TricEngine;
use graph_stream_matching::{all_engines, all_engines_sharded};

/// The engines with a real (non-default) batched implementation: TRIC, TRIC+
/// and the four inverted-index baselines. The graph database keeps the
/// fold-based trait default and is exercised by `engine_equivalence`.
fn batched_engines() -> Vec<Box<dyn ContinuousEngine>> {
    vec![
        Box::new(TricEngine::tric()),
        Box::new(TricEngine::tric_plus()),
        Box::new(BaselineEngine::inv()),
        Box::new(BaselineEngine::inv_plus()),
        Box::new(BaselineEngine::inc()),
        Box::new(BaselineEngine::inc_plus()),
    ]
}

/// A compact description of a random pattern edge: (label, src, tgt, src-kind,
/// tgt-kind) over small universes.
type EdgeSpec = (u8, u8, u8, bool, bool);

fn build_query(specs: &[EdgeSpec], symbols: &mut SymbolTable) -> Option<QueryPattern> {
    let mut edges = Vec::new();
    // Connectivity: every edge touches a variable vertex already in use;
    // constants (drawn from the same universe the stream uses) are leaves.
    let mut used: Vec<u8> = vec![0];
    for &(label, a, b, other_const, flip) in specs {
        let anchor = used[(a as usize) % used.len()];
        let anchor_term = Term::Var(anchor as u32);
        let other_term = if other_const {
            Term::Const(symbols.intern(&format!("v{}", b % 5)))
        } else {
            if !used.contains(&b) {
                used.push(b);
            }
            Term::Var(b as u32)
        };
        let (src, tgt) = if flip {
            (other_term, anchor_term)
        } else {
            (anchor_term, other_term)
        };
        edges.push(PatternEdge::new(
            symbols.intern(&format!("e{}", label % 3)),
            src,
            tgt,
        ));
    }
    QueryPattern::from_edges(edges).ok()
}

proptest! {
    // Each case replays a stream against seven engines; keep the case count
    // moderate so the whole file stays fast.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn all_engines_agree_on_random_workloads(
        query_specs in proptest::collection::vec(
            proptest::collection::vec((0u8..3, 0u8..5, 0u8..5, any::<bool>(), any::<bool>()), 1..4),
            1..6,
        ),
        stream_specs in proptest::collection::vec((0u8..3, 0u8..5, 0u8..5), 1..120),
    ) {
        let mut symbols = SymbolTable::new();
        let queries: Vec<QueryPattern> = query_specs
            .iter()
            .filter_map(|specs| build_query(specs, &mut symbols))
            .collect();
        prop_assume!(!queries.is_empty());

        let mut engines = all_engines();
        for engine in engines.iter_mut() {
            for q in &queries {
                engine.register_query(q).expect("valid query");
            }
        }

        for (i, &(label, src, tgt)) in stream_specs.iter().enumerate() {
            let update = Update::new(
                symbols.intern(&format!("e{label}")),
                symbols.intern(&format!("v{src}")),
                symbols.intern(&format!("v{tgt}")),
            );
            let reference = engines[0].apply_update(update);
            for engine in engines.iter_mut().skip(1) {
                let got = engine.apply_update(update);
                prop_assert_eq!(
                    &got,
                    &reference,
                    "{} disagrees with TRIC at update #{} ({:?})",
                    engine.name(),
                    i,
                    update
                );
            }
        }
    }

    /// Batched answering is differentially equivalent to sequential
    /// answering on random workloads under *random batch partitions*: for
    /// every engine with a real batched implementation (TRIC, TRIC+ and the
    /// four inverted-index baselines), chunking the stream arbitrarily and
    /// merging the sequential per-update reports chunk by chunk must
    /// reproduce the `apply_batch` reports exactly.
    #[test]
    fn batch_partitions_equal_sequential(
        query_specs in proptest::collection::vec(
            proptest::collection::vec((0u8..3, 0u8..5, 0u8..5, any::<bool>(), any::<bool>()), 1..4),
            1..5,
        ),
        stream_specs in proptest::collection::vec((0u8..3, 0u8..5, 0u8..5), 1..90),
        // Random partition: chunk lengths are drawn and applied cyclically.
        chunk_lens in proptest::collection::vec(1usize..16, 1..12),
    ) {
        let mut symbols = SymbolTable::new();
        let queries: Vec<QueryPattern> = query_specs
            .iter()
            .filter_map(|specs| build_query(specs, &mut symbols))
            .collect();
        prop_assume!(!queries.is_empty());

        let mut seq_engines = batched_engines();
        let mut bat_engines = batched_engines();
        for engine in seq_engines.iter_mut().chain(bat_engines.iter_mut()) {
            for q in &queries {
                engine.register_query(q).expect("valid query");
            }
        }
        let stream: Vec<Update> = stream_specs
            .iter()
            .map(|&(label, src, tgt)| {
                Update::new(
                    symbols.intern(&format!("e{label}")),
                    symbols.intern(&format!("v{src}")),
                    symbols.intern(&format!("v{tgt}")),
                )
            })
            .collect();

        let mut offset = 0usize;
        let mut chunk_idx = 0usize;
        while offset < stream.len() {
            let len = chunk_lens[chunk_idx % chunk_lens.len()].min(stream.len() - offset);
            let batch = &stream[offset..offset + len];
            for (seq, bat) in seq_engines.iter_mut().zip(bat_engines.iter_mut()) {
                let expected = MatchReport::from_counts(
                    batch
                        .iter()
                        .flat_map(|&u| seq.apply_update(u).matches)
                        .map(|m| (m.query, m.new_embeddings))
                        .collect(),
                );
                let got = bat.apply_batch(batch);
                prop_assert_eq!(
                    &got,
                    &expected,
                    "{} diverged on batch at offset {} (len {})",
                    bat.name(),
                    offset,
                    len
                );
            }
            offset += len;
            chunk_idx += 1;
        }
    }

    /// The report merge the shard wrapper relies on is **associative and
    /// commutative** with the empty report as identity: shards may be merged
    /// in any order or grouping without changing the result.
    #[test]
    fn match_report_merge_is_associative_and_commutative(
        a_pairs in proptest::collection::vec((0u32..16, 0u64..50), 0..10),
        b_pairs in proptest::collection::vec((0u32..16, 0u64..50), 0..10),
        c_pairs in proptest::collection::vec((0u32..16, 0u64..50), 0..10),
    ) {
        let report = |pairs: &Vec<(u32, u64)>| {
            MatchReport::from_counts(pairs.iter().map(|&(q, n)| (QueryId(q), n)).collect())
        };
        let (a, b, c) = (report(&a_pairs), report(&b_pairs), report(&c_pairs));
        // Associativity.
        prop_assert_eq!(a.merge(&b.merge(&c)), a.merge(&b).merge(&c));
        // Commutativity, pairwise and under a full permutation of the fold.
        prop_assert_eq!(a.merge(&b), b.merge(&a));
        prop_assert_eq!(a.merge(&b).merge(&c), c.merge(&b).merge(&a));
        prop_assert_eq!(b.merge(&c).merge(&a), a.merge(&b.merge(&c)));
        // Identity.
        let empty = MatchReport::empty();
        prop_assert_eq!(a.merge(&empty), a.clone());
        prop_assert_eq!(empty.merge(&a), a);
    }

    /// Sharded engines are observationally equivalent to their unsharded
    /// counterparts on random workloads at random shard counts, per update.
    #[test]
    fn sharded_engines_agree_on_random_workloads(
        query_specs in proptest::collection::vec(
            proptest::collection::vec((0u8..3, 0u8..5, 0u8..5, any::<bool>(), any::<bool>()), 1..4),
            1..5,
        ),
        stream_specs in proptest::collection::vec((0u8..3, 0u8..5, 0u8..5), 1..90),
        num_shards in 1usize..9,
    ) {
        let mut symbols = SymbolTable::new();
        let queries: Vec<QueryPattern> = query_specs
            .iter()
            .filter_map(|specs| build_query(specs, &mut symbols))
            .collect();
        prop_assume!(!queries.is_empty());

        let mut plain = all_engines();
        let mut sharded = all_engines_sharded(num_shards);
        for engine in plain.iter_mut().chain(sharded.iter_mut()) {
            for q in &queries {
                engine.register_query(q).expect("valid query");
            }
        }
        for (i, &(label, src, tgt)) in stream_specs.iter().enumerate() {
            let update = Update::new(
                symbols.intern(&format!("e{label}")),
                symbols.intern(&format!("v{src}")),
                symbols.intern(&format!("v{tgt}")),
            );
            for (p, s) in plain.iter_mut().zip(sharded.iter_mut()) {
                let expected = p.apply_update(update);
                let got = s.apply_update(update);
                prop_assert_eq!(
                    &got,
                    &expected,
                    "{} × {} shards diverged at update #{} ({:?})",
                    p.name(),
                    num_shards,
                    i,
                    update
                );
            }
        }
    }

    /// Sharded batched replay under random batch partitions matches the
    /// merged sequential reports of the unsharded engine — the combination
    /// of the two wrapper entry points with real multi-update batches, which
    /// is also what drives the worker-thread absorption path.
    #[test]
    fn sharded_batch_partitions_equal_sequential(
        query_specs in proptest::collection::vec(
            proptest::collection::vec((0u8..3, 0u8..5, 0u8..5, any::<bool>(), any::<bool>()), 1..4),
            1..4,
        ),
        stream_specs in proptest::collection::vec((0u8..3, 0u8..5, 0u8..5), 1..80),
        chunk_lens in proptest::collection::vec(1usize..16, 1..10),
        num_shards in 2usize..9,
    ) {
        let mut symbols = SymbolTable::new();
        let queries: Vec<QueryPattern> = query_specs
            .iter()
            .filter_map(|specs| build_query(specs, &mut symbols))
            .collect();
        prop_assume!(!queries.is_empty());

        // Unsharded sequential reference vs sharded batched replay, for the
        // two engines at the ends of the spectrum (TRIC+ and the fold-free
        // batched GraphDB would be redundant with the full matrix in
        // engine_equivalence; keep the property test lean).
        let mut references: Vec<Box<dyn ContinuousEngine>> = vec![
            Box::new(TricEngine::tric_plus()),
            Box::new(BaselineEngine::inc()),
        ];
        let mut sharded: Vec<Box<dyn ContinuousEngine>> = vec![
            Box::new(TricEngine::tric_plus_sharded(num_shards)),
            Box::new(BaselineEngine::sharded(
                graph_stream_matching::baselines::BaselineMode::Inc,
                false,
                num_shards,
            )),
        ];
        for engine in references.iter_mut().chain(sharded.iter_mut()) {
            for q in &queries {
                engine.register_query(q).expect("valid query");
            }
        }
        let stream: Vec<Update> = stream_specs
            .iter()
            .map(|&(label, src, tgt)| {
                Update::new(
                    symbols.intern(&format!("e{label}")),
                    symbols.intern(&format!("v{src}")),
                    symbols.intern(&format!("v{tgt}")),
                )
            })
            .collect();

        let mut offset = 0usize;
        let mut chunk_idx = 0usize;
        while offset < stream.len() {
            let len = chunk_lens[chunk_idx % chunk_lens.len()].min(stream.len() - offset);
            let batch = &stream[offset..offset + len];
            for (seq, bat) in references.iter_mut().zip(sharded.iter_mut()) {
                let expected = MatchReport::from_counts(
                    batch
                        .iter()
                        .flat_map(|&u| seq.apply_update(u).matches)
                        .map(|m| (m.query, m.new_embeddings))
                        .collect(),
                );
                let got = bat.apply_batch(batch);
                prop_assert_eq!(
                    &got,
                    &expected,
                    "{} × {} shards diverged on batch at offset {} (len {})",
                    bat.name(),
                    num_shards,
                    offset,
                    len
                );
            }
            offset += len;
            chunk_idx += 1;
        }
    }

    /// The pipelined executor is differentially equivalent to sequential
    /// answering under *random* flush sizes, flush deadlines and inter-update
    /// arrival gaps (driven through a synthetic clock): whatever stream
    /// segmentation the latency-budgeted batcher picks, every completed
    /// batch's report must equal the merged sequential reports of exactly
    /// the updates it covered, and the batches must tile the stream in
    /// order. Exercised on the two ends of the engine spectrum (TRIC+ with
    /// its deferred join pass, INC with the default immediate staging),
    /// plus TRIC+ behind the sharded wrapper.
    #[test]
    fn pipelined_random_flush_bounds_equal_sequential(
        query_specs in proptest::collection::vec(
            proptest::collection::vec((0u8..3, 0u8..5, 0u8..5, any::<bool>(), any::<bool>()), 1..4),
            1..5,
        ),
        stream_specs in proptest::collection::vec((0u8..3, 0u8..5, 0u8..5), 1..90),
        max_batch in 1usize..20,
        delay_ticks in 1u64..8,
        gaps in proptest::collection::vec(0u64..4, 1..12),
        num_shards in 1usize..5,
    ) {
        use std::time::{Duration, Instant};

        let mut symbols = SymbolTable::new();
        let queries: Vec<QueryPattern> = query_specs
            .iter()
            .filter_map(|specs| build_query(specs, &mut symbols))
            .collect();
        prop_assume!(!queries.is_empty());

        let mut references: Vec<Box<dyn ContinuousEngine>> = vec![
            Box::new(TricEngine::tric_plus()),
            Box::new(BaselineEngine::inc()),
            Box::new(TricEngine::tric_plus()),
        ];
        let config = PipelineConfig::new(max_batch, Duration::from_millis(delay_ticks));
        let mut pipelines: Vec<PipelinedEngine<Box<dyn ContinuousEngine>>> = vec![
            PipelinedEngine::new(Box::new(TricEngine::tric_plus()), config),
            PipelinedEngine::new(Box::new(BaselineEngine::inc()), config),
            PipelinedEngine::new(
                Box::new(TricEngine::tric_plus_sharded(num_shards)),
                config,
            ),
        ];
        for engine in references.iter_mut() {
            for q in &queries {
                engine.register_query(q).expect("valid query");
            }
        }
        for pipe in pipelines.iter_mut() {
            for q in &queries {
                pipe.register_query(q).expect("valid query");
            }
        }

        let stream: Vec<Update> = stream_specs
            .iter()
            .map(|&(label, src, tgt)| {
                Update::new(
                    symbols.intern(&format!("e{label}")),
                    symbols.intern(&format!("v{src}")),
                    symbols.intern(&format!("v{tgt}")),
                )
            })
            .collect();

        // Sequential reference reports, per engine per update.
        let per_update: Vec<Vec<MatchReport>> = references
            .iter_mut()
            .map(|engine| stream.iter().map(|u| engine.apply_update(*u)).collect())
            .collect();

        let t0 = Instant::now();
        for (engine_idx, pipe) in pipelines.iter_mut().enumerate() {
            let mut completed: Vec<CompletedBatch> = Vec::new();
            let mut clock_ms = 0u64;
            for (i, u) in stream.iter().enumerate() {
                clock_ms += gaps[i % gaps.len()];
                completed.extend(pipe.push_at(*u, t0 + Duration::from_millis(clock_ms)));
            }
            completed.extend(pipe.drain());

            let mut offset = 0usize;
            for batch in &completed {
                let expected = MatchReport::from_counts(
                    per_update[engine_idx][offset..offset + batch.updates]
                        .iter()
                        .flat_map(|r| r.matches.iter().map(|m| (m.query, m.new_embeddings)))
                        .collect(),
                );
                prop_assert_eq!(
                    &batch.report,
                    &expected,
                    "{} diverged on batch at offset {} (len {}, max_batch {}, delay {})",
                    pipe.name(),
                    offset,
                    batch.updates,
                    max_batch,
                    delay_ticks
                );
                offset += batch.updates;
            }
            prop_assert_eq!(offset, stream.len(), "pipeline must tile the stream");
        }
    }

    /// Engines never panic on arbitrary streams even with no queries, or with
    /// queries whose labels never appear in the stream.
    #[test]
    fn engines_are_total_on_arbitrary_streams(
        stream_specs in proptest::collection::vec((0u8..4, 0u8..6, 0u8..6), 0..80),
    ) {
        let mut symbols = SymbolTable::new();
        let unrelated = QueryPattern::parse("?a -neverSeen-> ?b; ?b -alsoNever-> ?c", &mut symbols)
            .expect("valid");
        let mut engines = all_engines();
        for engine in engines.iter_mut() {
            engine.register_query(&unrelated).unwrap();
        }
        for &(label, src, tgt) in &stream_specs {
            let update = Update::new(
                symbols.intern(&format!("e{label}")),
                symbols.intern(&format!("v{src}")),
                symbols.intern(&format!("v{tgt}")),
            );
            for engine in engines.iter_mut() {
                prop_assert!(engine.apply_update(update).is_empty());
            }
        }
    }
}
