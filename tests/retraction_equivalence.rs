//! Retraction differential suite: every engine must agree on mixed
//! insert+delete streams, and the *net* per-query embedding totals
//! (insertions minus retractions) must equal a from-scratch re-evaluation of
//! the surviving edge set — the signed z-set invariant of the PR that
//! generalized deltas beyond additions.
//!
//! Three stream shapes are exercised, all produced by the datagen variants:
//! random deletions of live edges (`with_delete_ratio`), count-based sliding
//! windows (`with_sliding_window`), and a time-based sliding window driven
//! through the windowed [`PipelinedEngine`] front end with a synthetic
//! clock. The wrappers ride along: the sharded matrix replays the mixed
//! streams across genuinely partitioned deployments, and the pipelined
//! matrix covers **staged** retraction runs — commit at stage time, answer
//! deferred over generation-pinned pre-removal snapshots — across shard and
//! answer-worker counts, with an eager-barrier A/B leg riding the
//! [`PipelineConfig::with_eager_retractions`] flag.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use graph_stream_matching::core::prelude::*;
use graph_stream_matching::datagen::{Dataset, Workload, WorkloadConfig};
use graph_stream_matching::{all_engines, all_engines_sharded};

/// Folds a report into signed per-query totals: `+new - retracted`.
fn accumulate_net(net: &mut HashMap<usize, i64>, report: &MatchReport) {
    for m in &report.matches {
        let entry = net.entry(m.query.index()).or_insert(0);
        *entry += m.new_embeddings as i64;
        *entry -= m.retracted_embeddings as i64;
        // Net-zero notifications are legal (a batch may create and destroy
        // embeddings of the same query); drop settled entries so the map
        // compares equal to an oracle that never saw the query.
        if *entry == 0 {
            net.remove(&m.query.index());
        }
    }
}

/// From-scratch oracle: replays the *surviving* edge set of `stream` (the
/// sign-aware [`AttributeGraph`] fold) into a fresh TRIC+ engine and returns
/// its per-query totals. Edge order within the surviving set is irrelevant —
/// insert-only totals are order-independent.
fn oracle_net(queries: &[QueryPattern], stream: &[Update]) -> HashMap<usize, i64> {
    let graph = AttributeGraph::from_updates(stream.iter());
    let mut engine = graph_stream_matching::tric::TricEngine::tric_plus();
    for q in queries {
        engine.register_query(q).expect("register");
    }
    let mut net = HashMap::new();
    for u in graph.edges() {
        accumulate_net(&mut net, &engine.apply_update(*u));
    }
    net
}

/// Replays a mixed workload per-update against every engine, asserting
/// identical reports, identical cumulative stats (including the retraction
/// counters), and — the invariant insertions alone can never check — that
/// the net totals equal the from-scratch oracle over the surviving edges.
fn assert_mixed_stream_equivalence(workload: &Workload) {
    let retractions = workload.stream.iter().filter(|u| u.is_retraction()).count();
    assert!(
        retractions > 0,
        "{} exercises no retractions — the workload variant is miswired",
        workload.name
    );

    let mut engines = all_engines();
    for engine in engines.iter_mut() {
        for q in &workload.queries {
            engine.register_query(q).expect("register");
        }
    }
    let mut net = HashMap::new();
    for (i, update) in workload.stream.iter().enumerate() {
        let reference = engines[0].apply_update(*update);
        accumulate_net(&mut net, &reference);
        for engine in engines.iter_mut().skip(1) {
            let got = engine.apply_update(*update);
            assert_eq!(
                got,
                reference,
                "engine {} disagrees with TRIC on update #{i} ({update:?}) of {}",
                engine.name(),
                workload.name
            );
        }
    }
    let reference = engines[0].stats();
    for engine in &engines {
        let s = engine.stats();
        assert_eq!(s.updates_processed, reference.updates_processed);
        assert_eq!(
            s.notifications,
            reference.notifications,
            "{}",
            engine.name()
        );
        assert_eq!(s.embeddings, reference.embeddings, "{}", engine.name());
        assert_eq!(s.retracted, reference.retracted, "{}", engine.name());
    }
    assert!(reference.retracted > 0 || net.is_empty() || retractions == 0);

    let oracle = oracle_net(&workload.queries, workload.stream.as_slice());
    assert_eq!(
        net, oracle,
        "net totals of {} diverged from from-scratch re-evaluation",
        workload.name
    );
}

/// Batch chunk sizes for the mixed-stream batched replay. Odd sizes force
/// chunks that straddle sign boundaries, exercising the sign-run splitter.
const BATCH_CHUNK_SIZES: [usize; 3] = [3, 17, usize::MAX];

/// Replays a mixed workload through `apply_batch` at several chunk sizes,
/// asserting cross-engine agreement per batch and oracle-equal net totals.
fn assert_mixed_batches_agree(workload: &Workload) {
    let oracle = oracle_net(&workload.queries, workload.stream.as_slice());
    for chunk_size in BATCH_CHUNK_SIZES {
        let chunk = chunk_size.min(workload.stream.len().max(1));
        let mut engines = all_engines();
        for engine in engines.iter_mut() {
            for q in &workload.queries {
                engine.register_query(q).expect("register");
            }
        }
        let mut net = HashMap::new();
        for (batch_idx, batch) in workload.stream.as_slice().chunks(chunk).enumerate() {
            let reference = engines[0].apply_batch(batch);
            accumulate_net(&mut net, &reference);
            for engine in engines.iter_mut().skip(1) {
                let got = engine.apply_batch(batch);
                assert_eq!(
                    got,
                    reference,
                    "{} diverged at batch #{batch_idx} (chunk {chunk}) of {}",
                    engine.name(),
                    workload.name
                );
            }
        }
        assert_eq!(
            net, oracle,
            "batched (chunk {chunk}) net totals of {} diverged from oracle",
            workload.name
        );
    }
}

/// The wrapper matrix: sharded and pipelined deployments of every engine
/// must match the plain per-update reference on mixed streams. Shard
/// routing must split and re-merge retraction runs; the pipeline stages
/// them like insert runs (answer deferred over pre-removal snapshots).
fn assert_wrappers_agree_on_mixed_stream(workload: &Workload, shards: usize) {
    let mut reference_engines = all_engines();
    for engine in reference_engines.iter_mut() {
        for q in &workload.queries {
            engine.register_query(q).expect("register");
        }
    }
    let per_update: Vec<Vec<MatchReport>> = reference_engines
        .iter_mut()
        .map(|engine| {
            workload
                .stream
                .iter()
                .map(|u| engine.apply_update(*u))
                .collect()
        })
        .collect();

    // Sharded wrapper, per-update entry point.
    let mut sharded = all_engines_sharded(shards);
    for engine in sharded.iter_mut() {
        for q in &workload.queries {
            engine.register_query(q).expect("register");
        }
    }
    for (engine_idx, engine) in sharded.iter_mut().enumerate() {
        for (i, u) in workload.stream.iter().enumerate() {
            let got = engine.apply_update(*u);
            assert_eq!(
                got,
                per_update[engine_idx][i],
                "{} × {shards} shards diverged at update #{i} ({u:?}) of {}",
                engine.name(),
                workload.name
            );
        }
    }

    // Pipelined wrapper over each engine: singleton flushes so every
    // completed batch corresponds to one update (retraction and insertion
    // runs alike take the staged path).
    // `GSM_THREADS>=2` (the CI threads job) re-runs the pipelined leg with
    // the answer phase on the dedicated answer thread.
    let mut config = PipelineConfig::new(1, Duration::from_secs(3600));
    if std::env::var("GSM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .is_some_and(|n| n >= 2)
    {
        config = config.threaded();
    }
    let mut pipes: Vec<_> = all_engines()
        .into_iter()
        .map(|e| PipelinedEngine::new(e, config))
        .collect();
    for pipe in pipes.iter_mut() {
        for q in &workload.queries {
            pipe.register_query(q).expect("register");
        }
    }
    let t0 = Instant::now();
    for (engine_idx, pipe) in pipes.iter_mut().enumerate() {
        let mut completed = Vec::new();
        for u in workload.stream.iter() {
            completed.extend(pipe.push_at(*u, t0));
        }
        completed.extend(pipe.drain());
        assert_eq!(
            completed.len(),
            workload.stream.len(),
            "{} pipeline dropped or merged singleton batches",
            pipe.name()
        );
        for (i, batch) in completed.iter().enumerate() {
            assert_eq!(
                batch.report,
                per_update[engine_idx][i],
                "{} pipelined diverged at update #{i} of {}",
                pipe.name(),
                workload.name
            );
        }
    }
}

#[test]
fn engines_agree_on_random_deletion_snb_workload() {
    let workload = Workload::generate(
        WorkloadConfig::new(Dataset::Snb, 700, 30)
            .with_selectivity(0.4)
            .with_delete_ratio(0.35),
    );
    assert_mixed_stream_equivalence(&workload);
}

#[test]
fn engines_agree_on_random_deletion_taxi_workload() {
    let workload = Workload::generate(
        WorkloadConfig::new(Dataset::Taxi, 700, 30)
            .with_query_size(3)
            .with_delete_ratio(0.35),
    );
    assert_mixed_stream_equivalence(&workload);
}

#[test]
fn engines_agree_on_random_deletion_biogrid_workload() {
    // The single-label generator explodes quickly; deletions keep the live
    // graph smaller, but the pre-deletion joins still dominate.
    let workload = Workload::generate(
        WorkloadConfig::new(Dataset::BioGrid, 220, 16)
            .with_query_size(3)
            .with_delete_ratio(0.3),
    );
    assert_mixed_stream_equivalence(&workload);
}

#[test]
fn engines_agree_on_sliding_window_workload() {
    // The count-based window keeps at most 80 edges live, so long streams
    // stay cheap while every insert eventually produces an expiry.
    let workload = Workload::generate(
        WorkloadConfig::new(Dataset::Snb, 900, 30)
            .with_selectivity(0.4)
            .with_sliding_window(80),
    );
    assert_mixed_stream_equivalence(&workload);
}

#[test]
fn engines_agree_on_high_overlap_deletion_workload() {
    // High overlap plus long queries maximises shared trie prefixes, so
    // retractions must unwind deeply shared materialized state.
    let workload = Workload::generate(
        WorkloadConfig::new(Dataset::Snb, 350, 16)
            .with_query_size(6)
            .with_overlap(0.8)
            .with_delete_ratio(0.3),
    );
    assert_mixed_stream_equivalence(&workload);
}

#[test]
fn batched_mixed_streams_agree_across_engines() {
    let workload = Workload::generate(
        WorkloadConfig::new(Dataset::Snb, 500, 20)
            .with_selectivity(0.4)
            .with_delete_ratio(0.35),
    );
    assert_mixed_batches_agree(&workload);
}

#[test]
fn batched_sliding_window_streams_agree_across_engines() {
    let workload = Workload::generate(
        WorkloadConfig::new(Dataset::Taxi, 600, 20)
            .with_query_size(3)
            .with_sliding_window(64),
    );
    assert_mixed_batches_agree(&workload);
}

#[test]
fn sharded_and_pipelined_wrappers_agree_on_deletion_workload() {
    let workload = Workload::generate(
        WorkloadConfig::new(Dataset::Snb, 350, 16)
            .with_selectivity(0.4)
            .with_delete_ratio(0.35),
    );
    let shards = match std::env::var("GSM_SHARDS") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("invalid GSM_SHARDS value {v:?}")),
        Err(_) => 3,
    };
    assert_wrappers_agree_on_mixed_stream(&workload, shards);
}

#[test]
fn sharded_and_pipelined_wrappers_agree_on_window_workload() {
    let workload = Workload::generate(
        WorkloadConfig::new(Dataset::Taxi, 400, 16)
            .with_query_size(3)
            .with_sliding_window(60),
    );
    assert_wrappers_agree_on_mixed_stream(&workload, 2);
}

/// Time-based sliding window, end to end: an insert-only workload streamed
/// through a windowed [`PipelinedEngine`] with a synthetic clock. The
/// batcher synthesizes expiry retractions as the clock advances; after the
/// final drain, the net per-query totals must equal a from-scratch replay
/// of the batcher's own live-edge snapshot.
#[test]
fn windowed_pipeline_matches_from_scratch_replay_of_live_edges() {
    let workload =
        Workload::generate(WorkloadConfig::new(Dataset::Snb, 400, 20).with_selectivity(0.4));

    // One tick per update; a 40-tick window over a 400-update stream forces
    // hundreds of expiries while keeping ~40 edges live at any instant.
    let window = Duration::from_millis(40);
    let tick = Duration::from_millis(1);
    for threaded in [false, true] {
        let mut config = PipelineConfig::new(8, Duration::from_millis(3)).windowed(window);
        if threaded {
            config = config.threaded();
        }
        let inner: Box<dyn ContinuousEngine> =
            Box::new(graph_stream_matching::tric::TricEngine::tric_plus());
        let mut pipe = PipelinedEngine::new(inner, config);
        for q in &workload.queries {
            pipe.register_query(q).expect("register");
        }

        let t0 = Instant::now();
        let mut net = HashMap::new();
        let mut applied = 0usize;
        for (i, u) in workload.stream.iter().enumerate() {
            for batch in pipe.push_at(*u, t0 + tick * (i as u32)) {
                applied += batch.updates;
                accumulate_net(&mut net, &batch.report);
            }
        }
        for batch in pipe.drain() {
            applied += batch.updates;
            accumulate_net(&mut net, &batch.report);
        }
        assert!(
            applied > workload.stream.len(),
            "expiry retractions must lengthen the applied stream \
             ({applied} applied, {} pushed)",
            workload.stream.len()
        );

        let live = pipe.live_snapshot();
        assert!(
            !live.is_empty() && live.len() < workload.stream.len(),
            "window neither empty nor the whole stream: {}",
            live.len()
        );
        let oracle = oracle_net(&workload.queries, &live);
        assert_eq!(
            net, oracle,
            "windowed pipeline (threaded: {threaded}) diverged from \
             from-scratch replay of its live edge set"
        );
    }
}

/// The same synthetic-clock windowed run with the sharded wrapper inside the
/// pipeline: expiry retractions traverse the routed retract path.
#[test]
fn windowed_pipeline_over_sharded_engine_matches_live_edge_replay() {
    let workload =
        Workload::generate(WorkloadConfig::new(Dataset::Taxi, 300, 16).with_query_size(3));
    let window = Duration::from_millis(30);
    let tick = Duration::from_millis(1);
    let inner: Box<dyn ContinuousEngine> = Box::new(ShardedEngine::new(2, || {
        Box::new(graph_stream_matching::tric::TricEngine::tric_plus())
    }));
    let mut pipe = PipelinedEngine::new(
        inner,
        PipelineConfig::new(8, Duration::from_millis(3)).windowed(window),
    );
    for q in &workload.queries {
        pipe.register_query(q).expect("register");
    }
    let t0 = Instant::now();
    let mut net = HashMap::new();
    for (i, u) in workload.stream.iter().enumerate() {
        for batch in pipe.push_at(*u, t0 + tick * (i as u32)) {
            accumulate_net(&mut net, &batch.report);
        }
    }
    for batch in pipe.drain() {
        accumulate_net(&mut net, &batch.report);
    }
    let live = pipe.live_snapshot();
    assert!(!live.is_empty());
    let oracle = oracle_net(&workload.queries, &live);
    assert_eq!(
        net, oracle,
        "windowed pipeline over 2 shards diverged from live-edge replay"
    );
}

/// The tentpole acceptance matrix: deletion-heavy and windowed mixed
/// streams pushed through the pipeline with flush size > 1 — so mixed
/// flushes genuinely split into separately-staged sign runs — across
/// sharded × inline/threaded × answer-worker configurations, plus an
/// eager-barrier A/B leg ([`PipelineConfig::with_eager_retractions`]).
/// Completed batches must tile the stream exactly and the net per-query
/// totals must equal the from-scratch oracle over the surviving edges.
#[test]
fn staged_retractions_match_oracle_across_worker_matrix() {
    let workloads = [
        Workload::generate(
            WorkloadConfig::new(Dataset::Snb, 320, 16)
                .with_selectivity(0.4)
                .with_delete_ratio(0.35),
        ),
        Workload::generate(
            WorkloadConfig::new(Dataset::Taxi, 320, 14)
                .with_query_size(3)
                .with_sliding_window(60),
        ),
    ];
    for workload in &workloads {
        let oracle = oracle_net(&workload.queries, workload.stream.as_slice());
        for shards in [1usize, 3] {
            for workers in [0usize, 1, 2, 4] {
                for eager in [false, true] {
                    let mut config = PipelineConfig::new(8, Duration::from_secs(3600));
                    if workers > 0 {
                        config = config.threaded().with_answer_workers(workers);
                    }
                    if eager {
                        config = config.with_eager_retractions();
                    }
                    let inner: Box<dyn ContinuousEngine> =
                        Box::new(ShardedEngine::new(shards, || {
                            Box::new(graph_stream_matching::tric::TricEngine::tric_plus())
                        }));
                    let mut pipe = PipelinedEngine::new(inner, config);
                    for q in &workload.queries {
                        pipe.register_query(q).expect("register");
                    }
                    let t0 = Instant::now();
                    let mut net = HashMap::new();
                    let mut applied = 0usize;
                    for u in workload.stream.iter() {
                        for batch in pipe.push_at(*u, t0) {
                            applied += batch.updates;
                            accumulate_net(&mut net, &batch.report);
                        }
                    }
                    for batch in pipe.drain() {
                        applied += batch.updates;
                        accumulate_net(&mut net, &batch.report);
                    }
                    assert_eq!(
                        applied,
                        workload.stream.len(),
                        "completed batches do not tile {} ({shards} shards, \
                         {workers} workers, eager {eager})",
                        workload.name
                    );
                    assert_eq!(
                        net, oracle,
                        "{} diverged from oracle ({shards} shards, {workers} \
                         workers, eager {eager})",
                        workload.name
                    );
                }
            }
        }
    }
}
