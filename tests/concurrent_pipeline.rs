//! The concurrency differential suite: the **threaded** pipelined executor
//! (stage on the caller thread, covering-path joins on a pool of answer
//! workers — `PipelineConfig::answer_thread` / `answer_workers`) must
//! produce byte-identical reports to sequential per-update execution, for
//! every engine, on every workload generator, at every answer-worker count,
//! including composed with the sharded wrapper and its persistent worker
//! pool.
//!
//! This is the proof obligation of the cross-thread refactor: chunked
//! relation snapshots, detached answer tasks, the worker pool and the
//! sequence-numbered reorder buffer may change *where*, *when* and *in what
//! order* the answer passes run, but never what they report. Deletion-heavy
//! and sliding-window workloads ride the same harness: retraction runs
//! stage like insert runs (commit at stage time, answer deferred over
//! generation-pinned snapshots), so mixed streams exercise the sign-run
//! splitter and the staged retraction tokens across every worker count. The
//! suite also pins the executor's FIFO completion order under a
//! deliberately slow answer stage (where multiple workers genuinely finish
//! out of order), and (behind `slow-tests`) soaks the worker pool with a
//! long randomized stream and injected thread yields.

use std::time::{Duration, Instant};

use graph_stream_matching::core::prelude::*;
use graph_stream_matching::core::{DetachedAnswer, EngineStats, StagedBatch};
use graph_stream_matching::datagen::{Dataset, Workload, WorkloadConfig};
use graph_stream_matching::{all_engines, all_engines_sharded};

/// The threaded-pipeline configurations the suite drives, as
/// `(max_batch, max_delay_ticks, tick_advance_ms)` with a synthetic clock —
/// one size-driven sweep (the deadline never fires) and one deadline-driven
/// sweep (the buffer never fills; batches are cut by the clock). Threading
/// changes where answers run, not how batches are segmented, so both
/// segmentation regimes must hold.
const THREADED_CONFIGS: [(usize, u64, u64); 2] = [(7, 1_000, 0), (1_000, 5, 1)];

/// Differential threaded-pipeline-vs-sequential harness: replays `workload`
/// sequentially once per engine (recording every per-update report), then
/// streams it through a **threaded** [`PipelinedEngine`] on fresh engines of
/// the same kinds. Every completed batch must equal the merge of the
/// per-update reports of exactly the updates it covered, the batches must
/// tile the stream in arrival order, and the post-drain stats must match
/// sequential execution.
fn assert_threaded_equals_sequential_for(
    workload: &Workload,
    engines: impl Fn() -> Vec<Box<dyn ContinuousEngine>>,
) {
    let mut seq_engines = engines();
    for engine in seq_engines.iter_mut() {
        for q in &workload.queries {
            engine.register_query(q).expect("register");
        }
    }
    let per_update: Vec<Vec<MatchReport>> = seq_engines
        .iter_mut()
        .map(|engine| {
            workload
                .stream
                .iter()
                .map(|u| engine.apply_update(*u))
                .collect()
        })
        .collect();

    for (max_batch, delay_ticks, tick_ms) in THREADED_CONFIGS {
        for workers in answer_worker_counts() {
            let config = PipelineConfig::new(max_batch, Duration::from_millis(delay_ticks))
                .threaded()
                .with_answer_workers(workers);
            let mut pipe_engines: Vec<_> = engines()
                .into_iter()
                .map(|e| PipelinedEngine::new(e, config))
                .collect();
            for pipe in pipe_engines.iter_mut() {
                for q in &workload.queries {
                    pipe.register_query(q).expect("register");
                }
            }
            let t0 = Instant::now();
            for (engine_idx, pipe) in pipe_engines.iter_mut().enumerate() {
                assert!(pipe.is_threaded());
                let mut completed: Vec<CompletedBatch> = Vec::new();
                for (i, u) in workload.stream.iter().enumerate() {
                    let now = t0 + Duration::from_millis(i as u64 * tick_ms);
                    completed.extend(pipe.push_at(*u, now));
                }
                completed.extend(pipe.drain());

                let mut offset = 0usize;
                for (batch_idx, batch) in completed.iter().enumerate() {
                    assert!(batch.updates > 0, "empty completed batch");
                    // Full-report merge: a completed batch covers a
                    // sign-pure run, so merging the per-update reports sums
                    // its new OR retracted embeddings per query.
                    let expected = per_update[engine_idx][offset..offset + batch.updates]
                        .iter()
                        .fold(MatchReport::empty(), |acc, r| acc.merge(r));
                    assert_eq!(
                        batch.report,
                        expected,
                        "{} threaded batch #{batch_idx} (updates {offset}..{}) under \
                     (max_batch {max_batch}, delay {delay_ticks} ticks, \
                     {workers} answer workers) of {} diverged from sequential",
                        pipe.name(),
                        offset + batch.updates,
                        workload.name
                    );
                    offset += batch.updates;
                }
                assert_eq!(
                    offset,
                    workload.stream.len(),
                    "{} threaded pipeline dropped or duplicated updates",
                    pipe.name()
                );

                let seq_stats = seq_engines[engine_idx].stats();
                let stats = pipe.stats();
                assert_eq!(stats.updates_processed, seq_stats.updates_processed);
                assert_eq!(stats.embeddings, seq_stats.embeddings, "{}", pipe.name());
                assert_eq!(stats.retracted, seq_stats.retracted, "{}", pipe.name());
            }
        }
    }
}

fn assert_threaded_equals_sequential(workload: &Workload) {
    assert_threaded_equals_sequential_for(workload, all_engines);
}

/// Answer-worker counts for the threaded matrix. `GSM_ANSWER_THREADS=<n>`
/// (the CI jobs) pins one count; the default sweeps one, two and four
/// workers so out-of-order completion and the reorder buffer are exercised
/// alongside the single-worker FIFO baseline.
fn answer_worker_counts() -> Vec<usize> {
    match std::env::var("GSM_ANSWER_THREADS") {
        Ok(v) => vec![v
            .parse()
            .unwrap_or_else(|_| panic!("invalid GSM_ANSWER_THREADS value {v:?}"))],
        Err(_) => vec![1, 2, 4],
    }
}

/// Shard counts for the threaded × sharded composition. `GSM_SHARDS=<n>`
/// (the CI jobs) pins one count; the default exercises the genuinely
/// partitioned two-shard deployment the CI job uses.
fn shard_counts() -> Vec<usize> {
    match std::env::var("GSM_SHARDS") {
        Ok(v) => vec![v
            .parse()
            .unwrap_or_else(|_| panic!("invalid GSM_SHARDS value {v:?}"))],
        Err(_) => vec![2],
    }
}

#[test]
fn threaded_pipeline_equals_sequential_on_snb_workload() {
    let workload =
        Workload::generate(WorkloadConfig::new(Dataset::Snb, 350, 18).with_selectivity(0.4));
    assert_threaded_equals_sequential(&workload);
}

#[test]
fn threaded_pipeline_equals_sequential_on_taxi_workload() {
    let workload =
        Workload::generate(WorkloadConfig::new(Dataset::Taxi, 350, 18).with_query_size(3));
    assert_threaded_equals_sequential(&workload);
}

#[test]
fn threaded_pipeline_equals_sequential_on_biogrid_workload() {
    // The explosive single-label generator stays small: the harness replays
    // the stream once sequentially plus once per threaded config.
    let workload =
        Workload::generate(WorkloadConfig::new(Dataset::BioGrid, 180, 14).with_query_size(3));
    assert_threaded_equals_sequential(&workload);
}

#[test]
fn threaded_pipeline_equals_sequential_with_high_overlap_and_long_queries() {
    // High overlap plus long queries maximises multi-path queries, whose
    // deferred covering-path joins are exactly what crosses threads here.
    let workload = Workload::generate(
        WorkloadConfig::new(Dataset::Snb, 220, 12)
            .with_query_size(7)
            .with_overlap(0.8),
    );
    assert_threaded_equals_sequential(&workload);
}

#[test]
fn threaded_pipeline_equals_sequential_on_deletion_heavy_workload() {
    // Deletion-heavy streams: every flush straddling a sign boundary splits
    // into separately-staged runs, and the retraction runs defer their
    // disappearing-embedding joins over generation-pinned snapshots.
    let workload = Workload::generate(
        WorkloadConfig::new(Dataset::Snb, 350, 16)
            .with_selectivity(0.4)
            .with_delete_ratio(0.35),
    );
    assert_threaded_equals_sequential(&workload);
}

#[test]
fn threaded_pipeline_equals_sequential_on_sliding_window_workload() {
    // Count-based window: nearly every late flush carries an expiry
    // retraction — exactly the stream shape that degenerated to sequential
    // under the eager retraction barrier.
    let workload = Workload::generate(
        WorkloadConfig::new(Dataset::Taxi, 400, 16)
            .with_query_size(3)
            .with_sliding_window(60),
    );
    assert_threaded_equals_sequential(&workload);
}

#[test]
fn threaded_pipeline_over_sharded_engine_equals_sequential_on_deletions() {
    // Staged sharded retractions composed with the threaded answer stage:
    // routed inner tokens and the frozen spanning join cross threads.
    let workload = Workload::generate(
        WorkloadConfig::new(Dataset::Snb, 280, 15)
            .with_selectivity(0.4)
            .with_delete_ratio(0.3),
    );
    for shards in shard_counts() {
        assert_threaded_equals_sequential_for(&workload, || all_engines_sharded(shards));
    }
}

#[test]
fn threaded_pipeline_over_sharded_engine_equals_sequential() {
    // The full composition: DeadlineBatcher → stage on the caller thread →
    // routed absorb on the persistent per-shard worker pool → detached
    // merge + spanning join on the answer thread. Three thread domains, one
    // report stream.
    let workload =
        Workload::generate(WorkloadConfig::new(Dataset::Snb, 280, 15).with_selectivity(0.4));
    for shards in shard_counts() {
        assert_threaded_equals_sequential_for(&workload, || all_engines_sharded(shards));
    }
}

/// A wrapper that makes the *first* staged batch's detached answer
/// deliberately slow (and stamps every batch with its stage sequence), so
/// any executor bug that completed batches out of arrival order would
/// surface immediately.
struct SlowFirstAnswer<E> {
    inner: E,
    staged: u64,
}

impl<E: ContinuousEngine> SlowFirstAnswer<E> {
    fn new(inner: E) -> Self {
        SlowFirstAnswer { inner, staged: 0 }
    }
}

impl<E: ContinuousEngine> ContinuousEngine for SlowFirstAnswer<E> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn register_query(
        &mut self,
        query: &QueryPattern,
    ) -> graph_stream_matching::core::Result<QueryId> {
        self.inner.register_query(query)
    }
    fn apply_update(&mut self, update: Update) -> MatchReport {
        self.inner.apply_update(update)
    }
    fn apply_batch(&mut self, updates: &[Update]) -> MatchReport {
        self.inner.apply_batch(updates)
    }
    fn stage_batch(&mut self, updates: &[Update]) -> StagedBatch {
        self.staged += 1;
        self.inner.stage_batch(updates)
    }
    fn answer_staged(&mut self, staged: StagedBatch) -> MatchReport {
        self.inner.answer_staged(staged)
    }
    fn detach_staged(&mut self, staged: StagedBatch) -> DetachedAnswer {
        let task = self.inner.detach_staged(staged);
        let delay = if self.staged == 1 {
            Duration::from_millis(40)
        } else {
            Duration::from_millis(1)
        };
        DetachedAnswer::task(move || {
            std::thread::sleep(delay);
            task.run()
        })
    }
    fn absorb_answered(&mut self, report: &MatchReport) {
        self.inner.absorb_answered(report)
    }
    fn num_queries(&self) -> usize {
        self.inner.num_queries()
    }
    fn heap_bytes(&self) -> usize {
        self.inner.heap_bytes()
    }
    fn stats(&self) -> EngineStats {
        self.inner.stats()
    }
}

#[test]
fn completed_batches_stay_fifo_under_a_slow_answer_stage() {
    // Batch #0's answer sleeps 40 ms while batches #1.. are staged (and
    // their answers queued) behind it; a deep window keeps them all in
    // flight. With one worker the queue drains FIFO by construction; with
    // two or four workers the later batches genuinely *finish* 40 ms before
    // batch #0 and park in the reorder buffer. Either way completion must
    // be arrival-ordered and the reports must tile the stream exactly like
    // an untimed run.
    let mut symbols = SymbolTable::new();
    let q = QueryPattern::parse("?a -e-> ?b; ?b -e-> ?c", &mut symbols).unwrap();
    let e = symbols.intern("e");
    let stream: Vec<Update> = (0..24u32)
        .map(|i| {
            Update::new(
                e,
                symbols.intern(&format!("v{}", i % 5)),
                symbols.intern(&format!("v{}", (i + 1) % 6)),
            )
        })
        .collect();

    // Reference: per-update reports from a plain engine.
    let mut reference = graph_stream_matching::tric::TricEngine::tric_plus();
    reference.register_query(&q).unwrap();
    let per_update: Vec<MatchReport> = stream.iter().map(|u| reference.apply_update(*u)).collect();

    for workers in [1usize, 2, 4] {
        let config = PipelineConfig::new(3, Duration::from_secs(60))
            .with_depth(8)
            .threaded()
            .with_answer_workers(workers);
        let mut pipe = PipelinedEngine::new(
            SlowFirstAnswer::new(graph_stream_matching::tric::TricEngine::tric_plus()),
            config,
        );
        pipe.register_query(&q).unwrap();
        let now = Instant::now();
        let mut completed = Vec::new();
        for &u in &stream {
            completed.extend(pipe.push_at(u, now));
        }
        completed.extend(pipe.drain());

        // 24 updates in flush-3 batches → 8 batches, in arrival order:
        // batch k covers updates 3k..3k+3 with exactly their merged report.
        assert_eq!(completed.len(), 8);
        let mut offset = 0;
        for (k, batch) in completed.iter().enumerate() {
            assert_eq!(
                batch.updates, 3,
                "batch #{k} has the wrong tile ({workers} workers)"
            );
            let expected = MatchReport::from_counts(
                per_update[offset..offset + 3]
                    .iter()
                    .flat_map(|r| r.matches.iter().map(|m| (m.query, m.new_embeddings)))
                    .collect(),
            );
            assert_eq!(
                batch.report, expected,
                "batch #{k} out of order or wrong ({workers} workers)"
            );
            offset += 3;
        }
        assert_eq!(pipe.stats().embeddings, reference.stats().embeddings);
    }
}

/// A wrapper injecting `thread::yield_now` at seeded-random points of the
/// stage phase and of every detached answer task, shaking out scheduling
/// assumptions between the batcher thread, the shard workers and the answer
/// thread.
struct YieldInjector<E> {
    inner: E,
    state: u64,
}

impl<E> YieldInjector<E> {
    fn new(inner: E, seed: u64) -> Self {
        YieldInjector {
            inner,
            state: seed.max(1),
        }
    }
    fn chance(&mut self, one_in: u64) -> bool {
        // xorshift64* — deterministic per seed, no rand dependency needed.
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        self.state
            .wrapping_mul(0x2545F4914F6CDD1D)
            .is_multiple_of(one_in)
    }
}

impl<E: ContinuousEngine> ContinuousEngine for YieldInjector<E> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn register_query(
        &mut self,
        query: &QueryPattern,
    ) -> graph_stream_matching::core::Result<QueryId> {
        self.inner.register_query(query)
    }
    fn apply_update(&mut self, update: Update) -> MatchReport {
        self.inner.apply_update(update)
    }
    fn apply_batch(&mut self, updates: &[Update]) -> MatchReport {
        self.inner.apply_batch(updates)
    }
    fn stage_batch(&mut self, updates: &[Update]) -> StagedBatch {
        if self.chance(3) {
            std::thread::yield_now();
        }
        self.inner.stage_batch(updates)
    }
    fn answer_staged(&mut self, staged: StagedBatch) -> MatchReport {
        self.inner.answer_staged(staged)
    }
    fn detach_staged(&mut self, staged: StagedBatch) -> DetachedAnswer {
        let task = self.inner.detach_staged(staged);
        let yield_before = self.chance(2);
        let yield_after = self.chance(2);
        DetachedAnswer::task(move || {
            if yield_before {
                std::thread::yield_now();
            }
            let report = task.run();
            if yield_after {
                std::thread::yield_now();
            }
            report
        })
    }
    fn absorb_answered(&mut self, report: &MatchReport) {
        self.inner.absorb_answered(report)
    }
    fn num_queries(&self) -> usize {
        self.inner.num_queries()
    }
    fn heap_bytes(&self) -> usize {
        self.inner.heap_bytes()
    }
    fn stats(&self) -> EngineStats {
        self.inner.stats()
    }
}

/// Seeded stress/soak for the persistent worker pool and the threaded
/// answer stage: long random streams, random flush sizes and deadlines,
/// random mid-stream polls and randomized thread-yield injection, composed
/// over the sharded engine (GSM_SHARDS, default 2). Iteration count scales
/// with `GSM_SOAK_ITERS`; gated behind `slow-tests` so the 1-core tier-1
/// debug suite keeps its budget.
#[test]
#[cfg_attr(
    not(feature = "slow-tests"),
    ignore = "worker-pool soak; run with --features slow-tests (GSM_SOAK_ITERS scales it)"
)]
fn worker_pool_soak_randomized_streams_stay_equivalent() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let iterations: u64 = std::env::var("GSM_SOAK_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let shards = shard_counts()[0];

    for iteration in 0..iterations {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE + iteration);
        let updates = rng.gen_range(400..900);
        let queries = rng.gen_range(12..28);
        let workload = Workload::generate(
            WorkloadConfig::new(Dataset::Snb, updates, queries)
                .with_selectivity(0.3 + 0.4 * rng.gen::<f64>()),
        );

        // Sequential reference.
        let mut reference = graph_stream_matching::tric::TricEngine::tric_plus();
        for q in &workload.queries {
            reference.register_query(q).unwrap();
        }
        let per_update: Vec<MatchReport> = workload
            .stream
            .iter()
            .map(|u| reference.apply_update(*u))
            .collect();

        // Threaded pipeline over yield-injected sharded TRIC+.
        let flush = rng.gen_range(1..64);
        let delay_ticks = rng.gen_range(1..8u64);
        let tick_ms = rng.gen_range(0..3u64);
        let depth = rng.gen_range(0..4);
        let workers = rng.gen_range(1..5);
        let config = PipelineConfig::new(flush, Duration::from_millis(delay_ticks))
            .with_depth(depth)
            .threaded()
            .with_answer_workers(workers);
        let engine = YieldInjector::new(
            graph_stream_matching::tric::TricEngine::tric_plus_sharded(shards),
            0xBAD5EED + iteration,
        );
        let mut pipe = PipelinedEngine::new(engine, config);
        for q in &workload.queries {
            pipe.register_query(q).unwrap();
        }

        let t0 = Instant::now();
        let mut completed = Vec::new();
        for (i, u) in workload.stream.iter().enumerate() {
            let now = t0 + Duration::from_millis(i as u64 * tick_ms);
            completed.extend(pipe.push_at(*u, now));
            // Random flush-deadline polls between pushes.
            if rng.gen_bool(0.05) {
                completed.extend(pipe.poll_at(now + Duration::from_millis(rng.gen_range(0..10))));
            }
        }
        completed.extend(pipe.drain());

        let mut offset = 0usize;
        for batch in &completed {
            let expected = MatchReport::from_counts(
                per_update[offset..offset + batch.updates]
                    .iter()
                    .flat_map(|r| r.matches.iter().map(|m| (m.query, m.new_embeddings)))
                    .collect(),
            );
            assert_eq!(
                batch.report, expected,
                "soak iteration {iteration} (flush {flush}, delay {delay_ticks}, depth {depth}, \
                 {shards} shards, {workers} answer workers) diverged at updates {offset}.."
            );
            offset += batch.updates;
        }
        assert_eq!(offset, workload.stream.len(), "soak dropped updates");
        assert_eq!(
            pipe.stats().embeddings,
            reference.stats().embeddings,
            "soak iteration {iteration} embeddings diverged"
        );
    }
}
