//! Behavioural tests of the paper's central claims that go beyond bit-exact
//! engine agreement: clustering actually shares work, caching actually helps,
//! and the relative cost ordering of the engines matches the evaluation.

use std::time::Instant;

use graph_stream_matching::baselines::BaselineEngine;
use graph_stream_matching::core::prelude::*;
use graph_stream_matching::core::ContinuousEngine;
use graph_stream_matching::datagen::{Dataset, Workload, WorkloadConfig};
use graph_stream_matching::tric::TricEngine;

fn run(engine: &mut dyn ContinuousEngine, workload: &Workload) -> (std::time::Duration, u64) {
    for q in &workload.queries {
        engine.register_query(q).unwrap();
    }
    let start = Instant::now();
    let mut notifications = 0;
    for u in workload.stream.iter() {
        notifications += engine.apply_update(*u).len() as u64;
    }
    (start.elapsed(), notifications)
}

#[test]
fn trie_clustering_shares_nodes_across_a_realistic_query_set() {
    let workload =
        Workload::generate(WorkloadConfig::new(Dataset::Snb, 2_000, 150).with_overlap(0.5));
    let mut engine = TricEngine::tric();
    for q in &workload.queries {
        engine.register_query(q).unwrap();
    }
    // Without clustering, every covering-path edge would need its own node.
    let total_path_edges: usize = workload
        .queries
        .iter()
        .flat_map(covering_paths)
        .map(|p| p.len())
        .sum();
    assert!(
        engine.num_trie_nodes() < total_path_edges,
        "no sharing: {} trie nodes for {} path edges",
        engine.num_trie_nodes(),
        total_path_edges
    );
    // And the forest has fewer tries than covering paths (shared roots).
    let total_paths: usize = workload
        .queries
        .iter()
        .map(|q| covering_paths(q).len())
        .sum();
    assert!(
        engine.num_tries() < total_paths,
        "no root sharing: {} tries for {} covering paths",
        engine.num_tries(),
        total_paths
    );
}

#[test]
fn tric_plus_actually_uses_its_cache_and_stays_correct() {
    let workload = Workload::generate(WorkloadConfig::new(Dataset::Snb, 1_200, 60));
    let mut tric = TricEngine::tric();
    let mut plus = TricEngine::tric_plus();
    let (_, n1) = run(&mut tric, &workload);
    let (_, n2) = run(&mut plus, &workload);
    assert_eq!(n1, n2);
    assert!(
        plus.cache_hits() > 100,
        "TRIC+ barely used its cache: {}",
        plus.cache_hits()
    );
    assert_eq!(tric.cache_hits(), 0);
}

#[test]
fn relative_engine_cost_ordering_matches_the_paper() {
    // The paper's headline result: TRIC(+) beats the inverted-index baselines
    // by a wide margin on SNB-like workloads. Wall-clock comparisons in CI
    // can be noisy, so require only a conservative factor.
    let workload = Workload::generate(WorkloadConfig::new(Dataset::Snb, 2_500, 120));
    let mut tric_plus = TricEngine::tric_plus();
    let mut inv = BaselineEngine::inv();
    let (t_tric, n_tric) = run(&mut tric_plus, &workload);
    let (t_inv, n_inv) = run(&mut inv, &workload);
    assert_eq!(n_tric, n_inv, "engines disagree on notifications");
    assert!(
        t_tric < t_inv,
        "TRIC+ ({t_tric:?}) should be faster than INV ({t_inv:?}) on this workload"
    );
}

#[test]
fn memory_footprints_are_reported_and_plausible() {
    let workload = Workload::generate(WorkloadConfig::new(Dataset::Snb, 1_000, 50));
    let mut tric = TricEngine::tric();
    let mut plus = TricEngine::tric_plus();
    run(&mut tric, &workload);
    run(&mut plus, &workload);
    let base = tric.heap_bytes();
    let cached = plus.heap_bytes();
    assert!(base > 0);
    // The paper's Fig. 13(c): the caching variants pay a modest memory
    // premium over their base algorithms.
    assert!(
        cached >= base,
        "TRIC+ ({cached}) should not use less memory than TRIC ({base})"
    );
}

#[test]
fn engine_stats_match_reported_notifications() {
    let workload = Workload::generate(WorkloadConfig::new(Dataset::Taxi, 800, 40));
    let mut engine = TricEngine::tric_plus();
    for q in &workload.queries {
        engine.register_query(q).unwrap();
    }
    let mut notifications = 0u64;
    let mut embeddings = 0u64;
    for u in workload.stream.iter() {
        let r = engine.apply_update(*u);
        notifications += r.len() as u64;
        embeddings += r.total_embeddings();
    }
    let stats = engine.stats();
    assert_eq!(stats.updates_processed, workload.stream.len() as u64);
    assert_eq!(stats.notifications, notifications);
    assert_eq!(stats.embeddings, embeddings);
}
