//! The INV / INV+ / INC / INC+ answering engines (Sections 5.1 and 5.2).

use gsm_core::engine::{
    ContinuousEngine, DetachedAnswer, EngineStats, MatchReport, QueryId, StagedBatch,
};
use gsm_core::error::{Error, Result};
use gsm_core::interner::Sym;
use gsm_core::memory::HeapSize;
use gsm_core::model::generic::GenericEdge;
use gsm_core::model::update::Update;
use gsm_core::query::paths::covering_paths;
use gsm_core::query::pattern::QueryPattern;
use std::sync::Arc;

use gsm_core::relation::cache::{BuildCache, FrozenJoinCache, JoinCache};
use gsm_core::relation::eval::{join_paths, PathBinding};
use gsm_core::relation::fasthash::FxHashMap;
use gsm_core::relation::Relation;
use gsm_core::shard::ShardedEngine;
use gsm_core::views::{self, EdgeViewStore, FrozenViews, ViewSource};

use crate::index::{InvertedIndexes, PathRecord, QueryRecord};

/// Which baseline algorithm the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineMode {
    /// INV: joins the full materialized views of every covering path of every
    /// affected query, then derives the new embeddings.
    Inv,
    /// INC: seeds the affected covering path(s) with the incoming update only
    /// (fewer tuples examined), recomputing only the unaffected paths fully.
    Inc,
}

/// The shared INV/INC engine; the mode and the caching flag select between
/// the four baselines of the paper.
#[derive(Debug)]
pub struct BaselineEngine {
    mode: BaselineMode,
    caching: bool,
    views: EdgeViewStore,
    indexes: InvertedIndexes,
    cache: JoinCache,
    /// Row assembly scratch shared by the per-update path extensions.
    row_buf: Vec<Sym>,
    stats: EngineStats,
}

impl BaselineEngine {
    /// Creates an engine with an explicit mode and caching flag.
    pub fn with_mode(mode: BaselineMode, caching: bool) -> Self {
        BaselineEngine {
            mode,
            caching,
            views: EdgeViewStore::new(),
            indexes: InvertedIndexes::new(),
            cache: JoinCache::new(),
            row_buf: Vec::new(),
            stats: EngineStats::default(),
        }
    }

    /// Algorithm INV.
    pub fn inv() -> Self {
        Self::with_mode(BaselineMode::Inv, false)
    }

    /// Algorithm INV+ (join-structure caching).
    pub fn inv_plus() -> Self {
        Self::with_mode(BaselineMode::Inv, true)
    }

    /// Algorithm INC.
    pub fn inc() -> Self {
        Self::with_mode(BaselineMode::Inc, false)
    }

    /// Algorithm INC+ (join-structure caching).
    pub fn inc_plus() -> Self {
        Self::with_mode(BaselineMode::Inc, true)
    }

    /// Wraps the selected baseline in a [`ShardedEngine`] with `num_shards`
    /// worker shards, partitioned by root generic edge exactly like the
    /// sharded TRIC variants — the INV/INC parity point for the shard-count
    /// differential tests. With `num_shards <= 1` this is an unsharded
    /// engine behind a zero-overhead delegation.
    pub fn sharded(
        mode: BaselineMode,
        caching: bool,
        num_shards: usize,
    ) -> ShardedEngine<BaselineEngine> {
        ShardedEngine::new(num_shards, move || Self::with_mode(mode, caching))
    }

    /// The mode of this engine.
    pub fn mode(&self) -> BaselineMode {
        self.mode
    }

    /// Join-cache hit counter (always zero for the non-`+` variants).
    pub fn cache_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Resolves the queries affected by a routed batch via edgeInd and takes
    /// shared handles to their records — the per-batch working set both the
    /// eager and the staged answer passes iterate. Records are immutable
    /// after registration, so the handles are `Arc` bumps, not deep copies.
    fn affected_records(
        &self,
        edge_deltas: &FxHashMap<GenericEdge, Relation>,
    ) -> Vec<(QueryId, Arc<QueryRecord>)> {
        let affected_edges: Vec<GenericEdge> = edge_deltas.keys().copied().collect();
        self.indexes
            .affected_queries(&affected_edges)
            .into_iter()
            .map(|qid| (qid, self.indexes.record_shared(qid)))
            .collect()
    }

    /// Brings the engine's join cache up to date for every build the answer
    /// pass over `affected` will probe — `[0]` builds of each path's
    /// non-first edges and `[1]` builds of each path's non-last edges — and
    /// publishes the result as an immutable [`FrozenJoinCache`]. Runs at
    /// stage time, after routing, so every published build indexes exactly
    /// the post-batch watermark the frozen views are cut at.
    fn publish_builds(&mut self, affected: &[(QueryId, Arc<QueryRecord>)]) -> FrozenJoinCache {
        for (_, record) in affected {
            for path in &record.paths {
                let n = path.edges.len();
                if n < 2 {
                    continue;
                }
                for (i, edge) in path.edges.iter().enumerate() {
                    if let Some(view) = self.views.get(edge) {
                        if i > 0 {
                            self.cache.get_or_build(view, &[0]);
                        }
                        if i < n - 1 {
                            self.cache.get_or_build(view, &[1]);
                        }
                    }
                }
            }
        }
        self.cache.freeze()
    }

    /// Freezes every edge view the answer pass over `affected` will read —
    /// the union of the affected queries' edges — at the current watermarks.
    fn freeze_needed(&self, affected: &[(QueryId, Arc<QueryRecord>)]) -> FrozenViews {
        let mut needed: Vec<GenericEdge> = Vec::new();
        for (_, record) in affected {
            for &edge in &record.edges {
                if !needed.contains(&edge) {
                    needed.push(edge);
                }
            }
        }
        self.views.freeze_edges(&needed)
    }

    /// Stages an all-retraction run: collect the removed rows read-only
    /// ([`EdgeViewStore::remove_deltas`]), freeze the **pre-removal** views
    /// of the affected queries (generation-pinned snapshots that survive the
    /// compaction below), commit the removal at stage time, and hand the
    /// expensive disappearing-embedding join to the deferred token. The
    /// commit cannot wait for answer time: a later staged re-insert of a
    /// just-retracted edge must route against the post-removal views or it
    /// would be dedup-dropped (see the staging contract on
    /// [`ContinuousEngine::stage_batch`]).
    fn stage_retractions(&mut self, updates: &[Update]) -> StagedBatch {
        self.stats.updates_processed += updates.len() as u64;

        let removed = self.views.remove_deltas(updates);
        if removed.is_empty() {
            return StagedBatch::immediate(MatchReport::empty());
        }

        let affected = self.affected_records(&removed);
        let cache = if self.caching {
            self.publish_builds(&affected)
        } else {
            FrozenJoinCache::default()
        };
        let frozen = self.freeze_needed(&affected);
        self.views.retract_deltas(&removed);

        StagedBatch::deferred(StagedBaseline {
            edge_deltas: removed,
            affected,
            frozen,
            retract: true,
            cache,
        })
    }
}

/// The deferred-answer token of the INV/INC baselines: the routed batch's
/// per-edge delta relations, the affected queries' records, and the
/// affected views **frozen at the post-batch watermarks**
/// ([`EdgeViewStore::freeze_at`]). The token owns everything the join-and-
/// explore pass reads, so the deferred answer is identical whether it runs
/// immediately, after later batches were staged, or on another thread.
struct StagedBaseline {
    edge_deltas: FxHashMap<GenericEdge, Relation>,
    affected: Vec<(QueryId, Arc<QueryRecord>)>,
    frozen: FrozenViews,
    /// True for an all-retraction run: `edge_deltas` holds the removed
    /// rows, `frozen` the **pre-removal** snapshots (generation-pinned, so
    /// the commit that already ran at stage time cannot invalidate them),
    /// and the answer counts disappearing embeddings.
    retract: bool,
    /// The `+` variants' stage-time build publication (empty for the
    /// cacheless variants): the answer pass probes these instead of
    /// rebuilding hash tables per batch. Because the frozen views share
    /// their source relations' identities and the builds index exactly the
    /// post-batch watermarks, every published build is valid for the
    /// frozen snapshots.
    cache: FrozenJoinCache,
}

/// The baselines' answer pass (steps 2–3 plus the final join of
/// `apply_batch_core`), shared verbatim by the eager path (live views plus
/// the engine's live join cache) and the staged/detached paths (frozen
/// views plus the stage-time frozen build publication — snapshot relations
/// share their sources' identities, so published builds are recognised).
/// Returns the per-query embedding counts.
fn answer_affected(
    mode: BaselineMode,
    views: &impl ViewSource,
    mut cache: BuildCache<'_>,
    row_buf: &mut Vec<Sym>,
    edge_deltas: &FxHashMap<GenericEdge, Relation>,
    affected: &[(QueryId, Arc<QueryRecord>)],
) -> Vec<(QueryId, u64)> {
    let mut counts: Vec<(QueryId, u64)> = Vec::new();

    'queries: for (qid, record) in affected {
        for edge in &record.edges {
            match views.view(edge) {
                Some(view) if !view.is_empty() => {}
                _ => continue 'queries,
            }
        }

        // Step 2/3: path examination and materialization.
        //
        // INV computes the full relation of *every* covering path (the
        // "join and explore" cost the paper attributes to it); INC only
        // computes full relations for the paths the update does not
        // touch. Both then derive the new embeddings by joining the
        // update-seeded delta of each affected path with the other
        // paths' relations.
        let path_affected: Vec<bool> = record
            .paths
            .iter()
            .map(|p| p.edges.iter().any(|e| edge_deltas.contains_key(e)))
            .collect();

        let mut full_relations: Vec<Option<Relation>> = vec![None; record.paths.len()];
        let mut all_present = true;
        for (i, path) in record.paths.iter().enumerate() {
            let need_full = match mode {
                BaselineMode::Inv => true,
                BaselineMode::Inc => !path_affected[i],
            };
            if need_full {
                let rel = views::full_path_relation(views, &path.edges, cache.reborrow(), row_buf);
                if rel.is_empty() {
                    all_present = false;
                    break;
                }
                full_relations[i] = Some(rel);
            }
        }
        if !all_present {
            continue;
        }

        let mut deltas: Vec<Option<Relation>> = vec![None; record.paths.len()];
        for (i, path) in record.paths.iter().enumerate() {
            if path_affected[i] {
                let d = views::delta_path_relation(
                    views,
                    &path.edges,
                    edge_deltas,
                    cache.reborrow(),
                    row_buf,
                );
                if !d.is_empty() {
                    deltas[i] = Some(d);
                }
            }
        }
        if deltas.iter().all(Option::is_none) {
            continue;
        }

        // INC may not yet have computed the full relation of an affected
        // path that is needed as "the other path" during the final join;
        // compute those now (only when at least two paths are involved).
        if record.paths.len() > 1 {
            for (j, path) in record.paths.iter().enumerate() {
                let needed = deltas
                    .iter()
                    .enumerate()
                    .any(|(i, d)| i != j && d.is_some());
                if needed && full_relations[j].is_none() {
                    let rel =
                        views::full_path_relation(views, &path.edges, cache.reborrow(), row_buf);
                    if !rel.is_empty() {
                        full_relations[j] = Some(rel);
                    }
                }
            }
        }

        // Final join per affected path, union of distinct embeddings.
        let mut embeddings: Option<Relation> = None;
        for (i, delta) in deltas.iter().enumerate() {
            let Some(delta) = delta else { continue };
            let mut bindings = Vec::with_capacity(record.paths.len());
            bindings.push(PathBinding::new(delta, &record.paths[i].vertices));
            let mut usable = true;
            for (j, other) in record.paths.iter().enumerate() {
                if j == i {
                    continue;
                }
                match &full_relations[j] {
                    Some(rel) => bindings.push(PathBinding::new(rel, &other.vertices)),
                    None => {
                        usable = false;
                        break;
                    }
                }
            }
            if !usable {
                continue;
            }
            if let Some(result) = join_paths(&bindings) {
                let canon = result.canonicalize();
                match &mut embeddings {
                    None => embeddings = Some(canon.rel),
                    Some(acc) => {
                        acc.extend_from(&canon.rel);
                    }
                }
            }
        }
        if let Some(emb) = embeddings {
            if !emb.is_empty() {
                counts.push((*qid, emb.len() as u64));
            }
        }
    }

    counts
}

impl ContinuousEngine for BaselineEngine {
    fn name(&self) -> &'static str {
        match (self.mode, self.caching) {
            (BaselineMode::Inv, false) => "INV",
            (BaselineMode::Inv, true) => "INV+",
            (BaselineMode::Inc, false) => "INC",
            (BaselineMode::Inc, true) => "INC+",
        }
    }

    fn register_query(&mut self, query: &QueryPattern) -> Result<QueryId> {
        let qid = QueryId(self.indexes.num_queries() as u32);
        let paths = covering_paths(query);
        let mut records = Vec::with_capacity(paths.len());
        let mut edges: Vec<GenericEdge> = Vec::new();
        for path in &paths {
            let generic: Vec<GenericEdge> = path
                .edges
                .iter()
                .map(|&e| GenericEdge::from_pattern(&query.edges()[e]))
                .collect();
            for &ge in &generic {
                self.views.register(ge);
                if !edges.contains(&ge) {
                    edges.push(ge);
                }
            }
            records.push(PathRecord {
                edges: generic,
                vertices: path.vertex_sequence(query),
            });
        }
        self.indexes.insert(
            qid,
            QueryRecord {
                paths: records,
                edges,
            },
        );
        Ok(qid)
    }

    /// Strips the query from every inverted index and tombstones its
    /// `queryInd` slot (ids are never reused). Edge views stay registered —
    /// routing consults edgeInd, so an unmatched view is dead weight only,
    /// and a later registration over the same edge reuses its history.
    fn unregister_query(&mut self, query: QueryId) -> Result<()> {
        if !self.indexes.remove(query) {
            return Err(Error::UnknownQuery(query.0));
        }
        Ok(())
    }

    fn next_query_id(&self) -> QueryId {
        QueryId(self.indexes.num_queries() as u32)
    }

    fn is_registered(&self, query: QueryId) -> bool {
        self.indexes.is_live(query)
    }

    fn apply_update(&mut self, update: Update) -> MatchReport {
        if update.is_retraction() {
            self.retract_batch_core(&[update])
        } else {
            self.apply_batch_core(&[update])
        }
    }

    fn apply_batch(&mut self, updates: &[Update]) -> MatchReport {
        let mut report = MatchReport::empty();
        for run in gsm_core::model::update::sign_runs(updates) {
            let run_report = if run[0].is_retraction() {
                self.retract_batch_core(run)
            } else {
                self.apply_batch_core(run)
            };
            report = report.merge(&run_report);
        }
        report
    }

    /// Routing with the join-and-explore pass deferred: the batch is routed
    /// into the views now, and the token captures the per-edge deltas, the
    /// affected query records (`Arc`-shared), the affected views **frozen
    /// at the post-batch watermarks** ([`EdgeViewStore::freeze_at`]) and —
    /// for the `+` variants — the stage-time join-build publication — so
    /// the answer may run after later batches were routed, or on another
    /// thread, and still reads exactly the state this batch saw. See the
    /// staging contract on [`ContinuousEngine::stage_batch`].
    fn stage_batch(&mut self, updates: &[Update]) -> StagedBatch {
        let retractions = updates.iter().filter(|u| u.is_retraction()).count();
        if retractions == updates.len() && !updates.is_empty() {
            return self.stage_retractions(updates);
        }
        if retractions > 0 {
            // Mixed-sign batches have no deferred shape — callers wanting
            // deferral split into sign-pure runs first, as the pipelined
            // executor does (see the staging contract).
            return StagedBatch::immediate(self.apply_batch(updates));
        }
        self.stats.updates_processed += updates.len() as u64;
        let edge_deltas = self.views.apply_batch(updates);
        if edge_deltas.is_empty() {
            return StagedBatch::immediate(MatchReport::empty());
        }
        let affected = self.affected_records(&edge_deltas);
        let cache = if self.caching {
            self.publish_builds(&affected)
        } else {
            FrozenJoinCache::default()
        };
        let frozen = self.freeze_needed(&affected);
        StagedBatch::deferred(StagedBaseline {
            edge_deltas,
            affected,
            frozen,
            retract: false,
            cache,
        })
    }

    fn answer_staged(&mut self, staged: StagedBatch) -> MatchReport {
        match staged.into_deferred::<StagedBaseline>() {
            Ok(token) => {
                let counts = answer_affected(
                    self.mode,
                    &token.frozen,
                    BuildCache::Frozen(&token.cache),
                    &mut self.row_buf,
                    &token.edge_deltas,
                    &token.affected,
                );
                let report = if token.retract {
                    MatchReport::from_retraction_counts(counts)
                } else {
                    MatchReport::from_counts(counts)
                };
                self.stats.notifications += report.len() as u64;
                self.stats.embeddings += report.total_embeddings();
                self.stats.retracted += report.total_retracted();
                report
            }
            Err(report) => report,
        }
    }

    /// The cross-thread form of the deferred join-and-explore pass: the
    /// staged token already owns everything (deltas, records, frozen
    /// views), so detaching is just moving it into the task — for
    /// retraction tokens too, whose snapshots were frozen pre-removal at
    /// stage time. See the detachment contract on
    /// [`ContinuousEngine::detach_staged`].
    fn detach_staged(&mut self, staged: StagedBatch) -> DetachedAnswer {
        let mode = self.mode;
        match staged.into_deferred::<StagedBaseline>() {
            Ok(token) => DetachedAnswer::task(move || {
                let mut row_buf = Vec::new();
                let counts = answer_affected(
                    mode,
                    &token.frozen,
                    BuildCache::Frozen(&token.cache),
                    &mut row_buf,
                    &token.edge_deltas,
                    &token.affected,
                );
                if token.retract {
                    MatchReport::from_retraction_counts(counts)
                } else {
                    MatchReport::from_counts(counts)
                }
            }),
            Err(report) => DetachedAnswer::ready(report),
        }
    }

    fn absorb_answered(&mut self, report: &MatchReport) {
        self.stats.notifications += report.len() as u64;
        self.stats.embeddings += report.total_embeddings();
        self.stats.retracted += report.total_retracted();
    }

    fn num_queries(&self) -> usize {
        self.indexes.num_live()
    }

    fn heap_bytes(&self) -> usize {
        self.views.heap_size() + self.indexes.heap_size() + self.cache.heap_size()
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }
}

impl BaselineEngine {
    /// The shared answering core: a single update is just a batch of one
    /// (its per-edge deltas are one-row relations, reproducing the paper's
    /// per-update algorithm exactly), while a larger batch routes once,
    /// resolves the affected queries once, computes the full relations of
    /// the unaffected covering paths once, and seeds the affected paths with
    /// the merged per-edge deltas — the batched index maintenance the
    /// ROADMAP's batch-updates item asks for.
    fn apply_batch_core(&mut self, updates: &[Update]) -> MatchReport {
        self.stats.updates_processed += updates.len() as u64;

        // Route the whole batch to the edge-level materialized views,
        // collecting the merged per-edge delta relations.
        let edge_deltas = self.views.apply_batch(updates);
        if edge_deltas.is_empty() {
            return MatchReport::empty();
        }

        // Step 1: locate the affected queries via edgeInd once per batch,
        // then run the shared answer pass against the live views (wiring in
        // the join cache when caching is enabled).
        let affected = self.affected_records(&edge_deltas);
        let counts = answer_affected(
            self.mode,
            &self.views,
            BuildCache::from(self.caching.then_some(&mut self.cache)),
            &mut self.row_buf,
            &edge_deltas,
            &affected,
        );

        let report = MatchReport::from_counts(counts);
        self.stats.notifications += report.len() as u64;
        self.stats.embeddings += report.total_embeddings();
        report
    }

    /// The retraction mirror of [`apply_batch_core`](Self::apply_batch_core),
    /// expressed as stage-then-answer: [`Self::stage_retractions`] collects
    /// the removed rows, freezes the pre-removal snapshots, and commits;
    /// the immediate answer then runs the very same join-and-explore pass —
    /// seeded with the removed-row deltas against the pre-removal snapshots,
    /// which by the deletion-delta property of
    /// [`views::delta_path_relation`] yields exactly
    /// `full_before − full_after` per covering path.
    fn retract_batch_core(&mut self, updates: &[Update]) -> MatchReport {
        let staged = self.stage_retractions(updates);
        self.answer_staged(staged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsm_core::interner::SymbolTable;

    struct Fixture {
        symbols: SymbolTable,
    }

    impl Fixture {
        fn new() -> Self {
            Fixture {
                symbols: SymbolTable::new(),
            }
        }
        fn q(&mut self, text: &str) -> QueryPattern {
            QueryPattern::parse(text, &mut self.symbols).unwrap()
        }
        fn u(&mut self, label: &str, src: &str, tgt: &str) -> Update {
            Update::new(
                self.symbols.intern(label),
                self.symbols.intern(src),
                self.symbols.intern(tgt),
            )
        }
    }

    fn engines() -> Vec<BaselineEngine> {
        vec![
            BaselineEngine::inv(),
            BaselineEngine::inv_plus(),
            BaselineEngine::inc(),
            BaselineEngine::inc_plus(),
        ]
    }

    #[test]
    fn names_are_stable() {
        let names: Vec<&str> = engines().iter().map(|e| e.name()).collect();
        assert_eq!(names, vec!["INV", "INV+", "INC", "INC+"]);
    }

    #[test]
    fn unregister_silences_the_query_and_frees_its_id_slot_forever() {
        for mut engine in engines() {
            let mut f = Fixture::new();
            let q1 = f.q("?a -knows-> ?b; ?b -worksAt-> acme");
            let q2 = f.q("?a -knows-> ?b");
            let id1 = engine.register_query(&q1).unwrap();
            let id2 = engine.register_query(&q2).unwrap();
            engine.apply_update(f.u("knows", "ann", "bob"));

            engine.unregister_query(id1).unwrap();
            assert_eq!(engine.num_queries(), 1, "{}", engine.name());
            assert!(!engine.is_registered(id1));
            assert!(engine.is_registered(id2));
            assert_eq!(
                engine.unregister_query(id1),
                Err(Error::UnknownQuery(id1.0))
            );

            // The edge that only q1 used no longer routes anywhere; the
            // shared edge still answers q2.
            assert!(engine
                .apply_update(f.u("worksAt", "bob", "acme"))
                .is_empty());
            let r = engine.apply_update(f.u("knows", "cat", "dan"));
            assert_eq!(r.satisfied_queries(), vec![id2], "{}", engine.name());

            // Re-registering gets a fresh id and sees the retained history.
            let id3 = engine.register_query(&f.q("?a -worksAt-> ?c")).unwrap();
            assert_eq!(id3, QueryId(2));
            assert_eq!(engine.next_query_id(), QueryId(3));
            let r = engine.apply_update(f.u("worksAt", "eve", "acme"));
            assert_eq!(r.satisfied_queries(), vec![id3], "{}", engine.name());
        }
    }

    #[test]
    fn single_edge_query_matches() {
        for mut engine in engines() {
            let mut f = Fixture::new();
            let q = f.q("?a -knows-> ?b");
            let qid = engine.register_query(&q).unwrap();
            let report = engine.apply_update(f.u("knows", "a", "b"));
            assert_eq!(report.satisfied_queries(), vec![qid], "{}", engine.name());
        }
    }

    #[test]
    fn chain_completes_on_last_edge_regardless_of_order() {
        for mut engine in engines() {
            let mut f = Fixture::new();
            let q = f.q("?a -x-> ?b; ?b -y-> ?c");
            let qid = engine.register_query(&q).unwrap();
            assert!(engine.apply_update(f.u("y", "b1", "c1")).is_empty());
            let report = engine.apply_update(f.u("x", "a1", "b1"));
            assert_eq!(report.satisfied_queries(), vec![qid], "{}", engine.name());
        }
    }

    #[test]
    fn cycle_closure_is_required() {
        for mut engine in engines() {
            let mut f = Fixture::new();
            let q = f.q("?a -x-> ?b; ?b -y-> ?c; ?c -z-> ?a");
            let qid = engine.register_query(&q).unwrap();
            engine.apply_update(f.u("x", "1", "2"));
            engine.apply_update(f.u("y", "2", "3"));
            assert!(engine.apply_update(f.u("z", "3", "7")).is_empty());
            let report = engine.apply_update(f.u("z", "3", "1"));
            assert_eq!(report.satisfied_queries(), vec![qid], "{}", engine.name());
        }
    }

    #[test]
    fn star_query_counts_embeddings() {
        for mut engine in engines() {
            let mut f = Fixture::new();
            let q = f.q("?c -a-> ?x; ?c -b-> ?y");
            engine.register_query(&q).unwrap();
            engine.apply_update(f.u("a", "hub", "x1"));
            engine.apply_update(f.u("a", "hub", "x2"));
            let report = engine.apply_update(f.u("b", "hub", "y1"));
            assert_eq!(report.matches.len(), 1);
            assert_eq!(report.matches[0].new_embeddings, 2, "{}", engine.name());
        }
    }

    #[test]
    fn duplicate_updates_are_ignored() {
        for mut engine in engines() {
            let mut f = Fixture::new();
            let q = f.q("?a -knows-> ?b");
            engine.register_query(&q).unwrap();
            let u = f.u("knows", "a", "b");
            assert_eq!(engine.apply_update(u).len(), 1);
            assert_eq!(engine.apply_update(u).len(), 0, "{}", engine.name());
        }
    }

    #[test]
    fn retraction_reports_disappearing_matches() {
        for mut engine in engines() {
            let mut f = Fixture::new();
            let q = f.q("?a -x-> ?b; ?b -y-> ?c");
            let qid = engine.register_query(&q).unwrap();
            let ux = f.u("x", "a1", "b1");
            let uy = f.u("y", "b1", "c1");
            engine.apply_update(ux);
            assert_eq!(engine.apply_update(uy).len(), 1, "{}", engine.name());

            let report = engine.apply_update(ux.inverted());
            assert_eq!(report.matches.len(), 1, "{}", engine.name());
            assert_eq!(report.matches[0].query, qid);
            assert_eq!(report.matches[0].new_embeddings, 0);
            assert_eq!(report.matches[0].retracted_embeddings, 1);
            assert_eq!(engine.stats().retracted, 1);

            // The match reappears when the edge comes back.
            let revived = engine.apply_update(ux);
            assert_eq!(revived.matches[0].new_embeddings, 1, "{}", engine.name());
        }
    }

    #[test]
    fn retracting_absent_edges_is_a_noop() {
        for mut engine in engines() {
            let mut f = Fixture::new();
            let q = f.q("?a -x-> ?b");
            engine.register_query(&q).unwrap();
            let phantom = f.u("x", "nope", "nada").inverted();
            assert!(engine.apply_update(phantom).is_empty(), "{}", engine.name());
            engine.apply_update(f.u("x", "a", "b"));
            // Double retraction in one batch removes the row once and
            // reports the disappearance once.
            let gone = f.u("x", "a", "b").inverted();
            let report = engine.apply_batch(&[gone, gone]);
            assert_eq!(report.total_retracted(), 1, "{}", engine.name());
            assert!(engine.apply_update(gone).is_empty(), "{}", engine.name());
        }
    }

    #[test]
    fn mixed_batch_reports_both_signs_without_cancelling() {
        for mut engine in engines() {
            let mut f = Fixture::new();
            let q = f.q("?a -x-> ?b; ?b -y-> ?c");
            engine.register_query(&q).unwrap();
            let ux = f.u("x", "a1", "b1");
            let uy = f.u("y", "b1", "c1");
            // The match appears (insert run) then disappears (retraction
            // run) within one batch; both events are reported.
            let report = engine.apply_batch(&[ux, uy, ux.inverted()]);
            assert_eq!(report.total_embeddings(), 1, "{}", engine.name());
            assert_eq!(report.total_retracted(), 1, "{}", engine.name());
        }
    }

    #[test]
    fn net_counts_match_a_from_scratch_replay_under_random_deletions() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(91);
        let mut f = Fixture::new();
        let queries = vec![
            f.q("?a -e0-> ?b; ?b -e1-> ?c"),
            f.q("?h -e0-> ?x; ?h -e2-> ?y"),
            f.q("?a -e1-> ?b; ?b -e2-> ?c; ?c -e0-> ?a"),
            f.q("?a -e2-> ?a"),
        ];
        let mut live_engines = engines();
        for q in &queries {
            for e in live_engines.iter_mut() {
                e.register_query(q).unwrap();
            }
        }
        // Random mixed stream: inserts of a smallish edge universe with a
        // 35% chance of retracting a currently-live edge instead.
        let mut live: Vec<Update> = Vec::new();
        let mut stream: Vec<Update> = Vec::new();
        for _ in 0..400 {
            if !live.is_empty() && rng.gen_bool(0.35) {
                let victim = live.swap_remove(rng.gen_range(0..live.len()));
                stream.push(victim.inverted());
            } else {
                let label = format!("e{}", rng.gen_range(0..3));
                let src = format!("v{}", rng.gen_range(0..7));
                let tgt = format!("v{}", rng.gen_range(0..7));
                let u = f.u(&label, &src, &tgt);
                if !live.contains(&u) {
                    live.push(u);
                }
                stream.push(u);
            }
        }
        // Stream through each engine, tallying net (new − retracted) per
        // query; the tally must equal a from-scratch replay of the
        // surviving edge set.
        for engine in live_engines.iter_mut() {
            let mut net: FxHashMap<QueryId, i64> = FxHashMap::default();
            for batch in stream.chunks(5) {
                let report = engine.apply_batch(batch);
                for m in &report.matches {
                    *net.entry(m.query).or_default() +=
                        m.new_embeddings as i64 - m.retracted_embeddings as i64;
                }
            }
            net.retain(|_, v| *v != 0);
            let mut fresh = BaselineEngine::with_mode(engine.mode(), false);
            for q in &queries {
                fresh.register_query(q).unwrap();
            }
            let mut expected: FxHashMap<QueryId, i64> = FxHashMap::default();
            for m in &fresh.apply_batch(&live).matches {
                *expected.entry(m.query).or_default() += m.new_embeddings as i64;
            }
            expected.retain(|_, v| *v != 0);
            assert_eq!(net, expected, "{} net counts diverged", engine.name());
        }
    }

    #[test]
    fn staged_retraction_runs_defer_and_survive_later_stages() {
        for mut engine in engines() {
            let mut f = Fixture::new();
            let q = f.q("?a -x-> ?b; ?b -y-> ?c");
            engine.register_query(&q).unwrap();
            let ux = f.u("x", "a", "b");
            let uy = f.u("y", "b", "c");
            assert_eq!(engine.apply_batch(&[ux, uy]).total_embeddings(), 1);

            // The retraction run stages: the commit lands immediately, the
            // disappearing-embedding join is deferred in the token.
            let t1 = engine.stage_batch(&[uy.inverted()]);
            assert!(!t1.is_immediate(), "{}", engine.name());

            // Re-inserting the just-retracted edge BEFORE answering t1 must
            // route against the post-removal views — proof the commit did
            // not wait for answer time.
            let t2 = engine.stage_batch(&[uy]);

            let r1 = engine.answer_staged(t1);
            assert_eq!(r1.total_retracted(), 1, "{}", engine.name());
            assert_eq!(r1.total_embeddings(), 0, "{}", engine.name());
            // The re-insert is truly new again, not dedup-dropped.
            let r2 = engine.answer_staged(t2);
            assert_eq!(r2.total_embeddings(), 1, "{}", engine.name());
            assert_eq!(engine.stats().retracted, 1, "{}", engine.name());
        }
    }

    #[test]
    fn staging_a_mixed_sign_batch_falls_back_to_immediate() {
        for mut engine in engines() {
            let mut f = Fixture::new();
            let q = f.q("?a -x-> ?b");
            engine.register_query(&q).unwrap();
            let u1 = f.u("x", "a", "b");
            let u2 = f.u("x", "c", "d");
            engine.apply_update(u1);
            let token = engine.stage_batch(&[u2, u1.inverted()]);
            assert!(token.is_immediate(), "{}", engine.name());
            let report = engine.answer_staged(token);
            assert_eq!(report.total_embeddings(), 1, "{}", engine.name());
            assert_eq!(report.total_retracted(), 1, "{}", engine.name());
        }
    }

    #[test]
    fn caching_variants_report_cache_hits() {
        let mut f = Fixture::new();
        let q = f.q("?a -x-> ?b; ?b -y-> ?c");
        let mut plus = BaselineEngine::inv_plus();
        let mut plain = BaselineEngine::inv();
        plus.register_query(&q).unwrap();
        plain.register_query(&q).unwrap();
        for i in 0..20 {
            let u1 = f.u("x", &format!("a{i}"), &format!("b{i}"));
            let u2 = f.u("y", &format!("b{i}"), &format!("c{i}"));
            plus.apply_update(u1);
            plus.apply_update(u2);
            plain.apply_update(u1);
            plain.apply_update(u2);
        }
        assert!(plus.cache_hits() > 0);
        assert_eq!(plain.cache_hits(), 0);
    }

    #[test]
    fn batch_report_equals_merged_sequential_reports() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for chunk in [2usize, 7, 50, 300] {
            let mut rng = StdRng::seed_from_u64(23);
            let mut f = Fixture::new();
            let queries = vec![
                f.q("?a -e0-> ?b; ?b -e1-> ?c"),
                f.q("?a -e1-> ?b; ?b -e2-> ?c; ?c -e0-> ?a"),
                f.q("?h -e0-> ?x; ?h -e2-> ?y"),
                f.q("?a -e0-> v3"),
                f.q("?a -e2-> ?a"),
            ];
            let mut seq_engines = engines();
            let mut bat_engines = engines();
            for q in &queries {
                for e in seq_engines.iter_mut().chain(bat_engines.iter_mut()) {
                    e.register_query(q).unwrap();
                }
            }
            let stream: Vec<Update> = (0..300)
                .map(|_| {
                    let label = format!("e{}", rng.gen_range(0..3));
                    let src = format!("v{}", rng.gen_range(0..7));
                    let tgt = format!("v{}", rng.gen_range(0..7));
                    f.u(&label, &src, &tgt)
                })
                .collect();
            for batch in stream.chunks(chunk) {
                for (seq, bat) in seq_engines.iter_mut().zip(bat_engines.iter_mut()) {
                    let mut counts = Vec::new();
                    for &u in batch {
                        let r = seq.apply_update(u);
                        counts.extend(r.matches.iter().map(|m| (m.query, m.new_embeddings)));
                    }
                    let expected = MatchReport::from_counts(counts);
                    let got = bat.apply_batch(batch);
                    assert_eq!(got, expected, "{} chunk {chunk} diverged", bat.name());
                }
            }
        }
    }

    #[test]
    fn staged_answers_survive_later_stages_and_detachment() {
        // The staging + detachment contracts for the baselines' new real
        // phase split: stage a whole window, then answer FIFO — half the
        // windows through answer_staged, half through detached tasks run on
        // worker threads — always matching an eager reference.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for (mode, caching) in [
            (BaselineMode::Inv, false),
            (BaselineMode::Inv, true),
            (BaselineMode::Inc, false),
            (BaselineMode::Inc, true),
        ] {
            let mut rng = StdRng::seed_from_u64(57);
            let mut f = Fixture::new();
            let queries = vec![
                f.q("?a -e0-> ?b; ?b -e1-> ?c"),
                f.q("?h -e0-> ?x; ?h -e2-> ?y"),
                f.q("?a -e1-> ?b; ?b -e2-> ?c; ?c -e0-> ?a"),
                f.q("?a -e2-> ?a"),
            ];
            let mut reference = BaselineEngine::with_mode(mode, caching);
            let mut staged_engine = BaselineEngine::with_mode(mode, caching);
            for q in &queries {
                reference.register_query(q).unwrap();
                staged_engine.register_query(q).unwrap();
            }
            let stream: Vec<Update> = (0..240)
                .map(|_| {
                    let label = format!("e{}", rng.gen_range(0..3));
                    let src = format!("v{}", rng.gen_range(0..7));
                    let tgt = format!("v{}", rng.gen_range(0..7));
                    f.u(&label, &src, &tgt)
                })
                .collect();
            let batches: Vec<&[Update]> = stream.chunks(6).collect();
            for (w, group) in batches.chunks(3).enumerate() {
                // Stage the whole window before answering any of it.
                let tokens: Vec<_> = group.iter().map(|b| staged_engine.stage_batch(b)).collect();
                if w % 2 == 0 {
                    for (batch, token) in group.iter().zip(tokens) {
                        let expected = reference.apply_batch(batch);
                        let got = staged_engine.answer_staged(token);
                        assert_eq!(got, expected, "{} staged diverged", staged_engine.name());
                    }
                } else {
                    let handles: Vec<_> = tokens
                        .into_iter()
                        .map(|t| {
                            let task = staged_engine.detach_staged(t);
                            std::thread::spawn(move || task.run())
                        })
                        .collect();
                    for (batch, handle) in group.iter().zip(handles) {
                        let expected = reference.apply_batch(batch);
                        let got = handle.join().expect("detached task");
                        assert_eq!(got, expected, "{} detached diverged", staged_engine.name());
                        staged_engine.absorb_answered(&got);
                    }
                }
            }
            assert_eq!(reference.stats(), staged_engine.stats());
        }
    }

    #[test]
    fn sharded_baselines_agree_with_plain_on_random_streams() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for (mode, caching) in [
            (BaselineMode::Inv, false),
            (BaselineMode::Inv, true),
            (BaselineMode::Inc, false),
            (BaselineMode::Inc, true),
        ] {
            for num_shards in [2usize, 5] {
                let mut rng = StdRng::seed_from_u64(31);
                let mut f = Fixture::new();
                let queries = vec![
                    f.q("?a -e0-> ?b; ?b -e1-> ?c"),
                    f.q("?h -e0-> ?x; ?h -e2-> ?y"),
                    f.q("?a -e2-> ?a"),
                ];
                let mut plain = BaselineEngine::with_mode(mode, caching);
                let mut sharded = BaselineEngine::sharded(mode, caching, num_shards);
                for q in &queries {
                    plain.register_query(q).unwrap();
                    sharded.register_query(q).unwrap();
                }
                for _ in 0..200 {
                    let label = format!("e{}", rng.gen_range(0..3));
                    let src = format!("v{}", rng.gen_range(0..6));
                    let tgt = format!("v{}", rng.gen_range(0..6));
                    let u = f.u(&label, &src, &tgt);
                    let a = plain.apply_update(u);
                    let b = sharded.apply_update(u);
                    assert_eq!(a, b, "{} × {num_shards} shards diverged", plain.name());
                }
            }
        }
    }

    #[test]
    fn all_baselines_agree_with_tric_on_random_streams() {
        use gsm_tric::TricEngine;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let mut rng = StdRng::seed_from_u64(42);
        let mut f = Fixture::new();
        let queries = vec![
            f.q("?a -e0-> ?b; ?b -e1-> ?c"),
            f.q("?a -e1-> ?b; ?b -e2-> ?c; ?c -e0-> ?a"),
            f.q("?h -e0-> ?x; ?h -e2-> ?y"),
            f.q("?a -e0-> v3"),
            f.q("?a -e2-> ?a"),
            f.q("?a -e0-> ?b; ?c -e1-> ?b"),
        ];
        let mut tric = TricEngine::tric();
        let mut baselines = engines();
        for q in &queries {
            tric.register_query(q).unwrap();
            for b in baselines.iter_mut() {
                b.register_query(q).unwrap();
            }
        }
        for _ in 0..300 {
            let label = format!("e{}", rng.gen_range(0..3));
            let src = format!("v{}", rng.gen_range(0..7));
            let tgt = format!("v{}", rng.gen_range(0..7));
            let u = f.u(&label, &src, &tgt);
            let expected = tric.apply_update(u);
            for b in baselines.iter_mut() {
                let got = b.apply_update(u);
                assert_eq!(got, expected, "{} diverged from TRIC on {u:?}", b.name());
            }
        }
    }
}
