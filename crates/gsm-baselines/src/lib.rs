//! # gsm-baselines
//!
//! The advanced baselines of Section 5 of the paper: **INV**, **INC** and
//! their join-structure-caching variants **INV+** and **INC+**.
//!
//! All four index the query database with inverted indexes at edge
//! granularity (`edgeInd`, `sourceInd`, `targetInd`, `queryInd`) and keep a
//! materialized view per distinct generic query edge — but, unlike TRIC, they
//! do **not** cluster queries by their common sub-paths and do **not**
//! materialize path prefixes. Consequently every affected query re-joins its
//! covering paths from the edge-level views on every update:
//!
//! * **INV** joins the *full* materialized views of every covering path of
//!   every affected query (the classic "join and explore" approach), and then
//!   derives the newly created embeddings.
//! * **INC** seeds the affected covering path(s) with the incoming update
//!   only, so it examines far fewer tuples on the affected path, but still
//!   recomputes the remaining paths of each affected query from the edge
//!   views.
//! * The `+` variants cache the build side of every hash join across updates
//!   and maintain it incrementally, exactly like TRIC+.
//!
//! All four report exactly the same matches as TRIC/TRIC+ — the integration
//! tests enforce bit-exact agreement — they just spend increasingly more work
//! per update, which is what the paper's evaluation measures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod index;

pub use engine::{BaselineEngine, BaselineMode};

/// INV / INV+ engine type (alias of [`BaselineEngine`]).
pub type InvEngine = BaselineEngine;
/// INC / INC+ engine type (alias of [`BaselineEngine`]).
pub type IncEngine = BaselineEngine;
