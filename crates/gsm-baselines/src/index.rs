//! The inverted indexes of the INV/INC baselines (Section 5.1, Step 2).

use std::collections::HashMap;
use std::sync::Arc;

use gsm_core::engine::QueryId;
use gsm_core::memory::HeapSize;
use gsm_core::model::generic::{GenTerm, GenericEdge};
use gsm_core::query::pattern::QVertexId;

/// One covering path of a registered query, kept verbatim in `queryInd`.
#[derive(Debug, Clone)]
pub struct PathRecord {
    /// Generic edges of the path, in walk order.
    pub edges: Vec<GenericEdge>,
    /// Query vertex bound by each path position (`edges.len() + 1` entries).
    pub vertices: Vec<QVertexId>,
}

impl HeapSize for PathRecord {
    fn heap_size(&self) -> usize {
        self.edges.heap_size() + self.vertices.heap_size()
    }
}

/// Everything `queryInd` stores about one query.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// The query's covering paths.
    pub paths: Vec<PathRecord>,
    /// Every distinct generic edge of the query (for the "all views
    /// non-empty" quick check of the answering phase).
    pub edges: Vec<GenericEdge>,
}

impl HeapSize for QueryRecord {
    fn heap_size(&self) -> usize {
        self.paths.heap_size() + self.edges.heap_size()
    }
}

/// The inverted indexes shared by INV/INV+/INC/INC+.
#[derive(Debug, Default)]
pub struct InvertedIndexes {
    /// edgeInd: generic edge → queries containing it.
    pub edge_index: HashMap<GenericEdge, Vec<QueryId>>,
    /// sourceInd: source vertex position → generic edges with that source.
    pub source_index: HashMap<GenTerm, Vec<GenericEdge>>,
    /// targetInd: target vertex position → generic edges with that target.
    pub target_index: HashMap<GenTerm, Vec<GenericEdge>>,
    /// queryInd: query id → its covering paths. Records are `Arc`-shared so
    /// a staged batch's working set references them instead of deep-copying
    /// every path of every affected query (the records are immutable after
    /// registration, and registration barriers the pipeline first).
    /// Unregistration tombstones a slot with an empty record — ids are
    /// never reused, so outstanding shared records stay valid.
    pub query_index: Vec<Arc<QueryRecord>>,
    /// Number of non-tombstoned `query_index` slots.
    live: usize,
}

impl InvertedIndexes {
    /// Creates empty indexes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a query's record, updating every inverted index.
    pub fn insert(&mut self, qid: QueryId, record: QueryRecord) {
        debug_assert_eq!(qid.index(), self.query_index.len());
        for edge in &record.edges {
            let queries = self.edge_index.entry(*edge).or_default();
            if !queries.contains(&qid) {
                queries.push(qid);
            }
            let sources = self.source_index.entry(edge.src).or_default();
            if !sources.contains(edge) {
                sources.push(*edge);
            }
            let targets = self.target_index.entry(edge.tgt).or_default();
            if !targets.contains(edge) {
                targets.push(*edge);
            }
        }
        self.query_index.push(Arc::new(record));
        self.live += 1;
    }

    /// Unregisters a query: strips it from `edgeInd` (and drops edges no
    /// remaining query uses from the vertex-position indexes too), then
    /// tombstones its `queryInd` slot with an empty record so the id is
    /// never reused. Returns `false` when the slot does not exist or was
    /// already tombstoned.
    pub fn remove(&mut self, qid: QueryId) -> bool {
        let Some(slot) = self.query_index.get_mut(qid.index()) else {
            return false;
        };
        if slot.edges.is_empty() {
            return false;
        }
        let record = std::mem::replace(
            slot,
            Arc::new(QueryRecord {
                paths: Vec::new(),
                edges: Vec::new(),
            }),
        );
        for edge in &record.edges {
            let Some(queries) = self.edge_index.get_mut(edge) else {
                continue;
            };
            queries.retain(|q| *q != qid);
            if !queries.is_empty() {
                continue;
            }
            self.edge_index.remove(edge);
            if let Some(edges) = self.source_index.get_mut(&edge.src) {
                edges.retain(|e| e != edge);
                if edges.is_empty() {
                    self.source_index.remove(&edge.src);
                }
            }
            if let Some(edges) = self.target_index.get_mut(&edge.tgt) {
                edges.retain(|e| e != edge);
                if edges.is_empty() {
                    self.target_index.remove(&edge.tgt);
                }
            }
        }
        self.live -= 1;
        true
    }

    /// `true` when the id names a non-tombstoned query.
    pub fn is_live(&self, qid: QueryId) -> bool {
        self.query_index
            .get(qid.index())
            .is_some_and(|r| !r.edges.is_empty())
    }

    /// Number of live (non-tombstoned) queries.
    pub fn num_live(&self) -> usize {
        self.live
    }

    /// Queries containing any of the given generic edges, deduplicated and
    /// sorted.
    pub fn affected_queries(&self, edges: &[GenericEdge]) -> Vec<QueryId> {
        let mut out: Vec<QueryId> = edges
            .iter()
            .filter_map(|e| self.edge_index.get(e))
            .flatten()
            .copied()
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Number of `queryInd` slots ever issued (live + tombstoned) — the
    /// next registration's id.
    pub fn num_queries(&self) -> usize {
        self.query_index.len()
    }

    /// The record of a query.
    pub fn record(&self, qid: QueryId) -> &QueryRecord {
        &self.query_index[qid.index()]
    }

    /// A shared handle to the record of a query — an `Arc` bump, not a deep
    /// copy. This is what staged batches capture.
    pub fn record_shared(&self, qid: QueryId) -> Arc<QueryRecord> {
        Arc::clone(&self.query_index[qid.index()])
    }
}

impl HeapSize for InvertedIndexes {
    fn heap_size(&self) -> usize {
        self.edge_index.heap_size()
            + self.source_index.heap_size()
            + self.target_index.heap_size()
            + self.query_index.heap_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsm_core::interner::Sym;
    use gsm_core::model::term::{PatternEdge, Term};

    fn ge(label: u32, src: Term, tgt: Term) -> GenericEdge {
        GenericEdge::from_pattern(&PatternEdge::new(Sym(label), src, tgt))
    }

    fn record(edges: Vec<GenericEdge>) -> QueryRecord {
        QueryRecord {
            paths: vec![PathRecord {
                edges: edges.clone(),
                vertices: (0..=edges.len()).collect(),
            }],
            edges,
        }
    }

    #[test]
    fn edge_index_maps_edges_to_queries() {
        let mut idx = InvertedIndexes::new();
        let shared = ge(0, Term::Var(0), Term::Var(1));
        let only_q1 = ge(1, Term::Var(0), Term::Const(Sym(9)));
        idx.insert(QueryId(0), record(vec![shared, only_q1]));
        idx.insert(QueryId(1), record(vec![shared]));

        assert_eq!(
            idx.affected_queries(&[shared]),
            vec![QueryId(0), QueryId(1)]
        );
        assert_eq!(idx.affected_queries(&[only_q1]), vec![QueryId(0)]);
        assert!(idx
            .affected_queries(&[ge(7, Term::Var(0), Term::Var(1))])
            .is_empty());
    }

    #[test]
    fn source_and_target_indexes_group_by_vertex_position() {
        let mut idx = InvertedIndexes::new();
        let a = ge(0, Term::Var(0), Term::Const(Sym(5)));
        let b = ge(1, Term::Var(2), Term::Const(Sym(5)));
        idx.insert(QueryId(0), record(vec![a, b]));
        assert_eq!(idx.source_index.get(&GenTerm::Any).map(Vec::len), Some(2));
        assert_eq!(
            idx.target_index.get(&GenTerm::Const(Sym(5))).map(Vec::len),
            Some(2)
        );
    }

    #[test]
    fn duplicate_edges_within_query_are_indexed_once() {
        let mut idx = InvertedIndexes::new();
        let e = ge(0, Term::Var(0), Term::Var(1));
        idx.insert(QueryId(0), record(vec![e, e]));
        assert_eq!(idx.edge_index.get(&e).map(Vec::len), Some(1));
    }

    #[test]
    fn remove_strips_indexes_but_keeps_shared_edges() {
        let mut idx = InvertedIndexes::new();
        let shared = ge(0, Term::Var(0), Term::Var(1));
        let only_q0 = ge(1, Term::Var(0), Term::Const(Sym(9)));
        idx.insert(QueryId(0), record(vec![shared, only_q0]));
        idx.insert(QueryId(1), record(vec![shared]));

        assert!(idx.remove(QueryId(0)));
        assert_eq!(idx.num_live(), 1);
        assert_eq!(idx.num_queries(), 2, "slots stay for id stability");
        assert!(!idx.is_live(QueryId(0)));
        assert!(idx.is_live(QueryId(1)));

        // The shared edge still routes to q1; q0's private edge is gone
        // from every index, including the vertex-position ones.
        assert_eq!(idx.affected_queries(&[shared]), vec![QueryId(1)]);
        assert!(idx.affected_queries(&[only_q0]).is_empty());
        assert!(!idx.target_index.contains_key(&GenTerm::Const(Sym(9))));
        assert!(idx.source_index.contains_key(&GenTerm::Any));

        // Removing the tombstone again reports absence.
        assert!(!idx.remove(QueryId(0)));
        assert!(!idx.remove(QueryId(7)));

        assert!(idx.remove(QueryId(1)));
        assert_eq!(idx.num_live(), 0);
        assert!(idx.edge_index.is_empty());
        assert!(idx.source_index.is_empty());
        assert!(idx.target_index.is_empty());
    }

    #[test]
    fn affected_queries_dedup_across_shapes() {
        let mut idx = InvertedIndexes::new();
        let a = ge(0, Term::Var(0), Term::Var(1));
        let b = ge(0, Term::Var(0), Term::Const(Sym(3)));
        idx.insert(QueryId(0), record(vec![a, b]));
        let affected = idx.affected_queries(&[a, b]);
        assert_eq!(affected, vec![QueryId(0)]);
    }
}
