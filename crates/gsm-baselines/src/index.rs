//! The inverted indexes of the INV/INC baselines (Section 5.1, Step 2).

use std::collections::HashMap;
use std::sync::Arc;

use gsm_core::engine::QueryId;
use gsm_core::memory::HeapSize;
use gsm_core::model::generic::{GenTerm, GenericEdge};
use gsm_core::query::pattern::QVertexId;

/// One covering path of a registered query, kept verbatim in `queryInd`.
#[derive(Debug, Clone)]
pub struct PathRecord {
    /// Generic edges of the path, in walk order.
    pub edges: Vec<GenericEdge>,
    /// Query vertex bound by each path position (`edges.len() + 1` entries).
    pub vertices: Vec<QVertexId>,
}

impl HeapSize for PathRecord {
    fn heap_size(&self) -> usize {
        self.edges.heap_size() + self.vertices.heap_size()
    }
}

/// Everything `queryInd` stores about one query.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// The query's covering paths.
    pub paths: Vec<PathRecord>,
    /// Every distinct generic edge of the query (for the "all views
    /// non-empty" quick check of the answering phase).
    pub edges: Vec<GenericEdge>,
}

impl HeapSize for QueryRecord {
    fn heap_size(&self) -> usize {
        self.paths.heap_size() + self.edges.heap_size()
    }
}

/// The inverted indexes shared by INV/INV+/INC/INC+.
#[derive(Debug, Default)]
pub struct InvertedIndexes {
    /// edgeInd: generic edge → queries containing it.
    pub edge_index: HashMap<GenericEdge, Vec<QueryId>>,
    /// sourceInd: source vertex position → generic edges with that source.
    pub source_index: HashMap<GenTerm, Vec<GenericEdge>>,
    /// targetInd: target vertex position → generic edges with that target.
    pub target_index: HashMap<GenTerm, Vec<GenericEdge>>,
    /// queryInd: query id → its covering paths. Records are `Arc`-shared so
    /// a staged batch's working set references them instead of deep-copying
    /// every path of every affected query (the records are immutable after
    /// registration, and registration barriers the pipeline first).
    pub query_index: Vec<Arc<QueryRecord>>,
}

impl InvertedIndexes {
    /// Creates empty indexes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a query's record, updating every inverted index.
    pub fn insert(&mut self, qid: QueryId, record: QueryRecord) {
        debug_assert_eq!(qid.index(), self.query_index.len());
        for edge in &record.edges {
            let queries = self.edge_index.entry(*edge).or_default();
            if !queries.contains(&qid) {
                queries.push(qid);
            }
            let sources = self.source_index.entry(edge.src).or_default();
            if !sources.contains(edge) {
                sources.push(*edge);
            }
            let targets = self.target_index.entry(edge.tgt).or_default();
            if !targets.contains(edge) {
                targets.push(*edge);
            }
        }
        self.query_index.push(Arc::new(record));
    }

    /// Queries containing any of the given generic edges, deduplicated and
    /// sorted.
    pub fn affected_queries(&self, edges: &[GenericEdge]) -> Vec<QueryId> {
        let mut out: Vec<QueryId> = edges
            .iter()
            .filter_map(|e| self.edge_index.get(e))
            .flatten()
            .copied()
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Number of registered queries.
    pub fn num_queries(&self) -> usize {
        self.query_index.len()
    }

    /// The record of a query.
    pub fn record(&self, qid: QueryId) -> &QueryRecord {
        &self.query_index[qid.index()]
    }

    /// A shared handle to the record of a query — an `Arc` bump, not a deep
    /// copy. This is what staged batches capture.
    pub fn record_shared(&self, qid: QueryId) -> Arc<QueryRecord> {
        Arc::clone(&self.query_index[qid.index()])
    }
}

impl HeapSize for InvertedIndexes {
    fn heap_size(&self) -> usize {
        self.edge_index.heap_size()
            + self.source_index.heap_size()
            + self.target_index.heap_size()
            + self.query_index.heap_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsm_core::interner::Sym;
    use gsm_core::model::term::{PatternEdge, Term};

    fn ge(label: u32, src: Term, tgt: Term) -> GenericEdge {
        GenericEdge::from_pattern(&PatternEdge::new(Sym(label), src, tgt))
    }

    fn record(edges: Vec<GenericEdge>) -> QueryRecord {
        QueryRecord {
            paths: vec![PathRecord {
                edges: edges.clone(),
                vertices: (0..=edges.len()).collect(),
            }],
            edges,
        }
    }

    #[test]
    fn edge_index_maps_edges_to_queries() {
        let mut idx = InvertedIndexes::new();
        let shared = ge(0, Term::Var(0), Term::Var(1));
        let only_q1 = ge(1, Term::Var(0), Term::Const(Sym(9)));
        idx.insert(QueryId(0), record(vec![shared, only_q1]));
        idx.insert(QueryId(1), record(vec![shared]));

        assert_eq!(
            idx.affected_queries(&[shared]),
            vec![QueryId(0), QueryId(1)]
        );
        assert_eq!(idx.affected_queries(&[only_q1]), vec![QueryId(0)]);
        assert!(idx
            .affected_queries(&[ge(7, Term::Var(0), Term::Var(1))])
            .is_empty());
    }

    #[test]
    fn source_and_target_indexes_group_by_vertex_position() {
        let mut idx = InvertedIndexes::new();
        let a = ge(0, Term::Var(0), Term::Const(Sym(5)));
        let b = ge(1, Term::Var(2), Term::Const(Sym(5)));
        idx.insert(QueryId(0), record(vec![a, b]));
        assert_eq!(idx.source_index.get(&GenTerm::Any).map(Vec::len), Some(2));
        assert_eq!(
            idx.target_index.get(&GenTerm::Const(Sym(5))).map(Vec::len),
            Some(2)
        );
    }

    #[test]
    fn duplicate_edges_within_query_are_indexed_once() {
        let mut idx = InvertedIndexes::new();
        let e = ge(0, Term::Var(0), Term::Var(1));
        idx.insert(QueryId(0), record(vec![e, e]));
        assert_eq!(idx.edge_index.get(&e).map(Vec::len), Some(1));
    }

    #[test]
    fn affected_queries_dedup_across_shapes() {
        let mut idx = InvertedIndexes::new();
        let a = ge(0, Term::Var(0), Term::Var(1));
        let b = ge(0, Term::Var(0), Term::Const(Sym(3)));
        idx.insert(QueryId(0), record(vec![a, b]));
        let affected = idx.affected_queries(&[a, b]);
        assert_eq!(affected, vec![QueryId(0)]);
    }
}
