//! The trie forest (Section 4.1, Step 2 of the paper).
//!
//! Each trie in the forest indexes covering paths whose first generic edge is
//! the trie's root edge. A trie node carries the generic edge it indexes, the
//! materialized view `matV[n]` of the *prefix path* ending at that node, and
//! the registrations of every (query, covering-path) pair whose path ends
//! exactly there. Nodes shared by several queries are stored once, which is
//! where the clustering gains of TRIC come from.

use std::collections::HashMap;

use gsm_core::engine::QueryId;
use gsm_core::memory::HeapSize;
use gsm_core::model::generic::GenericEdge;
use gsm_core::relation::Relation;

/// Index of a node inside the forest's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl HeapSize for NodeId {
    fn heap_size(&self) -> usize {
        0
    }
}

/// A (query, covering-path) pair registered at a trie node — the node is the
/// last node of that covering path (paper: `queryInd` keeps a reference to
/// the last trie node of every indexed path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Registration {
    /// The registered query.
    pub query: QueryId,
    /// Which covering path of the query this registration represents.
    pub path_idx: usize,
}

impl HeapSize for Registration {
    fn heap_size(&self) -> usize {
        0
    }
}

/// A node of a trie.
#[derive(Debug)]
pub struct TrieNode {
    /// The generic edge indexed by this node.
    pub edge: GenericEdge,
    /// Parent node (`None` for roots).
    pub parent: Option<NodeId>,
    /// Children, in creation order.
    pub children: Vec<NodeId>,
    /// Depth in the trie (0 for roots).
    pub depth: usize,
    /// Materialized view of the prefix path ending at this node:
    /// `depth + 2` columns, one per path position.
    pub mat_view: Relation,
    /// Covering paths ending at this node.
    pub registrations: Vec<Registration>,
}

impl TrieNode {
    /// Arity of this node's materialized view.
    pub fn view_arity(&self) -> usize {
        self.depth + 2
    }
}

impl HeapSize for TrieNode {
    fn heap_size(&self) -> usize {
        self.children.heap_size() + self.mat_view.heap_size() + self.registrations.heap_size()
    }
}

/// The forest of tries plus the two auxiliary indexes of the paper:
/// `rootInd` (root generic edge → trie root) and `edgeInd` (generic edge →
/// nodes indexing it; the paper stores trie roots and re-discovers the nodes
/// by a DFS — storing the nodes directly is equivalent and avoids the
/// traversal).
#[derive(Debug, Default)]
pub struct TrieForest {
    nodes: Vec<TrieNode>,
    /// rootInd: first generic edge of a path → root node of the trie.
    roots: HashMap<GenericEdge, NodeId>,
    /// edgeInd: generic edge → every node (across all tries) indexing it.
    nodes_by_edge: HashMap<GenericEdge, Vec<NodeId>>,
    /// Arena slots pruned by unregistration: unlinked from every index and
    /// emptied, but never reused — [`NodeId`]s stay stable for the forest's
    /// whole life (staged answer tokens and query records hold them).
    pruned: usize,
}

impl TrieForest {
    /// Creates an empty forest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of **live** trie nodes (pruned arena slots excluded).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len() - self.pruned
    }

    /// Total number of arena slots, live and pruned: the exclusive upper
    /// bound of every [`NodeId`] ever issued.
    pub fn num_slots(&self) -> usize {
        self.nodes.len()
    }

    /// Number of tries (root nodes).
    pub fn num_tries(&self) -> usize {
        self.roots.len()
    }

    /// Access a node.
    pub fn node(&self, id: NodeId) -> &TrieNode {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut TrieNode {
        &mut self.nodes[id.index()]
    }

    /// All nodes (across tries) indexing the given generic edge.
    pub fn nodes_for_edge(&self, edge: &GenericEdge) -> &[NodeId] {
        self.nodes_by_edge
            .get(edge)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All root nodes.
    pub fn roots(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.roots.values().copied()
    }

    /// Iterate over every node id.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    fn create_node(&mut self, edge: GenericEdge, parent: Option<NodeId>, depth: usize) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(TrieNode {
            edge,
            parent,
            children: Vec::new(),
            depth,
            mat_view: Relation::new(depth + 2),
            registrations: Vec::new(),
        });
        self.nodes_by_edge.entry(edge).or_default().push(id);
        if let Some(p) = parent {
            self.nodes[p.index()].children.push(id);
        } else {
            self.roots.insert(edge, id);
        }
        id
    }

    /// Inserts a covering path (as a sequence of generic edges) into the
    /// forest, creating missing nodes, and registers `(query, path_idx)` at
    /// the path's last node. Returns the node ids along the path and a list
    /// of the nodes that were newly created (the caller initialises their
    /// materialized views when queries are added after updates have already
    /// streamed in).
    pub fn insert_path(
        &mut self,
        generic_edges: &[GenericEdge],
        query: QueryId,
        path_idx: usize,
    ) -> (Vec<NodeId>, Vec<NodeId>) {
        assert!(!generic_edges.is_empty(), "covering paths are never empty");
        let mut path_nodes = Vec::with_capacity(generic_edges.len());
        let mut created = Vec::new();

        // Root: find or create the trie whose root indexes the first edge.
        let root_edge = generic_edges[0];
        let root = match self.roots.get(&root_edge) {
            Some(&r) => r,
            None => {
                let r = self.create_node(root_edge, None, 0);
                created.push(r);
                r
            }
        };
        path_nodes.push(root);

        // Descend, creating nodes for the remaining edges where necessary.
        let mut current = root;
        for (depth, &edge) in generic_edges.iter().enumerate().skip(1) {
            let existing = self.nodes[current.index()]
                .children
                .iter()
                .copied()
                .find(|&c| self.nodes[c.index()].edge == edge);
            let next = match existing {
                Some(c) => c,
                None => {
                    let c = self.create_node(edge, Some(current), depth);
                    created.push(c);
                    c
                }
            };
            path_nodes.push(next);
            current = next;
        }

        self.nodes[current.index()]
            .registrations
            .push(Registration { query, path_idx });
        (path_nodes, created)
    }

    /// Removes the `(query, path_idx)` registration from the covering
    /// path's end node, then prunes upward: a node left with no
    /// registrations and no children serves no remaining covering path, so
    /// it is unlinked from its parent (or `rootInd`), dropped from
    /// `edgeInd`, and its materialized view is released. Ancestors that
    /// thereby become childless and registration-free are pruned too —
    /// exactly the reverse of the find-or-create descent of
    /// [`insert_path`](Self::insert_path). Arena slots are retained (ids
    /// stay stable) but emptied.
    ///
    /// Returns `None` when the registration does not exist, otherwise the
    /// [`Relation::id`]s of the materialized views the pruning released —
    /// the caller evicts any cached join builds over them. Pruning never
    /// touches nodes still serving other queries: shared prefixes survive
    /// as long as any registration lives at or below them.
    pub fn remove_registration(
        &mut self,
        end_node: NodeId,
        query: QueryId,
        path_idx: usize,
    ) -> Option<Vec<u64>> {
        let regs = &mut self.nodes[end_node.index()].registrations;
        let before = regs.len();
        regs.retain(|r| !(r.query == query && r.path_idx == path_idx));
        if regs.len() == before {
            return None;
        }
        Some(self.prune_upward(end_node))
    }

    /// Unlinks `node` and every newly dead ancestor (no registrations, no
    /// children) from the forest's indexes, emptying their arena slots;
    /// returns the released views' relation ids.
    fn prune_upward(&mut self, mut node: NodeId) -> Vec<u64> {
        let mut released = Vec::new();
        loop {
            let n = &self.nodes[node.index()];
            if !n.children.is_empty() || !n.registrations.is_empty() {
                return released;
            }
            let parent = n.parent;
            let edge = n.edge;
            match parent {
                Some(p) => self.nodes[p.index()].children.retain(|&c| c != node),
                None => {
                    if self.roots.get(&edge) == Some(&node) {
                        self.roots.remove(&edge);
                    }
                }
            }
            if let Some(indexed) = self.nodes_by_edge.get_mut(&edge) {
                indexed.retain(|&c| c != node);
                if indexed.is_empty() {
                    self.nodes_by_edge.remove(&edge);
                }
            }
            let slot = &mut self.nodes[node.index()];
            released.push(slot.mat_view.id());
            slot.mat_view = Relation::new(slot.depth + 2);
            slot.parent = None;
            self.pruned += 1;
            match parent {
                Some(p) => node = p,
                None => return released,
            }
        }
    }

    /// Collects per-forest sharing statistics: how many (query, path)
    /// registrations exist versus how many nodes store them. A ratio above
    /// 1.0 means clustering is paying off.
    pub fn sharing_ratio(&self) -> f64 {
        let registrations: usize = self.nodes.iter().map(|n| n.registrations.len()).sum();
        if self.num_nodes() == 0 {
            return 0.0;
        }
        registrations as f64 / self.num_nodes() as f64
    }
}

impl HeapSize for TrieForest {
    fn heap_size(&self) -> usize {
        self.nodes.heap_size() + self.roots.heap_size() + self.nodes_by_edge.heap_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsm_core::interner::SymbolTable;
    use gsm_core::model::generic::GenericEdge;
    use gsm_core::query::paths::covering_paths;
    use gsm_core::query::pattern::QueryPattern;

    fn generic_path(
        q: &QueryPattern,
        path: &gsm_core::query::paths::CoveringPath,
    ) -> Vec<GenericEdge> {
        path.edges
            .iter()
            .map(|&e| GenericEdge::from_pattern(&q.edges()[e]))
            .collect()
    }

    #[test]
    fn shared_prefixes_share_nodes() {
        let mut s = SymbolTable::new();
        // Two queries whose covering paths share the prefix ?var -hasMod-> ?var.
        let q1 = QueryPattern::parse("?f -hasMod-> ?p; ?p -posted-> pst1", &mut s).unwrap();
        let q2 = QueryPattern::parse("?f -hasMod-> ?p; ?p -posted-> pst2", &mut s).unwrap();
        let mut forest = TrieForest::new();
        for (qid, q) in [(QueryId(0), &q1), (QueryId(1), &q2)] {
            for (pi, p) in covering_paths(q).iter().enumerate() {
                forest.insert_path(&generic_path(q, p), qid, pi);
            }
        }
        // One shared root (?var -hasMod-> ?var) plus two distinct leaves.
        assert_eq!(forest.num_tries(), 1);
        assert_eq!(forest.num_nodes(), 3);
    }

    #[test]
    fn identical_paths_from_different_queries_share_every_node() {
        let mut s = SymbolTable::new();
        let q1 = QueryPattern::parse("?a -x-> ?b; ?b -y-> ?c", &mut s).unwrap();
        let q2 = QueryPattern::parse("?p -x-> ?q; ?q -y-> ?r", &mut s).unwrap();
        let mut forest = TrieForest::new();
        for (qid, q) in [(QueryId(0), &q1), (QueryId(1), &q2)] {
            for (pi, p) in covering_paths(q).iter().enumerate() {
                forest.insert_path(&generic_path(q, p), qid, pi);
            }
        }
        assert_eq!(forest.num_nodes(), 2);
        let leaf = forest
            .node_ids()
            .find(|&n| forest.node(n).depth == 1)
            .unwrap();
        assert_eq!(forest.node(leaf).registrations.len(), 2);
        assert!(forest.sharing_ratio() >= 1.0);
    }

    #[test]
    fn different_roots_create_different_tries() {
        let mut s = SymbolTable::new();
        let q1 = QueryPattern::parse("?a -x-> ?b", &mut s).unwrap();
        let q2 = QueryPattern::parse("?a -y-> ?b", &mut s).unwrap();
        let mut forest = TrieForest::new();
        for (qid, q) in [(QueryId(0), &q1), (QueryId(1), &q2)] {
            for (pi, p) in covering_paths(q).iter().enumerate() {
                forest.insert_path(&generic_path(q, p), qid, pi);
            }
        }
        assert_eq!(forest.num_tries(), 2);
        assert_eq!(forest.num_nodes(), 2);
    }

    #[test]
    fn node_views_have_path_arity() {
        let mut s = SymbolTable::new();
        let q = QueryPattern::parse("?a -x-> ?b; ?b -y-> ?c; ?c -z-> ?d", &mut s).unwrap();
        let mut forest = TrieForest::new();
        for (pi, p) in covering_paths(&q).iter().enumerate() {
            forest.insert_path(&generic_path(&q, p), QueryId(0), pi);
        }
        for id in forest.node_ids() {
            let n = forest.node(id);
            assert_eq!(n.mat_view.arity(), n.depth + 2);
        }
    }

    #[test]
    fn unregistering_prunes_unshared_suffix_but_keeps_shared_prefix() {
        let mut s = SymbolTable::new();
        let q1 = QueryPattern::parse("?f -hasMod-> ?p; ?p -posted-> pst1", &mut s).unwrap();
        let q2 = QueryPattern::parse("?f -hasMod-> ?p; ?p -posted-> pst2", &mut s).unwrap();
        let mut forest = TrieForest::new();
        let mut ends = Vec::new();
        for (qid, q) in [(QueryId(0), &q1), (QueryId(1), &q2)] {
            for (pi, p) in covering_paths(q).iter().enumerate() {
                let (nodes, _) = forest.insert_path(&generic_path(q, p), qid, pi);
                ends.push((qid, pi, *nodes.last().unwrap()));
            }
        }
        assert_eq!(forest.num_nodes(), 3, "shared root + two leaves");

        // Unregister q1: its private leaf dies, the shared root survives
        // (q2's path still descends through it).
        for &(qid, pi, end) in ends.iter().filter(|(q, _, _)| *q == QueryId(0)) {
            let released = forest.remove_registration(end, qid, pi).unwrap();
            assert_eq!(released.len(), 1, "only the private leaf view is released");
        }
        assert_eq!(forest.num_nodes(), 2);
        assert_eq!(forest.num_tries(), 1);
        assert_eq!(forest.num_slots(), 3, "arena slots stay for id stability");

        // Unregister q2: the remaining leaf and then the root die too.
        for &(qid, pi, end) in ends.iter().filter(|(q, _, _)| *q == QueryId(1)) {
            let released = forest.remove_registration(end, qid, pi).unwrap();
            assert_eq!(released.len(), 2, "leaf and shared root both released");
        }
        assert_eq!(forest.num_nodes(), 0);
        assert_eq!(forest.num_tries(), 0);
        assert!(forest
            .nodes_for_edge(&forest.node(NodeId(0)).edge)
            .is_empty());

        // Double-unregister reports absence instead of corrupting state.
        let (qid, pi, end) = ends[0];
        assert!(forest.remove_registration(end, qid, pi).is_none());
    }

    #[test]
    fn unregistering_a_shared_identical_path_keeps_every_node() {
        let mut s = SymbolTable::new();
        let q1 = QueryPattern::parse("?a -x-> ?b; ?b -y-> ?c", &mut s).unwrap();
        let q2 = QueryPattern::parse("?p -x-> ?q; ?q -y-> ?r", &mut s).unwrap();
        let mut forest = TrieForest::new();
        let mut end = None;
        for (qid, q) in [(QueryId(0), &q1), (QueryId(1), &q2)] {
            for (pi, p) in covering_paths(q).iter().enumerate() {
                let (nodes, _) = forest.insert_path(&generic_path(q, p), qid, pi);
                end = Some(*nodes.last().unwrap());
            }
        }
        let end = end.unwrap();
        let released = forest.remove_registration(end, QueryId(0), 0).unwrap();
        assert!(released.is_empty(), "shared nodes keep their views");
        assert_eq!(forest.num_nodes(), 2, "q2 still registers the same path");
        assert_eq!(forest.node(end).registrations.len(), 1);
    }

    #[test]
    fn pruned_root_can_be_reinserted_fresh() {
        let mut s = SymbolTable::new();
        let q = QueryPattern::parse("?a -x-> ?b", &mut s).unwrap();
        let mut forest = TrieForest::new();
        let p = &covering_paths(&q)[0];
        let (nodes, _) = forest.insert_path(&generic_path(&q, p), QueryId(0), 0);
        assert!(forest
            .remove_registration(nodes[0], QueryId(0), 0)
            .is_some());
        assert_eq!(forest.num_tries(), 0);
        // Re-registering the same shape builds a new trie in a new slot.
        let (nodes2, created) = forest.insert_path(&generic_path(&q, p), QueryId(1), 0);
        assert_ne!(nodes2[0], nodes[0], "ids are never reused");
        assert_eq!(created, nodes2);
        assert_eq!(forest.num_tries(), 1);
        assert_eq!(forest.num_nodes(), 1);
    }

    #[test]
    fn edge_index_finds_nodes_across_tries() {
        let mut s = SymbolTable::new();
        let posted = s.intern("posted");
        let pst1 = s.intern("pst1");
        let q1 = QueryPattern::parse("?a -hasMod-> ?b; ?b -posted-> pst1", &mut s).unwrap();
        let q2 = QueryPattern::parse("com1 -hasCreator-> ?v; ?v -posted-> pst1", &mut s).unwrap();
        let mut forest = TrieForest::new();
        for (qid, q) in [(QueryId(0), &q1), (QueryId(1), &q2)] {
            for (pi, p) in covering_paths(q).iter().enumerate() {
                forest.insert_path(&generic_path(q, p), qid, pi);
            }
        }
        let target = GenericEdge {
            label: posted,
            src: gsm_core::model::generic::GenTerm::Any,
            tgt: gsm_core::model::generic::GenTerm::Const(pst1),
            same_var: false,
        };
        // The edge `?var -posted-> pst1` is indexed under two different tries.
        assert_eq!(forest.nodes_for_edge(&target).len(), 2);
    }
}
