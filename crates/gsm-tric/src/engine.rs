//! The TRIC / TRIC+ continuous-query engine (Sections 4.1 and 4.2).

use std::collections::BTreeMap;

use gsm_core::engine::{
    ContinuousEngine, DetachedAnswer, EngineStats, MatchReport, QueryId, StagedBatch,
};
use gsm_core::error::{Error, Result};
use gsm_core::interner::Sym;
use gsm_core::memory::HeapSize;
use gsm_core::model::generic::GenericEdge;
use gsm_core::model::update::{sign_runs, Update};
use gsm_core::query::paths::covering_paths;
use gsm_core::query::pattern::{QVertexId, QueryPattern};
use gsm_core::relation::cache::{BuildCache, JoinCache};
use gsm_core::relation::eval::{join_paths, PathBinding};
use gsm_core::relation::fasthash::{FxHashMap, FxHashSet};
use gsm_core::relation::join::JoinBuild;
use gsm_core::relation::Relation;
use gsm_core::shard::ShardedEngine;
use gsm_core::views::{self, EdgeViewStore};

use crate::trie::{NodeId, TrieForest};

/// Configuration of the engine — the only switch is the join-structure cache
/// that turns TRIC into TRIC+.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TricConfig {
    /// Keep and incrementally maintain hash-join build structures across
    /// updates (the TRIC+ extension of Section 4.2, "Caching").
    pub caching: bool,
}

/// Per-covering-path bookkeeping: where the path ends in the forest and which
/// query vertex each column of that node's materialized view binds.
#[derive(Debug, Clone)]
struct PathInfo {
    end_node: NodeId,
    /// Query vertex bound by each column of the end node's view
    /// (`path length + 1` entries).
    vertices: Vec<QVertexId>,
}

impl HeapSize for PathInfo {
    fn heap_size(&self) -> usize {
        self.vertices.heap_size()
    }
}

/// Per-query bookkeeping (the paper's `queryInd`).
#[derive(Debug, Clone)]
struct QueryInfo {
    paths: Vec<PathInfo>,
}

impl HeapSize for QueryInfo {
    fn heap_size(&self) -> usize {
        self.paths.heap_size()
    }
}

/// The deferred-answer token of the TRIC engines: everything the final
/// covering-path join pass (step 4) needs, captured at stage time so the
/// answer may run after later batches have already been routed and
/// propagated.
///
/// `truly_new` owns the per-end-node delta relations of the staged batch;
/// `watermarks` freezes the version ([`Relation::version`]) of every
/// affected query's end-node views *after* this batch's appends, so the
/// answer pass joins against exactly the state the views had when the batch
/// was absorbed — rows appended by later staged batches sit past the
/// watermarks and are invisible (see the staging contract on
/// [`ContinuousEngine::stage_batch`]).
#[derive(Debug, Default)]
struct StagedTric {
    /// Per-node truly-new rows of the staged batch (step 3 output).
    truly_new: FxHashMap<NodeId, Relation>,
    /// Queries with at least one affected covering path, sorted.
    affected_queries: Vec<QueryId>,
    /// Post-batch version watermark of every end-node view of every path of
    /// every affected query.
    watermarks: FxHashMap<NodeId, usize>,
}

/// The deferred-answer token of an all-retraction run: the per-node removed
/// rows (steps 1–3 of [`TricEngine::retract_batch`]) plus the **pre-removal**
/// end-node views of every affected query, frozen as generation-pinned
/// [`Relation::snapshot_owned`] snapshots *before* the destructive commit.
/// The snapshots share frozen chunks by `Arc`, so the commit's compaction
/// (and any later one) cannot invalidate them — the disappearing-embedding
/// join can therefore run deferred, on any thread, while the engine stages
/// later batches against the already-committed post-removal state.
#[derive(Debug, Default)]
struct StagedRetractTric {
    /// Rows each affected node's materialized view lost (step 3 output).
    node_removed: FxHashMap<NodeId, Relation>,
    /// Queries with at least one covering path that lost rows, sorted.
    affected_queries: Vec<QueryId>,
    /// Pre-removal snapshot of every end-node view of every path of every
    /// affected query, at full length.
    frozen: FxHashMap<NodeId, Relation>,
}

/// What [`TricEngine::stage_batch`] defers: an insert run's watermark token
/// or a retraction run's frozen-snapshot token (mixed-sign batches fall back
/// to an immediate token — see the staging contract).
#[derive(Debug)]
enum TricToken {
    Insert(StagedTric),
    Retract(StagedRetractTric),
}

/// Update-scoped scratch buffers, reused across `apply_update` calls so the
/// per-update hot path performs no bookkeeping allocations once the buffers
/// have grown to the working-set size.
#[derive(Debug, Default)]
struct UpdateScratch {
    /// Trie nodes touched by the current update (sorted, deduped).
    affected_nodes: Vec<NodeId>,
    /// Nodes already expanded during delta propagation (replaces the former
    /// O(n²) `Vec::contains` scan).
    processed: FxHashSet<NodeId>,
    /// Row assembly buffer shared by seed construction and delta extension.
    row_buf: Vec<Sym>,
}

impl UpdateScratch {
    fn reset(&mut self) {
        self.affected_nodes.clear();
        self.processed.clear();
    }
}

/// The TRIC / TRIC+ engine.
#[derive(Debug, Default)]
pub struct TricEngine {
    config: TricConfig,
    forest: TrieForest,
    views: EdgeViewStore,
    cache: JoinCache,
    /// Per-query path descriptors, `Arc`-shared with detached answer tasks:
    /// registration barriers the pipeline first (no tokens outstanding), so
    /// the engine thread mutates via [`Arc::make_mut`] — in place while no
    /// detached task holds a reference, copy-on-write otherwise — and
    /// `detach_staged` captures the whole table with one `Arc` bump instead
    /// of deep-copying every affected query's vertex sequences per batch.
    queries: std::sync::Arc<Vec<QueryInfo>>,
    /// Number of currently registered (non-tombstoned) queries. `queries`
    /// keeps a slot per id ever issued — unregistration empties the slot's
    /// path list instead of shifting later ids — so the live count is
    /// tracked separately.
    live_queries: usize,
    scratch: UpdateScratch,
    stats: EngineStats,
}

impl TricEngine {
    /// Creates an engine with the given configuration.
    pub fn with_config(config: TricConfig) -> Self {
        TricEngine {
            config,
            ..Default::default()
        }
    }

    /// Creates a plain TRIC engine (no join-structure caching).
    pub fn tric() -> Self {
        Self::with_config(TricConfig { caching: false })
    }

    /// Creates a TRIC+ engine (join-structure caching enabled).
    pub fn tric_plus() -> Self {
        Self::with_config(TricConfig { caching: true })
    }

    /// Creates a TRIC engine partitioned across `num_shards` worker shards.
    ///
    /// The trie forest and edge-view store are split by root generic edge:
    /// each shard's inner engine holds exactly the tries whose root edges
    /// [`gsm_core::shard::shard_of`] assigns to it (plus the edge views
    /// those tries reach), and queries whose covering paths root on
    /// different shards are answered by the wrapper's post-merge
    /// covering-path join pass. With `num_shards <= 1` this is an unsharded
    /// [`TricEngine::tric`] behind a zero-overhead delegation.
    pub fn tric_sharded(num_shards: usize) -> ShardedEngine<TricEngine> {
        ShardedEngine::new(num_shards, TricEngine::tric)
    }

    /// Creates a TRIC+ engine partitioned across `num_shards` worker shards
    /// (see [`TricEngine::tric_sharded`]); each shard maintains its own
    /// join-structure cache.
    pub fn tric_plus_sharded(num_shards: usize) -> ShardedEngine<TricEngine> {
        ShardedEngine::new(num_shards, TricEngine::tric_plus)
    }

    /// The trie forest — exposed for inspection in tests and experiments.
    pub fn forest(&self) -> &TrieForest {
        &self.forest
    }

    /// Number of trie nodes currently in the forest.
    pub fn num_trie_nodes(&self) -> usize {
        self.forest.num_nodes()
    }

    /// Number of tries (distinct root generic edges).
    pub fn num_tries(&self) -> usize {
        self.forest.num_tries()
    }

    /// Join-cache hit counter (always zero for plain TRIC).
    pub fn cache_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Probes `rel` (keyed on `key_cols`) for rows whose key equals `key`,
    /// invoking `f` with each matching row index — zero allocations per
    /// probe. Uses the persistent cache when caching is enabled and a
    /// throw-away build otherwise (the paper's TRIC rebuilds the hash
    /// structures of every join on every update; TRIC+ reuses them).
    fn probe_rows(
        caching: bool,
        cache: &mut JoinCache,
        rel: &Relation,
        key_cols: &[usize],
        key: &[Sym],
        f: impl FnMut(usize),
    ) {
        if rel.is_empty() {
            return;
        }
        if caching {
            cache.get_or_build(rel, key_cols).probe_each(rel, key, f);
        } else {
            JoinBuild::build(rel, key_cols).probe_each(rel, key, f);
        }
    }

    /// Extends every row of `delta` (a prefix-path delta whose last column is
    /// the frontier vertex) with the matching tuples of `edge_view`,
    /// producing the delta of the child node. `row_buf` is caller-provided
    /// scratch so repeated extensions share one allocation.
    fn extend_delta(
        caching: bool,
        cache: &mut JoinCache,
        delta: &Relation,
        edge_view: &Relation,
        row_buf: &mut Vec<Sym>,
    ) -> Relation {
        let out_arity = delta.arity() + 1;
        // Distinct inputs extended with distinct edge matches yield distinct
        // rows, so the child delta skips the dedup index entirely.
        let mut out = Relation::new_distinct(out_arity);
        if delta.is_empty() || edge_view.is_empty() {
            return out;
        }
        let last = delta.arity() - 1;
        row_buf.clear();
        row_buf.resize(out_arity, Sym(0));
        let build_storage;
        let build = if caching {
            cache.get_or_build(edge_view, &[0])
        } else {
            build_storage = JoinBuild::build(edge_view, &[0]);
            &build_storage
        };
        for drow in delta.iter() {
            build.probe_each(edge_view, &[drow[last]], |idx| {
                row_buf[..drow.len()].copy_from_slice(drow);
                row_buf[out_arity - 1] = edge_view.row(idx)[1];
                out.append_distinct(row_buf);
            });
        }
        out
    }

    /// Initialises the materialized view of a freshly created trie node from
    /// its parent's view and the (already registered) edge view, so that
    /// queries may be added after updates have already streamed in.
    fn initialise_node_view(&mut self, node: NodeId) {
        let (parent, edge) = {
            let n = self.forest.node(node);
            (n.parent, n.edge)
        };
        let Some(edge_view) = self.views.get(&edge) else {
            return;
        };
        match parent {
            None => {
                // Root node: the view is exactly the edge view.
                let rows: Vec<Vec<Sym>> = edge_view.iter().map(|r| r.to_vec()).collect();
                let view = &mut self.forest.node_mut(node).mat_view;
                for r in rows {
                    view.push(&r);
                }
            }
            Some(p) => {
                let parent_view = &self.forest.node(p).mat_view;
                let extended = Self::extend_delta(
                    self.config.caching,
                    &mut self.cache,
                    parent_view,
                    edge_view,
                    &mut self.scratch.row_buf,
                );
                let view = &mut self.forest.node_mut(node).mat_view;
                view.extend_from(&extended);
            }
        }
    }
}

impl ContinuousEngine for TricEngine {
    fn name(&self) -> &'static str {
        if self.config.caching {
            "TRIC+"
        } else {
            "TRIC"
        }
    }

    fn register_query(&mut self, query: &QueryPattern) -> Result<QueryId> {
        let qid = QueryId(self.queries.len() as u32);
        let paths = covering_paths(query);
        let mut infos = Vec::with_capacity(paths.len());
        for (path_idx, path) in paths.iter().enumerate() {
            let generic: Vec<GenericEdge> = path
                .edges
                .iter()
                .map(|&e| GenericEdge::from_pattern(&query.edges()[e]))
                .collect();
            for &ge in &generic {
                self.views.register(ge);
            }
            let (path_nodes, created) = self.forest.insert_path(&generic, qid, path_idx);
            // New nodes must catch up with views that already hold data
            // (supports continuous query additions).
            for c in created {
                self.initialise_node_view(c);
            }
            infos.push(PathInfo {
                end_node: *path_nodes.last().expect("paths are non-empty"),
                vertices: path.vertex_sequence(query),
            });
        }
        std::sync::Arc::make_mut(&mut self.queries).push(QueryInfo { paths: infos });
        self.live_queries += 1;
        Ok(qid)
    }

    /// Removes the query's registrations from every covering-path end node,
    /// pruning trie nodes (and evicting their cached join builds) that no
    /// longer serve any query. The query's id slot is tombstoned — emptied,
    /// never reused — so later ids and detached answer tasks stay valid.
    fn unregister_query(&mut self, query: QueryId) -> Result<()> {
        let idx = query.index();
        if idx >= self.queries.len() || self.queries[idx].paths.is_empty() {
            return Err(Error::UnknownQuery(query.0));
        }
        let infos = std::mem::take(&mut std::sync::Arc::make_mut(&mut self.queries)[idx].paths);
        for (path_idx, info) in infos.iter().enumerate() {
            let released = self
                .forest
                .remove_registration(info.end_node, query, path_idx)
                .expect("query table and forest registrations agree");
            for rel_id in released {
                self.cache.evict_relation(rel_id);
            }
        }
        self.live_queries -= 1;
        Ok(())
    }

    fn next_query_id(&self) -> QueryId {
        QueryId(self.queries.len() as u32)
    }

    fn is_registered(&self, query: QueryId) -> bool {
        query.index() < self.queries.len() && !self.queries[query.index()].paths.is_empty()
    }

    fn apply_update(&mut self, update: Update) -> MatchReport {
        if update.is_retraction() {
            return self.retract_batch(&[update]);
        }
        let staged = self.stage_update(update);
        self.answer_tric(staged)
    }

    /// Batched answering (the scaling step of the ROADMAP): routing, join
    /// builds and covering-path joins are amortized across the whole batch
    /// instead of being paid once per update.
    ///
    /// The pipeline mirrors [`apply_update`](ContinuousEngine::apply_update)
    /// step for step, but every per-update quantity is replaced by its merged
    /// batch counterpart: the per-edge **batch delta relations** collected by
    /// one routing pass ([`EdgeViewStore::apply_batch`]), per-node seeds
    /// joining each parent's pre-batch view against the merged edge delta
    /// (one hash-join build per affected node per batch), one delta
    /// propagation pass down the affected sub-tries, and one covering-path
    /// join per affected query against the merged truly-new rows.
    fn apply_batch(&mut self, updates: &[Update]) -> MatchReport {
        let mut report = MatchReport::empty();
        for run in sign_runs(updates) {
            let run_report = if run[0].is_retraction() {
                self.retract_batch(run)
            } else {
                let staged = self.stage_updates(run);
                self.answer_tric(staged)
            };
            report = report.merge(&run_report);
        }
        report
    }

    /// Routing + propagation of a batch with the covering-path join pass
    /// deferred: for an insert run, steps 0–3 run now and step 4 runs in
    /// [`answer_staged`](ContinuousEngine::answer_staged) against the
    /// version watermarks captured in the token. An all-retraction run
    /// stages too (`TricEngine::stage_retractions`): the removal commits
    /// now and the disappearing-embedding join defers against the token's
    /// generation-pinned pre-removal snapshots. Mixed-sign batches have no
    /// deferred shape and fall back to an immediate token — callers wanting
    /// deferral split with `sign_runs` first, as the pipelined executor
    /// does. See the staging contract on
    /// [`ContinuousEngine::stage_batch`].
    fn stage_batch(&mut self, updates: &[Update]) -> StagedBatch {
        let retractions = updates.iter().filter(|u| u.is_retraction()).count();
        if retractions == updates.len() && !updates.is_empty() {
            return StagedBatch::deferred(TricToken::Retract(self.stage_retractions(updates)));
        }
        if retractions > 0 {
            return StagedBatch::immediate(self.apply_batch(updates));
        }
        StagedBatch::deferred(TricToken::Insert(self.stage_updates(updates)))
    }

    fn answer_staged(&mut self, staged: StagedBatch) -> MatchReport {
        match staged.into_deferred::<TricToken>() {
            Ok(TricToken::Insert(token)) => self.answer_tric(token),
            Ok(TricToken::Retract(token)) => self.answer_retract(token),
            Err(report) => report,
        }
    }

    /// The cross-thread form of the deferred covering-path join pass (see
    /// the detachment contract on [`ContinuousEngine::detach_staged`]). For
    /// an insert token, the per-node truly-new deltas travel as-is, each
    /// affected end-node view is frozen at its staged watermark via the
    /// chunk-sharing [`Relation::snapshot_owned`], and the query metadata
    /// travels as one `Arc` bump of the engine's shared table — nothing is
    /// deep-copied — so the returned task owns everything step 4 reads and
    /// can run while this engine stages later batches. A retraction token
    /// already froze its pre-removal snapshots at stage time, so detaching
    /// it is just the `Arc` bump.
    fn detach_staged(&mut self, staged: StagedBatch) -> DetachedAnswer {
        let token = match staged.into_deferred::<TricToken>() {
            Ok(token) => token,
            Err(report) => return DetachedAnswer::ready(report),
        };
        match token {
            TricToken::Insert(token) => {
                let mut frozen: FxHashMap<NodeId, Relation> = FxHashMap::default();
                for &qid in &token.affected_queries {
                    for path in &self.queries[qid.index()].paths {
                        frozen.entry(path.end_node).or_insert_with(|| {
                            let view = &self.forest.node(path.end_node).mat_view;
                            let watermark = token
                                .watermarks
                                .get(&path.end_node)
                                .copied()
                                .unwrap_or_else(|| view.version());
                            view.snapshot_owned(watermark)
                        });
                    }
                }
                let queries = std::sync::Arc::clone(&self.queries);
                let affected_queries = token.affected_queries;
                let truly_new = token.truly_new;
                DetachedAnswer::task(move || {
                    answer_tric_detached(&affected_queries, &queries, &truly_new, &frozen)
                })
            }
            TricToken::Retract(token) => {
                let queries = std::sync::Arc::clone(&self.queries);
                DetachedAnswer::task(move || {
                    answer_retract_detached(
                        &token.affected_queries,
                        &queries,
                        &token.node_removed,
                        &token.frozen,
                    )
                })
            }
        }
    }

    fn absorb_answered(&mut self, report: &MatchReport) {
        self.stats.notifications += report.len() as u64;
        self.stats.embeddings += report.total_embeddings();
        self.stats.retracted += report.total_retracted();
    }

    fn num_queries(&self) -> usize {
        self.live_queries
    }

    fn heap_bytes(&self) -> usize {
        self.forest.heap_size()
            + self.views.heap_size()
            + self.cache.heap_size()
            + self.queries.heap_size()
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }
}

impl TricEngine {
    /// The staging phase for a single update: steps 0–3 of the answering
    /// algorithm (routing, seeding, propagation, view appends), with the
    /// covering-path join pass captured in the returned token.
    fn stage_update(&mut self, update: Update) -> StagedTric {
        self.stats.updates_processed += 1;

        // Step 0: route the update to the per-edge materialized views.
        let affected_edges = self.views.apply_update(&update);
        if affected_edges.is_empty() {
            return StagedTric::default();
        }

        // Step 1: locate the affected trie nodes (paper: edgeInd lookup plus
        // trie traversal). The node list, the processed set and the row
        // buffer are update-scoped scratch reused across calls.
        self.scratch.reset();
        for ge in &affected_edges {
            self.scratch
                .affected_nodes
                .extend_from_slice(self.forest.nodes_for_edge(ge));
        }
        self.scratch.affected_nodes.sort_unstable();
        self.scratch.affected_nodes.dedup();
        if self.scratch.affected_nodes.is_empty() {
            return StagedTric::default();
        }

        let caching = self.config.caching;

        // Step 2a: seed a delta at every affected node from its parent's
        // (pre-update) materialized view joined with the single new tuple.
        let mut deltas: FxHashMap<NodeId, Relation> = FxHashMap::default();
        let mut by_depth: BTreeMap<usize, Vec<NodeId>> = BTreeMap::new();
        for i in 0..self.scratch.affected_nodes.len() {
            let n = self.scratch.affected_nodes[i];
            let node = self.forest.node(n);
            let seed = match node.parent {
                None => Relation::singleton(&[update.src, update.tgt]),
                Some(p) => {
                    let parent_view = &self.forest.node(p).mat_view;
                    let last = parent_view.arity() - 1;
                    // Distinct parent rows extended by one update tuple are
                    // distinct; skip the dedup index.
                    let mut seed = Relation::new_distinct(parent_view.arity() + 1);
                    let row_buf = &mut self.scratch.row_buf;
                    row_buf.clear();
                    row_buf.resize(parent_view.arity() + 1, Sym(0));
                    Self::probe_rows(
                        caching,
                        &mut self.cache,
                        parent_view,
                        &[last],
                        &[update.src],
                        |idx| {
                            let prow = parent_view.row(idx);
                            row_buf[..prow.len()].copy_from_slice(prow);
                            row_buf[prow.len()] = update.tgt;
                            seed.append_distinct(row_buf);
                        },
                    );
                    seed
                }
            };
            if !seed.is_empty() {
                by_depth
                    .entry(self.forest.node(n).depth)
                    .or_default()
                    .push(n);
                // Affected nodes are deduped, so each node is seeded exactly
                // once; merging only happens during propagation.
                deltas.insert(n, seed);
            }
        }

        self.propagate_and_stage(deltas, by_depth)
    }

    /// The staging phase for a whole batch: steps 0–3 with every per-update
    /// quantity replaced by its merged batch counterpart (see
    /// [`ContinuousEngine::apply_batch`] on this type). Tiny batches take
    /// the single-update path — the batched machinery only pays off once
    /// builds are shared.
    fn stage_updates(&mut self, updates: &[Update]) -> StagedTric {
        match updates {
            [] => return StagedTric::default(),
            [u] => return self.stage_update(*u),
            _ => {}
        }
        self.stats.updates_processed += updates.len() as u64;

        // Step 0: route the whole batch to the per-edge materialized views,
        // collecting the merged delta relation of every affected edge.
        let edge_deltas = self.views.apply_batch(updates);
        if edge_deltas.is_empty() {
            return StagedTric::default();
        }

        // Step 1: locate the affected trie nodes once per batch, so the
        // edgeInd lookups are shared by every update with the same root.
        self.scratch.reset();
        for ge in edge_deltas.keys() {
            self.scratch
                .affected_nodes
                .extend_from_slice(self.forest.nodes_for_edge(ge));
        }
        self.scratch.affected_nodes.sort_unstable();
        self.scratch.affected_nodes.dedup();
        if self.scratch.affected_nodes.is_empty() {
            return StagedTric::default();
        }

        let caching = self.config.caching;

        // Step 2a: seed a delta at every affected node from its parent's
        // pre-batch materialized view joined with the merged batch delta of
        // the node's edge. Seeds against the *old* parent views plus
        // propagation against the *new* edge views cover exactly the new
        // path rows: new(p)⋈new(e) − old(p)⋈old(e) =
        // old(p)⋈Δe ∪ Δp⋈new(e), and the second term is what the
        // propagation step below produces.
        let mut deltas: FxHashMap<NodeId, Relation> = FxHashMap::default();
        let mut by_depth: BTreeMap<usize, Vec<NodeId>> = BTreeMap::new();
        for i in 0..self.scratch.affected_nodes.len() {
            let n = self.scratch.affected_nodes[i];
            let (parent, edge) = {
                let node = self.forest.node(n);
                (node.parent, node.edge)
            };
            let Some(delta_e) = edge_deltas.get(&edge) else {
                continue;
            };
            let seed = match parent {
                // Root node: the seed is exactly the edge's batch delta.
                None => delta_e.clone(),
                Some(p) => {
                    let parent_view = &self.forest.node(p).mat_view;
                    // Distinct parent rows x distinct edge-delta tuples give
                    // distinct seed rows; skip the dedup index.
                    let mut seed = Relation::new_distinct(parent_view.arity() + 1);
                    if !parent_view.is_empty() {
                        let last = parent_view.arity() - 1;
                        let row_buf = &mut self.scratch.row_buf;
                        row_buf.clear();
                        row_buf.resize(parent_view.arity() + 1, Sym(0));
                        let build_storage;
                        let build = if caching {
                            self.cache.get_or_build(parent_view, &[last])
                        } else {
                            build_storage = JoinBuild::build(parent_view, &[last]);
                            &build_storage
                        };
                        for drow in delta_e.iter() {
                            build.probe_each(parent_view, &[drow[0]], |idx| {
                                let prow = parent_view.row(idx);
                                row_buf[..prow.len()].copy_from_slice(prow);
                                row_buf[prow.len()] = drow[1];
                                seed.append_distinct(row_buf);
                            });
                        }
                    }
                    seed
                }
            };
            if !seed.is_empty() {
                by_depth
                    .entry(self.forest.node(n).depth)
                    .or_default()
                    .push(n);
                // Affected nodes are deduped, so each node is seeded exactly
                // once; merging only happens during propagation.
                deltas.insert(n, seed);
            }
        }

        self.propagate_and_stage(deltas, by_depth)
    }

    /// Steps 2b–3 of the answering algorithm, shared by the single-update and
    /// batched front-ends: propagate the seeded deltas down the affected
    /// sub-tries, append the truly new rows to the node views, and capture
    /// everything the deferred covering-path join pass needs — the truly-new
    /// relations, the affected queries, and the post-append version
    /// watermarks of their end-node views. The seeds must have been computed
    /// against **pre-append** node views; this method performs all view
    /// appends itself.
    fn propagate_and_stage(
        &mut self,
        mut deltas: FxHashMap<NodeId, Relation>,
        mut by_depth: BTreeMap<usize, Vec<NodeId>>,
    ) -> StagedTric {
        let caching = self.config.caching;

        // Step 2b: propagate deltas down the affected sub-tries in depth
        // order, pruning branches whose delta is empty (Fig. 10). Each
        // node's delta is taken out of the map while its children are
        // extended (and put back afterwards for step 3), so nothing is
        // cloned; the processed set is a hash set, not a linear scan.
        while let Some((&depth, _)) = by_depth.iter().next() {
            let level = by_depth.remove(&depth).unwrap_or_default();
            for n in level {
                if !self.scratch.processed.insert(n) {
                    continue;
                }
                let delta = match deltas.remove(&n) {
                    Some(d) if !d.is_empty() => d,
                    Some(d) => {
                        deltas.insert(n, d);
                        continue;
                    }
                    None => continue,
                };
                for ci in 0..self.forest.node(n).children.len() {
                    let c = self.forest.node(n).children[ci];
                    let child_edge = self.forest.node(c).edge;
                    let Some(edge_view) = self.views.get(&child_edge) else {
                        continue;
                    };
                    let child_delta = Self::extend_delta(
                        caching,
                        &mut self.cache,
                        &delta,
                        edge_view,
                        &mut self.scratch.row_buf,
                    );
                    if child_delta.is_empty() {
                        continue; // prune this sub-trie
                    }
                    by_depth
                        .entry(self.forest.node(c).depth)
                        .or_default()
                        .push(c);
                    match deltas.entry(c) {
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            e.get_mut().extend_from(&child_delta);
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(child_delta);
                        }
                    }
                }
                deltas.insert(n, delta);
            }
        }

        // Step 3: append the deltas to the per-node materialized views.
        // (Done after propagation so seeds are computed against pre-update
        // views — the standard incremental-join derivative.) Because node
        // views maintain the invariant `matV[n] = prefix-path join`, a delta
        // row derived from at least one new edge row is almost never already
        // present, so the common case moves the whole delta out as the
        // truly-new set without re-hashing a single row; only when a
        // duplicate does appear is a filtered copy built.
        let mut truly_new: FxHashMap<NodeId, Relation> = FxHashMap::default();
        for (n, delta) in deltas.drain() {
            let view = &mut self.forest.node_mut(n).mat_view;
            // Lazily switch to a duplicate mask on the first rejected row.
            let mut dup_mask: Option<Vec<bool>> = None;
            for (i, row) in delta.iter().enumerate() {
                let fresh = view.push(row);
                if !fresh && dup_mask.is_none() {
                    // Rows before `i` were all fresh.
                    dup_mask = Some(vec![false; delta.len()]);
                }
                if let Some(mask) = &mut dup_mask {
                    mask[i] = !fresh;
                }
            }
            match dup_mask {
                None => {
                    if !delta.is_empty() {
                        truly_new.insert(n, delta);
                    }
                }
                Some(mask) => {
                    let mut new_rows = Relation::new(delta.arity());
                    for (i, row) in delta.iter().enumerate() {
                        if !mask[i] {
                            new_rows.push(row);
                        }
                    }
                    if !new_rows.is_empty() {
                        truly_new.insert(n, new_rows);
                    }
                }
            }
        }

        // Capture the deferred answer pass: the affected queries and the
        // post-append version watermark of every end-node view any of them
        // will join against. Freezing the watermarks here is what allows
        // later batches to be staged (appending past the watermarks) before
        // this batch is answered.
        let mut affected_queries: Vec<QueryId> = Vec::new();
        for n in truly_new.keys() {
            for reg in &self.forest.node(*n).registrations {
                affected_queries.push(reg.query);
            }
        }
        affected_queries.sort_unstable();
        affected_queries.dedup();

        let mut watermarks: FxHashMap<NodeId, usize> = FxHashMap::default();
        for &qid in &affected_queries {
            for path in &self.queries[qid.index()].paths {
                watermarks.insert(
                    path.end_node,
                    self.forest.node(path.end_node).mat_view.version(),
                );
            }
        }

        StagedTric {
            truly_new,
            affected_queries,
            watermarks,
        }
    }

    /// Step 4 — the deferred covering-path join pass: per affected query,
    /// join the truly-new delta of each affected covering path with the
    /// other paths' views **frozen at the staged watermarks** (Fig. 8,
    /// lines 8–13, restricted to new embeddings). Rows appended to the views
    /// by batches staged after this one sit past the watermarks and are
    /// invisible, so the report is identical whether the answer runs
    /// immediately or after any number of later stages. Bindings borrow the
    /// deltas/views and each path's vertex sequence — nothing is copied to
    /// describe a join.
    fn answer_tric(&mut self, staged: StagedTric) -> MatchReport {
        let StagedTric {
            truly_new,
            affected_queries,
            watermarks,
        } = staged;

        let counts = join_covering_paths(
            affected_queries
                .iter()
                .map(|qid| (*qid, self.queries[qid.index()].paths.as_slice())),
            |end_node| truly_new.get(&end_node),
            |end_node| {
                let view = &self.forest.node(end_node).mat_view;
                let watermark = watermarks
                    .get(&end_node)
                    .copied()
                    .unwrap_or_else(|| view.version());
                Some((view, watermark))
            },
        );

        let report = MatchReport::from_counts(counts);
        self.stats.notifications += report.len() as u64;
        self.stats.embeddings += report.total_embeddings();
        report
    }

    /// The retraction mirror of the staged answering pipeline: one
    /// [`TricEngine::stage_retractions`] staging pass followed immediately
    /// by the deferred join — so the eager path and the pipelined path are
    /// the same code and equivalent by construction.
    fn retract_batch(&mut self, updates: &[Update]) -> MatchReport {
        let token = self.stage_retractions(updates);
        self.answer_retract(token)
    }

    /// The staging half of a retraction run:
    ///
    /// 1. Collect the removed rows per generic edge **without** touching the
    ///    views ([`EdgeViewStore::remove_deltas`]).
    /// 2. Locate the affected trie nodes — every node whose own edge lost
    ///    rows plus all of its descendants, since a descendant's prefix join
    ///    runs through the removed rows.
    /// 3. Per affected node, derive the rows its materialized view loses as
    ///    the deletion delta of the node's root→node prefix path against the
    ///    still-pre-removal views: by the deletion-delta property of
    ///    [`views::delta_path_relation`] this is exactly
    ///    `matV_before − matV_after`.
    /// 4. **Freeze** the pre-removal end-node views of every affected query
    ///    into generation-pinned [`Relation::snapshot_owned`] snapshots —
    ///    the chunk-sharing `Arc` pins keep them valid across any
    ///    compaction.
    /// 5. **Commit**, still at stage time: [`Relation::retract_rows`] on
    ///    each affected node view and [`EdgeViewStore::retract_deltas`] on
    ///    the edge views, compacting each touched relation into its next
    ///    generation (stale cached join builds are rejected by their
    ///    generation stamp). Later staged batches route against the
    ///    post-removal state, exactly as sequential execution would.
    ///
    /// The expensive part — joining the removed rows against the frozen
    /// snapshots to count disappearing embeddings — is deferred into the
    /// returned token ([`TricEngine::answer_retract`]). Requires every
    /// earlier staged token to have been answered or detached (see the
    /// staging contract on [`ContinuousEngine::stage_batch`]).
    fn stage_retractions(&mut self, updates: &[Update]) -> StagedRetractTric {
        self.stats.updates_processed += updates.len() as u64;

        let removed = self.views.remove_deltas(updates);
        if removed.is_empty() {
            return StagedRetractTric::default();
        }

        // Step 2: the affected sub-forest, depth-first from the edge's nodes.
        let mut stack: Vec<NodeId> = Vec::new();
        let mut seen: FxHashSet<NodeId> = FxHashSet::default();
        for ge in removed.keys() {
            for &n in self.forest.nodes_for_edge(ge) {
                if seen.insert(n) {
                    stack.push(n);
                }
            }
        }
        let mut affected_nodes: Vec<NodeId> = Vec::new();
        while let Some(n) = stack.pop() {
            affected_nodes.push(n);
            for &c in &self.forest.node(n).children {
                if seen.insert(c) {
                    stack.push(c);
                }
            }
        }

        // Step 3: per-node removed rows from the pre-removal edge views.
        let caching = self.config.caching;
        let mut node_removed: FxHashMap<NodeId, Relation> = FxHashMap::default();
        let mut prefix: Vec<GenericEdge> = Vec::new();
        for &n in &affected_nodes {
            prefix.clear();
            let mut cur = Some(n);
            while let Some(m) = cur {
                let node = self.forest.node(m);
                prefix.push(node.edge);
                cur = node.parent;
            }
            prefix.reverse();
            let d = views::delta_path_relation(
                &self.views,
                &prefix,
                &removed,
                BuildCache::from(caching.then_some(&mut self.cache)),
                &mut self.scratch.row_buf,
            );
            if !d.is_empty() {
                node_removed.insert(n, d);
            }
        }

        // A query loses embeddings iff some covering path's end node lost
        // view rows (an embedding disappears exactly when at least one of
        // its per-path tuples does, and the cross-path union dedups).
        let mut affected_queries: Vec<QueryId> = Vec::new();
        for n in node_removed.keys() {
            for reg in &self.forest.node(*n).registrations {
                affected_queries.push(reg.query);
            }
        }
        affected_queries.sort_unstable();
        affected_queries.dedup();

        // Step 4: freeze the pre-removal answer inputs. Every end-node view
        // an affected query's join pass will read is snapshot at its full
        // pre-removal length; the snapshots share frozen chunks by `Arc`.
        let mut frozen: FxHashMap<NodeId, Relation> = FxHashMap::default();
        for &qid in &affected_queries {
            for path in &self.queries[qid.index()].paths {
                frozen.entry(path.end_node).or_insert_with(|| {
                    let view = &self.forest.node(path.end_node).mat_view;
                    view.snapshot_owned(view.version())
                });
            }
        }

        // Step 5: commit the removal everywhere, at stage time.
        for (n, d) in &node_removed {
            self.forest.node_mut(*n).mat_view.retract_rows(d);
        }
        self.views.retract_deltas(&removed);

        StagedRetractTric {
            node_removed,
            affected_queries,
            frozen,
        }
    }

    /// The deferred half of a retraction run: join each affected query's
    /// removed rows against the token's frozen pre-removal snapshots —
    /// the very same [`join_covering_paths`] pass as insertion, counting
    /// disappearing embeddings instead of new ones.
    fn answer_retract(&mut self, token: StagedRetractTric) -> MatchReport {
        let report = answer_retract_detached(
            &token.affected_queries,
            &self.queries,
            &token.node_removed,
            &token.frozen,
        );
        self.stats.notifications += report.len() as u64;
        self.stats.retracted += report.total_retracted();
        report
    }
}

/// One covering path of a query as [`join_covering_paths`] sees it: the
/// trie node its materialized view lives at, and the query vertex each
/// view column binds.
trait CoveringPathRef {
    fn end_node(&self) -> NodeId;
    fn vertices(&self) -> &[QVertexId];
}

impl CoveringPathRef for PathInfo {
    fn end_node(&self) -> NodeId {
        self.end_node
    }
    fn vertices(&self) -> &[QVertexId] {
        &self.vertices
    }
}

/// Step 4's join loop (Fig. 8, lines 8–13, restricted to new embeddings),
/// shared by the engine-resident pass — live views bounded by the staged
/// watermarks — and the detached cross-thread pass — pre-cut
/// [`Relation::snapshot_owned`] views, whose limit is simply their length.
/// Per affected query, each path's truly-new delta (resolved by `delta_of`)
/// joins the other paths' views (resolved with their visible-row limit by
/// `other_of`; `None` or a zero limit means the path has no tuples and the
/// query cannot match), and the distinct embeddings union across paths.
fn join_covering_paths<'a, P, Q, D, F>(queries: Q, delta_of: D, other_of: F) -> Vec<(QueryId, u64)>
where
    P: CoveringPathRef + 'a,
    Q: Iterator<Item = (QueryId, &'a [P])>,
    D: Fn(NodeId) -> Option<&'a Relation>,
    F: Fn(NodeId) -> Option<(&'a Relation, usize)>,
{
    let mut counts: Vec<(QueryId, u64)> = Vec::new();
    let mut bindings: Vec<PathBinding<'a>> = Vec::new();
    for (qid, paths) in queries {
        // Accumulate distinct new embeddings across affected paths.
        let mut embeddings: Option<Relation> = None;
        for (i, path) in paths.iter().enumerate() {
            let Some(delta) = delta_of(path.end_node()) else {
                continue; // this covering path gained nothing new
            };
            bindings.clear();
            bindings.push(PathBinding::new(delta, path.vertices()));
            let mut all_present = true;
            for (j, other) in paths.iter().enumerate() {
                if i == j {
                    continue;
                }
                match other_of(other.end_node()) {
                    Some((view, limit)) if limit > 0 => {
                        bindings.push(PathBinding::at_version(view, other.vertices(), limit));
                    }
                    _ => {
                        all_present = false;
                        break;
                    }
                }
            }
            if !all_present {
                continue;
            }
            if let Some(result) = join_paths(&bindings) {
                let canon = result.canonicalize();
                match &mut embeddings {
                    None => embeddings = Some(canon.rel),
                    Some(acc) => {
                        acc.extend_from(&canon.rel);
                    }
                }
            }
        }
        if let Some(emb) = embeddings {
            if !emb.is_empty() {
                counts.push((qid, emb.len() as u64));
            }
        }
    }
    counts
}

/// Step 4 over detached state ([`join_covering_paths`] with owned inputs):
/// the staged truly-new deltas, the `Arc`-shared query table (indexed by
/// the affected query ids), and the end-node views frozen at the staged
/// watermarks — an empty frozen view is the `watermark == 0` case (the
/// query cannot match yet).
fn answer_tric_detached(
    affected_queries: &[QueryId],
    queries: &[QueryInfo],
    truly_new: &FxHashMap<NodeId, Relation>,
    frozen: &FxHashMap<NodeId, Relation>,
) -> MatchReport {
    MatchReport::from_counts(join_covering_paths(
        affected_queries
            .iter()
            .map(|qid| (*qid, queries[qid.index()].paths.as_slice())),
        |end_node| truly_new.get(&end_node),
        |end_node| frozen.get(&end_node).map(|view| (view, view.len())),
    ))
}

/// The retraction mirror of [`answer_tric_detached`]: the same covering-path
/// join over owned state, but the deltas are the removed rows, the snapshots
/// are pre-removal, and the counts report disappearing embeddings. Safe on
/// any thread at any later time — the generation-pinned snapshots outlive
/// the commit that already ran at stage time.
fn answer_retract_detached(
    affected_queries: &[QueryId],
    queries: &[QueryInfo],
    node_removed: &FxHashMap<NodeId, Relation>,
    frozen: &FxHashMap<NodeId, Relation>,
) -> MatchReport {
    MatchReport::from_retraction_counts(join_covering_paths(
        affected_queries
            .iter()
            .map(|qid| (*qid, queries[qid.index()].paths.as_slice())),
        |end_node| node_removed.get(&end_node),
        |end_node| frozen.get(&end_node).map(|view| (view, view.len())),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsm_core::interner::SymbolTable;

    struct Fixture {
        symbols: SymbolTable,
    }

    impl Fixture {
        fn new() -> Self {
            Fixture {
                symbols: SymbolTable::new(),
            }
        }
        fn q(&mut self, text: &str) -> QueryPattern {
            QueryPattern::parse(text, &mut self.symbols).unwrap()
        }
        fn u(&mut self, label: &str, src: &str, tgt: &str) -> Update {
            Update::new(
                self.symbols.intern(label),
                self.symbols.intern(src),
                self.symbols.intern(tgt),
            )
        }
    }

    fn engines() -> Vec<TricEngine> {
        vec![TricEngine::tric(), TricEngine::tric_plus()]
    }

    #[test]
    fn single_edge_query_matches_immediately() {
        for mut engine in engines() {
            let mut f = Fixture::new();
            let q = f.q("?a -knows-> ?b");
            let qid = engine.register_query(&q).unwrap();
            let report = engine.apply_update(f.u("knows", "alice", "bob"));
            assert_eq!(report.satisfied_queries(), vec![qid], "{}", engine.name());
            assert_eq!(report.matches[0].new_embeddings, 1);
        }
    }

    #[test]
    fn chain_query_matches_only_when_complete() {
        for mut engine in engines() {
            let mut f = Fixture::new();
            let q = f.q("?a -knows-> ?b; ?b -worksAt-> acme");
            let qid = engine.register_query(&q).unwrap();
            assert!(engine.apply_update(f.u("knows", "alice", "bob")).is_empty());
            assert!(engine
                .apply_update(f.u("worksAt", "carol", "acme"))
                .is_empty());
            let report = engine.apply_update(f.u("worksAt", "bob", "acme"));
            assert_eq!(report.satisfied_queries(), vec![qid], "{}", engine.name());
        }
    }

    #[test]
    fn out_of_order_arrival_still_matches() {
        for mut engine in engines() {
            let mut f = Fixture::new();
            let q = f.q("?a -x-> ?b; ?b -y-> ?c; ?c -z-> ?d");
            let qid = engine.register_query(&q).unwrap();
            // Arrive in reverse order: the chain only completes on the last one.
            assert!(engine.apply_update(f.u("z", "c1", "d1")).is_empty());
            assert!(engine.apply_update(f.u("y", "b1", "c1")).is_empty());
            let report = engine.apply_update(f.u("x", "a1", "b1"));
            assert_eq!(report.satisfied_queries(), vec![qid], "{}", engine.name());
        }
    }

    #[test]
    fn constants_restrict_matches() {
        for mut engine in engines() {
            let mut f = Fixture::new();
            let q = f.q("?p -checksIn-> rio");
            let qid = engine.register_query(&q).unwrap();
            assert!(engine
                .apply_update(f.u("checksIn", "ann", "oslo"))
                .is_empty());
            let report = engine.apply_update(f.u("checksIn", "ann", "rio"));
            assert_eq!(report.satisfied_queries(), vec![qid]);
        }
    }

    #[test]
    fn duplicate_updates_do_not_rereport() {
        for mut engine in engines() {
            let mut f = Fixture::new();
            let q = f.q("?a -knows-> ?b");
            engine.register_query(&q).unwrap();
            let u = f.u("knows", "a", "b");
            assert_eq!(engine.apply_update(u).len(), 1);
            assert_eq!(engine.apply_update(u).len(), 0, "{}", engine.name());
        }
    }

    #[test]
    fn multiple_queries_shared_prefix_all_match() {
        for mut engine in engines() {
            let mut f = Fixture::new();
            let q1 = f.q("?f -hasMod-> ?p; ?p -posted-> pst1");
            let q2 = f.q("?f -hasMod-> ?p; ?p -posted-> pst2");
            let q3 = f.q("?f -hasMod-> ?p");
            let id1 = engine.register_query(&q1).unwrap();
            let id2 = engine.register_query(&q2).unwrap();
            let id3 = engine.register_query(&q3).unwrap();

            let r = engine.apply_update(f.u("hasMod", "frank", "paula"));
            assert_eq!(r.satisfied_queries(), vec![id3]);

            let r = engine.apply_update(f.u("posted", "paula", "pst1"));
            assert_eq!(r.satisfied_queries(), vec![id1]);

            let r = engine.apply_update(f.u("posted", "paula", "pst2"));
            assert_eq!(r.satisfied_queries(), vec![id2]);

            // The two 2-edge queries share their hasMod prefix in one trie.
            assert!(engine.num_trie_nodes() <= 3);
        }
    }

    #[test]
    fn unregistered_query_stops_reporting_and_shared_nodes_survive() {
        for mut engine in engines() {
            let mut f = Fixture::new();
            let q1 = f.q("?f -hasMod-> ?p; ?p -posted-> pst1");
            let q2 = f.q("?f -hasMod-> ?p; ?p -posted-> pst2");
            let id1 = engine.register_query(&q1).unwrap();
            let id2 = engine.register_query(&q2).unwrap();
            engine.apply_update(f.u("hasMod", "frank", "paula"));

            engine.unregister_query(id1).unwrap();
            assert_eq!(engine.num_queries(), 1, "{}", engine.name());
            assert!(!engine.is_registered(id1));
            assert!(engine.is_registered(id2));

            // q1's private leaf died with it; the shared hasMod prefix
            // survives and q2 still answers over the shared history.
            assert!(engine
                .apply_update(f.u("posted", "paula", "pst1"))
                .is_empty());
            let r = engine.apply_update(f.u("posted", "paula", "pst2"));
            assert_eq!(r.satisfied_queries(), vec![id2], "{}", engine.name());

            // Double-unregister reports the tombstone instead of corrupting.
            assert_eq!(
                engine.unregister_query(id1),
                Err(Error::UnknownQuery(id1.0))
            );
            assert_eq!(
                engine.unregister_query(QueryId(99)),
                Err(Error::UnknownQuery(99))
            );
        }
    }

    #[test]
    fn reregistration_after_unregister_gets_a_fresh_id_and_backfills() {
        for mut engine in engines() {
            let mut f = Fixture::new();
            let q = f.q("?a -knows-> ?b");
            let id0 = engine.register_query(&q).unwrap();
            assert_eq!(engine.apply_update(f.u("knows", "a", "b")).len(), 1);

            engine.unregister_query(id0).unwrap();
            assert_eq!(engine.num_queries(), 0);
            assert_eq!(engine.num_trie_nodes(), 0, "{}", engine.name());
            assert!(
                engine.apply_update(f.u("knows", "c", "d")).is_empty(),
                "{}: unregistered query must stop reporting",
                engine.name()
            );

            // The freed slot is never reused; the new trie node backfills
            // from the still-maintained edge views, so only the post-
            // registration edge is reported as new.
            let id1 = engine.register_query(&f.q("?a -knows-> ?b")).unwrap();
            assert_eq!(id1, QueryId(1));
            assert_eq!(engine.next_query_id(), QueryId(2));
            let r = engine.apply_update(f.u("knows", "e", "f"));
            assert_eq!(r.satisfied_queries(), vec![id1], "{}", engine.name());
            assert_eq!(r.matches[0].new_embeddings, 1);
        }
    }

    #[test]
    fn star_query_with_multiple_paths() {
        for mut engine in engines() {
            let mut f = Fixture::new();
            let q = f.q("?c -a-> ?x; ?c -b-> ?y");
            let qid = engine.register_query(&q).unwrap();
            assert!(engine.apply_update(f.u("a", "hub", "x1")).is_empty());
            let report = engine.apply_update(f.u("b", "hub", "y1"));
            assert_eq!(report.satisfied_queries(), vec![qid], "{}", engine.name());
            // A second leaf for the other branch creates one more embedding.
            let report = engine.apply_update(f.u("a", "hub", "x2"));
            assert_eq!(report.satisfied_queries(), vec![qid]);
            assert_eq!(report.matches[0].new_embeddings, 1);
        }
    }

    #[test]
    fn cycle_query_requires_closure() {
        for mut engine in engines() {
            let mut f = Fixture::new();
            let q = f.q("?a -x-> ?b; ?b -y-> ?c; ?c -z-> ?a");
            let qid = engine.register_query(&q).unwrap();
            assert!(engine.apply_update(f.u("x", "1", "2")).is_empty());
            assert!(engine.apply_update(f.u("y", "2", "3")).is_empty());
            // A z-edge that does not close the cycle must not match.
            assert!(engine.apply_update(f.u("z", "3", "9")).is_empty());
            let report = engine.apply_update(f.u("z", "3", "1"));
            assert_eq!(report.satisfied_queries(), vec![qid], "{}", engine.name());
        }
    }

    #[test]
    fn repeated_variable_self_loop() {
        for mut engine in engines() {
            let mut f = Fixture::new();
            let q = f.q("?a -follows-> ?a");
            let qid = engine.register_query(&q).unwrap();
            assert!(engine.apply_update(f.u("follows", "x", "y")).is_empty());
            let report = engine.apply_update(f.u("follows", "x", "x"));
            assert_eq!(report.satisfied_queries(), vec![qid]);
        }
    }

    #[test]
    fn late_query_registration_sees_existing_views() {
        for mut engine in engines() {
            let mut f = Fixture::new();
            let q1 = f.q("?a -knows-> ?b");
            engine.register_query(&q1).unwrap();
            engine.apply_update(f.u("knows", "a", "b"));

            // Register a longer query that shares the already-populated
            // `knows` view; its new trie node must catch up.
            let q2 = f.q("?a -knows-> ?b; ?b -knows-> ?c");
            let id2 = engine.register_query(&q2).unwrap();
            let report = engine.apply_update(f.u("knows", "b", "c"));
            assert!(
                report.satisfied_queries().contains(&id2),
                "{}",
                engine.name()
            );
        }
    }

    #[test]
    fn embedding_counts_are_exact() {
        for mut engine in engines() {
            let mut f = Fixture::new();
            let q = f.q("?a -knows-> ?b; ?b -likes-> ?c");
            engine.register_query(&q).unwrap();
            engine.apply_update(f.u("knows", "a1", "b"));
            engine.apply_update(f.u("knows", "a2", "b"));
            // Two knowers of b: the likes edge completes two embeddings.
            let report = engine.apply_update(f.u("likes", "b", "c"));
            assert_eq!(report.matches.len(), 1);
            assert_eq!(report.matches[0].new_embeddings, 2, "{}", engine.name());
        }
    }

    #[test]
    fn retraction_reports_disappearing_matches() {
        for mut engine in engines() {
            let mut f = Fixture::new();
            let q = f.q("?a -x-> ?b; ?b -y-> ?c");
            let qid = engine.register_query(&q).unwrap();
            let ux = f.u("x", "a1", "b1");
            let uy = f.u("y", "b1", "c1");
            engine.apply_update(ux);
            assert_eq!(engine.apply_update(uy).len(), 1, "{}", engine.name());

            // Retracting the *root* edge exercises descendant propagation:
            // the x→y trie node's view loses its row too.
            let report = engine.apply_update(ux.inverted());
            assert_eq!(report.matches.len(), 1, "{}", engine.name());
            assert_eq!(report.matches[0].query, qid);
            assert_eq!(report.matches[0].retracted_embeddings, 1);
            assert_eq!(report.matches[0].new_embeddings, 0);
            assert_eq!(engine.stats().retracted, 1);

            // The match reappears when the edge comes back — which only
            // works if the intermediate node views were really pruned.
            let revived = engine.apply_update(ux);
            assert_eq!(revived.matches[0].new_embeddings, 1, "{}", engine.name());
            assert!(engine.apply_update(ux.inverted()).total_retracted() == 1);
            assert!(engine.apply_update(uy.inverted()).is_empty());
        }
    }

    #[test]
    fn retracting_absent_edges_is_a_noop() {
        for mut engine in engines() {
            let mut f = Fixture::new();
            let q = f.q("?a -x-> ?b");
            engine.register_query(&q).unwrap();
            let phantom = f.u("x", "no", "pe").inverted();
            assert!(engine.apply_update(phantom).is_empty(), "{}", engine.name());
            engine.apply_update(f.u("x", "a", "b"));
            let gone = f.u("x", "a", "b").inverted();
            let report = engine.apply_batch(&[gone, gone]);
            assert_eq!(report.total_retracted(), 1, "{}", engine.name());
            assert!(engine.apply_update(gone).is_empty(), "{}", engine.name());
        }
    }

    #[test]
    fn mixed_batch_reports_both_signs_without_cancelling() {
        for mut engine in engines() {
            let mut f = Fixture::new();
            let q = f.q("?a -x-> ?b; ?b -y-> ?c");
            engine.register_query(&q).unwrap();
            let ux = f.u("x", "a1", "b1");
            let uy = f.u("y", "b1", "c1");
            let report = engine.apply_batch(&[ux, uy, ux.inverted()]);
            assert_eq!(report.total_embeddings(), 1, "{}", engine.name());
            assert_eq!(report.total_retracted(), 1, "{}", engine.name());
        }
    }

    #[test]
    fn staged_retraction_runs_defer_and_survive_later_stages() {
        for mut engine in engines() {
            let mut f = Fixture::new();
            let q = f.q("?a -x-> ?b; ?b -y-> ?c");
            engine.register_query(&q).unwrap();
            let ux = f.u("x", "a", "b");
            let uy = f.u("y", "b", "c");
            assert_eq!(engine.apply_batch(&[ux, uy]).total_embeddings(), 1);
            // The retraction run stages a deferred token; its commit has
            // already run.
            let t1 = engine.stage_batch(&[uy.inverted()]);
            assert!(
                !t1.is_immediate(),
                "{}: retraction runs must defer",
                engine.name()
            );
            // A later insert run stages (re-creating the embedding) before
            // the retraction is answered. Because the retraction committed
            // at stage time, the re-insert routes against post-removal
            // views and is truly new; because the retraction froze
            // generation-pinned pre-removal snapshots, its deferred answer
            // is unaffected by this later append.
            let t2 = engine.stage_batch(&[uy]);
            let r1 = engine.answer_staged(t1);
            assert_eq!(r1.total_retracted(), 1, "{}", engine.name());
            assert_eq!(r1.total_embeddings(), 0, "{}", engine.name());
            let r2 = engine.answer_staged(t2);
            assert_eq!(
                r2.total_embeddings(),
                1,
                "{}: the re-insert must be truly new again",
                engine.name()
            );
            assert_eq!(engine.stats().retracted, 1, "{}", engine.name());
        }
    }

    #[test]
    fn staging_a_mixed_sign_batch_falls_back_to_immediate() {
        for mut engine in engines() {
            let mut f = Fixture::new();
            let q = f.q("?a -x-> ?b");
            engine.register_query(&q).unwrap();
            let u = f.u("x", "a", "b");
            let token = engine.stage_batch(&[u, u.inverted()]);
            assert!(token.is_immediate(), "{}", engine.name());
            let report = engine.answer_staged(token);
            assert_eq!(report.total_embeddings(), 1, "{}", engine.name());
            assert_eq!(report.total_retracted(), 1, "{}", engine.name());
        }
    }

    #[test]
    fn tric_and_tric_plus_agree_on_random_mixed_streams() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(13);
        let mut f = Fixture::new();
        let queries = vec![
            f.q("?a -e0-> ?b; ?b -e1-> ?c"),
            f.q("?a -e1-> ?b; ?b -e2-> ?c; ?c -e0-> ?a"),
            f.q("?h -e0-> ?x; ?h -e2-> ?y"),
            f.q("?a -e0-> v3"),
            f.q("?a -e2-> ?a"),
        ];
        let mut tric = TricEngine::tric();
        let mut plus = TricEngine::tric_plus();
        for q in &queries {
            tric.register_query(q).unwrap();
            plus.register_query(q).unwrap();
        }
        let mut live: Vec<Update> = Vec::new();
        for step in 0..500 {
            let u = if !live.is_empty() && rng.gen_bool(0.4) {
                live.swap_remove(rng.gen_range(0..live.len())).inverted()
            } else {
                let label = format!("e{}", rng.gen_range(0..3));
                let src = format!("v{}", rng.gen_range(0..8));
                let tgt = format!("v{}", rng.gen_range(0..8));
                let u = f.u(&label, &src, &tgt);
                if !live.contains(&u) {
                    live.push(u);
                }
                u
            };
            let a = tric.apply_update(u);
            let b = plus.apply_update(u);
            assert_eq!(a, b, "TRIC and TRIC+ diverged at #{step} on {u:?}");
        }
        assert_eq!(tric.stats(), plus.stats());
    }

    #[test]
    fn net_counts_match_a_from_scratch_replay_under_random_deletions() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for caching in [false, true] {
            let mut rng = StdRng::seed_from_u64(67);
            let mut f = Fixture::new();
            let queries = vec![
                f.q("?a -e0-> ?b; ?b -e1-> ?c"),
                f.q("?h -e0-> ?x; ?h -e2-> ?y"),
                f.q("?a -e1-> ?b; ?b -e2-> ?c; ?c -e0-> ?a"),
                f.q("?a -e2-> ?a"),
            ];
            let config = TricConfig { caching };
            let mut engine = TricEngine::with_config(config);
            for q in &queries {
                engine.register_query(q).unwrap();
            }
            let mut live: Vec<Update> = Vec::new();
            let mut stream: Vec<Update> = Vec::new();
            for _ in 0..400 {
                if !live.is_empty() && rng.gen_bool(0.35) {
                    let victim = live.swap_remove(rng.gen_range(0..live.len()));
                    stream.push(victim.inverted());
                } else {
                    let label = format!("e{}", rng.gen_range(0..3));
                    let src = format!("v{}", rng.gen_range(0..7));
                    let tgt = format!("v{}", rng.gen_range(0..7));
                    let u = f.u(&label, &src, &tgt);
                    if !live.contains(&u) {
                        live.push(u);
                    }
                    stream.push(u);
                }
            }
            let mut net: FxHashMap<QueryId, i64> = FxHashMap::default();
            for batch in stream.chunks(5) {
                for m in &engine.apply_batch(batch).matches {
                    *net.entry(m.query).or_default() +=
                        m.new_embeddings as i64 - m.retracted_embeddings as i64;
                }
            }
            net.retain(|_, v| *v != 0);
            let mut fresh = TricEngine::with_config(config);
            for q in &queries {
                fresh.register_query(q).unwrap();
            }
            let mut expected: FxHashMap<QueryId, i64> = FxHashMap::default();
            for m in &fresh.apply_batch(&live).matches {
                *expected.entry(m.query).or_default() += m.new_embeddings as i64;
            }
            expected.retain(|_, v| *v != 0);
            assert_eq!(net, expected, "caching {caching} net counts diverged");
        }
    }

    #[test]
    fn tric_and_tric_plus_agree_on_random_streams() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mut f = Fixture::new();
        let queries = vec![
            f.q("?a -e0-> ?b; ?b -e1-> ?c"),
            f.q("?a -e1-> ?b; ?b -e2-> ?c; ?c -e0-> ?a"),
            f.q("?h -e0-> ?x; ?h -e2-> ?y"),
            f.q("?a -e0-> v3"),
            f.q("?a -e2-> ?a"),
        ];
        let mut tric = TricEngine::tric();
        let mut plus = TricEngine::tric_plus();
        for q in &queries {
            tric.register_query(q).unwrap();
            plus.register_query(q).unwrap();
        }
        for _ in 0..400 {
            let label = format!("e{}", rng.gen_range(0..3));
            let src = format!("v{}", rng.gen_range(0..8));
            let tgt = format!("v{}", rng.gen_range(0..8));
            let u = f.u(&label, &src, &tgt);
            let a = tric.apply_update(u);
            let b = plus.apply_update(u);
            assert_eq!(a, b, "TRIC and TRIC+ diverged on {u:?}");
        }
        assert!(plus.cache_hits() > 0);
        assert_eq!(tric.cache_hits(), 0);
    }

    #[test]
    fn batch_report_equals_merged_sequential_reports() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for chunk in [2usize, 5, 32, 400] {
            for caching in [false, true] {
                let mut rng = StdRng::seed_from_u64(11);
                let mut f = Fixture::new();
                let queries = vec![
                    f.q("?a -e0-> ?b; ?b -e1-> ?c"),
                    f.q("?a -e1-> ?b; ?b -e2-> ?c; ?c -e0-> ?a"),
                    f.q("?h -e0-> ?x; ?h -e2-> ?y"),
                    f.q("?a -e0-> v3"),
                    f.q("?a -e2-> ?a"),
                ];
                let config = TricConfig { caching };
                let mut seq = TricEngine::with_config(config);
                let mut bat = TricEngine::with_config(config);
                for q in &queries {
                    seq.register_query(q).unwrap();
                    bat.register_query(q).unwrap();
                }
                let stream: Vec<Update> = (0..400)
                    .map(|_| {
                        let label = format!("e{}", rng.gen_range(0..3));
                        let src = format!("v{}", rng.gen_range(0..8));
                        let tgt = format!("v{}", rng.gen_range(0..8));
                        f.u(&label, &src, &tgt)
                    })
                    .collect();
                for batch in stream.chunks(chunk) {
                    let mut counts = Vec::new();
                    for &u in batch {
                        let r = seq.apply_update(u);
                        counts.extend(r.matches.iter().map(|m| (m.query, m.new_embeddings)));
                    }
                    let expected = MatchReport::from_counts(counts);
                    let got = bat.apply_batch(batch);
                    assert_eq!(
                        got, expected,
                        "chunk {chunk} caching {caching} diverged on {batch:?}"
                    );
                }
                assert_eq!(seq.stats().updates_processed, bat.stats().updates_processed);
                assert_eq!(seq.stats().embeddings, bat.stats().embeddings);
            }
        }
    }

    #[test]
    fn deferred_answers_survive_later_stages() {
        // The staging contract: answer(N) may run after stage(N+1), …,
        // stage(N+k), and must still report exactly what apply_batch would
        // have — the version watermarks in the token freeze the views. Replay
        // a random stream in chunks, staging the whole window before
        // answering any of it, against a sequential reference.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for caching in [false, true] {
            for window in [2usize, 3, 5] {
                let mut rng = StdRng::seed_from_u64(23);
                let mut f = Fixture::new();
                let queries = vec![
                    f.q("?a -e0-> ?b; ?b -e1-> ?c"),
                    f.q("?a -e1-> ?b; ?b -e2-> ?c; ?c -e0-> ?a"),
                    f.q("?h -e0-> ?x; ?h -e2-> ?y"),
                    f.q("?a -e2-> ?a"),
                ];
                let config = TricConfig { caching };
                let mut reference = TricEngine::with_config(config);
                let mut staged_engine = TricEngine::with_config(config);
                for q in &queries {
                    reference.register_query(q).unwrap();
                    staged_engine.register_query(q).unwrap();
                }
                let stream: Vec<Update> = (0..300)
                    .map(|_| {
                        let label = format!("e{}", rng.gen_range(0..3));
                        let src = format!("v{}", rng.gen_range(0..8));
                        let tgt = format!("v{}", rng.gen_range(0..8));
                        f.u(&label, &src, &tgt)
                    })
                    .collect();
                let chunk = 4usize;
                let batches: Vec<&[Update]> = stream.chunks(chunk).collect();
                for group in batches.chunks(window) {
                    // Stage the whole window first…
                    let tokens: Vec<_> =
                        group.iter().map(|b| staged_engine.stage_batch(b)).collect();
                    // …then answer FIFO, each against its frozen watermarks.
                    for (batch, token) in group.iter().zip(tokens) {
                        let expected = reference.apply_batch(batch);
                        let got = staged_engine.answer_staged(token);
                        assert_eq!(
                            got, expected,
                            "caching {caching} window {window} diverged on {batch:?}"
                        );
                    }
                }
                assert_eq!(reference.stats(), staged_engine.stats());
            }
        }
    }

    #[test]
    fn detached_answers_match_sequential_even_run_out_of_order() {
        // The detachment contract: tasks are self-contained, Send, and may
        // run on any thread in any order after later batches have been
        // staged — each must still report exactly what apply_batch would
        // have. Stage a whole window, detach every token, run the tasks on
        // worker threads in *reverse* order, then compare FIFO.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for caching in [false, true] {
            let mut rng = StdRng::seed_from_u64(41);
            let mut f = Fixture::new();
            let queries = vec![
                f.q("?a -e0-> ?b; ?b -e1-> ?c"),
                f.q("?a -e1-> ?b; ?b -e2-> ?c; ?c -e0-> ?a"),
                f.q("?h -e0-> ?x; ?h -e2-> ?y"),
                f.q("?a -e2-> ?a"),
            ];
            let config = TricConfig { caching };
            let mut reference = TricEngine::with_config(config);
            let mut staged_engine = TricEngine::with_config(config);
            for q in &queries {
                reference.register_query(q).unwrap();
                staged_engine.register_query(q).unwrap();
            }
            let stream: Vec<Update> = (0..240)
                .map(|_| {
                    let label = format!("e{}", rng.gen_range(0..3));
                    let src = format!("v{}", rng.gen_range(0..8));
                    let tgt = format!("v{}", rng.gen_range(0..8));
                    f.u(&label, &src, &tgt)
                })
                .collect();
            let batches: Vec<&[Update]> = stream.chunks(5).collect();
            for group in batches.chunks(4) {
                let tasks: Vec<_> = group
                    .iter()
                    .map(|b| {
                        let token = staged_engine.stage_batch(b);
                        staged_engine.detach_staged(token)
                    })
                    .collect();
                // Run every detached task concurrently on its own thread —
                // completion order is up to the scheduler; reports are
                // gathered back in stage order.
                let handles: Vec<_> = tasks
                    .into_iter()
                    .map(|t| std::thread::spawn(move || t.run()))
                    .collect();
                let reports: Vec<MatchReport> = handles
                    .into_iter()
                    .map(|h| h.join().expect("detached task"))
                    .collect();
                for (batch, report) in group.iter().zip(reports) {
                    let expected = reference.apply_batch(batch);
                    assert_eq!(report, expected, "caching {caching} diverged on {batch:?}");
                    staged_engine.absorb_answered(&report);
                }
            }
            assert_eq!(reference.stats(), staged_engine.stats());
        }
    }

    #[test]
    fn sharded_forest_partitions_by_root_edge() {
        use gsm_core::model::generic::GenericEdge;
        use gsm_core::query::paths::covering_paths;
        use gsm_core::shard::shard_of;

        // Single-path chain queries over distinct labels: each query is
        // shard-local, so its trie must live on exactly the shard that owns
        // its root generic edge — and nowhere else.
        let mut f = Fixture::new();
        let queries: Vec<QueryPattern> = (0..8)
            .map(|i| f.q(&format!("?a -r{i}-> ?b; ?b -s{i}-> ?c")))
            .collect();
        let num_shards = 4;
        let mut sharded = TricEngine::tric_sharded(num_shards);
        let mut plain = TricEngine::tric();
        for q in &queries {
            sharded.register_query(q).unwrap();
            plain.register_query(q).unwrap();
        }
        assert_eq!(sharded.num_spanning_queries(), 0);
        let per_shard_tries: Vec<usize> = sharded.shard_engines().map(|e| e.num_tries()).collect();
        assert_eq!(per_shard_tries.iter().sum::<usize>(), plain.num_tries());
        let per_shard_nodes: Vec<usize> = sharded
            .shard_engines()
            .map(|e| e.num_trie_nodes())
            .collect();
        assert_eq!(
            per_shard_nodes.iter().sum::<usize>(),
            plain.num_trie_nodes()
        );
        // Every root edge's trie sits on the shard `shard_of` assigns.
        for q in &queries {
            for p in covering_paths(q) {
                let root = GenericEdge::from_pattern(&q.edges()[p.edges[0]]);
                let owner = shard_of(&root, num_shards);
                for (s, engine) in sharded.shard_engines().enumerate() {
                    let has = engine.forest().nodes_for_edge(&root).iter().any(|&n| {
                        engine.forest().node(n).depth == 0 && engine.forest().node(n).edge == root
                    });
                    assert_eq!(
                        has,
                        s == owner,
                        "trie for {root:?} on shard {s}, owner {owner}"
                    );
                }
            }
        }
    }

    #[test]
    fn sharded_tric_agrees_with_plain_on_random_streams() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for num_shards in [1usize, 2, 3, 8] {
            let mut rng = StdRng::seed_from_u64(77);
            let mut f = Fixture::new();
            let queries = vec![
                f.q("?a -e0-> ?b; ?b -e1-> ?c"),
                f.q("?a -e1-> ?b; ?b -e2-> ?c; ?c -e0-> ?a"),
                f.q("?h -e0-> ?x; ?h -e2-> ?y"),
                f.q("?a -e0-> v3"),
                f.q("?a -e2-> ?a"),
            ];
            let mut plain = TricEngine::tric_plus();
            let mut sharded = TricEngine::tric_plus_sharded(num_shards);
            for q in &queries {
                let a = plain.register_query(q).unwrap();
                let b = sharded.register_query(q).unwrap();
                assert_eq!(a, b, "query ids must line up");
            }
            for step in 0..400 {
                let label = format!("e{}", rng.gen_range(0..3));
                let src = format!("v{}", rng.gen_range(0..8));
                let tgt = format!("v{}", rng.gen_range(0..8));
                let u = f.u(&label, &src, &tgt);
                let a = plain.apply_update(u);
                let b = sharded.apply_update(u);
                assert_eq!(a, b, "{num_shards} shards diverged at #{step} on {u:?}");
            }
            let (ps, ss) = (plain.stats(), sharded.stats());
            assert_eq!(ps.updates_processed, ss.updates_processed);
            assert_eq!(ps.notifications, ss.notifications);
            assert_eq!(ps.embeddings, ss.embeddings);
            assert!(sharded.heap_bytes() > 0);
        }
    }

    #[test]
    fn sharded_tric_agrees_with_plain_on_random_mixed_streams() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for num_shards in [2usize, 3, 8] {
            let mut rng = StdRng::seed_from_u64(99);
            let mut f = Fixture::new();
            let queries = vec![
                f.q("?a -e0-> ?b; ?b -e1-> ?c"),
                f.q("?a -e1-> ?b; ?b -e2-> ?c; ?c -e0-> ?a"),
                f.q("?h -e0-> ?x; ?h -e2-> ?y"),
                f.q("?a -e0-> v3"),
                f.q("?a -e2-> ?a"),
            ];
            let mut plain = TricEngine::tric_plus();
            let mut sharded = TricEngine::tric_plus_sharded(num_shards);
            for q in &queries {
                let a = plain.register_query(q).unwrap();
                let b = sharded.register_query(q).unwrap();
                assert_eq!(a, b, "query ids must line up");
            }
            // Multi-update batches mixing signs, so the sharded wrapper's
            // sign-run split, eager retraction path and spanning pre-removal
            // join all get exercised against the unsharded engine.
            let mut live: Vec<Update> = Vec::new();
            let mut batch: Vec<Update> = Vec::new();
            for step in 0..250 {
                batch.clear();
                for _ in 0..rng.gen_range(1..4) {
                    let u = if !live.is_empty() && rng.gen_bool(0.4) {
                        live.swap_remove(rng.gen_range(0..live.len())).inverted()
                    } else {
                        let label = format!("e{}", rng.gen_range(0..3));
                        let src = format!("v{}", rng.gen_range(0..8));
                        let tgt = format!("v{}", rng.gen_range(0..8));
                        let u = f.u(&label, &src, &tgt);
                        if !live.contains(&u) {
                            live.push(u);
                        }
                        u
                    };
                    batch.push(u);
                }
                let a = plain.apply_batch(&batch);
                let b = sharded.apply_batch(&batch);
                assert_eq!(a, b, "{num_shards} shards diverged at #{step} on {batch:?}");
            }
            let (ps, ss) = (plain.stats(), sharded.stats());
            assert_eq!(ps.updates_processed, ss.updates_processed);
            assert_eq!(ps.notifications, ss.notifications);
            assert_eq!(ps.embeddings, ss.embeddings);
            assert_eq!(ps.retracted, ss.retracted);
        }
    }

    #[test]
    fn registration_with_staged_tokens_outstanding_is_rejected() {
        use gsm_core::error::Error;
        for num_shards in [1usize, 2] {
            let mut f = Fixture::new();
            let mut sharded = TricEngine::tric_sharded(num_shards);
            let q0 = f.q("?a -e0-> ?b");
            sharded.register_query(&q0).unwrap();
            let staged = sharded.stage_batch(&[f.u("e0", "a", "b")]);
            let q1 = f.q("?a -e1-> ?b");
            match sharded.register_query(&q1) {
                Err(Error::RegistrationWhileStaged(n)) => assert_eq!(n, 1),
                other => panic!("expected RegistrationWhileStaged, got {other:?}"),
            }
            let report = sharded.answer_staged(staged);
            assert_eq!(report.total_embeddings(), 1);
            // The token is consumed, so registration is legal again.
            sharded.register_query(&q1).unwrap();
        }
    }

    #[test]
    fn stats_accumulate() {
        let mut f = Fixture::new();
        let mut engine = TricEngine::tric();
        let q = f.q("?a -knows-> ?b");
        engine.register_query(&q).unwrap();
        engine.apply_update(f.u("knows", "a", "b"));
        engine.apply_update(f.u("knows", "b", "c"));
        let stats = engine.stats();
        assert_eq!(stats.updates_processed, 2);
        assert_eq!(stats.notifications, 2);
        assert_eq!(stats.embeddings, 2);
        assert!(engine.heap_bytes() > 0);
        assert_eq!(engine.num_queries(), 1);
    }
}
