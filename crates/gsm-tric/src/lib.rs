//! # gsm-tric
//!
//! TRIC (TRIe-based Clustering) and its caching variant TRIC+ — the primary
//! contribution of *"Efficient Continuous Multi-Query Processing over Graph
//! Streams"* (Zervakis et al., EDBT 2020).
//!
//! TRIC indexes a database of continuous sub-graph queries by
//!
//! 1. decomposing every query graph pattern into a set of *covering paths*
//!    (provided by [`gsm_core::query::paths`]), and
//! 2. inserting those paths into a forest of tries keyed on *generic edges*
//!    (variables collapsed to `?var`), so that queries sharing structural and
//!    attribute restrictions share trie nodes **and** the materialized views
//!    attached to those nodes.
//!
//! At answering time an incoming edge addition is routed — via constant-time
//! hash lookups — to the trie nodes whose generic edge it satisfies; a delta
//! is seeded there from the parent node's materialized view and propagated
//! down the sub-trie, pruning any branch whose delta becomes empty. Finally,
//! each affected query joins the delta of its affected covering path(s) with
//! the materialized views of its remaining paths to produce the newly created
//! embeddings.
//!
//! TRIC+ (enabled via [`TricConfig`]) additionally keeps the hash tables
//! built for every join and maintains them incrementally instead of
//! rebuilding them on each update.
//!
//! ```
//! use gsm_core::prelude::*;
//! use gsm_core::ContinuousEngine;
//! use gsm_tric::TricEngine;
//!
//! let mut symbols = SymbolTable::new();
//! let query = QueryPattern::parse("?a -knows-> ?b; ?b -worksAt-> acme", &mut symbols).unwrap();
//!
//! let mut engine = TricEngine::tric_plus();
//! let q = engine.register_query(&query).unwrap();
//!
//! let knows = symbols.intern("knows");
//! let works_at = symbols.intern("worksAt");
//! let (alice, bob, acme) = (symbols.intern("alice"), symbols.intern("bob"), symbols.intern("acme"));
//!
//! assert!(engine.apply_update(Update::new(knows, alice, bob)).is_empty());
//! let report = engine.apply_update(Update::new(works_at, bob, acme));
//! assert_eq!(report.satisfied_queries(), vec![q]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod trie;

pub use engine::{TricConfig, TricEngine};
pub use trie::{NodeId, TrieForest, TrieNode};
