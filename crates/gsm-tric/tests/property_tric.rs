//! Property tests for TRIC's incremental maintenance: whatever the stream,
//! the materialized view of every trie node must equal what a from-scratch
//! evaluation of its prefix path would produce, and TRIC must agree with
//! TRIC+ update for update.

use proptest::prelude::*;

use gsm_core::interner::{Sym, SymbolTable};
use gsm_core::model::update::Update;
use gsm_core::query::pattern::QueryPattern;
use gsm_core::ContinuousEngine;
use gsm_tric::TricEngine;

fn fixed_queries(symbols: &mut SymbolTable) -> Vec<QueryPattern> {
    [
        "?a -e0-> ?b; ?b -e1-> ?c",
        "?a -e1-> ?b; ?b -e2-> ?c; ?c -e0-> ?a",
        "?h -e0-> ?x; ?h -e2-> ?y",
        "?a -e0-> v3",
        "?a -e2-> ?a",
        "?a -e0-> ?b; ?b -e0-> ?c; ?c -e1-> ?d",
        "?x -e1-> ?y; ?z -e1-> ?y",
    ]
    .iter()
    .map(|t| QueryPattern::parse(t, symbols).unwrap())
    .collect()
}

fn intern_updates(symbols: &mut SymbolTable, specs: &[(&str, &str, &str)]) -> Vec<Update> {
    specs
        .iter()
        .map(|(l, s, t)| Update::new(symbols.intern(l), symbols.intern(s), symbols.intern(t)))
        .collect()
}

/// Applies `batch` to a fresh pair of engines — one sequentially, one as a
/// single batch — and asserts the batch report equals the merged sequential
/// reports. `history` is replayed on both first.
fn assert_batch_edge_case(
    queries: &[&str],
    history: &[(&str, &str, &str)],
    batch: &[(&str, &str, &str)],
    expected_embeddings: u64,
) {
    for caching in [false, true] {
        let mut symbols = SymbolTable::new();
        let queries: Vec<QueryPattern> = queries
            .iter()
            .map(|q| QueryPattern::parse(q, &mut symbols).unwrap())
            .collect();
        let history = intern_updates(&mut symbols, history);
        let batch = intern_updates(&mut symbols, batch);

        let config = gsm_tric::TricConfig { caching };
        let mut seq = TricEngine::with_config(config);
        let mut bat = TricEngine::with_config(config);
        for q in &queries {
            seq.register_query(q).unwrap();
            bat.register_query(q).unwrap();
        }
        for &u in &history {
            seq.apply_update(u);
            bat.apply_update(u);
        }
        let merged = gsm_core::engine::MatchReport::from_counts(
            batch
                .iter()
                .flat_map(|&u| seq.apply_update(u).matches)
                .map(|m| (m.query, m.new_embeddings))
                .collect(),
        );
        let got = bat.apply_batch(&batch);
        assert_eq!(got, merged, "caching={caching}: batch != merged sequential");
        assert_eq!(
            got.total_embeddings(),
            expected_embeddings,
            "caching={caching}: unexpected embedding count"
        );
    }
}

#[test]
fn duplicate_edges_inside_one_batch_count_once() {
    // The same edge three times in one batch, plus a duplicate of history:
    // exactly one new embedding (from the one genuinely new edge).
    assert_batch_edge_case(
        &["?a -e0-> ?b"],
        &[("e0", "x", "y")],
        &[
            ("e0", "x", "y"), // duplicate of history
            ("e0", "u", "v"), // new
            ("e0", "u", "v"), // duplicate inside the batch
            ("e0", "u", "v"),
        ],
        1,
    );
}

#[test]
fn self_loops_inside_a_batch() {
    // A self-loop query plus a chain through the loop vertex; the batch
    // mixes loop and non-loop edges on the same label.
    assert_batch_edge_case(
        &["?a -e0-> ?a", "?a -e0-> ?b; ?b -e1-> ?c"],
        &[],
        &[
            ("e0", "x", "x"), // satisfies the loop, starts the chain (a=x, b=x)
            ("e0", "x", "y"), // starts the chain only
            ("e1", "x", "z"), // completes chain x -e0-> x -e1-> z
            ("e0", "w", "v"), // unrelated chain prefix, no e1 edge from v
        ],
        // Loop: 1 embedding. Chain: x->x->z completes once the e1 edge lands.
        2,
    );
}

#[test]
fn batch_that_completes_and_extends_the_same_query() {
    // History holds one chain prefix; the batch both completes that chain
    // (via the y edge) and adds a second prefix that the same y edge extends
    // — the same query gains embeddings from two different updates of one
    // batch, which the batched path must merge into a single report entry.
    assert_batch_edge_case(
        &["?a -x-> ?b; ?b -y-> ?c"],
        &[("x", "a1", "b")],
        &[
            ("y", "b", "c"),  // completes a1 -x-> b -y-> c
            ("x", "a2", "b"), // extends: a2 -x-> b -y-> c
        ],
        2,
    );
}

#[test]
fn batch_completing_and_extending_multiple_covering_paths() {
    // A star query with two covering paths: the batch completes the query
    // (first b edge) and simultaneously extends both paths with more leaves.
    assert_batch_edge_case(
        &["?c -a-> ?x; ?c -b-> ?y"],
        &[("a", "hub", "x1")],
        &[
            ("b", "hub", "y1"), // completes (x1, y1)
            ("a", "hub", "x2"), // extends path a: (x2, y1)
            ("b", "hub", "y2"), // extends path b: (x1, y2) and (x2, y2)
        ],
        4,
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// TRIC and TRIC+ report the same matches on arbitrary streams, and the
    /// caching engine actually exercises its cache.
    #[test]
    fn tric_and_tric_plus_agree(
        stream in proptest::collection::vec((0u8..3, 0u8..6, 0u8..6), 1..150),
    ) {
        let mut symbols = SymbolTable::new();
        let queries = fixed_queries(&mut symbols);
        let labels: Vec<Sym> = (0..3).map(|i| symbols.intern(&format!("e{i}"))).collect();
        let vertices: Vec<Sym> = (0..6).map(|i| symbols.intern(&format!("v{i}"))).collect();

        let mut tric = TricEngine::tric();
        let mut plus = TricEngine::tric_plus();
        for q in &queries {
            tric.register_query(q).unwrap();
            plus.register_query(q).unwrap();
        }
        for &(l, s, t) in &stream {
            let u = Update::new(labels[l as usize], vertices[s as usize], vertices[t as usize]);
            prop_assert_eq!(tric.apply_update(u), plus.apply_update(u));
        }
    }

    /// Batched answering equals merged sequential answering under random
    /// batch partitions of random streams, for both TRIC and TRIC+ — the
    /// engine-level differential guarantee behind `apply_batch`.
    #[test]
    fn batched_tric_equals_sequential_under_random_partitions(
        stream in proptest::collection::vec((0u8..3, 0u8..6, 0u8..6), 1..120),
        chunk_lens in proptest::collection::vec(1usize..12, 1..10),
    ) {
        for caching in [false, true] {
            let mut symbols = SymbolTable::new();
            let queries = fixed_queries(&mut symbols);
            let labels: Vec<Sym> = (0..3).map(|i| symbols.intern(&format!("e{i}"))).collect();
            let vertices: Vec<Sym> = (0..6).map(|i| symbols.intern(&format!("v{i}"))).collect();
            let updates: Vec<Update> = stream
                .iter()
                .map(|&(l, s, t)| {
                    Update::new(labels[l as usize], vertices[s as usize], vertices[t as usize])
                })
                .collect();

            let config = gsm_tric::TricConfig { caching };
            let mut seq = TricEngine::with_config(config);
            let mut bat = TricEngine::with_config(config);
            for q in &queries {
                seq.register_query(q).unwrap();
                bat.register_query(q).unwrap();
            }

            let mut offset = 0usize;
            let mut chunk_idx = 0usize;
            while offset < updates.len() {
                let len = chunk_lens[chunk_idx % chunk_lens.len()].min(updates.len() - offset);
                let batch = &updates[offset..offset + len];
                let merged = gsm_core::engine::MatchReport::from_counts(
                    batch
                        .iter()
                        .flat_map(|&u| seq.apply_update(u).matches)
                        .map(|m| (m.query, m.new_embeddings))
                        .collect(),
                );
                let got = bat.apply_batch(batch);
                prop_assert_eq!(
                    got,
                    merged,
                    "caching={} diverged at offset {} (len {})",
                    caching,
                    offset,
                    len
                );
                offset += len;
                chunk_idx += 1;
            }
            prop_assert_eq!(seq.stats().embeddings, bat.stats().embeddings);
        }
    }

    /// Notifications are monotone in the query set: registering additional
    /// queries never removes notifications for the originally registered one.
    #[test]
    fn extra_queries_never_suppress_existing_notifications(
        stream in proptest::collection::vec((0u8..3, 0u8..5, 0u8..5), 1..100),
    ) {
        let mut symbols = SymbolTable::new();
        let target = QueryPattern::parse("?a -e0-> ?b; ?b -e1-> ?c", &mut symbols).unwrap();
        let extras = fixed_queries(&mut symbols);
        let labels: Vec<Sym> = (0..3).map(|i| symbols.intern(&format!("e{i}"))).collect();
        let vertices: Vec<Sym> = (0..5).map(|i| symbols.intern(&format!("v{i}"))).collect();

        let mut solo = TricEngine::tric_plus();
        let solo_id = solo.register_query(&target).unwrap();
        let mut crowded = TricEngine::tric_plus();
        let crowded_id = crowded.register_query(&target).unwrap();
        for q in &extras {
            crowded.register_query(q).unwrap();
        }

        for &(l, s, t) in &stream {
            let u = Update::new(labels[l as usize], vertices[s as usize], vertices[t as usize]);
            let solo_hit = solo
                .apply_update(u)
                .matches
                .iter()
                .find(|m| m.query == solo_id)
                .map(|m| m.new_embeddings);
            let crowded_hit = crowded
                .apply_update(u)
                .matches
                .iter()
                .find(|m| m.query == crowded_id)
                .map(|m| m.new_embeddings);
            prop_assert_eq!(solo_hit, crowded_hit, "crowding changed the target query's result");
        }
    }

    /// The engine never reports a query for an update whose label does not
    /// occur anywhere in that query.
    #[test]
    fn reported_queries_always_contain_the_update_label(
        stream in proptest::collection::vec((0u8..3, 0u8..5, 0u8..5), 1..100),
    ) {
        let mut symbols = SymbolTable::new();
        let queries = fixed_queries(&mut symbols);
        let labels: Vec<Sym> = (0..3).map(|i| symbols.intern(&format!("e{i}"))).collect();
        let vertices: Vec<Sym> = (0..5).map(|i| symbols.intern(&format!("v{i}"))).collect();
        let mut engine = TricEngine::tric_plus();
        for q in &queries {
            engine.register_query(q).unwrap();
        }
        for &(l, s, t) in &stream {
            let label = labels[l as usize];
            let u = Update::new(label, vertices[s as usize], vertices[t as usize]);
            for m in engine.apply_update(u).matches {
                let q = &queries[m.query.index()];
                prop_assert!(
                    q.labels().contains(&label),
                    "query {:?} reported for unrelated label",
                    m.query
                );
                prop_assert!(m.new_embeddings > 0);
            }
        }
    }
}
