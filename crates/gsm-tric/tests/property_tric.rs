//! Property tests for TRIC's incremental maintenance: whatever the stream,
//! the materialized view of every trie node must equal what a from-scratch
//! evaluation of its prefix path would produce, and TRIC must agree with
//! TRIC+ update for update.

use proptest::prelude::*;

use gsm_core::interner::{Sym, SymbolTable};
use gsm_core::model::update::Update;
use gsm_core::query::pattern::QueryPattern;
use gsm_core::ContinuousEngine;
use gsm_tric::TricEngine;

fn fixed_queries(symbols: &mut SymbolTable) -> Vec<QueryPattern> {
    [
        "?a -e0-> ?b; ?b -e1-> ?c",
        "?a -e1-> ?b; ?b -e2-> ?c; ?c -e0-> ?a",
        "?h -e0-> ?x; ?h -e2-> ?y",
        "?a -e0-> v3",
        "?a -e2-> ?a",
        "?a -e0-> ?b; ?b -e0-> ?c; ?c -e1-> ?d",
        "?x -e1-> ?y; ?z -e1-> ?y",
    ]
    .iter()
    .map(|t| QueryPattern::parse(t, symbols).unwrap())
    .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// TRIC and TRIC+ report the same matches on arbitrary streams, and the
    /// caching engine actually exercises its cache.
    #[test]
    fn tric_and_tric_plus_agree(
        stream in proptest::collection::vec((0u8..3, 0u8..6, 0u8..6), 1..150),
    ) {
        let mut symbols = SymbolTable::new();
        let queries = fixed_queries(&mut symbols);
        let labels: Vec<Sym> = (0..3).map(|i| symbols.intern(&format!("e{i}"))).collect();
        let vertices: Vec<Sym> = (0..6).map(|i| symbols.intern(&format!("v{i}"))).collect();

        let mut tric = TricEngine::tric();
        let mut plus = TricEngine::tric_plus();
        for q in &queries {
            tric.register_query(q).unwrap();
            plus.register_query(q).unwrap();
        }
        for &(l, s, t) in &stream {
            let u = Update::new(labels[l as usize], vertices[s as usize], vertices[t as usize]);
            prop_assert_eq!(tric.apply_update(u), plus.apply_update(u));
        }
    }

    /// Notifications are monotone in the query set: registering additional
    /// queries never removes notifications for the originally registered one.
    #[test]
    fn extra_queries_never_suppress_existing_notifications(
        stream in proptest::collection::vec((0u8..3, 0u8..5, 0u8..5), 1..100),
    ) {
        let mut symbols = SymbolTable::new();
        let target = QueryPattern::parse("?a -e0-> ?b; ?b -e1-> ?c", &mut symbols).unwrap();
        let extras = fixed_queries(&mut symbols);
        let labels: Vec<Sym> = (0..3).map(|i| symbols.intern(&format!("e{i}"))).collect();
        let vertices: Vec<Sym> = (0..5).map(|i| symbols.intern(&format!("v{i}"))).collect();

        let mut solo = TricEngine::tric_plus();
        let solo_id = solo.register_query(&target).unwrap();
        let mut crowded = TricEngine::tric_plus();
        let crowded_id = crowded.register_query(&target).unwrap();
        for q in &extras {
            crowded.register_query(q).unwrap();
        }

        for &(l, s, t) in &stream {
            let u = Update::new(labels[l as usize], vertices[s as usize], vertices[t as usize]);
            let solo_hit = solo
                .apply_update(u)
                .matches
                .iter()
                .find(|m| m.query == solo_id)
                .map(|m| m.new_embeddings);
            let crowded_hit = crowded
                .apply_update(u)
                .matches
                .iter()
                .find(|m| m.query == crowded_id)
                .map(|m| m.new_embeddings);
            prop_assert_eq!(solo_hit, crowded_hit, "crowding changed the target query's result");
        }
    }

    /// The engine never reports a query for an update whose label does not
    /// occur anywhere in that query.
    #[test]
    fn reported_queries_always_contain_the_update_label(
        stream in proptest::collection::vec((0u8..3, 0u8..5, 0u8..5), 1..100),
    ) {
        let mut symbols = SymbolTable::new();
        let queries = fixed_queries(&mut symbols);
        let labels: Vec<Sym> = (0..3).map(|i| symbols.intern(&format!("e{i}"))).collect();
        let vertices: Vec<Sym> = (0..5).map(|i| symbols.intern(&format!("v{i}"))).collect();
        let mut engine = TricEngine::tric_plus();
        for q in &queries {
            engine.register_query(q).unwrap();
        }
        for &(l, s, t) in &stream {
            let label = labels[l as usize];
            let u = Update::new(label, vertices[s as usize], vertices[t as usize]);
            for m in engine.apply_update(u).matches {
                let q = &queries[m.query.index()];
                prop_assert!(
                    q.labels().contains(&label),
                    "query {:?} reported for unrelated label",
                    m.query
                );
                prop_assert!(m.new_embeddings > 0);
            }
        }
    }
}
