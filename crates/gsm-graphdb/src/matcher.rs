//! Backtracking sub-graph (homomorphism) matching against the store.
//!
//! This is the execution engine behind the graph-database baseline: given a
//! query pattern, an execution plan and the store, it enumerates every
//! assignment of query vertices to data vertices under which all pattern
//! edges exist. When anchored at a freshly inserted edge it only enumerates
//! embeddings that use that edge at the anchored position, which is how the
//! continuous adapter derives *new* embeddings.

use std::collections::HashSet;

use gsm_core::interner::Sym;
use gsm_core::model::term::Term;
use gsm_core::model::update::Update;
use gsm_core::query::pattern::QueryPattern;

use crate::plan::QueryPlan;
use crate::store::GraphStore;

/// Collects distinct embeddings (assignments of all query vertices), with an
/// optional limit to guard against pathological blow-ups in interactive use.
#[derive(Debug)]
pub struct MatchCollector {
    /// Distinct embeddings found so far (vertex assignments in vertex-id order).
    pub embeddings: HashSet<Vec<Sym>>,
    /// Stop after this many embeddings (`usize::MAX` = unlimited).
    pub limit: usize,
}

impl MatchCollector {
    /// Creates an unlimited collector.
    pub fn unlimited() -> Self {
        MatchCollector {
            embeddings: HashSet::new(),
            limit: usize::MAX,
        }
    }

    /// Creates a collector that stops after `limit` embeddings.
    pub fn with_limit(limit: usize) -> Self {
        MatchCollector {
            embeddings: HashSet::new(),
            limit,
        }
    }

    /// Number of distinct embeddings collected.
    pub fn len(&self) -> usize {
        self.embeddings.len()
    }

    /// True if no embedding was collected.
    pub fn is_empty(&self) -> bool {
        self.embeddings.is_empty()
    }

    fn full(&self) -> bool {
        self.embeddings.len() >= self.limit
    }
}

/// Executes `plan` for `query` against `store`, collecting embeddings into
/// `collector`. When `anchor` is given as `(edge_idx, update)`, the pattern
/// edge `edge_idx` is bound to the concrete update before the search starts,
/// so only embeddings using that edge at that position are produced.
pub fn execute(
    query: &QueryPattern,
    plan: &QueryPlan,
    store: &GraphStore,
    anchor: Option<(usize, Update)>,
    collector: &mut MatchCollector,
) {
    let n = query.num_vertices();
    let mut bindings: Vec<Option<Sym>> = vec![None; n];

    // Constants are bound up front.
    for (vid, term) in query.vertices().iter().enumerate() {
        if let Term::Const(c) = term {
            bindings[vid] = Some(*c);
        }
    }

    let mut order = plan.edge_order.clone();
    if let Some((anchor_edge, update)) = anchor {
        // Bind the anchored edge's endpoints to the update; bail out if a
        // constant endpoint disagrees with the update.
        let e = &query.edges()[anchor_edge];
        if e.label != update.label {
            return;
        }
        let (sv, tv) = query.edge_endpoints(anchor_edge);
        if let Some(existing) = bindings[sv] {
            if existing != update.src {
                return;
            }
        }
        if let Some(existing) = bindings[tv] {
            if existing != update.tgt {
                return;
            }
        }
        bindings[sv] = Some(update.src);
        bindings[tv] = Some(update.tgt);
        if sv == tv && update.src != update.tgt {
            return;
        }
        // Move the anchored edge to the front of the order (it is already
        // satisfied, but keeping it lets the generic code double-check it).
        order.retain(|&x| x != anchor_edge);
        order.insert(0, anchor_edge);
    }

    backtrack(query, store, &order, 0, &mut bindings, collector);
}

fn backtrack(
    query: &QueryPattern,
    store: &GraphStore,
    order: &[usize],
    depth: usize,
    bindings: &mut Vec<Option<Sym>>,
    collector: &mut MatchCollector,
) {
    if collector.full() {
        return;
    }
    if depth == order.len() {
        let embedding: Vec<Sym> = bindings.iter().map(|b| b.expect("complete")).collect();
        collector.embeddings.insert(embedding);
        return;
    }
    let edge_idx = order[depth];
    let label = query.edges()[edge_idx].label;
    let (sv, tv) = query.edge_endpoints(edge_idx);

    match (bindings[sv], bindings[tv]) {
        (Some(s), Some(t)) => {
            if store.has_edge(label, s, t) {
                backtrack(query, store, order, depth + 1, bindings, collector);
            }
        }
        (Some(s), None) => {
            // Candidate targets via a zero-allocation hash probe of the
            // label's (src, tgt) relation keyed on src — the same
            // probe_iter substrate the relational engines use, replacing
            // the former label-filtered scan of the vertex's adjacency
            // list. The iterator borrows the store immutably, so recursing
            // while it is live is fine.
            let Some(probe) = store.label_probe(label) else {
                return; // no edge carries this label yet
            };
            let key = [s];
            for idx in probe.by_src.probe_iter(&probe.edges, &key) {
                let t = probe.edges.row(idx)[1];
                if sv == tv && t != s {
                    continue;
                }
                bindings[tv] = Some(t);
                backtrack(query, store, order, depth + 1, bindings, collector);
                bindings[tv] = None;
                if collector.full() {
                    return;
                }
            }
        }
        (None, Some(t)) => {
            // Symmetric probe keyed on tgt.
            let Some(probe) = store.label_probe(label) else {
                return;
            };
            let key = [t];
            for idx in probe.by_tgt.probe_iter(&probe.edges, &key) {
                let s = probe.edges.row(idx)[0];
                if sv == tv && s != t {
                    continue;
                }
                bindings[sv] = Some(s);
                backtrack(query, store, order, depth + 1, bindings, collector);
                bindings[sv] = None;
                if collector.full() {
                    return;
                }
            }
        }
        (None, None) => {
            // Disconnected start (only possible for the very first edge of an
            // un-anchored plan): scan the label's edge relation.
            let Some(probe) = store.label_probe(label) else {
                return;
            };
            for row in probe.edges.iter() {
                let (s, t) = (row[0], row[1]);
                if sv == tv && s != t {
                    continue;
                }
                bindings[sv] = Some(s);
                bindings[tv] = Some(t);
                backtrack(query, store, order, depth + 1, bindings, collector);
                bindings[sv] = None;
                bindings[tv] = None;
                if collector.full() {
                    return;
                }
            }
        }
    }
}

/// Convenience wrapper: count all embeddings of `query` in `store`
/// (un-anchored, fresh greedy plan). Used by tests as a reference oracle.
pub fn count_embeddings(query: &QueryPattern, store: &GraphStore) -> usize {
    let plan = QueryPlan::build(query, store, None);
    let mut collector = MatchCollector::unlimited();
    execute(query, &plan, store, None, &mut collector);
    collector.len()
}

/// Returns the distinct query-vertex assignments (embeddings) as a set of
/// vectors ordered by query-vertex id — a reference oracle for tests.
pub fn all_embeddings(query: &QueryPattern, store: &GraphStore) -> HashSet<Vec<Sym>> {
    let plan = QueryPlan::build(query, store, None);
    let mut collector = MatchCollector::unlimited();
    execute(query, &plan, store, None, &mut collector);
    collector.embeddings
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsm_core::interner::SymbolTable;

    struct Fixture {
        symbols: SymbolTable,
        store: GraphStore,
    }

    impl Fixture {
        fn new() -> Self {
            Fixture {
                symbols: SymbolTable::new(),
                store: GraphStore::new(),
            }
        }
        fn q(&mut self, text: &str) -> QueryPattern {
            QueryPattern::parse(text, &mut self.symbols).unwrap()
        }
        fn edge(&mut self, label: &str, src: &str, tgt: &str) {
            let u = Update::new(
                self.symbols.intern(label),
                self.symbols.intern(src),
                self.symbols.intern(tgt),
            );
            self.store.insert_edge(u);
        }
    }

    #[test]
    fn single_edge_pattern_counts_matching_edges() {
        let mut f = Fixture::new();
        let q = f.q("?a -knows-> ?b");
        f.edge("knows", "a", "b");
        f.edge("knows", "b", "c");
        f.edge("likes", "a", "b");
        assert_eq!(count_embeddings(&q, &f.store), 2);
    }

    #[test]
    fn chain_pattern_joins_edges() {
        let mut f = Fixture::new();
        let q = f.q("?a -x-> ?b; ?b -y-> ?c");
        f.edge("x", "1", "2");
        f.edge("y", "2", "3");
        f.edge("y", "2", "4");
        f.edge("x", "9", "8");
        assert_eq!(count_embeddings(&q, &f.store), 2);
    }

    #[test]
    fn constants_restrict_matches() {
        let mut f = Fixture::new();
        let q = f.q("?p -checksIn-> rio");
        f.edge("checksIn", "ann", "rio");
        f.edge("checksIn", "bob", "oslo");
        assert_eq!(count_embeddings(&q, &f.store), 1);
    }

    #[test]
    fn cycle_requires_closure() {
        let mut f = Fixture::new();
        let q = f.q("?a -x-> ?b; ?b -y-> ?c; ?c -z-> ?a");
        f.edge("x", "1", "2");
        f.edge("y", "2", "3");
        f.edge("z", "3", "9");
        assert_eq!(count_embeddings(&q, &f.store), 0);
        f.edge("z", "3", "1");
        assert_eq!(count_embeddings(&q, &f.store), 1);
    }

    #[test]
    fn homomorphism_allows_repeated_data_vertices() {
        let mut f = Fixture::new();
        // ?a and ?c may bind to the same data vertex (homomorphism semantics).
        let q = f.q("?a -x-> ?b; ?b -x-> ?c");
        f.edge("x", "1", "2");
        f.edge("x", "2", "1");
        assert_eq!(count_embeddings(&q, &f.store), 2);
    }

    #[test]
    fn self_loop_variable_matches_only_loops() {
        let mut f = Fixture::new();
        let q = f.q("?a -f-> ?a");
        f.edge("f", "1", "2");
        assert_eq!(count_embeddings(&q, &f.store), 0);
        f.edge("f", "3", "3");
        assert_eq!(count_embeddings(&q, &f.store), 1);
    }

    #[test]
    fn anchored_execution_only_returns_embeddings_using_the_anchor() {
        let mut f = Fixture::new();
        let q = f.q("?a -x-> ?b; ?b -y-> ?c");
        f.edge("x", "1", "2");
        f.edge("y", "2", "3");
        f.edge("x", "5", "6");
        f.edge("y", "6", "7");
        let x = f.symbols.intern("x");
        let anchor = Update::new(x, f.symbols.intern("1"), f.symbols.intern("2"));
        let plan = QueryPlan::build(&q, &f.store, Some(0));
        let mut collector = MatchCollector::unlimited();
        execute(&q, &plan, &f.store, Some((0, anchor)), &mut collector);
        assert_eq!(collector.len(), 1);
    }

    #[test]
    fn anchored_execution_respects_constants() {
        let mut f = Fixture::new();
        let q = f.q("?p -checksIn-> rio");
        f.edge("checksIn", "ann", "oslo");
        let checks_in = f.symbols.intern("checksIn");
        let anchor = Update::new(checks_in, f.symbols.intern("ann"), f.symbols.intern("oslo"));
        let plan = QueryPlan::build(&q, &f.store, Some(0));
        let mut collector = MatchCollector::unlimited();
        execute(&q, &plan, &f.store, Some((0, anchor)), &mut collector);
        assert!(collector.is_empty());
    }

    #[test]
    fn collector_limit_stops_enumeration() {
        let mut f = Fixture::new();
        let q = f.q("?a -x-> ?b");
        for i in 0..100 {
            f.edge("x", &format!("s{i}"), &format!("t{i}"));
        }
        let plan = QueryPlan::build(&q, &f.store, None);
        let mut collector = MatchCollector::with_limit(10);
        execute(&q, &plan, &f.store, None, &mut collector);
        assert_eq!(collector.len(), 10);
    }

    #[test]
    fn star_pattern_counts_products() {
        let mut f = Fixture::new();
        let q = f.q("?c -a-> ?x; ?c -b-> ?y");
        f.edge("a", "hub", "x1");
        f.edge("a", "hub", "x2");
        f.edge("b", "hub", "y1");
        f.edge("b", "hub", "y2");
        f.edge("b", "hub", "y3");
        assert_eq!(count_embeddings(&q, &f.store), 6);
    }
}
