//! # gsm-graphdb
//!
//! The graph-database baseline of Section 5.3 of the paper.
//!
//! The paper uses an embedded Neo4j instance: the full evolving graph is
//! stored in the database, an inverted index maps incoming updates to the
//! affected continuous queries, and each affected query is executed against
//! the database (as a Cypher statement with a cached execution plan). Since a
//! pure-Rust offline reproduction cannot embed Neo4j, this crate implements
//! the pieces of an embedded property-graph database the baseline actually
//! relies on:
//!
//! * [`store`] — an in-memory graph store with per-label indexes, adjacency
//!   lists in both directions and batched write transactions;
//! * [`plan`] — a per-query execution plan (pattern-edge ordering chosen by a
//!   selectivity heuristic) with a plan cache, mirroring Neo4j's parameterised
//!   query-plan caching;
//! * [`matcher`] — a backtracking homomorphism matcher that executes a plan
//!   against the store, optionally anchored at a newly inserted edge;
//! * [`engine`] — the continuous adapter implementing
//!   [`gsm_core::ContinuousEngine`], equivalent to the paper's "apply update,
//!   look up affected queries in `edgeInd`, re-run them" loop.
//!
//! The role of the baseline is preserved exactly: the whole graph is stored,
//! and every affected query is re-evaluated from scratch against the store on
//! every update, which is why it loses to TRIC by a growing margin as the
//! graph grows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod matcher;
pub mod plan;
pub mod store;

pub use engine::{GraphDbConfig, GraphDbEngine};
pub use matcher::MatchCollector;
pub use plan::{PlanCache, QueryPlan};
pub use store::GraphStore;
