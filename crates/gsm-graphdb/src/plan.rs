//! Per-query execution plans and the plan cache.
//!
//! The paper's Neo4j baseline executes each affected query as a parameterised
//! Cypher statement so that the database can cache the execution plan. The
//! equivalent here is a [`QueryPlan`]: an ordering of the query's pattern
//! edges such that (i) the first edge is as selective as possible and (ii)
//! every subsequent edge shares at least one vertex with the edges before it,
//! so the backtracking matcher always expands from bound vertices.

use std::collections::HashMap;

use gsm_core::engine::QueryId;
use gsm_core::memory::HeapSize;
use gsm_core::query::pattern::QueryPattern;

use crate::store::GraphStore;

/// An execution plan: the order in which pattern edges are matched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPlan {
    /// Pattern-edge indices in matching order.
    pub edge_order: Vec<usize>,
}

impl QueryPlan {
    /// Builds a plan for `query`, optionally forcing a specific edge to come
    /// first (used to anchor the plan at a freshly inserted edge) and using
    /// the store's per-label statistics to order the remaining edges by
    /// estimated selectivity.
    pub fn build(query: &QueryPattern, store: &GraphStore, anchor: Option<usize>) -> Self {
        let m = query.num_edges();
        let mut remaining: Vec<usize> = (0..m).collect();
        let mut order: Vec<usize> = Vec::with_capacity(m);
        let mut bound_vertices: Vec<usize> = Vec::new();

        let selectivity = |edge_idx: usize| -> (usize, usize) {
            let e = &query.edges()[edge_idx];
            // Fewer constants ⇒ less selective; more label occurrences ⇒ less
            // selective. Lower tuple sorts first.
            let constants = [e.src, e.tgt].iter().filter(|t| t.is_const()).count();
            (2 - constants, store.label_count(e.label))
        };

        let first = anchor.unwrap_or_else(|| {
            remaining
                .iter()
                .copied()
                .min_by_key(|&e| selectivity(e))
                .expect("queries have at least one edge")
        });
        order.push(first);
        remaining.retain(|&e| e != first);
        let (s, t) = query.edge_endpoints(first);
        bound_vertices.push(s);
        if !bound_vertices.contains(&t) {
            bound_vertices.push(t);
        }

        while !remaining.is_empty() {
            // Prefer edges touching a bound vertex; among those, the most
            // selective one.
            let next = remaining
                .iter()
                .copied()
                .min_by_key(|&e| {
                    let (s, t) = query.edge_endpoints(e);
                    let connected = bound_vertices.contains(&s) || bound_vertices.contains(&t);
                    (if connected { 0 } else { 1 }, selectivity(e))
                })
                .expect("remaining is non-empty");
            order.push(next);
            remaining.retain(|&e| e != next);
            let (s, t) = query.edge_endpoints(next);
            if !bound_vertices.contains(&s) {
                bound_vertices.push(s);
            }
            if !bound_vertices.contains(&t) {
                bound_vertices.push(t);
            }
        }
        QueryPlan { edge_order: order }
    }
}

impl HeapSize for QueryPlan {
    fn heap_size(&self) -> usize {
        self.edge_order.heap_size()
    }
}

/// A cache of execution plans keyed by (query, anchor edge), mirroring
/// Neo4j's plan cache for parameterised statements.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: HashMap<(QueryId, Option<usize>), QueryPlan>,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached plan for (query, anchor), building it on a miss.
    pub fn get_or_build(
        &mut self,
        qid: QueryId,
        query: &QueryPattern,
        store: &GraphStore,
        anchor: Option<usize>,
    ) -> &QueryPlan {
        match self.plans.entry((qid, anchor)) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.hits += 1;
                e.into_mut()
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                self.misses += 1;
                e.insert(QueryPlan::build(query, store, anchor))
            }
        }
    }

    /// Drops every plan cached for `qid` (all anchors) — called when the
    /// query is unregistered. Ids are never reused, so this is memory
    /// hygiene, not correctness.
    pub fn evict_query(&mut self, qid: QueryId) {
        self.plans.retain(|(q, _), _| *q != qid);
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// True if no plan has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

impl HeapSize for PlanCache {
    fn heap_size(&self) -> usize {
        self.plans
            .values()
            .map(|p| p.heap_size() + std::mem::size_of::<QueryPlan>() + 24)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsm_core::interner::{Sym, SymbolTable};
    use gsm_core::model::update::Update;

    fn parse(text: &str, s: &mut SymbolTable) -> QueryPattern {
        QueryPattern::parse(text, s).unwrap()
    }

    #[test]
    fn plan_covers_every_edge_exactly_once() {
        let mut s = SymbolTable::new();
        let q = parse("?a -x-> ?b; ?b -y-> ?c; ?a -z-> ?c", &mut s);
        let store = GraphStore::new();
        let plan = QueryPlan::build(&q, &store, None);
        let mut sorted = plan.edge_order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn plan_is_connected_expansion() {
        let mut s = SymbolTable::new();
        let q = parse("?a -x-> ?b; ?b -y-> ?c; ?c -z-> ?d; ?d -w-> ?e", &mut s);
        let store = GraphStore::new();
        let plan = QueryPlan::build(&q, &store, Some(2));
        assert_eq!(plan.edge_order[0], 2);
        // Every subsequent edge shares a vertex with the prefix.
        let mut bound = vec![];
        let (s0, t0) = q.edge_endpoints(plan.edge_order[0]);
        bound.push(s0);
        bound.push(t0);
        for &e in &plan.edge_order[1..] {
            let (es, et) = q.edge_endpoints(e);
            assert!(bound.contains(&es) || bound.contains(&et));
            if !bound.contains(&es) {
                bound.push(es);
            }
            if !bound.contains(&et) {
                bound.push(et);
            }
        }
    }

    #[test]
    fn selective_edges_come_first() {
        let mut s = SymbolTable::new();
        let q = parse("?a -common-> ?b; ?b -rare-> rio", &mut s);
        let common = s.intern("common");
        let rare = s.intern("rare");
        let mut store = GraphStore::new();
        for i in 0..100 {
            store.insert_edge(Update::new(common, Sym(1000 + i), Sym(2000 + i)));
        }
        store.insert_edge(Update::new(rare, Sym(1), Sym(2)));
        let plan = QueryPlan::build(&q, &store, None);
        // Edge 1 has a constant endpoint and a rarer label ⇒ matched first.
        assert_eq!(plan.edge_order[0], 1);
    }

    #[test]
    fn plan_cache_hits_on_repeated_lookups() {
        let mut s = SymbolTable::new();
        let q = parse("?a -x-> ?b; ?b -y-> ?c", &mut s);
        let store = GraphStore::new();
        let mut cache = PlanCache::new();
        cache.get_or_build(QueryId(0), &q, &store, Some(0));
        cache.get_or_build(QueryId(0), &q, &store, Some(0));
        cache.get_or_build(QueryId(0), &q, &store, Some(1));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
    }
}
