//! The embedded graph store.
//!
//! A thin property-graph layer: adjacency in both directions, a per-label
//! edge index (the equivalent of Neo4j's schema indexes the paper enables),
//! per-label cardinality statistics used by the query planner, and batched
//! write transactions mirroring the "writes per transaction" tuning knob of
//! the paper's Neo4j setup.

use std::collections::HashMap;

use gsm_core::interner::Sym;
use gsm_core::memory::HeapSize;
use gsm_core::model::graph::AttributeGraph;
use gsm_core::model::update::Update;

/// An in-memory property-graph store.
#[derive(Debug)]
pub struct GraphStore {
    graph: AttributeGraph,
    /// Number of edges per label — the planner's selectivity statistics.
    label_counts: HashMap<Sym, usize>,
    /// Writes applied since the last commit.
    pending_writes: usize,
    /// Writes allowed per transaction before an implicit commit.
    writes_per_tx: usize,
    /// Number of committed transactions.
    committed_txs: u64,
}

impl GraphStore {
    /// Default number of writes per transaction (the paper found 20K writes
    /// per transaction optimal for its Neo4j deployment).
    pub const DEFAULT_WRITES_PER_TX: usize = 20_000;

    /// Creates an empty store with the default transaction batch size.
    pub fn new() -> Self {
        Self::with_writes_per_tx(Self::DEFAULT_WRITES_PER_TX)
    }

    /// Creates an empty store with an explicit transaction batch size.
    pub fn with_writes_per_tx(writes_per_tx: usize) -> Self {
        GraphStore {
            graph: AttributeGraph::new(),
            label_counts: HashMap::new(),
            pending_writes: 0,
            writes_per_tx: writes_per_tx.max(1),
            committed_txs: 0,
        }
    }

    /// Applies an edge addition. Returns `true` if the edge was new.
    pub fn insert_edge(&mut self, u: Update) -> bool {
        let added = self.graph.apply(u);
        if added {
            *self.label_counts.entry(u.label).or_insert(0) += 1;
        }
        self.pending_writes += 1;
        if self.pending_writes >= self.writes_per_tx {
            self.commit();
        }
        added
    }

    /// Commits the current write transaction.
    pub fn commit(&mut self) {
        if self.pending_writes > 0 {
            self.pending_writes = 0;
            self.committed_txs += 1;
        }
    }

    /// Number of committed write transactions so far.
    pub fn committed_transactions(&self) -> u64 {
        self.committed_txs
    }

    /// The underlying attribute graph.
    pub fn graph(&self) -> &AttributeGraph {
        &self.graph
    }

    /// Number of edges carrying `label` (0 if unseen).
    pub fn label_count(&self, label: Sym) -> usize {
        self.label_counts.get(&label).copied().unwrap_or(0)
    }

    /// Number of distinct edges stored.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Number of distinct vertices stored.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// True if the exact edge is stored.
    pub fn has_edge(&self, label: Sym, src: Sym, tgt: Sym) -> bool {
        self.graph.contains(&Update::new(label, src, tgt))
    }

    /// Outgoing `(label, target)` pairs of `v`.
    pub fn out_edges(&self, v: Sym) -> &[(Sym, Sym)] {
        self.graph.out_edges(v)
    }

    /// Incoming `(label, source)` pairs of `v`.
    pub fn in_edges(&self, v: Sym) -> &[(Sym, Sym)] {
        self.graph.in_edges(v)
    }

    /// All `(source, target)` pairs with `label`.
    pub fn edges_with_label(&self, label: Sym) -> &[(Sym, Sym)] {
        self.graph.edges_with_label(label)
    }
}

impl Default for GraphStore {
    fn default() -> Self {
        Self::new()
    }
}

impl HeapSize for GraphStore {
    fn heap_size(&self) -> usize {
        self.graph.heap_size() + self.label_counts.heap_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(l: u32, s: u32, t: u32) -> Update {
        Update::new(Sym(l), Sym(s), Sym(t))
    }

    #[test]
    fn insert_updates_label_statistics() {
        let mut store = GraphStore::new();
        store.insert_edge(u(0, 1, 2));
        store.insert_edge(u(0, 2, 3));
        store.insert_edge(u(1, 1, 3));
        assert_eq!(store.label_count(Sym(0)), 2);
        assert_eq!(store.label_count(Sym(1)), 1);
        assert_eq!(store.label_count(Sym(9)), 0);
        assert_eq!(store.num_edges(), 3);
        assert_eq!(store.num_vertices(), 3);
    }

    #[test]
    fn duplicate_edges_do_not_inflate_statistics() {
        let mut store = GraphStore::new();
        assert!(store.insert_edge(u(0, 1, 2)));
        assert!(!store.insert_edge(u(0, 1, 2)));
        assert_eq!(store.label_count(Sym(0)), 1);
    }

    #[test]
    fn transactions_commit_in_batches() {
        let mut store = GraphStore::with_writes_per_tx(10);
        for i in 0..25 {
            store.insert_edge(u(0, i, i + 1));
        }
        assert_eq!(store.committed_transactions(), 2);
        store.commit();
        assert_eq!(store.committed_transactions(), 3);
        // Committing with nothing pending is a no-op.
        store.commit();
        assert_eq!(store.committed_transactions(), 3);
    }

    #[test]
    fn adjacency_lookups() {
        let mut store = GraphStore::new();
        store.insert_edge(u(0, 1, 2));
        store.insert_edge(u(1, 1, 3));
        assert_eq!(store.out_edges(Sym(1)).len(), 2);
        assert_eq!(store.in_edges(Sym(2)).len(), 1);
        assert!(store.has_edge(Sym(0), Sym(1), Sym(2)));
        assert!(!store.has_edge(Sym(0), Sym(2), Sym(1)));
        assert_eq!(store.edges_with_label(Sym(1)).len(), 1);
    }
}
