//! The embedded graph store.
//!
//! A thin property-graph layer: adjacency in both directions, a per-label
//! edge index (the equivalent of Neo4j's schema indexes the paper enables),
//! per-label cardinality statistics used by the query planner, and batched
//! write transactions mirroring the "writes per transaction" tuning knob of
//! the paper's Neo4j setup.
//!
//! Candidate enumeration for the backtracking matcher goes through
//! [`LabelProbeIndex`]: each label's edges are kept as a two-column
//! [`Relation`] with incrementally maintained hash builds keyed on source
//! and on target — the same zero-allocation `probe_iter`/`probe_each`
//! substrate the relational engines use — so the baseline's per-candidate
//! cost is a verified hash probe instead of a label-filtered scan of a
//! vertex's whole adjacency list.
//!
//! The [`AttributeGraph`] adjacency lists and per-label edge index remain
//! maintained alongside the probe indexes even though the matcher no
//! longer reads them: the graph provides the O(1) duplicate check on
//! insert and the paper-faithful property-graph surface
//! (`out_edges`/`in_edges`/`edges_with_label`), mirroring a real database
//! that keeps adjacency *and* schema indexes. The cost is deliberate and
//! visible in `heap_size` — the memory-comparison experiment (Tab. 13c)
//! reports the baseline including both structures, as the paper's Neo4j
//! deployment would.

use std::collections::HashMap;

use gsm_core::interner::Sym;
use gsm_core::memory::HeapSize;
use gsm_core::model::graph::AttributeGraph;
use gsm_core::model::update::Update;
use gsm_core::relation::join::JoinBuild;
use gsm_core::relation::Relation;

/// One label's edges on the relational probe substrate: a `(src, tgt)`
/// relation plus hash builds over both columns, maintained incrementally on
/// every insert (the builds never rebuild — the relation is insert-only).
#[derive(Debug)]
pub struct LabelProbeIndex {
    /// The label's edges as `(src, tgt)` rows. Distinct by construction:
    /// the attribute graph deduplicates edges before they reach here.
    pub edges: Relation,
    /// Hash build keyed on the source column.
    pub by_src: JoinBuild,
    /// Hash build keyed on the target column.
    pub by_tgt: JoinBuild,
}

impl LabelProbeIndex {
    fn new() -> Self {
        let edges = Relation::new_distinct(2);
        let by_src = JoinBuild::build(&edges, &[0]);
        let by_tgt = JoinBuild::build(&edges, &[1]);
        LabelProbeIndex {
            edges,
            by_src,
            by_tgt,
        }
    }

    fn insert(&mut self, src: Sym, tgt: Sym) {
        self.edges.append_distinct(&[src, tgt]);
        self.by_src.update(&self.edges);
        self.by_tgt.update(&self.edges);
    }

    fn remove(&mut self, src: Sym, tgt: Sym) {
        self.edges.retract_rows(&Relation::singleton(&[src, tgt]));
        // The compaction bumped the relation's generation, so both builds
        // rebuild from scratch over the surviving rows.
        self.by_src.update(&self.edges);
        self.by_tgt.update(&self.edges);
    }
}

impl HeapSize for LabelProbeIndex {
    fn heap_size(&self) -> usize {
        self.edges.heap_size() + self.by_src.heap_size() + self.by_tgt.heap_size()
    }
}

/// An in-memory property-graph store.
#[derive(Debug)]
pub struct GraphStore {
    graph: AttributeGraph,
    /// Number of edges per label — the planner's selectivity statistics.
    label_counts: HashMap<Sym, usize>,
    /// Per-label probe indexes for the matcher's candidate enumeration.
    label_probes: HashMap<Sym, LabelProbeIndex>,
    /// Writes applied since the last commit.
    pending_writes: usize,
    /// Writes allowed per transaction before an implicit commit.
    writes_per_tx: usize,
    /// Number of committed transactions.
    committed_txs: u64,
}

impl GraphStore {
    /// Default number of writes per transaction (the paper found 20K writes
    /// per transaction optimal for its Neo4j deployment).
    pub const DEFAULT_WRITES_PER_TX: usize = 20_000;

    /// Creates an empty store with the default transaction batch size.
    pub fn new() -> Self {
        Self::with_writes_per_tx(Self::DEFAULT_WRITES_PER_TX)
    }

    /// Creates an empty store with an explicit transaction batch size.
    pub fn with_writes_per_tx(writes_per_tx: usize) -> Self {
        GraphStore {
            graph: AttributeGraph::new(),
            label_counts: HashMap::new(),
            label_probes: HashMap::new(),
            pending_writes: 0,
            writes_per_tx: writes_per_tx.max(1),
            committed_txs: 0,
        }
    }

    /// Applies an edge addition. Returns `true` if the edge was new.
    pub fn insert_edge(&mut self, u: Update) -> bool {
        let added = self.graph.apply(u);
        if added {
            *self.label_counts.entry(u.label).or_insert(0) += 1;
            self.label_probes
                .entry(u.label)
                .or_insert_with(LabelProbeIndex::new)
                .insert(u.src, u.tgt);
        }
        self.pending_writes += 1;
        if self.pending_writes >= self.writes_per_tx {
            self.commit();
        }
        added
    }

    /// Applies an edge retraction (either sign — the lookup is
    /// sign-normalized). Returns `true` if the edge existed; statistics,
    /// adjacency and the label's probe index all shrink together.
    pub fn remove_edge(&mut self, u: Update) -> bool {
        let e = u.edge();
        let removed = self.graph.remove(e);
        if removed {
            if let Some(c) = self.label_counts.get_mut(&e.label) {
                *c = c.saturating_sub(1);
            }
            if let Some(probe) = self.label_probes.get_mut(&e.label) {
                probe.remove(e.src, e.tgt);
            }
        }
        self.pending_writes += 1;
        if self.pending_writes >= self.writes_per_tx {
            self.commit();
        }
        removed
    }

    /// The probe index of `label`, if any edge with that label exists.
    /// The matcher's candidate enumeration probes this instead of scanning
    /// adjacency lists.
    pub fn label_probe(&self, label: Sym) -> Option<&LabelProbeIndex> {
        self.label_probes.get(&label)
    }

    /// Commits the current write transaction.
    pub fn commit(&mut self) {
        if self.pending_writes > 0 {
            self.pending_writes = 0;
            self.committed_txs += 1;
        }
    }

    /// Number of committed write transactions so far.
    pub fn committed_transactions(&self) -> u64 {
        self.committed_txs
    }

    /// The underlying attribute graph.
    pub fn graph(&self) -> &AttributeGraph {
        &self.graph
    }

    /// Number of edges carrying `label` (0 if unseen).
    pub fn label_count(&self, label: Sym) -> usize {
        self.label_counts.get(&label).copied().unwrap_or(0)
    }

    /// Number of distinct edges stored.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Number of distinct vertices stored.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// True if the exact edge is stored.
    pub fn has_edge(&self, label: Sym, src: Sym, tgt: Sym) -> bool {
        self.graph.contains(&Update::new(label, src, tgt))
    }

    /// Outgoing `(label, target)` pairs of `v`.
    pub fn out_edges(&self, v: Sym) -> &[(Sym, Sym)] {
        self.graph.out_edges(v)
    }

    /// Incoming `(label, source)` pairs of `v`.
    pub fn in_edges(&self, v: Sym) -> &[(Sym, Sym)] {
        self.graph.in_edges(v)
    }

    /// All `(source, target)` pairs with `label`.
    pub fn edges_with_label(&self, label: Sym) -> &[(Sym, Sym)] {
        self.graph.edges_with_label(label)
    }
}

impl Default for GraphStore {
    fn default() -> Self {
        Self::new()
    }
}

impl HeapSize for GraphStore {
    fn heap_size(&self) -> usize {
        self.graph.heap_size() + self.label_counts.heap_size() + self.label_probes.heap_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(l: u32, s: u32, t: u32) -> Update {
        Update::new(Sym(l), Sym(s), Sym(t))
    }

    #[test]
    fn insert_updates_label_statistics() {
        let mut store = GraphStore::new();
        store.insert_edge(u(0, 1, 2));
        store.insert_edge(u(0, 2, 3));
        store.insert_edge(u(1, 1, 3));
        assert_eq!(store.label_count(Sym(0)), 2);
        assert_eq!(store.label_count(Sym(1)), 1);
        assert_eq!(store.label_count(Sym(9)), 0);
        assert_eq!(store.num_edges(), 3);
        assert_eq!(store.num_vertices(), 3);
    }

    #[test]
    fn duplicate_edges_do_not_inflate_statistics() {
        let mut store = GraphStore::new();
        assert!(store.insert_edge(u(0, 1, 2)));
        assert!(!store.insert_edge(u(0, 1, 2)));
        assert_eq!(store.label_count(Sym(0)), 1);
    }

    #[test]
    fn transactions_commit_in_batches() {
        let mut store = GraphStore::with_writes_per_tx(10);
        for i in 0..25 {
            store.insert_edge(u(0, i, i + 1));
        }
        assert_eq!(store.committed_transactions(), 2);
        store.commit();
        assert_eq!(store.committed_transactions(), 3);
        // Committing with nothing pending is a no-op.
        store.commit();
        assert_eq!(store.committed_transactions(), 3);
    }

    #[test]
    fn label_probe_index_agrees_with_adjacency() {
        let mut store = GraphStore::new();
        let edges = [
            u(0, 1, 2),
            u(0, 1, 3),
            u(0, 4, 2),
            u(1, 1, 2),
            u(0, 1, 2), // duplicate: absorbed everywhere
        ];
        for e in edges {
            store.insert_edge(e);
        }
        let probe = store.label_probe(Sym(0)).expect("label 0 indexed");
        assert_eq!(probe.edges.len(), 3, "duplicates never reach the index");

        // Probe by source == label-filtered out-edges.
        let key = [Sym(1)];
        let mut targets: Vec<Sym> = probe
            .by_src
            .probe_iter(&probe.edges, &key)
            .map(|i| probe.edges.row(i)[1])
            .collect();
        targets.sort();
        assert_eq!(targets, vec![Sym(2), Sym(3)]);

        // Probe by target == label-filtered in-edges.
        let key = [Sym(2)];
        let mut sources: Vec<Sym> = probe
            .by_tgt
            .probe_iter(&probe.edges, &key)
            .map(|i| probe.edges.row(i)[0])
            .collect();
        sources.sort();
        assert_eq!(sources, vec![Sym(1), Sym(4)]);

        // Misses and unseen labels.
        let key = [Sym(9)];
        assert_eq!(probe.by_src.probe_iter(&probe.edges, &key).count(), 0);
        assert!(store.label_probe(Sym(7)).is_none());
    }

    #[test]
    fn remove_edge_shrinks_statistics_and_probe_indexes() {
        let mut store = GraphStore::new();
        store.insert_edge(u(0, 1, 2));
        store.insert_edge(u(0, 1, 3));
        store.insert_edge(u(1, 1, 2));
        assert!(store.remove_edge(u(0, 1, 2).inverted()));
        assert!(!store.remove_edge(u(0, 1, 2)), "already gone");
        assert_eq!(store.label_count(Sym(0)), 1);
        assert_eq!(store.num_edges(), 2);
        assert!(!store.has_edge(Sym(0), Sym(1), Sym(2)));

        // The probe index lost the row and its builds were rebuilt over the
        // compacted relation.
        let probe = store.label_probe(Sym(0)).expect("label 0 indexed");
        assert_eq!(probe.edges.len(), 1);
        let key = [Sym(1)];
        let targets: Vec<Sym> = probe
            .by_src
            .probe_iter(&probe.edges, &key)
            .map(|i| probe.edges.row(i)[1])
            .collect();
        assert_eq!(targets, vec![Sym(3)]);
        let key = [Sym(2)];
        assert_eq!(probe.by_tgt.probe_iter(&probe.edges, &key).count(), 0);
    }

    #[test]
    fn adjacency_lookups() {
        let mut store = GraphStore::new();
        store.insert_edge(u(0, 1, 2));
        store.insert_edge(u(1, 1, 3));
        assert_eq!(store.out_edges(Sym(1)).len(), 2);
        assert_eq!(store.in_edges(Sym(2)).len(), 1);
        assert!(store.has_edge(Sym(0), Sym(1), Sym(2)));
        assert!(!store.has_edge(Sym(0), Sym(2), Sym(1)));
        assert_eq!(store.edges_with_label(Sym(1)).len(), 1);
    }
}
