//! The continuous adapter: the paper's Neo4j-based baseline as a
//! [`ContinuousEngine`].
//!
//! Query indexing keeps the query patterns verbatim (`queryInd`) plus an
//! inverted index from generic edges to query ids (`edgeInd`). Answering a
//! stream update then follows Section 5.3 exactly: (1) apply the update to
//! the database, (2) look up the affected queries in `edgeInd`, (3) fetch
//! them from `queryInd`, and (4) execute them against the database — here
//! anchored at the new edge so that the reported matches are the *new*
//! embeddings, which keeps the outputs of all engines identical.

use std::collections::HashMap;

use gsm_core::engine::{ContinuousEngine, EngineStats, MatchReport, QueryId};
use gsm_core::error::{Error, Result};
use gsm_core::memory::HeapSize;
use gsm_core::model::generic::GenericEdge;
use gsm_core::model::update::Update;
use gsm_core::query::pattern::QueryPattern;

use crate::matcher::{execute, MatchCollector};
use crate::plan::PlanCache;
use crate::store::GraphStore;

/// Configuration of the graph-database baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphDbConfig {
    /// Number of writes batched into one transaction.
    pub writes_per_tx: usize,
    /// Upper bound on embeddings enumerated per (query, update); the paper's
    /// baseline has no such bound, so the default is unlimited.
    pub max_embeddings_per_query: usize,
}

impl Default for GraphDbConfig {
    fn default() -> Self {
        GraphDbConfig {
            writes_per_tx: GraphStore::DEFAULT_WRITES_PER_TX,
            max_embeddings_per_query: usize::MAX,
        }
    }
}

/// The graph-database baseline engine.
#[derive(Debug)]
pub struct GraphDbEngine {
    config: GraphDbConfig,
    store: GraphStore,
    /// queryInd: the registered query patterns. Unregistration tombstones a
    /// slot with `None` — ids are never reused, so later slots keep their
    /// positions.
    queries: Vec<Option<QueryPattern>>,
    /// Number of non-tombstoned `queries` slots.
    live: usize,
    /// edgeInd: generic edge → queries containing a pattern edge with that shape,
    /// along with the indices of those pattern edges.
    edge_index: HashMap<GenericEdge, Vec<(QueryId, usize)>>,
    plan_cache: PlanCache,
    stats: EngineStats,
}

impl GraphDbEngine {
    /// Creates an engine with the default configuration.
    pub fn new() -> Self {
        Self::with_config(GraphDbConfig::default())
    }

    /// Creates an engine with an explicit configuration.
    pub fn with_config(config: GraphDbConfig) -> Self {
        GraphDbEngine {
            config,
            store: GraphStore::with_writes_per_tx(config.writes_per_tx),
            queries: Vec::new(),
            live: 0,
            edge_index: HashMap::new(),
            plan_cache: PlanCache::new(),
            stats: EngineStats::default(),
        }
    }

    /// The underlying store (for inspection in tests and examples).
    pub fn store(&self) -> &GraphStore {
        &self.store
    }

    /// Number of cached execution plans.
    pub fn cached_plans(&self) -> usize {
        self.plan_cache.len()
    }
}

impl Default for GraphDbEngine {
    fn default() -> Self {
        Self::new()
    }
}

/// GraphDB keeps the trait-default staging (`stage_batch` = immediate
/// `apply_batch`): the store has no generational snapshots to pin, so
/// deferring the answer would require copying the whole pre-removal
/// neighbourhood. Immediate tokens satisfy the staged-retraction contract
/// trivially — the answer runs at stage time, before any later stage can
/// move the store — which the pipelined executor handles uniformly (an
/// immediate token is already answered when it reaches the worker pool).
impl ContinuousEngine for GraphDbEngine {
    fn name(&self) -> &'static str {
        "GraphDB"
    }

    fn register_query(&mut self, query: &QueryPattern) -> Result<QueryId> {
        let qid = QueryId(self.queries.len() as u32);
        for (edge_idx, edge) in query.edges().iter().enumerate() {
            let ge = GenericEdge::from_pattern(edge);
            self.edge_index.entry(ge).or_default().push((qid, edge_idx));
        }
        self.queries.push(Some(query.clone()));
        self.live += 1;
        Ok(qid)
    }

    /// Strips the query from edgeInd, tombstones its queryInd slot and
    /// evicts its cached plans. The database itself is untouched — edges
    /// belong to the stream, not to any query.
    fn unregister_query(&mut self, query: QueryId) -> Result<()> {
        let Some(slot) = self.queries.get_mut(query.index()) else {
            return Err(Error::UnknownQuery(query.0));
        };
        let Some(pattern) = slot.take() else {
            return Err(Error::UnknownQuery(query.0));
        };
        for edge in pattern.edges() {
            let ge = GenericEdge::from_pattern(edge);
            if let Some(entries) = self.edge_index.get_mut(&ge) {
                entries.retain(|(q, _)| *q != query);
                if entries.is_empty() {
                    self.edge_index.remove(&ge);
                }
            }
        }
        self.plan_cache.evict_query(query);
        self.live -= 1;
        Ok(())
    }

    fn next_query_id(&self) -> QueryId {
        QueryId(self.queries.len() as u32)
    }

    fn is_registered(&self, query: QueryId) -> bool {
        self.queries
            .get(query.index())
            .is_some_and(|slot| slot.is_some())
    }

    fn apply_update(&mut self, update: Update) -> MatchReport {
        if update.is_retraction() {
            return self.retract_batch(&[update]);
        }
        self.stats.updates_processed += 1;

        // (1) Apply the update to the database.
        let is_new = self.store.insert_edge(update);
        if !is_new {
            return MatchReport::empty();
        }

        // (2) Determine the affected (query, pattern-edge) pairs via edgeInd.
        let mut anchored: HashMap<QueryId, Vec<usize>> = HashMap::new();
        for shape in GenericEdge::shapes_of_update(&update) {
            if let Some(entries) = self.edge_index.get(&shape) {
                for &(qid, edge_idx) in entries {
                    anchored.entry(qid).or_default().push(edge_idx);
                }
            }
        }
        if anchored.is_empty() {
            return MatchReport::empty();
        }

        // (3) + (4) Execute every affected query against the store, anchored
        // at the new edge (one execution per anchored pattern edge, distinct
        // embeddings deduplicated by the collector).
        let mut counts: Vec<(QueryId, u64)> = Vec::new();
        let mut sorted: Vec<(QueryId, Vec<usize>)> = anchored.into_iter().collect();
        sorted.sort_by_key(|(q, _)| *q);
        for (qid, mut edge_indices) in sorted {
            edge_indices.sort_unstable();
            edge_indices.dedup();
            let query = self.queries[qid.index()]
                .as_ref()
                .expect("edgeInd routes only to live queries");
            let mut collector = MatchCollector::with_limit(self.config.max_embeddings_per_query);
            for anchor_edge in edge_indices {
                let plan = self
                    .plan_cache
                    .get_or_build(qid, query, &self.store, Some(anchor_edge));
                execute(
                    query,
                    plan,
                    &self.store,
                    Some((anchor_edge, update)),
                    &mut collector,
                );
            }
            if !collector.is_empty() {
                counts.push((qid, collector.len() as u64));
            }
        }

        let report = MatchReport::from_counts(counts);
        self.stats.notifications += report.len() as u64;
        self.stats.embeddings += report.total_embeddings();
        report
    }

    /// Batched answering: the whole batch is applied to the database first,
    /// then every affected query is executed **once**, anchored at each
    /// genuinely new edge of the batch, with a single embedding collector
    /// per query. The collector deduplicates embeddings discovered from
    /// several anchors — including an embedding completed by more than one
    /// batch edge — so the per-query count equals the distinct new
    /// embeddings of the whole batch, exactly the merged sequential total
    /// (each embedding is reported sequentially once, at the update that
    /// completes it). This replaces the fold-based trait default: the store
    /// writes batch into fewer transactions and each (query, anchor-edge)
    /// plan is built at most once per batch.
    ///
    /// With a finite `max_embeddings_per_query` the cap applies per batch
    /// rather than per update; the default configuration is unlimited, where
    /// batched and sequential reports coincide.
    fn apply_batch(&mut self, updates: &[Update]) -> MatchReport {
        let mut report = MatchReport::empty();
        for run in gsm_core::model::update::sign_runs(updates) {
            let run_report = if run[0].is_retraction() {
                self.retract_batch(run)
            } else {
                self.insert_batch(run)
            };
            report = report.merge(&run_report);
        }
        report
    }

    fn num_queries(&self) -> usize {
        self.live
    }

    fn heap_bytes(&self) -> usize {
        self.store.heap_size()
            + self.queries.heap_size()
            + self.edge_index.heap_size()
            + self.plan_cache.heap_size()
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }
}

impl GraphDbEngine {
    /// The insert-only batch core (steps 1–4 of Section 5.3 amortized over
    /// the run): apply the run to the database, then execute every affected
    /// query once, anchored at each genuinely new edge, with a single
    /// deduplicating collector per query.
    fn insert_batch(&mut self, updates: &[Update]) -> MatchReport {
        match updates {
            [] => return MatchReport::empty(),
            [u] => return self.apply_update(*u),
            _ => {}
        }
        self.stats.updates_processed += updates.len() as u64;

        // (1) Apply the whole batch to the database, keeping the genuinely
        // new edges (duplicates of history or of earlier updates in the same
        // batch are absorbed exactly as they would be one at a time).
        let new_edges: Vec<Update> = updates
            .iter()
            .copied()
            .filter(|u| self.store.insert_edge(*u))
            .collect();
        if new_edges.is_empty() {
            return MatchReport::empty();
        }

        // (2) Resolve the affected (query, anchor pattern edge, new update)
        // triples via edgeInd, once for the whole batch.
        let mut anchored: HashMap<QueryId, Vec<(usize, Update)>> = HashMap::new();
        for &u in &new_edges {
            for shape in GenericEdge::shapes_of_update(&u) {
                if let Some(entries) = self.edge_index.get(&shape) {
                    for &(qid, edge_idx) in entries {
                        anchored.entry(qid).or_default().push((edge_idx, u));
                    }
                }
            }
        }
        if anchored.is_empty() {
            return MatchReport::empty();
        }

        // (3) + (4) Execute each affected query against the post-batch
        // store, anchored at every new edge, deduplicating embeddings in one
        // collector per query.
        let mut counts: Vec<(QueryId, u64)> = Vec::new();
        let mut sorted: Vec<(QueryId, Vec<(usize, Update)>)> = anchored.into_iter().collect();
        sorted.sort_by_key(|(q, _)| *q);
        for (qid, anchors) in sorted {
            let query = self.queries[qid.index()]
                .as_ref()
                .expect("edgeInd routes only to live queries");
            let mut collector = MatchCollector::with_limit(self.config.max_embeddings_per_query);
            for (anchor_edge, u) in anchors {
                let plan = self
                    .plan_cache
                    .get_or_build(qid, query, &self.store, Some(anchor_edge));
                execute(
                    query,
                    plan,
                    &self.store,
                    Some((anchor_edge, u)),
                    &mut collector,
                );
            }
            if !collector.is_empty() {
                counts.push((qid, collector.len() as u64));
            }
        }

        let report = MatchReport::from_counts(counts);
        self.stats.notifications += report.len() as u64;
        self.stats.embeddings += report.total_embeddings();
        report
    }

    /// The retraction core: the disappearing embeddings are enumerated
    /// **before** the database changes — every affected query is executed
    /// against the pre-removal store, anchored at each edge about to go (one
    /// deduplicating collector per query, exactly like the insert direction:
    /// an embedding disappears iff it maps some pattern edge onto a removed
    /// edge) — and only then are the edges deleted from the store, the
    /// statistics and the per-label probe indexes.
    fn retract_batch(&mut self, updates: &[Update]) -> MatchReport {
        self.stats.updates_processed += updates.len() as u64;

        // (1) Resolve which of the named edges actually exist (the batch may
        // retract the same edge twice; removal is answered and applied once).
        let mut victims: Vec<Update> = Vec::new();
        for u in updates {
            let e = u.edge();
            if self.store.has_edge(e.label, e.src, e.tgt) && !victims.contains(&e) {
                victims.push(e);
            }
        }
        if victims.is_empty() {
            return MatchReport::empty();
        }

        // (2) Affected (query, anchor pattern edge, doomed edge) triples.
        let mut anchored: HashMap<QueryId, Vec<(usize, Update)>> = HashMap::new();
        for &e in &victims {
            for shape in GenericEdge::shapes_of_update(&e) {
                if let Some(entries) = self.edge_index.get(&shape) {
                    for &(qid, edge_idx) in entries {
                        anchored.entry(qid).or_default().push((edge_idx, e));
                    }
                }
            }
        }

        // (3) + (4) Execute against the PRE-removal store.
        let mut counts: Vec<(QueryId, u64)> = Vec::new();
        let mut sorted: Vec<(QueryId, Vec<(usize, Update)>)> = anchored.into_iter().collect();
        sorted.sort_by_key(|(q, _)| *q);
        for (qid, anchors) in sorted {
            let query = self.queries[qid.index()]
                .as_ref()
                .expect("edgeInd routes only to live queries");
            let mut collector = MatchCollector::with_limit(self.config.max_embeddings_per_query);
            for (anchor_edge, e) in anchors {
                let plan = self
                    .plan_cache
                    .get_or_build(qid, query, &self.store, Some(anchor_edge));
                execute(
                    query,
                    plan,
                    &self.store,
                    Some((anchor_edge, e)),
                    &mut collector,
                );
            }
            if !collector.is_empty() {
                counts.push((qid, collector.len() as u64));
            }
        }

        // (5) Commit the removals.
        for &e in &victims {
            self.store.remove_edge(e);
        }

        let report = MatchReport::from_retraction_counts(counts);
        self.stats.notifications += report.len() as u64;
        self.stats.retracted += report.total_retracted();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsm_core::interner::SymbolTable;

    struct Fixture {
        symbols: SymbolTable,
    }

    impl Fixture {
        fn new() -> Self {
            Fixture {
                symbols: SymbolTable::new(),
            }
        }
        fn q(&mut self, text: &str) -> QueryPattern {
            QueryPattern::parse(text, &mut self.symbols).unwrap()
        }
        fn u(&mut self, label: &str, src: &str, tgt: &str) -> Update {
            Update::new(
                self.symbols.intern(label),
                self.symbols.intern(src),
                self.symbols.intern(tgt),
            )
        }
    }

    #[test]
    fn default_immediate_staging_answers_retraction_runs_at_stage_time() {
        use gsm_core::engine::ContinuousEngine as _;
        let mut f = Fixture::new();
        let mut engine = GraphDbEngine::new();
        let q = f.q("?a -x-> ?b; ?b -y-> ?c");
        engine.register_query(&q).unwrap();
        let ux = f.u("x", "a", "b");
        let uy = f.u("y", "b", "c");
        assert_eq!(engine.apply_batch(&[ux, uy]).total_embeddings(), 1);

        // The default token is immediate: the retraction is answered against
        // the pre-removal store at stage time and the commit lands before
        // stage_batch returns, so a staged re-insert routes post-removal.
        let t1 = engine.stage_batch(&[uy.inverted()]);
        assert!(t1.is_immediate());
        let t2 = engine.stage_batch(&[uy]);
        let r1 = engine.answer_staged(t1);
        assert_eq!(r1.total_retracted(), 1);
        let r2 = engine.answer_staged(t2);
        assert_eq!(r2.total_embeddings(), 1);
        assert_eq!(engine.stats().retracted, 1);
    }

    #[test]
    fn unregister_stops_matching_and_evicts_cached_plans() {
        let mut f = Fixture::new();
        let mut engine = GraphDbEngine::new();
        let q1 = f.q("?a -knows-> ?b; ?b -worksAt-> acme");
        let q2 = f.q("?a -knows-> ?b");
        let id1 = engine.register_query(&q1).unwrap();
        let id2 = engine.register_query(&q2).unwrap();
        engine.apply_update(f.u("knows", "ann", "bob"));
        engine.apply_update(f.u("worksAt", "bob", "acme"));
        assert!(engine.cached_plans() > 0);

        engine.unregister_query(id1).unwrap();
        assert_eq!(engine.num_queries(), 1);
        assert!(!engine.is_registered(id1));
        assert!(engine.is_registered(id2));
        assert_eq!(
            engine.unregister_query(id1),
            Err(Error::UnknownQuery(id1.0))
        );

        // q1 no longer reports; q2 still does; the store keeps its edges.
        assert!(engine
            .apply_update(f.u("worksAt", "cat", "acme"))
            .is_empty());
        let r = engine.apply_update(f.u("knows", "cat", "dan"));
        assert_eq!(r.satisfied_queries(), vec![id2]);
        assert_eq!(engine.store().num_edges(), 4);

        // The freed id is never reused; the new query sees retained history.
        let id3 = engine.register_query(&f.q("?p -worksAt-> ?c")).unwrap();
        assert_eq!(id3, QueryId(2));
        assert_eq!(engine.next_query_id(), QueryId(3));
        let r = engine.apply_update(f.u("worksAt", "eve", "inc"));
        assert_eq!(r.satisfied_queries(), vec![id3]);
    }

    #[test]
    fn chain_query_matches_when_complete() {
        let mut f = Fixture::new();
        let mut engine = GraphDbEngine::new();
        let q = f.q("?a -knows-> ?b; ?b -worksAt-> acme");
        let qid = engine.register_query(&q).unwrap();
        assert!(engine.apply_update(f.u("knows", "alice", "bob")).is_empty());
        let report = engine.apply_update(f.u("worksAt", "bob", "acme"));
        assert_eq!(report.satisfied_queries(), vec![qid]);
        assert_eq!(report.matches[0].new_embeddings, 1);
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let mut f = Fixture::new();
        let mut engine = GraphDbEngine::new();
        let q = f.q("?a -knows-> ?b");
        engine.register_query(&q).unwrap();
        let u = f.u("knows", "a", "b");
        assert_eq!(engine.apply_update(u).len(), 1);
        assert_eq!(engine.apply_update(u).len(), 0);
    }

    #[test]
    fn self_loop_query() {
        let mut f = Fixture::new();
        let mut engine = GraphDbEngine::new();
        let q = f.q("?a -follows-> ?a");
        let qid = engine.register_query(&q).unwrap();
        assert!(engine.apply_update(f.u("follows", "x", "y")).is_empty());
        let r = engine.apply_update(f.u("follows", "z", "z"));
        assert_eq!(r.satisfied_queries(), vec![qid]);
    }

    #[test]
    fn embedding_counts_match_the_relational_engines() {
        let mut f = Fixture::new();
        let mut engine = GraphDbEngine::new();
        let q = f.q("?a -knows-> ?b; ?b -likes-> ?c");
        engine.register_query(&q).unwrap();
        engine.apply_update(f.u("knows", "a1", "b"));
        engine.apply_update(f.u("knows", "a2", "b"));
        let report = engine.apply_update(f.u("likes", "b", "c"));
        assert_eq!(report.matches[0].new_embeddings, 2);
    }

    #[test]
    fn plan_cache_is_reused_across_updates() {
        let mut f = Fixture::new();
        let mut engine = GraphDbEngine::new();
        let q = f.q("?a -x-> ?b; ?b -y-> ?c");
        engine.register_query(&q).unwrap();
        for i in 0..10 {
            engine.apply_update(f.u("x", &format!("a{i}"), &format!("b{i}")));
            engine.apply_update(f.u("y", &format!("b{i}"), &format!("c{i}")));
        }
        assert!(engine.cached_plans() <= 2);
        assert!(engine.store().num_edges() == 20);
    }

    #[test]
    fn batch_report_equals_merged_sequential_reports() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for chunk in [2usize, 7, 50, 300] {
            let mut rng = StdRng::seed_from_u64(91);
            let mut f = Fixture::new();
            let queries = vec![
                f.q("?a -e0-> ?b; ?b -e1-> ?c"),
                f.q("?a -e1-> ?b; ?b -e2-> ?c; ?c -e0-> ?a"),
                f.q("?h -e0-> ?x; ?h -e2-> ?y"),
                f.q("?a -e0-> v3"),
                f.q("?a -e2-> ?a"),
            ];
            let mut seq = GraphDbEngine::new();
            let mut bat = GraphDbEngine::new();
            for q in &queries {
                seq.register_query(q).unwrap();
                bat.register_query(q).unwrap();
            }
            let stream: Vec<Update> = (0..300)
                .map(|_| {
                    let label = format!("e{}", rng.gen_range(0..3));
                    let src = format!("v{}", rng.gen_range(0..7));
                    let tgt = format!("v{}", rng.gen_range(0..7));
                    f.u(&label, &src, &tgt)
                })
                .collect();
            for batch in stream.chunks(chunk) {
                let mut counts = Vec::new();
                for &u in batch {
                    let r = seq.apply_update(u);
                    counts.extend(r.matches.iter().map(|m| (m.query, m.new_embeddings)));
                }
                let expected = MatchReport::from_counts(counts);
                let got = bat.apply_batch(batch);
                assert_eq!(got, expected, "GraphDB chunk {chunk} diverged");
            }
            assert_eq!(seq.stats().updates_processed, bat.stats().updates_processed);
            assert_eq!(seq.stats().embeddings, bat.stats().embeddings);
        }
    }

    #[test]
    fn retraction_reports_disappearing_matches() {
        let mut f = Fixture::new();
        let mut engine = GraphDbEngine::new();
        let q = f.q("?a -knows-> ?b; ?b -likes-> ?c");
        let qid = engine.register_query(&q).unwrap();
        engine.apply_update(f.u("knows", "a1", "b"));
        engine.apply_update(f.u("knows", "a2", "b"));
        engine.apply_update(f.u("likes", "b", "c"));
        // Removing the shared `likes` edge destroys both embeddings.
        let report = engine.apply_update(f.u("likes", "b", "c").inverted());
        assert_eq!(report.matches.len(), 1);
        assert_eq!(report.matches[0].query, qid);
        assert_eq!(report.matches[0].retracted_embeddings, 2);
        assert_eq!(engine.stats().retracted, 2);
        assert_eq!(engine.store().num_edges(), 2);
        // Retracting again (or an absent edge) is a no-op.
        assert!(engine
            .apply_update(f.u("likes", "b", "c").inverted())
            .is_empty());
        // Re-adding brings both embeddings back.
        let revived = engine.apply_update(f.u("likes", "b", "c"));
        assert_eq!(revived.matches[0].new_embeddings, 2);
    }

    #[test]
    fn mixed_batch_reports_both_signs_without_cancelling() {
        let mut f = Fixture::new();
        let mut engine = GraphDbEngine::new();
        let q = f.q("?a -x-> ?b; ?b -y-> ?c");
        engine.register_query(&q).unwrap();
        let ux = f.u("x", "a1", "b1");
        let uy = f.u("y", "b1", "c1");
        let report = engine.apply_batch(&[ux, uy, ux.inverted()]);
        assert_eq!(report.total_embeddings(), 1);
        assert_eq!(report.total_retracted(), 1);
        assert_eq!(engine.store().num_edges(), 1);
    }

    #[test]
    fn agrees_with_tric_on_random_mixed_streams() {
        use gsm_tric::TricEngine;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let mut rng = StdRng::seed_from_u64(321);
        let mut f = Fixture::new();
        let queries = vec![
            f.q("?a -e0-> ?b; ?b -e1-> ?c"),
            f.q("?a -e1-> ?b; ?b -e2-> ?c; ?c -e0-> ?a"),
            f.q("?h -e0-> ?x; ?h -e2-> ?y"),
            f.q("?a -e0-> v3"),
            f.q("?a -e2-> ?a"),
            f.q("?x -e1-> ?y; ?z -e1-> ?y"),
        ];
        let mut tric = TricEngine::tric_plus();
        let mut db = GraphDbEngine::new();
        for q in &queries {
            tric.register_query(q).unwrap();
            db.register_query(q).unwrap();
        }
        let mut live: Vec<Update> = Vec::new();
        for step in 0..400 {
            let u = if !live.is_empty() && rng.gen_bool(0.4) {
                live.swap_remove(rng.gen_range(0..live.len())).inverted()
            } else {
                let label = format!("e{}", rng.gen_range(0..3));
                let src = format!("v{}", rng.gen_range(0..7));
                let tgt = format!("v{}", rng.gen_range(0..7));
                let u = f.u(&label, &src, &tgt);
                if !live.contains(&u) {
                    live.push(u);
                }
                u
            };
            let expected = tric.apply_update(u);
            let got = db.apply_update(u);
            assert_eq!(
                got, expected,
                "GraphDB diverged from TRIC+ at #{step} on {u:?}"
            );
        }
    }

    #[test]
    fn agrees_with_tric_on_random_streams() {
        use gsm_tric::TricEngine;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let mut rng = StdRng::seed_from_u64(123);
        let mut f = Fixture::new();
        let queries = vec![
            f.q("?a -e0-> ?b; ?b -e1-> ?c"),
            f.q("?a -e1-> ?b; ?b -e2-> ?c; ?c -e0-> ?a"),
            f.q("?h -e0-> ?x; ?h -e2-> ?y"),
            f.q("?a -e0-> v3"),
            f.q("?a -e2-> ?a"),
            f.q("?x -e1-> ?y; ?z -e1-> ?y"),
        ];
        let mut tric = TricEngine::tric_plus();
        let mut db = GraphDbEngine::new();
        for q in &queries {
            tric.register_query(q).unwrap();
            db.register_query(q).unwrap();
        }
        for _ in 0..300 {
            let label = format!("e{}", rng.gen_range(0..3));
            let src = format!("v{}", rng.gen_range(0..7));
            let tgt = format!("v{}", rng.gen_range(0..7));
            let u = f.u(&label, &src, &tgt);
            let expected = tric.apply_update(u);
            let got = db.apply_update(u);
            assert_eq!(got, expected, "GraphDB diverged from TRIC+ on {u:?}");
        }
    }
}
