//! Durable log-structured persistence for the continuous subgraph-matching
//! engines.
//!
//! The crate adds three layers on top of `gsm-core`, bottom to top:
//!
//! * [`storage`] — the pluggable byte-store abstraction ([`Storage`] /
//!   [`StorageFactory`]): real files ([`DirFactory`]), crash-survivable
//!   in-memory stores ([`MemFactory`]) and deterministic fault injection
//!   ([`FaultStorage`], [`FaultPlan`]) for the differential crash suites.
//!   [`codec`] holds the shared byte vocabulary (bounds-checked cursor,
//!   CRC-32, and the encodings of updates, patterns, symbol tables and
//!   chunked relations).
//! * [`wal`] — the write-ahead update log: checksummed, length-prefixed
//!   records, group-commit fsync, prefix-tolerant reading that stops
//!   cleanly at torn or corrupt tails, and multi-stripe merge with
//!   gap-cutting for one-log-per-shard layouts.
//! * [`checkpoint`] + [`engine`] — sequence-stamped logical snapshots
//!   (interner, queries, per-query totals, survivor edge relations with
//!   their compaction generations) and [`PersistentEngine`], the
//!   [`gsm_core::engine::ContinuousEngine`] wrapper that logs every batch
//!   ahead of application, spills checkpoints, and recovers any engine to
//!   report-equivalence with an uninterrupted run.
//!
//! Storage failures are always typed
//! ([`gsm_core::error::Error::Persistence`], carrying path + offset); the
//! crash-recovery contract and formats are documented in the repository's
//! `ARCHITECTURE.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod codec;
pub mod engine;
pub mod storage;
pub mod wal;

pub use checkpoint::{CheckpointData, QueryTotals};
pub use engine::{PersistConfig, PersistentEngine, RecoveryReport};
pub use storage::{
    DirFactory, FaultPlan, FaultStorage, FileStorage, MemFactory, MemStorage, Storage,
    StorageFactory,
};
pub use wal::{Wal, WalOp, WalRecord};
