//! [`PersistentEngine`]: the durability wrapper around any
//! [`ContinuousEngine`].
//!
//! Every externally visible operation is written ahead to the WAL before
//! the in-memory engine sees it: symbol interning ([`PersistentEngine::
//! note_symbols`]), query registration, and signed update batches (both the
//! eager [`PersistentEngine::try_apply_batch`] path and the pipelined
//! [`ContinuousEngine::stage_batch`] path — staging logs at stage time, so
//! a batch inside the pipeline window is already durable). Durability is
//! group-commit: the WAL fsyncs every [`PersistConfig::group_commit`]
//! records, so with `group_commit > 1` the tail of *acked but unsynced*
//! batches may be lost by a crash — recovery reports the durable resume
//! position ([`RecoveryReport::resume_updates`]) and the caller re-feeds
//! the stream from there.
//!
//! Alongside the inner engine the wrapper maintains the durable shadow
//! state the checkpoint captures: the interner table, registered queries,
//! per-query totals, cumulative stats, and the survivor edge store (live
//! edges per label as chunked [`Relation`]s). [`PersistentEngine::
//! checkpoint`] snapshots all of it to a sequence-stamped file and lets
//! recovery skip the WAL prefix; it **refuses** to run while staged batches
//! are outstanding (the staged-watermark state of the inner engine is not
//! serializable), returning a typed
//! [`Error::Persistence`](gsm_core::error::Error::Persistence) — callers
//! drain the pipeline first, as `gsm-core`'s `property_pipeline` suite pins
//! via the `in_flight` accounting.
//!
//! Recovery ([`PersistentEngine::open`]) = highest valid checkpoint + WAL
//! suffix replay. With `wal_stripes > 1` record `seq` lives on stripe
//! `seq % stripes`; replay merges stripes by `seq` and stops at the first
//! gap (a stripe that lost its tail), truncating every stripe back to the
//! last replayed record so the log is consistent again. The rebuilt engine
//! is *report-equivalent* to an uninterrupted run: identical per-query
//! totals, identical future reports.
//!
//! # Error contract
//!
//! Every fallible `try_*` method surfaces storage failures as typed
//! [`Error::Persistence`](gsm_core::error::Error::Persistence) values
//! carrying the storage path and byte offset. After such an error the
//! engine's in-memory state may be ahead of (or behind) the log — the
//! instance must be discarded and re-opened. The infallible
//! [`ContinuousEngine`] methods delegate to the `try_*` forms and **panic**
//! on storage failure (documented on the impl); fallibility-aware callers
//! use the `try_*` API directly.

use std::collections::{BTreeMap, BTreeSet};

use gsm_core::engine::{
    ContinuousEngine, DetachedAnswer, EngineStats, MatchReport, QueryId, StagedBatch,
};
use gsm_core::error::Result;
use gsm_core::interner::{Sym, SymbolTable};
use gsm_core::model::update::Update;
use gsm_core::query::pattern::QueryPattern;
use gsm_core::relation::Relation;

use crate::checkpoint::{self, CheckpointData, QueryTotals};
use crate::storage::{persistence_error, StorageFactory};
use crate::wal::{self, Wal, WalOp};

/// Tuning knobs for the persistence layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistConfig {
    /// WAL records per fsync (`1` = sync every record; larger values trade
    /// the unsynced tail for throughput).
    pub group_commit: usize,
    /// Automatically checkpoint every this many applied batches
    /// (`0` = manual checkpoints only). Auto-checkpoints are skipped while
    /// staged batches are outstanding and retried at the next opportunity.
    pub checkpoint_every: u64,
    /// Number of WAL stripes; record `seq` lands on stripe `seq % stripes`.
    /// Pair this with the sharded/pipelined wrappers to keep one log per
    /// worker. Recovery infers the stripe count from the files on disk.
    pub wal_stripes: usize,
}

impl Default for PersistConfig {
    fn default() -> Self {
        PersistConfig {
            group_commit: 1,
            checkpoint_every: 0,
            wal_stripes: 1,
        }
    }
}

impl PersistConfig {
    /// Sets the group-commit interval.
    pub fn with_group_commit(mut self, records: usize) -> Self {
        self.group_commit = records.max(1);
        self
    }

    /// Sets the auto-checkpoint batch interval (`0` disables).
    pub fn with_checkpoint_every(mut self, batches: u64) -> Self {
        self.checkpoint_every = batches;
        self
    }

    /// Sets the WAL stripe count.
    pub fn with_wal_stripes(mut self, stripes: usize) -> Self {
        self.wal_stripes = stripes.max(1);
        self
    }
}

/// What [`PersistentEngine::open`] found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sequence the loaded checkpoint covered through, if one was valid.
    pub checkpoint_seq: Option<u64>,
    /// WAL records replayed after the checkpoint.
    pub replayed_records: usize,
    /// Stream updates re-applied from replayed batch records.
    pub replayed_updates: u64,
    /// Valid-CRC records discarded because a sequence gap (a stripe that
    /// lost its tail) made them unreachable.
    pub discarded_records: usize,
    /// Stripes that were truncated (torn tails and post-gap suffixes).
    pub truncated_stripes: usize,
    /// Durable stream position: total updates the recovered engine has
    /// processed. Callers resume feeding the stream from this offset.
    pub resume_updates: u64,
}

fn wal_name(stripe: usize) -> String {
    format!("wal-{stripe:02}.log")
}

fn parse_wal_name(name: &str) -> Option<usize> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

fn clone_symbols(table: &SymbolTable) -> SymbolTable {
    let mut out = SymbolTable::new();
    for i in 0..table.len() {
        out.intern(table.resolve(Sym(i as u32)));
    }
    out
}

/// A [`ContinuousEngine`] wrapper adding write-ahead logging, chunk-spill
/// checkpoints and crash recovery. See the module docs for the full
/// durability and error contract.
pub struct PersistentEngine<E> {
    inner: E,
    factory: Box<dyn StorageFactory>,
    wals: Vec<Wal>,
    config: PersistConfig,
    next_seq: u64,
    symbols: SymbolTable,
    /// One slot per id ever issued, including tombstoned (unregistered)
    /// slots — recovery re-registers every slot in order so later ids keep
    /// their meaning, then unregisters the dead ones.
    queries: Vec<QueryPattern>,
    /// Ids of tombstoned `queries` slots.
    dead: BTreeSet<u32>,
    totals: Vec<QueryTotals>,
    shadow: BTreeMap<Sym, Relation>,
    stats: EngineStats,
    staged_outstanding: usize,
    batches_since_checkpoint: u64,
    last_checkpoint_seq: Option<u64>,
}

impl<E: ContinuousEngine> PersistentEngine<E> {
    /// Opens (or freshly creates) a persistent engine over `factory`.
    ///
    /// On an empty namespace this is a fresh engine wrapping
    /// `make_engine()`. Otherwise it recovers: loads the highest valid
    /// checkpoint, rebuilds a fresh inner engine (re-registering the
    /// checkpointed queries in order and feeding the survivor edge store,
    /// discarding those reports), then replays the WAL suffix — merged
    /// across stripes by sequence number, cut at the first gap — and
    /// truncates away torn tails and unreachable post-gap records.
    pub fn open(
        mut factory: Box<dyn StorageFactory>,
        config: PersistConfig,
        make_engine: impl FnOnce() -> E,
    ) -> Result<(Self, RecoveryReport)> {
        let names = factory.list()?;

        // Highest valid checkpoint wins; invalid ones (torn writes) are
        // skipped, not fatal.
        let mut ckpt_seqs: Vec<u64> = names
            .iter()
            .filter_map(|n| checkpoint::parse_file_name(n))
            .collect();
        ckpt_seqs.sort_unstable();
        let mut loaded: Option<CheckpointData> = None;
        for &seq in ckpt_seqs.iter().rev() {
            let mut storage = factory.open(&checkpoint::file_name(seq))?;
            if let Some(data) = checkpoint::read(storage.as_mut())? {
                loaded = Some(data);
                break;
            }
        }

        // Stripe count comes from disk when WAL files exist (the layout is
        // durable); the config only decides the fresh case.
        let disk_stripes = names
            .iter()
            .filter_map(|n| parse_wal_name(n))
            .max()
            .map(|max| max + 1);
        let stripes = disk_stripes.unwrap_or(config.wal_stripes.max(1));

        let mut report = RecoveryReport::default();
        let start_seq = loaded.as_ref().map(|c| c.covered_seq).unwrap_or(0);
        report.checkpoint_seq = loaded.as_ref().map(|c| c.covered_seq);

        // Read every stripe's valid prefix, merge by seq, cut at the first
        // gap, and truncate stripes to exactly the kept records.
        let mut stripe_storages = Vec::with_capacity(stripes);
        let mut stripe_reads = Vec::with_capacity(stripes);
        for i in 0..stripes {
            let mut storage = factory.open(&wal_name(i))?;
            stripe_reads.push(wal::read_records(storage.as_mut())?);
            stripe_storages.push(storage);
        }
        let total_candidates: usize = stripe_reads
            .iter()
            .map(|(records, _)| records.iter().filter(|r| r.seq >= start_seq).count())
            .sum();
        let (merged, cuts) = wal::merge_stripes(stripe_reads, start_seq);
        report.replayed_records = merged.len();
        report.discarded_records = total_candidates - merged.len();
        for (storage, &cut) in stripe_storages.iter_mut().zip(&cuts) {
            if storage.len()? > cut {
                storage.truncate(cut)?;
                report.truncated_stripes += 1;
            }
        }

        // Rebuild the engine: checkpoint state, survivor feed, WAL replay.
        let mut inner = make_engine();
        let (symbols, queries, dead, totals, shadow, stats) = match loaded {
            Some(data) => {
                let shadow: BTreeMap<Sym, Relation> = data.shadow.into_iter().collect();
                let dead: BTreeSet<u32> = data.dead_queries.into_iter().collect();
                (
                    data.symbols,
                    data.queries,
                    dead,
                    data.totals,
                    shadow,
                    data.stats,
                )
            }
            None => (
                SymbolTable::new(),
                Vec::new(),
                BTreeSet::new(),
                Vec::new(),
                BTreeMap::new(),
                EngineStats::default(),
            ),
        };
        // Every slot registers in id order (ids are positional), then the
        // tombstoned ones unregister — before the survivor feed, so dead
        // queries never match.
        for query in &queries {
            inner.register_query(query)?;
        }
        for &qid in &dead {
            inner.unregister_query(QueryId(qid))?;
        }
        for (label, rel) in &shadow {
            let survivors: Vec<Update> = rel
                .iter()
                .map(|row| Update::new(*label, row[0], row[1]))
                .collect();
            // Reports discarded: these embeddings are already folded into
            // the checkpointed totals.
            inner.apply_batch(&survivors);
        }

        let mut engine = PersistentEngine {
            inner,
            factory,
            wals: stripe_storages
                .into_iter()
                .map(|s| Wal::new(s, config.group_commit))
                .collect(),
            config,
            next_seq: start_seq + merged.len() as u64,
            symbols,
            queries,
            dead,
            totals,
            shadow,
            stats,
            staged_outstanding: 0,
            batches_since_checkpoint: 0,
            last_checkpoint_seq: report.checkpoint_seq,
        };
        for record in merged {
            match record.op {
                WalOp::Intern { name } => {
                    engine.symbols.intern(&name);
                }
                WalOp::Register { pattern } => {
                    engine.inner.register_query(&pattern)?;
                    engine.queries.push(pattern);
                    engine.totals.push(QueryTotals::default());
                }
                WalOp::Batch { updates } => {
                    report.replayed_updates += updates.len() as u64;
                    let batch_report = engine.inner.apply_batch(&updates);
                    engine.absorb_report(&batch_report);
                    engine.stats.updates_processed += updates.len() as u64;
                    engine.apply_shadow(&updates);
                }
                WalOp::Checkpoint { ckpt_seq } => {
                    // Marker only: the checkpoint file itself was already
                    // chosen above. Remember the newest coordinate.
                    if engine.last_checkpoint_seq < Some(ckpt_seq) {
                        engine.last_checkpoint_seq = Some(ckpt_seq);
                    }
                }
                WalOp::Unregister { query } => {
                    engine.inner.unregister_query(query)?;
                    engine.dead.insert(query.0);
                }
            }
        }
        report.resume_updates = engine.stats.updates_processed;
        Ok((engine, report))
    }

    fn wal_append(&mut self, op: WalOp) -> Result<()> {
        let seq = self.next_seq;
        let stripe = (seq % self.wals.len() as u64) as usize;
        self.wals[stripe].append(seq, &op)?;
        self.next_seq += 1;
        Ok(())
    }

    fn sync_wals(&mut self) -> Result<()> {
        for wal in &mut self.wals {
            wal.sync()?;
        }
        Ok(())
    }

    fn absorb_report(&mut self, report: &MatchReport) {
        self.stats.notifications += report.len() as u64;
        self.stats.embeddings += report.total_embeddings();
        self.stats.retracted += report.total_retracted();
        for m in &report.matches {
            if let Some(t) = self.totals.get_mut(m.query.index()) {
                t.embeddings += m.new_embeddings;
                t.retracted += m.retracted_embeddings;
                t.notifications += 1;
            }
        }
    }

    fn apply_shadow(&mut self, updates: &[Update]) {
        for u in updates {
            let rel = self
                .shadow
                .entry(u.label)
                .or_insert_with(|| Relation::new(2));
            let row = [u.src, u.tgt];
            if u.retract {
                if rel.contains(&row) {
                    rel.retract_rows(&Relation::singleton(&row));
                }
            } else {
                rel.push(&row);
            }
        }
    }

    /// Logs (and adopts) every symbol of `table` beyond the durable prefix,
    /// in dense `Sym` order, so persisted `Sym` ids keep their meaning
    /// across recovery. Call after interning workload symbols and before
    /// persisting operations that reference them.
    pub fn note_symbols(&mut self, table: &SymbolTable) -> Result<()> {
        for i in self.symbols.len()..table.len() {
            let name = table.resolve(Sym(i as u32)).to_string();
            self.wal_append(WalOp::Intern { name: name.clone() })?;
            self.symbols.intern(&name);
        }
        Ok(())
    }

    /// Fallible query registration: registers with the inner engine first
    /// (validation), then logs the registration.
    pub fn try_register_query(&mut self, query: &QueryPattern) -> Result<QueryId> {
        let id = self.inner.register_query(query)?;
        debug_assert_eq!(id.index(), self.queries.len());
        self.wal_append(WalOp::Register {
            pattern: query.clone(),
        })?;
        self.queries.push(query.clone());
        self.totals.push(QueryTotals::default());
        Ok(id)
    }

    /// Fallible query unregistration: unregisters with the inner engine
    /// first (validation — unknown or already dead ids fail typed), then
    /// logs the tombstone. The slot's pattern and totals are retained; the
    /// id is never reused.
    pub fn try_unregister_query(&mut self, query: QueryId) -> Result<()> {
        self.inner.unregister_query(query)?;
        self.wal_append(WalOp::Unregister { query })?;
        self.dead.insert(query.0);
        Ok(())
    }

    /// Fallible batch application: the batch is WAL-logged (and group-commit
    /// synced) **before** the inner engine applies it.
    pub fn try_apply_batch(&mut self, updates: &[Update]) -> Result<MatchReport> {
        self.wal_append(WalOp::Batch {
            updates: updates.to_vec(),
        })?;
        let report = self.inner.apply_batch(updates);
        self.stats.updates_processed += updates.len() as u64;
        self.absorb_report(&report);
        self.apply_shadow(updates);
        self.batches_since_checkpoint += 1;
        self.maybe_auto_checkpoint()?;
        Ok(report)
    }

    /// Fallible staging: WAL-logs the batch at **stage** time, so batches
    /// inside the pipeline window are durable before their answer runs.
    pub fn try_stage_batch(&mut self, updates: &[Update]) -> Result<StagedBatch> {
        self.wal_append(WalOp::Batch {
            updates: updates.to_vec(),
        })?;
        let staged = self.inner.stage_batch(updates);
        self.stats.updates_processed += updates.len() as u64;
        self.apply_shadow(updates);
        self.staged_outstanding += 1;
        self.batches_since_checkpoint += 1;
        Ok(staged)
    }

    /// Forces all group-commit debt to durable media. Call at stream end
    /// (or any ack boundary stronger than the group-commit interval).
    pub fn try_sync(&mut self) -> Result<()> {
        self.sync_wals()
    }

    /// Writes a checkpoint covering everything applied so far and returns
    /// the sequence it covers through. Keeps the current and previous
    /// checkpoint files, removing older ones.
    ///
    /// # Barrier
    ///
    /// Refuses with a typed persistence error while staged batches are
    /// outstanding: their deferred answers still reference watermark state
    /// inside the inner engine that no checkpoint captures. Drain the
    /// pipeline (`in_flight() == 0`) first.
    pub fn checkpoint(&mut self) -> Result<u64> {
        if self.staged_outstanding > 0 {
            return Err(persistence_error(
                &self.factory.location(),
                0,
                format!(
                    "checkpoint refused: {} staged batch(es) outstanding; drain the pipeline first",
                    self.staged_outstanding
                ),
            ));
        }
        self.sync_wals()?;
        let covered_seq = self.next_seq;
        let data = CheckpointData {
            covered_seq,
            stats: self.stats,
            symbols: clone_symbols(&self.symbols),
            queries: self.queries.clone(),
            dead_queries: self.dead.iter().copied().collect(),
            totals: self.totals.clone(),
            shadow: self
                .shadow
                .iter()
                .map(|(label, rel)| (*label, rel.clone()))
                .collect(),
        };
        let mut storage = self.factory.open(&checkpoint::file_name(covered_seq))?;
        checkpoint::write(storage.as_mut(), &data)?;
        // Coordinated marker: one record, merged into every stripe's replay
        // order by seq, tells readers the snapshot boundary.
        self.wal_append(WalOp::Checkpoint {
            ckpt_seq: covered_seq,
        })?;
        self.sync_wals()?;
        // Retain current + previous; drop older checkpoint files.
        let mut seqs: Vec<u64> = self
            .factory
            .list()?
            .iter()
            .filter_map(|n| checkpoint::parse_file_name(n))
            .collect();
        seqs.sort_unstable();
        if seqs.len() > 2 {
            for &old in &seqs[..seqs.len() - 2] {
                self.factory.remove(&checkpoint::file_name(old))?;
            }
        }
        self.last_checkpoint_seq = Some(covered_seq);
        self.batches_since_checkpoint = 0;
        Ok(covered_seq)
    }

    fn maybe_auto_checkpoint(&mut self) -> Result<()> {
        if self.config.checkpoint_every > 0
            && self.batches_since_checkpoint >= self.config.checkpoint_every
            && self.staged_outstanding == 0
        {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// The durable per-query totals, indexed by [`QueryId`].
    pub fn totals(&self) -> &[QueryTotals] {
        &self.totals
    }

    /// The durable interner table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Sequence number of the next WAL record.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Staged batches whose answers are still outstanding.
    pub fn staged_outstanding(&self) -> usize {
        self.staged_outstanding
    }

    /// Sequence the newest checkpoint covers through, if any.
    pub fn last_checkpoint_seq(&self) -> Option<u64> {
        self.last_checkpoint_seq
    }

    /// The live configuration.
    pub fn config(&self) -> &PersistConfig {
        &self.config
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Unwraps the inner engine, abandoning the persistence handles.
    pub fn into_inner(self) -> E {
        self.inner
    }
}

/// The infallible engine surface. Storage failures in `apply_update` /
/// `apply_batch` / `stage_batch` **panic** (the typed error is in the
/// message); use the `try_*` methods where failures must be handled.
/// `register_query` is fallible by signature and passes persistence errors
/// through. `stats` reports the **durable** counters (what recovery would
/// reproduce), which equal the uninterrupted engine's counters except for
/// `notifications` granularity (counted per batch report here).
impl<E: ContinuousEngine> ContinuousEngine for PersistentEngine<E> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn register_query(&mut self, query: &QueryPattern) -> Result<QueryId> {
        self.try_register_query(query)
    }

    fn unregister_query(&mut self, query: QueryId) -> Result<()> {
        self.try_unregister_query(query)
    }

    fn next_query_id(&self) -> QueryId {
        QueryId(self.queries.len() as u32)
    }

    fn is_registered(&self, query: QueryId) -> bool {
        query.index() < self.queries.len() && !self.dead.contains(&query.0)
    }

    fn apply_update(&mut self, update: Update) -> MatchReport {
        self.try_apply_batch(std::slice::from_ref(&update))
            .expect("persistent WAL append failed; discard and recover the engine")
    }

    fn apply_batch(&mut self, updates: &[Update]) -> MatchReport {
        self.try_apply_batch(updates)
            .expect("persistent WAL append failed; discard and recover the engine")
    }

    fn stage_batch(&mut self, updates: &[Update]) -> StagedBatch {
        self.try_stage_batch(updates)
            .expect("persistent WAL append failed; discard and recover the engine")
    }

    fn answer_staged(&mut self, staged: StagedBatch) -> MatchReport {
        let report = self.inner.answer_staged(staged);
        self.staged_outstanding = self.staged_outstanding.saturating_sub(1);
        self.absorb_report(&report);
        report
    }

    fn detach_staged(&mut self, staged: StagedBatch) -> DetachedAnswer {
        // The token stays outstanding until its report is absorbed.
        self.inner.detach_staged(staged)
    }

    fn absorb_answered(&mut self, report: &MatchReport) {
        self.inner.absorb_answered(report);
        self.staged_outstanding = self.staged_outstanding.saturating_sub(1);
        self.absorb_report(report);
    }

    fn num_queries(&self) -> usize {
        self.queries.len() - self.dead.len()
    }

    fn heap_bytes(&self) -> usize {
        self.inner.heap_bytes()
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{FaultPlan, MemFactory};
    use std::collections::HashSet;

    /// Deterministic toy engine whose reports are a pure function of the
    /// live edge set: inserting a new edge reports every live query with
    /// `new_embeddings` = live edges sharing the label (after insert);
    /// retracting a live edge reports `retracted_embeddings` = live edges
    /// sharing the label (before removal). Unregistered ids are tombstoned
    /// (never reused) and stop reporting.
    #[derive(Default)]
    struct CountEngine {
        edges: HashSet<(u32, u32, u32)>,
        queries: u32,
        dead: HashSet<u32>,
        stats: EngineStats,
    }

    impl CountEngine {
        fn live_queries(&self) -> Vec<QueryId> {
            (0..self.queries)
                .filter(|q| !self.dead.contains(q))
                .map(QueryId)
                .collect()
        }
    }

    impl ContinuousEngine for CountEngine {
        fn name(&self) -> &'static str {
            "COUNT"
        }
        fn register_query(&mut self, _query: &QueryPattern) -> Result<QueryId> {
            let id = QueryId(self.queries);
            self.queries += 1;
            Ok(id)
        }
        fn unregister_query(&mut self, query: QueryId) -> Result<()> {
            if query.0 >= self.queries || !self.dead.insert(query.0) {
                return Err(gsm_core::error::Error::UnknownQuery(query.0));
            }
            Ok(())
        }
        fn next_query_id(&self) -> QueryId {
            QueryId(self.queries)
        }
        fn is_registered(&self, query: QueryId) -> bool {
            query.0 < self.queries && !self.dead.contains(&query.0)
        }
        fn apply_update(&mut self, update: Update) -> MatchReport {
            self.stats.updates_processed += 1;
            let key = (update.label.0, update.src.0, update.tgt.0);
            let label_count = |edges: &HashSet<(u32, u32, u32)>| {
                edges.iter().filter(|e| e.0 == update.label.0).count() as u64
            };
            let report = if update.retract {
                if self.edges.remove(&key) {
                    let n = label_count(&self.edges) + 1;
                    MatchReport::from_retraction_counts(
                        self.live_queries().into_iter().map(|q| (q, n)).collect(),
                    )
                } else {
                    MatchReport::empty()
                }
            } else if self.edges.insert(key) {
                let n = label_count(&self.edges);
                MatchReport::from_counts(self.live_queries().into_iter().map(|q| (q, n)).collect())
            } else {
                MatchReport::empty()
            };
            self.stats.notifications += report.len() as u64;
            self.stats.embeddings += report.total_embeddings();
            self.stats.retracted += report.total_retracted();
            report
        }
        fn num_queries(&self) -> usize {
            (self.queries as usize) - self.dead.len()
        }
        fn heap_bytes(&self) -> usize {
            0
        }
        fn stats(&self) -> EngineStats {
            self.stats
        }
    }

    fn two_queries(symbols: &mut SymbolTable) -> Vec<QueryPattern> {
        vec![
            QueryPattern::parse("?x -knows-> ?y", symbols).unwrap(),
            QueryPattern::parse("?x -knows-> ?y; ?y -likes-> ?z", symbols).unwrap(),
        ]
    }

    fn mixed_stream(symbols: &mut SymbolTable) -> Vec<Update> {
        let knows = symbols.intern("knows");
        let likes = symbols.intern("likes");
        let mut stream = Vec::new();
        for i in 0..12u32 {
            let label = if i % 3 == 0 { likes } else { knows };
            stream.push(Update::new(label, Sym(100 + i), Sym(101 + i)));
        }
        // Retract some survivors and one absent edge; reinsert one.
        stream.push(Update::retraction(knows, Sym(101), Sym(102)));
        stream.push(Update::retraction(knows, Sym(999), Sym(998)));
        stream.push(Update::retraction(likes, Sym(100), Sym(101)));
        stream.push(Update::new(knows, Sym(101), Sym(102)));
        stream
    }

    fn open_mem(
        factory: &MemFactory,
        config: PersistConfig,
    ) -> (PersistentEngine<CountEngine>, RecoveryReport) {
        PersistentEngine::open(Box::new(factory.handle()), config, CountEngine::default).unwrap()
    }

    #[test]
    fn crash_and_recover_matches_uninterrupted_run() {
        let mut symbols = SymbolTable::new();
        let queries = two_queries(&mut symbols);
        let stream = mixed_stream(&mut symbols);

        // Uninterrupted oracle.
        let mut oracle = PersistentEngine::open(
            Box::new(MemFactory::new()),
            PersistConfig::default(),
            CountEngine::default,
        )
        .unwrap()
        .0;
        oracle.note_symbols(&symbols).unwrap();
        for q in &queries {
            oracle.try_register_query(q).unwrap();
        }
        for batch in stream.chunks(3) {
            oracle.try_apply_batch(batch).unwrap();
        }

        // Crashing run: apply a prefix, drop the engine ("crash"), recover
        // over the same namespace, finish the stream.
        let disk = MemFactory::new();
        {
            let (mut engine, fresh) = open_mem(&disk, PersistConfig::default());
            assert_eq!(fresh, RecoveryReport::default());
            engine.note_symbols(&symbols).unwrap();
            for q in &queries {
                engine.try_register_query(q).unwrap();
            }
            for batch in stream.chunks(3).take(3) {
                engine.try_apply_batch(batch).unwrap();
            }
            // Dropped here without sync beyond group commit: the crash.
        }
        let (mut recovered, report) = open_mem(&disk, PersistConfig::default());
        assert_eq!(report.resume_updates, 9);
        assert_eq!(report.replayed_updates, 9);
        assert_eq!(report.checkpoint_seq, None);
        assert_eq!(recovered.symbols().len(), symbols.len());
        for batch in stream[report.resume_updates as usize..].chunks(3) {
            recovered.try_apply_batch(batch).unwrap();
        }

        assert_eq!(recovered.stats(), oracle.stats());
        assert_eq!(recovered.totals(), oracle.totals());
    }

    #[test]
    fn checkpoint_skips_replay_prefix_and_preserves_totals() {
        let mut symbols = SymbolTable::new();
        let queries = two_queries(&mut symbols);
        let stream = mixed_stream(&mut symbols);

        let disk = MemFactory::new();
        let totals_at_crash;
        {
            let (mut engine, _) = open_mem(&disk, PersistConfig::default());
            engine.note_symbols(&symbols).unwrap();
            for q in &queries {
                engine.try_register_query(q).unwrap();
            }
            for batch in stream.chunks(4).take(2) {
                engine.try_apply_batch(batch).unwrap();
            }
            let seq = engine.checkpoint().unwrap();
            assert_eq!(engine.last_checkpoint_seq(), Some(seq));
            for batch in stream.chunks(4).skip(2) {
                engine.try_apply_batch(batch).unwrap();
            }
            totals_at_crash = engine.totals().to_vec();
        }
        let (recovered, report) = open_mem(&disk, PersistConfig::default());
        assert!(report.checkpoint_seq.is_some());
        assert_eq!(
            report.replayed_updates,
            stream.len() as u64 - 8,
            "only the post-checkpoint suffix replays"
        );
        assert_eq!(report.resume_updates, stream.len() as u64);
        assert_eq!(recovered.totals(), &totals_at_crash[..]);
    }

    #[test]
    fn unregister_replays_from_the_wal_after_a_crash() {
        let mut symbols = SymbolTable::new();
        let queries = two_queries(&mut symbols);
        let stream = mixed_stream(&mut symbols);

        // Both runs use identical batch boundaries (notifications are
        // counted per batch report).
        let run = |engine: &mut PersistentEngine<CountEngine>| {
            engine.note_symbols(&symbols).unwrap();
            for q in &queries {
                engine.try_register_query(q).unwrap();
            }
            engine.try_apply_batch(&stream[..4]).unwrap();
            engine.try_unregister_query(QueryId(0)).unwrap();
            engine.try_apply_batch(&stream[4..8]).unwrap();
        };

        // Uninterrupted oracle over the whole stream.
        let mut oracle = PersistentEngine::open(
            Box::new(MemFactory::new()),
            PersistConfig::default(),
            CountEngine::default,
        )
        .unwrap()
        .0;
        run(&mut oracle);
        oracle.try_apply_batch(&stream[8..]).unwrap();

        // Crash right after the unregister-containing prefix; recover and
        // finish the stream.
        let disk = MemFactory::new();
        {
            let (mut engine, _) = open_mem(&disk, PersistConfig::default());
            run(&mut engine);
        }
        let (mut recovered, report) = open_mem(&disk, PersistConfig::default());
        assert_eq!(report.checkpoint_seq, None);
        assert_eq!(recovered.num_queries(), 1);
        assert!(!recovered.is_registered(QueryId(0)));
        assert!(recovered.is_registered(QueryId(1)));
        recovered.try_apply_batch(&stream[8..]).unwrap();

        assert_eq!(recovered.stats(), oracle.stats());
        assert_eq!(recovered.totals(), oracle.totals());
        // The dead slot's id is never reused: a fresh registration advances
        // past it.
        assert_eq!(recovered.next_query_id(), QueryId(2));
        assert_eq!(
            recovered.try_register_query(&queries[0]).unwrap(),
            QueryId(2)
        );
    }

    #[test]
    fn unregister_survives_a_checkpoint_round_trip() {
        let mut symbols = SymbolTable::new();
        let queries = two_queries(&mut symbols);
        let stream = mixed_stream(&mut symbols);

        let disk = MemFactory::new();
        let totals_at_crash;
        {
            let (mut engine, _) = open_mem(&disk, PersistConfig::default());
            engine.note_symbols(&symbols).unwrap();
            for q in &queries {
                engine.try_register_query(q).unwrap();
            }
            engine.try_apply_batch(&stream[..4]).unwrap();
            engine.try_unregister_query(QueryId(1)).unwrap();
            // The checkpoint captures the tombstone; replay starts after it,
            // so recovery must get the dead set from the checkpoint alone.
            engine.checkpoint().unwrap();
            engine.try_apply_batch(&stream[4..]).unwrap();
            totals_at_crash = engine.totals().to_vec();
        }
        let (recovered, report) = open_mem(&disk, PersistConfig::default());
        assert!(report.checkpoint_seq.is_some());
        assert_eq!(recovered.num_queries(), 1);
        assert!(recovered.is_registered(QueryId(0)));
        assert!(!recovered.is_registered(QueryId(1)));
        assert_eq!(recovered.totals(), &totals_at_crash[..]);
        assert_eq!(recovered.inner().num_queries(), 1);
        // Double-unregister fails typed, before anything hits the WAL.
        let mut recovered = recovered;
        let err = recovered.try_unregister_query(QueryId(1)).unwrap_err();
        assert_eq!(err, gsm_core::error::Error::UnknownQuery(1));
    }

    #[test]
    fn auto_checkpoint_fires_on_batch_interval() {
        let disk = MemFactory::new();
        let mut symbols = SymbolTable::new();
        let stream = mixed_stream(&mut symbols);
        let (mut engine, _) = open_mem(&disk, PersistConfig::default().with_checkpoint_every(2));
        engine.note_symbols(&symbols).unwrap();
        assert_eq!(engine.last_checkpoint_seq(), None);
        for batch in stream.chunks(2).take(4) {
            engine.try_apply_batch(batch).unwrap();
        }
        assert!(engine.last_checkpoint_seq().is_some());
        // Old checkpoints are pruned to current + previous.
        let ckpts = disk
            .handle()
            .list()
            .unwrap()
            .iter()
            .filter(|n| checkpoint::parse_file_name(n).is_some())
            .count();
        assert!(ckpts <= 2, "kept {ckpts} checkpoint files");
    }

    #[test]
    fn torn_wal_tail_is_truncated_and_stream_resumes() {
        let mut symbols = SymbolTable::new();
        let stream = mixed_stream(&mut symbols);
        let disk = MemFactory::new();
        {
            let (mut engine, _) = open_mem(&disk, PersistConfig::default());
            engine.note_symbols(&symbols).unwrap();
            for batch in stream.chunks(3) {
                engine.try_apply_batch(batch).unwrap();
            }
        }
        // Tear the last 5 bytes off the WAL: the final batch record dies.
        let raw = disk.raw("wal-00.log").unwrap();
        let torn_len = {
            let mut bytes = raw.lock().unwrap();
            let keep = bytes.len() - 5;
            bytes.truncate(keep);
            keep as u64
        };
        let (recovered, report) = open_mem(&disk, PersistConfig::default());
        assert_eq!(report.truncated_stripes, 1);
        assert_eq!(report.resume_updates, 15, "last 1-update batch was torn");
        assert!(raw.lock().unwrap().len() as u64 <= torn_len);
        // The engine keeps appending cleanly after the cut.
        drop(recovered);
        let (mut recovered, _) = open_mem(&disk, PersistConfig::default());
        recovered.try_apply_batch(&stream[15..]).unwrap();
        assert_eq!(recovered.stats().updates_processed, 16);
    }

    #[test]
    fn striped_wal_gap_discards_unreachable_suffix() {
        let mut symbols = SymbolTable::new();
        let stream = mixed_stream(&mut symbols);
        let disk = MemFactory::new();
        {
            let (mut engine, _) = open_mem(&disk, PersistConfig::default().with_wal_stripes(2));
            engine.note_symbols(&symbols).unwrap();
            for batch in stream.chunks(2) {
                engine.try_apply_batch(batch).unwrap();
            }
        }
        // Chop a record off stripe 1: the seq gap makes every later record
        // in stripe 0 unreachable too.
        let raw1 = disk.raw("wal-01.log").unwrap();
        {
            let mut bytes = raw1.lock().unwrap();
            let keep = bytes.len() / 2;
            bytes.truncate(keep);
        }
        let (recovered, report) = open_mem(&disk, PersistConfig::default().with_wal_stripes(2));
        assert!(report.discarded_records > 0, "{report:?}");
        assert_eq!(report.truncated_stripes, 2);
        let resume = report.resume_updates as usize;
        assert!(resume < stream.len());
        // Finishing the stream from the resume point matches the oracle.
        let mut oracle = PersistentEngine::open(
            Box::new(MemFactory::new()),
            PersistConfig::default(),
            CountEngine::default,
        )
        .unwrap()
        .0;
        oracle.note_symbols(&symbols).unwrap();
        let mut recovered = recovered;
        for batch in stream[resume..].chunks(2) {
            recovered.try_apply_batch(batch).unwrap();
        }
        for batch in stream.chunks(2) {
            oracle.try_apply_batch(batch).unwrap();
        }
        assert_eq!(recovered.stats(), oracle.stats());
    }

    #[test]
    fn every_public_api_surfaces_typed_persistence_errors() {
        let mut symbols = SymbolTable::new();
        let queries = two_queries(&mut symbols);
        let knows = symbols.get("knows").unwrap();

        let assert_persistence = |err: gsm_core::error::Error, part: &str| match err {
            gsm_core::error::Error::Persistence { path, detail, .. } => {
                assert!(
                    detail.contains(part) || path.contains(part),
                    "path `{path}` detail `{detail}` missing `{part}`"
                );
            }
            other => panic!("expected Error::Persistence, got {other:?}"),
        };

        // Dead WAL: every logging API fails typed.
        let mut disk = MemFactory::new();
        disk.set_fault("wal-00.log", FaultPlan::FailAppendsAfter { at: 0 });
        let (mut engine, _) = open_mem(&disk, PersistConfig::default());
        assert_persistence(engine.note_symbols(&symbols).unwrap_err(), "injected");
        assert_persistence(
            engine.try_register_query(&queries[0]).unwrap_err(),
            "injected",
        );
        let batch = [Update::new(knows, Sym(1), Sym(2))];
        assert_persistence(engine.try_apply_batch(&batch).unwrap_err(), "injected");
        assert_persistence(engine.try_stage_batch(&batch).unwrap_err(), "injected");

        // Failing fsync: group-commit boundary surfaces it.
        let mut disk = MemFactory::new();
        disk.set_fault("wal-00.log", FaultPlan::FailSync);
        let (mut engine, _) = open_mem(&disk, PersistConfig::default());
        assert_persistence(engine.try_apply_batch(&batch).unwrap_err(), "fsync");

        // Checkpoint file write failure: after recovery replays the one
        // batch record and one more batch is applied, the checkpoint will
        // cover through `next_seq + 1` — fault exactly that file.
        let disk = MemFactory::new();
        let (mut engine, _) = open_mem(&disk, PersistConfig::default());
        engine.try_apply_batch(&batch).unwrap();
        let expected_ckpt_seq = engine.next_seq() + 1;
        drop(engine);
        let mut faulty = disk.handle();
        faulty.set_fault(
            &checkpoint::file_name(expected_ckpt_seq),
            FaultPlan::FailAppendsAfter { at: 0 },
        );
        let (mut engine2, _) = open_mem(&faulty, PersistConfig::default());
        engine2.try_apply_batch(&batch).unwrap();
        assert_eq!(engine2.next_seq(), expected_ckpt_seq);
        assert_persistence(engine2.checkpoint().unwrap_err(), "injected");
    }

    #[test]
    fn checkpoint_barrier_refuses_while_staged_then_succeeds_after_drain() {
        let mut symbols = SymbolTable::new();
        let knows = symbols.intern("knows");
        let disk = MemFactory::new();
        let (mut engine, _) = open_mem(&disk, PersistConfig::default());
        engine.note_symbols(&symbols).unwrap();
        let staged = engine
            .try_stage_batch(&[Update::new(knows, Sym(1), Sym(2))])
            .unwrap();
        assert_eq!(engine.staged_outstanding(), 1);
        match engine.checkpoint().unwrap_err() {
            gsm_core::error::Error::Persistence { detail, .. } => {
                assert!(detail.contains("staged"), "{detail}");
                assert!(detail.contains("drain"), "{detail}");
            }
            other => panic!("expected Error::Persistence, got {other:?}"),
        }
        // Draining via the detach/absorb path also releases the barrier.
        let answer = engine.detach_staged(staged);
        assert_eq!(engine.staged_outstanding(), 1, "outstanding until absorbed");
        let report = answer.run();
        engine.absorb_answered(&report);
        assert_eq!(engine.staged_outstanding(), 0);
        engine.checkpoint().unwrap();
    }

    #[test]
    fn staged_batches_are_durable_at_stage_time() {
        let mut symbols = SymbolTable::new();
        let knows = symbols.intern("knows");
        let disk = MemFactory::new();
        {
            let (mut engine, _) = open_mem(&disk, PersistConfig::default());
            engine.note_symbols(&symbols).unwrap();
            let _staged = engine
                .try_stage_batch(&[Update::new(knows, Sym(1), Sym(2))])
                .unwrap();
            // Crash with the token still outstanding: the batch is already
            // in the WAL, so recovery replays it.
        }
        let (recovered, report) = open_mem(&disk, PersistConfig::default());
        assert_eq!(report.resume_updates, 1);
        assert_eq!(recovered.stats().updates_processed, 1);
    }

    #[test]
    fn interner_restores_identically_with_permuted_registration_order() {
        // Satellite (c): symbols are checkpointed explicitly, so recovery
        // does not depend on registration order re-interning the same ids.
        // Intern names in one order, register queries in the *reverse*
        // order, checkpoint, recover: every Sym resolves unchanged.
        let mut symbols = SymbolTable::new();
        let names = ["alpha", "beta", "gamma", "delta"];
        for n in &names {
            symbols.intern(n);
        }
        let q_beta = QueryPattern::parse("?x -beta-> ?y", &mut symbols).unwrap();
        let q_alpha = QueryPattern::parse("?x -alpha-> ?y", &mut symbols).unwrap();

        let disk = MemFactory::new();
        {
            let (mut engine, _) = open_mem(&disk, PersistConfig::default());
            engine.note_symbols(&symbols).unwrap();
            // Registration order (beta first) permutes the first-use order
            // of the interned names (alpha first).
            engine.try_register_query(&q_beta).unwrap();
            engine.try_register_query(&q_alpha).unwrap();
            engine.checkpoint().unwrap();
        }
        let (recovered, report) = open_mem(&disk, PersistConfig::default());
        assert!(report.checkpoint_seq.is_some());
        let restored = recovered.symbols();
        assert_eq!(restored.len(), symbols.len());
        for i in 0..symbols.len() {
            let sym = Sym(i as u32);
            assert_eq!(restored.resolve(sym), symbols.resolve(sym), "Sym({i})");
        }
    }
}
