//! Checkpoint files: the logical snapshot recovery starts from.
//!
//! A checkpoint captures everything needed to rebuild *any* of the engines
//! to report-equivalence without replaying the whole WAL: the interner
//! table (explicitly, in `Sym` order — recovery must not depend on
//! registration order re-interning the same ids), the registered queries in
//! registration order, the per-query notification totals accumulated so
//! far, the engine's cumulative [`EngineStats`], and the **survivor edge
//! store** — one chunked [`Relation`] per edge label holding exactly the
//! edges alive at the checkpoint, with its compaction generation. The
//! frozen chunks of those relations spill to disk in their in-memory form
//! (see [`crate::codec::put_relation`]), so the `(generation, version)`
//! watermark pair survives the round trip.
//!
//! Why survivor edges suffice: the retraction differential suites pin that
//! every engine's future reports are a function of (registered queries,
//! current live edge set) — state after a mixed insert/retract history is
//! observationally equivalent to a fresh engine fed only the surviving
//! edges. Recovery therefore feeds the survivor store to a factory-fresh
//! engine (discarding the reports, which are already folded into the
//! checkpointed totals) and replays only the WAL suffix.
//!
//! The file format is `magic ∥ version ∥ body ∥ crc32(magic ∥ version ∥
//! body)`. Checkpoint files are written once under a sequence-stamped name
//! (`checkpoint-<seq>.ckpt`) and never overwritten; recovery picks the
//! highest *valid* one, so a crash mid-checkpoint-write at worst wastes the
//! newest file.

use gsm_core::engine::EngineStats;
use gsm_core::interner::{Sym, SymbolTable};
use gsm_core::query::pattern::QueryPattern;
use gsm_core::relation::Relation;

use crate::codec::{self, crc32, put_u32, put_u64, CodecError, CodecResult, Cursor};
use crate::storage::Storage;

const MAGIC: &[u8; 8] = b"GSMCKPT1";
const VERSION: u32 = 2;

/// Per-query durable totals: what the per-query answer stream has summed to
/// so far. The crash suites compare these against an uninterrupted oracle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryTotals {
    /// Total new embeddings reported for the query.
    pub embeddings: u64,
    /// Total retracted embeddings reported for the query.
    pub retracted: u64,
    /// Total notifications (reports naming the query).
    pub notifications: u64,
}

/// The full logical snapshot stored in one checkpoint file.
/// (No `PartialEq`: compare via [`encode`], which is canonical — equal
/// snapshots encode to identical bytes.)
#[derive(Debug, Clone)]
pub struct CheckpointData {
    /// Operations with `seq < covered_seq` are captured by this snapshot;
    /// WAL replay resumes at `covered_seq`.
    pub covered_seq: u64,
    /// Cumulative engine counters at the checkpoint.
    pub stats: EngineStats,
    /// The interner table, explicitly, in dense `Sym` order.
    pub symbols: SymbolTable,
    /// Registered queries in registration order (`QueryId` = index),
    /// including tombstoned slots — ids are never reused, so recovery
    /// re-registers every slot in order and then unregisters the dead ones.
    pub queries: Vec<QueryPattern>,
    /// Ids of unregistered (tombstoned) `queries` slots, strictly
    /// ascending.
    pub dead_queries: Vec<u32>,
    /// Durable per-query totals, indexed like `queries` (dead slots keep
    /// their accumulated totals).
    pub totals: Vec<QueryTotals>,
    /// Survivor edge store: live `(src, tgt)` relation per edge label,
    /// sorted by label.
    pub shadow: Vec<(Sym, Relation)>,
}

/// Encodes a checkpoint into its on-disk bytes (magic, version, body,
/// trailing CRC).
pub fn encode(data: &CheckpointData) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, VERSION);
    put_u64(&mut out, data.covered_seq);
    put_u64(&mut out, data.stats.updates_processed);
    put_u64(&mut out, data.stats.notifications);
    put_u64(&mut out, data.stats.embeddings);
    put_u64(&mut out, data.stats.retracted);
    codec::put_symbols(&mut out, &data.symbols);
    put_u32(&mut out, data.queries.len() as u32);
    for q in &data.queries {
        codec::put_pattern(&mut out, q);
    }
    put_u32(&mut out, data.dead_queries.len() as u32);
    for &qid in &data.dead_queries {
        put_u32(&mut out, qid);
    }
    put_u32(&mut out, data.totals.len() as u32);
    for t in &data.totals {
        put_u64(&mut out, t.embeddings);
        put_u64(&mut out, t.retracted);
        put_u64(&mut out, t.notifications);
    }
    put_u32(&mut out, data.shadow.len() as u32);
    for (label, rel) in &data.shadow {
        put_u32(&mut out, label.0);
        codec::put_relation(&mut out, rel);
    }
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

/// Decodes checkpoint bytes, verifying magic, version and trailing CRC
/// before touching the body.
pub fn decode(bytes: &[u8]) -> CodecResult<CheckpointData> {
    if bytes.len() < MAGIC.len() + 8 {
        return Err(CodecError {
            offset: 0,
            detail: format!("checkpoint too short: {} bytes", bytes.len()),
        });
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(CodecError {
            offset: 0,
            detail: "bad checkpoint magic".to_string(),
        });
    }
    let body_end = bytes.len() - 4;
    let stored_crc = u32::from_le_bytes(bytes[body_end..].try_into().unwrap());
    if crc32(&bytes[..body_end]) != stored_crc {
        return Err(CodecError {
            offset: body_end as u64,
            detail: "checkpoint CRC mismatch".to_string(),
        });
    }
    let mut c = Cursor::new(&bytes[MAGIC.len()..body_end]);
    let version = c.u32()?;
    if version != VERSION {
        return Err(CodecError {
            offset: MAGIC.len() as u64,
            detail: format!("unsupported checkpoint version {version}"),
        });
    }
    let covered_seq = c.u64()?;
    let stats = EngineStats {
        updates_processed: c.u64()?,
        notifications: c.u64()?,
        embeddings: c.u64()?,
        retracted: c.u64()?,
    };
    let symbols = codec::get_symbols(&mut c)?;
    let num_queries = c.u32()? as usize;
    if num_queries > c.remaining() / 4 {
        return Err(CodecError {
            offset: c.pos() as u64,
            detail: format!("query count {num_queries} exceeds remaining bytes"),
        });
    }
    let queries: Vec<QueryPattern> = (0..num_queries)
        .map(|_| codec::get_pattern(&mut c))
        .collect::<CodecResult<_>>()?;
    let at = c.pos();
    let num_dead = c.u32()? as usize;
    if num_dead > num_queries {
        return Err(CodecError {
            offset: at as u64,
            detail: format!("dead count {num_dead} exceeds query count {num_queries}"),
        });
    }
    let mut dead_queries = Vec::with_capacity(num_dead);
    for _ in 0..num_dead {
        let at = c.pos();
        let qid = c.u32()?;
        if qid as usize >= num_queries || dead_queries.last().is_some_and(|&p| p >= qid) {
            return Err(CodecError {
                offset: at as u64,
                detail: format!("dead query id {qid} out of range or out of order"),
            });
        }
        dead_queries.push(qid);
    }
    let at = c.pos();
    let num_totals = c.u32()? as usize;
    if num_totals > c.remaining() / 24 {
        return Err(CodecError {
            offset: at as u64,
            detail: format!("totals count {num_totals} exceeds remaining bytes"),
        });
    }
    let mut totals = Vec::with_capacity(num_totals);
    for _ in 0..num_totals {
        totals.push(QueryTotals {
            embeddings: c.u64()?,
            retracted: c.u64()?,
            notifications: c.u64()?,
        });
    }
    let at = c.pos();
    let num_shadow = c.u32()? as usize;
    if num_shadow > c.remaining() / 4 {
        return Err(CodecError {
            offset: at as u64,
            detail: format!("shadow count {num_shadow} exceeds remaining bytes"),
        });
    }
    let mut shadow = Vec::with_capacity(num_shadow);
    let mut prev_label: Option<u32> = None;
    for _ in 0..num_shadow {
        let at = c.pos();
        let label = c.u32()?;
        if prev_label.is_some_and(|p| p >= label) {
            return Err(CodecError {
                offset: at as u64,
                detail: format!("shadow labels out of order at {label}"),
            });
        }
        prev_label = Some(label);
        shadow.push((Sym(label), codec::get_relation(&mut c)?));
    }
    if !c.is_exhausted() {
        return Err(CodecError {
            offset: c.pos() as u64,
            detail: format!("{} trailing bytes in checkpoint body", c.remaining()),
        });
    }
    Ok(CheckpointData {
        covered_seq,
        stats,
        symbols,
        queries,
        dead_queries,
        totals,
        shadow,
    })
}

/// The file name of the checkpoint covering through `seq`.
pub fn file_name(seq: u64) -> String {
    format!("checkpoint-{seq:020}.ckpt")
}

/// Parses a checkpoint file name back to its covered sequence number.
pub fn parse_file_name(name: &str) -> Option<u64> {
    name.strip_prefix("checkpoint-")?
        .strip_suffix(".ckpt")?
        .parse()
        .ok()
}

/// Writes `data` to `storage` (a fresh store) and fsyncs it.
pub fn write(storage: &mut dyn Storage, data: &CheckpointData) -> gsm_core::error::Result<()> {
    storage.append(&encode(data))?;
    storage.sync()
}

/// Reads a checkpoint from `storage`, returning `None` (not an error) when
/// the bytes are truncated or corrupt — recovery treats an invalid
/// checkpoint file as absent and falls back to an older one.
pub fn read(storage: &mut dyn Storage) -> gsm_core::error::Result<Option<CheckpointData>> {
    let bytes = storage.read_all()?;
    Ok(decode(&bytes).ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn sample() -> CheckpointData {
        let mut symbols = SymbolTable::new();
        let q0 = QueryPattern::parse("?x -knows-> ?y", &mut symbols).unwrap();
        let q1 = QueryPattern::parse("?x -knows-> ?y; ?y -likes-> ?z", &mut symbols).unwrap();
        let knows = symbols.get("knows").unwrap();
        let likes = symbols.get("likes").unwrap();
        let mut rel = Relation::new(2);
        rel.push(&[Sym(7), Sym(8)]);
        rel.push(&[Sym(8), Sym(9)]);
        let mut rel2 = Relation::new(2);
        rel2.push(&[Sym(1), Sym(2)]);
        let mut shadow = vec![(knows, rel), (likes, rel2)];
        shadow.sort_by_key(|(l, _)| *l);
        CheckpointData {
            covered_seq: 42,
            stats: EngineStats {
                updates_processed: 10,
                notifications: 4,
                embeddings: 6,
                retracted: 1,
            },
            symbols,
            queries: vec![q0, q1],
            dead_queries: vec![1],
            totals: vec![
                QueryTotals {
                    embeddings: 5,
                    retracted: 1,
                    notifications: 3,
                },
                QueryTotals {
                    embeddings: 1,
                    retracted: 0,
                    notifications: 1,
                },
            ],
            shadow,
        }
    }

    #[test]
    fn checkpoint_round_trips_bit_exactly() {
        let data = sample();
        let bytes = encode(&data);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded.covered_seq, data.covered_seq);
        assert_eq!(decoded.stats, data.stats);
        assert_eq!(decoded.queries, data.queries);
        assert_eq!(decoded.dead_queries, data.dead_queries);
        assert_eq!(decoded.totals, data.totals);
        assert_eq!(decoded.symbols.len(), data.symbols.len());
        assert_eq!(decoded.shadow.len(), data.shadow.len());
        for ((la, ra), (lb, rb)) in decoded.shadow.iter().zip(&data.shadow) {
            assert_eq!(la, lb);
            assert_eq!(ra.generation(), rb.generation());
            let rows_a: Vec<Vec<Sym>> = ra.iter().map(|r| r.to_vec()).collect();
            let rows_b: Vec<Vec<Sym>> = rb.iter().map(|r| r.to_vec()).collect();
            assert_eq!(rows_a, rows_b);
        }
        // Encoding the decoded value reproduces the identical bytes.
        assert_eq!(encode(&decoded), bytes);
    }

    #[test]
    fn corrupt_or_truncated_checkpoints_are_rejected() {
        let bytes = encode(&sample());
        for cut in [0, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut {cut} accepted");
        }
        let mut flipped = bytes.clone();
        flipped[MAGIC.len() + 20] ^= 0x01;
        let err = decode(&flipped).unwrap_err();
        assert!(err.detail.contains("CRC"), "{}", err.detail);
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(decode(&bad_magic).unwrap_err().detail.contains("magic"));
    }

    #[test]
    fn malformed_dead_query_lists_are_rejected() {
        // Out of range: a dead id must name an existing slot.
        let mut data = sample();
        data.dead_queries = vec![2];
        let err = decode(&encode(&data)).unwrap_err();
        assert!(err.detail.contains("dead query id"), "{}", err.detail);
        // Out of order / duplicated ids are rejected too.
        data.dead_queries = vec![1, 1];
        let err = decode(&encode(&data)).unwrap_err();
        assert!(err.detail.contains("out of range or out of order"));
    }

    #[test]
    fn storage_write_read_round_trips_and_tolerates_garbage() {
        let data = sample();
        let store = MemStorage::new("mem:ckpt");
        let mut handle = store.handle();
        let mut w = store.handle();
        write(&mut w, &data).unwrap();
        let back = read(&mut handle).unwrap().expect("valid checkpoint");
        assert_eq!(encode(&back), encode(&data));
        // A torn checkpoint write reads back as None, not an error.
        let torn_len = {
            let raw = store.raw();
            let mut bytes = raw.lock().unwrap();
            let keep = bytes.len() / 2;
            bytes.truncate(keep);
            keep
        };
        assert!(torn_len > 0);
        assert!(read(&mut handle).unwrap().is_none());
    }

    #[test]
    fn file_names_round_trip_and_sort_by_seq() {
        assert_eq!(parse_file_name(&file_name(42)), Some(42));
        assert_eq!(parse_file_name("checkpoint-x.ckpt"), None);
        assert_eq!(parse_file_name("wal-0.log"), None);
        // Zero-padding makes lexicographic order equal numeric order.
        assert!(file_name(9) < file_name(10));
    }
}
