//! Byte-level serialization of the persistent record vocabulary.
//!
//! Everything durable — WAL payloads and checkpoint bodies — is encoded
//! through this module: little-endian fixed-width integers, length-prefixed
//! UTF-8 strings, and the domain values built from them (signed
//! [`Update`]s, [`QueryPattern`]s, [`SymbolTable`]s and chunked
//! [`Relation`]s). Decoding is fully defensive: every read is
//! bounds-checked and returns a positional [`CodecError`] instead of
//! panicking, so a torn or bit-flipped record surfaces as a typed
//! corruption at a byte offset, never as an out-of-bounds slice.
//!
//! The encoding is deliberately simple rather than clever: the round-trip
//! property suite (`tests/property_persist.rs`) pins bit-exactness, and the
//! WAL/checksum layer above adds integrity, so this layer only has to be
//! unambiguous and total on valid inputs.

use gsm_core::interner::{Sym, SymbolTable};
use gsm_core::model::term::{PatternEdge, Term};
use gsm_core::model::update::Update;
use gsm_core::query::pattern::QueryPattern;
use gsm_core::relation::Relation;

/// A decoding failure: what went wrong and at which byte offset of the
/// buffer being decoded. The storage layer wraps this into
/// [`gsm_core::error::Error::Persistence`] together with the storage path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Byte offset within the decoded buffer at which decoding failed.
    pub offset: u64,
    /// Human-readable description of the corruption.
    pub detail: String,
}

impl CodecError {
    fn new(offset: usize, detail: impl Into<String>) -> Self {
        CodecError {
            offset: offset as u64,
            detail: detail.into(),
        }
    }
}

/// Decoding result.
pub type CodecResult<T> = std::result::Result<T, CodecError>;

/// A bounds-checked reading cursor over an immutable byte buffer.
#[derive(Debug)]
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Starts a cursor at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Current byte position.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, what: &str) -> CodecResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(CodecError::new(
                self.pos,
                format!(
                    "truncated {what}: need {n} bytes, {} remain",
                    self.remaining()
                ),
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> CodecResult<u8> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> CodecResult<u32> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> CodecResult<u64> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `u32` length-prefixed UTF-8 string.
    pub fn str(&mut self) -> CodecResult<String> {
        let at = self.pos;
        let len = self.u32()? as usize;
        let bytes = self.take(len, "string body")?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| CodecError::new(at, format!("invalid UTF-8 string: {e}")))
    }
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32` length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// CRC-32 (IEEE 802.3, reflected) over `bytes` — the per-record and
/// per-checkpoint integrity check. Table-driven; the table is built at
/// compile time so the hot append path is four shifts per byte.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

// ---------------------------------------------------------------------------
// Domain values
// ---------------------------------------------------------------------------

/// Encodes one signed update as `label, src, tgt` (3 × u32) plus a sign
/// byte.
pub fn put_update(out: &mut Vec<u8>, u: &Update) {
    put_u32(out, u.label.0);
    put_u32(out, u.src.0);
    put_u32(out, u.tgt.0);
    out.push(u.retract as u8);
}

/// Decodes one signed update.
pub fn get_update(c: &mut Cursor<'_>) -> CodecResult<Update> {
    let label = Sym(c.u32()?);
    let src = Sym(c.u32()?);
    let tgt = Sym(c.u32()?);
    let at = c.pos();
    let sign = c.u8()?;
    match sign {
        0 => Ok(Update::new(label, src, tgt)),
        1 => Ok(Update::retraction(label, src, tgt)),
        other => Err(CodecError::new(at, format!("invalid update sign {other}"))),
    }
}

/// Encodes a batch of signed updates (u32 count + each update).
pub fn put_updates(out: &mut Vec<u8>, updates: &[Update]) {
    put_u32(out, updates.len() as u32);
    for u in updates {
        put_update(out, u);
    }
}

/// Decodes a batch of signed updates.
pub fn get_updates(c: &mut Cursor<'_>) -> CodecResult<Vec<Update>> {
    let at = c.pos();
    let n = c.u32()? as usize;
    // 13 bytes per update; reject counts the remaining bytes cannot hold so
    // a corrupt count cannot trigger a huge allocation.
    if n > c.remaining() / 13 {
        return Err(CodecError::new(
            at,
            format!("update count {n} exceeds remaining bytes"),
        ));
    }
    (0..n).map(|_| get_update(c)).collect()
}

const TERM_CONST: u8 = 0;
const TERM_VAR: u8 = 1;

fn put_term(out: &mut Vec<u8>, t: &Term) {
    match t {
        Term::Const(s) => {
            out.push(TERM_CONST);
            put_u32(out, s.0);
        }
        Term::Var(v) => {
            out.push(TERM_VAR);
            put_u32(out, *v);
        }
    }
}

fn get_term(c: &mut Cursor<'_>) -> CodecResult<Term> {
    let at = c.pos();
    let tag = c.u8()?;
    let v = c.u32()?;
    match tag {
        TERM_CONST => Ok(Term::Const(Sym(v))),
        TERM_VAR => Ok(Term::Var(v)),
        other => Err(CodecError::new(at, format!("invalid term tag {other}"))),
    }
}

/// Encodes a query pattern as its edge list (the canonical constructor
/// input of [`QueryPattern::from_edges`], so decoding re-validates
/// connectivity for free).
pub fn put_pattern(out: &mut Vec<u8>, q: &QueryPattern) {
    put_u32(out, q.num_edges() as u32);
    for e in q.edges() {
        put_u32(out, e.label.0);
        put_term(out, &e.src);
        put_term(out, &e.tgt);
    }
}

/// Decodes a query pattern, re-running full pattern validation.
pub fn get_pattern(c: &mut Cursor<'_>) -> CodecResult<QueryPattern> {
    let at = c.pos();
    let n = c.u32()? as usize;
    if n > c.remaining() / 14 {
        return Err(CodecError::new(
            at,
            format!("edge count {n} exceeds remaining bytes"),
        ));
    }
    let mut edges = Vec::with_capacity(n);
    for _ in 0..n {
        let label = Sym(c.u32()?);
        let src = get_term(c)?;
        let tgt = get_term(c)?;
        edges.push(PatternEdge::new(label, src, tgt));
    }
    QueryPattern::from_edges(edges)
        .map_err(|e| CodecError::new(at, format!("invalid persisted pattern: {e}")))
}

/// Encodes a symbol table as its names in symbol order, so re-interning
/// them in sequence reproduces the identical `Sym` assignment.
pub fn put_symbols(out: &mut Vec<u8>, symbols: &SymbolTable) {
    put_u32(out, symbols.len() as u32);
    for i in 0..symbols.len() {
        put_str(out, symbols.resolve(Sym(i as u32)));
    }
}

/// Decodes a symbol table by interning the persisted names in order.
/// Symbol identifiers are **first-seen dense indices**, so restoring the
/// table name-by-name in persisted order is exactly what pins every `Sym`
/// referenced by WAL updates and checkpointed relations to its original
/// meaning — the interner-order invariant recovery depends on.
pub fn get_symbols(c: &mut Cursor<'_>) -> CodecResult<SymbolTable> {
    let at = c.pos();
    let n = c.u32()? as usize;
    if n > c.remaining() / 4 {
        return Err(CodecError::new(
            at,
            format!("symbol count {n} exceeds remaining bytes"),
        ));
    }
    let mut table = SymbolTable::new();
    for i in 0..n {
        let at = c.pos();
        let name = c.str()?;
        let sym = table.intern(&name);
        if sym.index() != i {
            return Err(CodecError::new(
                at,
                format!("duplicate symbol name `{name}` at index {i}"),
            ));
        }
    }
    Ok(table)
}

/// Encodes a relation chunk by chunk: header (`arity`, `generation`, row
/// count), then each storage chunk ([`Relation::storage_chunks`]) as a row
/// count plus its raw `Sym` words. Frozen chunks therefore spill to disk as
/// the same immutable [`gsm_core::relation::CHUNK_ROWS`]-row units they are
/// in memory, and the `(generation, version)` watermark pair rides in the
/// header.
pub fn put_relation(out: &mut Vec<u8>, rel: &Relation) {
    put_u32(out, rel.arity() as u32);
    put_u64(out, rel.generation());
    put_u64(out, rel.len() as u64);
    let chunks: Vec<&[Sym]> = rel.storage_chunks().collect();
    put_u32(out, chunks.len() as u32);
    for chunk in chunks {
        put_u32(out, (chunk.len() / rel.arity()) as u32);
        for s in chunk {
            put_u32(out, s.0);
        }
    }
}

/// Decodes a relation, rebuilding the dedup index row by row and restoring
/// the persisted compaction generation ([`Relation::restore`]).
pub fn get_relation(c: &mut Cursor<'_>) -> CodecResult<Relation> {
    let start = c.pos();
    let arity = c.u32()? as usize;
    if arity == 0 || arity > 1024 {
        return Err(CodecError::new(start, format!("invalid arity {arity}")));
    }
    let generation = c.u64()?;
    let total_rows = c.u64()? as usize;
    let chunk_count = c.u32()? as usize;
    if total_rows > c.remaining() / (4 * arity).max(1) || chunk_count > c.remaining() / 4 {
        return Err(CodecError::new(
            start,
            format!("relation of {total_rows} rows / {chunk_count} chunks exceeds remaining bytes"),
        ));
    }
    let mut rel = Relation::restore(arity, generation);
    let mut row = vec![Sym(0); arity];
    for _ in 0..chunk_count {
        let at = c.pos();
        let rows = c.u32()? as usize;
        if rows > c.remaining() / (4 * arity) {
            return Err(CodecError::new(
                at,
                format!("chunk of {rows} rows exceeds remaining bytes"),
            ));
        }
        for _ in 0..rows {
            for slot in row.iter_mut() {
                *slot = Sym(c.u32()?);
            }
            if !rel.push(&row) {
                return Err(CodecError::new(
                    at,
                    "duplicate row in persisted relation".to_string(),
                ));
            }
        }
    }
    if rel.len() != total_rows {
        return Err(CodecError::new(
            start,
            format!(
                "relation row count mismatch: header {total_rows}, chunks {}",
                rel.len()
            ),
        ));
    }
    Ok(rel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ints_and_strings_round_trip() {
        let mut out = Vec::new();
        put_u32(&mut out, 0xDEAD_BEEF);
        put_u64(&mut out, u64::MAX - 7);
        put_str(&mut out, "héllo wörld");
        let mut c = Cursor::new(&out);
        assert_eq!(c.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(c.u64().unwrap(), u64::MAX - 7);
        assert_eq!(c.str().unwrap(), "héllo wörld");
        assert!(c.is_exhausted());
    }

    #[test]
    fn truncated_reads_fail_with_offset() {
        let mut out = Vec::new();
        put_u64(&mut out, 42);
        let mut c = Cursor::new(&out[..5]);
        let err = c.u64().unwrap_err();
        assert_eq!(err.offset, 0);
        assert!(err.detail.contains("truncated"), "{}", err.detail);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value of CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }

    #[test]
    fn updates_round_trip_with_sign() {
        let batch = vec![
            Update::new(Sym(1), Sym(2), Sym(3)),
            Update::retraction(Sym(4), Sym(5), Sym(6)),
        ];
        let mut out = Vec::new();
        put_updates(&mut out, &batch);
        let mut c = Cursor::new(&out);
        assert_eq!(get_updates(&mut c).unwrap(), batch);
        assert!(c.is_exhausted());
    }

    #[test]
    fn invalid_update_sign_is_rejected() {
        let mut out = Vec::new();
        put_update(&mut out, &Update::new(Sym(1), Sym(2), Sym(3)));
        *out.last_mut().unwrap() = 7;
        let err = get_update(&mut Cursor::new(&out)).unwrap_err();
        assert!(err.detail.contains("invalid update sign"), "{}", err.detail);
    }

    #[test]
    fn insane_counts_are_rejected_not_allocated() {
        let mut out = Vec::new();
        put_u32(&mut out, u32::MAX); // count far beyond the buffer
        let err = get_updates(&mut Cursor::new(&out)).unwrap_err();
        assert!(err.detail.contains("exceeds"), "{}", err.detail);
    }

    #[test]
    fn pattern_round_trips_and_revalidates() {
        let mut symbols = SymbolTable::new();
        let q = QueryPattern::parse("?x -knows-> ?y; ?y -likes-> rio", &mut symbols).unwrap();
        let mut out = Vec::new();
        put_pattern(&mut out, &q);
        let decoded = get_pattern(&mut Cursor::new(&out)).unwrap();
        assert_eq!(decoded, q);
    }

    #[test]
    fn symbols_round_trip_preserving_sym_order() {
        let mut t = SymbolTable::new();
        let a = t.intern("alpha");
        let b = t.intern("beta");
        let mut out = Vec::new();
        put_symbols(&mut out, &t);
        let restored = get_symbols(&mut Cursor::new(&out)).unwrap();
        assert_eq!(restored.get("alpha"), Some(a));
        assert_eq!(restored.get("beta"), Some(b));
        assert_eq!(restored.len(), 2);
    }

    #[test]
    fn relation_round_trips_across_chunk_boundaries() {
        use gsm_core::relation::CHUNK_ROWS;
        let mut rel = Relation::new(2);
        for i in 0..(CHUNK_ROWS + 17) as u32 {
            rel.push(&[Sym(i), Sym(i + 1)]);
        }
        let removed = Relation::singleton(&[Sym(3), Sym(4)]);
        rel.retract_rows(&removed);
        let mut out = Vec::new();
        put_relation(&mut out, &rel);
        let decoded = get_relation(&mut Cursor::new(&out)).unwrap();
        assert_eq!(decoded.arity(), rel.arity());
        assert_eq!(decoded.generation(), rel.generation());
        assert_eq!(decoded.len(), rel.len());
        let a: Vec<Vec<Sym>> = rel.iter().map(|r| r.to_vec()).collect();
        let b: Vec<Vec<Sym>> = decoded.iter().map(|r| r.to_vec()).collect();
        assert_eq!(a, b, "rows must round-trip bit-exactly in order");
        // The dedup index is live again after decoding.
        assert!(decoded.contains(&[Sym(0), Sym(1)]));
        assert!(!decoded.contains(&[Sym(3), Sym(4)]));
    }
}
