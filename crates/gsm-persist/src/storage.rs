//! Pluggable append-oriented storage backends.
//!
//! The WAL and checkpoint layers never touch the filesystem directly; they
//! speak [`Storage`] (one byte store ≈ one file) obtained from a
//! [`StorageFactory`] (≈ one directory). This is the datastore/transaction
//! split in miniature: everything above is backend-agnostic, so the crash
//! suites swap the real [`DirFactory`] for an in-memory [`MemFactory`]
//! whose stores survive a dropped engine (the "disk" outlives the
//! "process"), optionally wrapped in [`FaultStorage`] to inject short
//! writes, torn tails and failing syncs deterministically.
//!
//! Every failure surfaces as a typed
//! [`Error::Persistence`] carrying the
//! storage path and byte offset — the persistence layer never panics on a
//! bad disk and never silently drops data.

use std::collections::HashMap;
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use gsm_core::error::{Error, Result};

/// Builds the typed persistence error every backend reports through.
pub fn persistence_error(path: &str, offset: u64, detail: impl Into<String>) -> Error {
    Error::Persistence {
        path: path.to_string(),
        offset,
        detail: detail.into(),
    }
}

/// An append-oriented byte store — the WAL's and checkpoint's view of one
/// file. Appends go at the current end; reads return the whole content;
/// truncation discards a torn tail during recovery.
#[allow(clippy::len_without_is_empty)] // a WAL store's length is an offset, not a collection size
pub trait Storage: Send {
    /// Path (or backend label) identifying this store in error context.
    fn label(&self) -> &str;

    /// Current length in bytes.
    fn len(&mut self) -> Result<u64>;

    /// Appends `data` at the end of the store.
    fn append(&mut self, data: &[u8]) -> Result<()>;

    /// Forces previously appended data to durable media (fsync).
    fn sync(&mut self) -> Result<()>;

    /// Reads the entire content.
    fn read_all(&mut self) -> Result<Vec<u8>>;

    /// Truncates the store to `len` bytes (drops a torn tail).
    fn truncate(&mut self, len: u64) -> Result<()>;
}

/// Opens named [`Storage`] stores within one durable namespace (≈ one
/// directory), and lists/removes them — the surface recovery needs to find
/// WAL stripes and checkpoint files.
pub trait StorageFactory: Send {
    /// Opens (creating if absent) the store called `name`.
    fn open(&mut self, name: &str) -> Result<Box<dyn Storage>>;

    /// Names of all existing stores, in unspecified order.
    fn list(&mut self) -> Result<Vec<String>>;

    /// Removes the store called `name` (missing stores are an error).
    fn remove(&mut self, name: &str) -> Result<()>;

    /// Human-readable location of the namespace, for error context.
    fn location(&self) -> String;
}

// ---------------------------------------------------------------------------
// Real files
// ---------------------------------------------------------------------------

/// File-backed [`Storage`]: one regular file, `fsync` via
/// [`fs::File::sync_data`].
pub struct FileStorage {
    path: PathBuf,
    label: String,
    file: fs::File,
}

impl FileStorage {
    /// Opens (creating if absent) the file at `path`.
    pub fn open(path: PathBuf) -> Result<Self> {
        let label = path.display().to_string();
        let file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| persistence_error(&label, 0, format!("open failed: {e}")))?;
        Ok(FileStorage { path, label, file })
    }

    /// The underlying path.
    pub fn path(&self) -> &PathBuf {
        &self.path
    }
}

impl Storage for FileStorage {
    fn label(&self) -> &str {
        &self.label
    }

    fn len(&mut self) -> Result<u64> {
        self.file
            .metadata()
            .map(|m| m.len())
            .map_err(|e| persistence_error(&self.label, 0, format!("stat failed: {e}")))
    }

    fn append(&mut self, data: &[u8]) -> Result<()> {
        let at = self
            .file
            .seek(SeekFrom::End(0))
            .map_err(|e| persistence_error(&self.label, 0, format!("seek failed: {e}")))?;
        self.file
            .write_all(data)
            .map_err(|e| persistence_error(&self.label, at, format!("append failed: {e}")))
    }

    fn sync(&mut self) -> Result<()> {
        self.file
            .sync_data()
            .map_err(|e| persistence_error(&self.label, 0, format!("fsync failed: {e}")))
    }

    fn read_all(&mut self) -> Result<Vec<u8>> {
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(|e| persistence_error(&self.label, 0, format!("seek failed: {e}")))?;
        let mut buf = Vec::new();
        self.file
            .read_to_end(&mut buf)
            .map_err(|e| persistence_error(&self.label, 0, format!("read failed: {e}")))?;
        Ok(buf)
    }

    fn truncate(&mut self, len: u64) -> Result<()> {
        self.file
            .set_len(len)
            .map_err(|e| persistence_error(&self.label, len, format!("truncate failed: {e}")))
    }
}

/// Directory-backed [`StorageFactory`]: every store is a file directly
/// inside `dir` (created on first use).
pub struct DirFactory {
    dir: PathBuf,
}

impl DirFactory {
    /// Creates a factory over `dir`, creating the directory if needed.
    pub fn new(dir: PathBuf) -> Result<Self> {
        fs::create_dir_all(&dir).map_err(|e| {
            persistence_error(
                &dir.display().to_string(),
                0,
                format!("create_dir_all failed: {e}"),
            )
        })?;
        Ok(DirFactory { dir })
    }
}

impl StorageFactory for DirFactory {
    fn open(&mut self, name: &str) -> Result<Box<dyn Storage>> {
        Ok(Box::new(FileStorage::open(self.dir.join(name))?))
    }

    fn list(&mut self) -> Result<Vec<String>> {
        let mut names = Vec::new();
        let entries = fs::read_dir(&self.dir)
            .map_err(|e| persistence_error(&self.location(), 0, format!("read_dir failed: {e}")))?;
        for entry in entries {
            let entry = entry.map_err(|e| {
                persistence_error(&self.location(), 0, format!("read_dir entry failed: {e}"))
            })?;
            if entry.path().is_file() {
                if let Some(name) = entry.file_name().to_str() {
                    names.push(name.to_string());
                }
            }
        }
        Ok(names)
    }

    fn remove(&mut self, name: &str) -> Result<()> {
        let path = self.dir.join(name);
        fs::remove_file(&path).map_err(|e| {
            persistence_error(
                &path.display().to_string(),
                0,
                format!("remove failed: {e}"),
            )
        })
    }

    fn location(&self) -> String {
        self.dir.display().to_string()
    }
}

// ---------------------------------------------------------------------------
// In-memory stores (tests, fault injection)
// ---------------------------------------------------------------------------

type SharedBytes = Arc<Mutex<Vec<u8>>>;
type SharedFiles = Arc<Mutex<HashMap<String, SharedBytes>>>;

/// In-memory [`Storage`] over a shared byte buffer. The buffer is behind an
/// `Arc`, so it plays the role of the disk: dropping the storage (or the
/// whole engine) "crashes the process" while the bytes survive in whoever
/// else holds the handle — typically the [`MemFactory`] that opened it.
pub struct MemStorage {
    label: String,
    bytes: SharedBytes,
}

impl MemStorage {
    /// Creates an empty store with the given label.
    pub fn new(label: impl Into<String>) -> Self {
        MemStorage {
            label: label.into(),
            bytes: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// A second handle onto the same bytes.
    pub fn handle(&self) -> MemStorage {
        MemStorage {
            label: self.label.clone(),
            bytes: Arc::clone(&self.bytes),
        }
    }

    /// Direct access to the raw bytes — the test hook for flipping bits and
    /// slicing tails without going through the API under test.
    pub fn raw(&self) -> SharedBytes {
        Arc::clone(&self.bytes)
    }
}

impl Storage for MemStorage {
    fn label(&self) -> &str {
        &self.label
    }

    fn len(&mut self) -> Result<u64> {
        Ok(self.bytes.lock().unwrap().len() as u64)
    }

    fn append(&mut self, data: &[u8]) -> Result<()> {
        self.bytes.lock().unwrap().extend_from_slice(data);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        Ok(())
    }

    fn read_all(&mut self) -> Result<Vec<u8>> {
        Ok(self.bytes.lock().unwrap().clone())
    }

    fn truncate(&mut self, len: u64) -> Result<()> {
        let mut bytes = self.bytes.lock().unwrap();
        if (len as usize) < bytes.len() {
            bytes.truncate(len as usize);
        }
        Ok(())
    }
}

/// What a [`FaultStorage`] does to writes — the crash/corruption models of
/// the differential recovery suites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPlan {
    /// No fault: transparent passthrough.
    None,
    /// Every append whose start offset is `>= at` fails with a typed error
    /// and persists nothing (a dead disk).
    FailAppendsAfter {
        /// Byte offset from which appends fail.
        at: u64,
    },
    /// The append that crosses byte `at` persists only the bytes below `at`
    /// and then reports a typed short-write error; later appends fail.
    ShortWriteAt {
        /// Byte offset at which the write is cut short.
        at: u64,
    },
    /// Appends crossing byte `at` silently persist only the prefix below
    /// `at`; everything later is silently dropped while **reporting
    /// success** — the torn-tail model of a crash that loses the unsynced
    /// page-cache suffix. `sync` also fails from that point on, so a
    /// group-commit boundary notices, but writers between boundaries do
    /// not.
    TornAfter {
        /// Byte offset after which appended bytes are silently lost.
        at: u64,
    },
    /// Appends succeed but every `sync` fails with a typed error.
    FailSync,
}

/// A [`Storage`] wrapper that injects write faults per [`FaultPlan`].
pub struct FaultStorage<S> {
    inner: S,
    plan: FaultPlan,
}

impl<S: Storage> FaultStorage<S> {
    /// Wraps `inner` with the given fault plan.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FaultStorage { inner, plan }
    }

    /// The wrapped storage.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: Storage> Storage for FaultStorage<S> {
    fn label(&self) -> &str {
        self.inner.label()
    }

    fn len(&mut self) -> Result<u64> {
        self.inner.len()
    }

    fn append(&mut self, data: &[u8]) -> Result<()> {
        let start = self.inner.len()?;
        let end = start + data.len() as u64;
        match self.plan {
            FaultPlan::None => self.inner.append(data),
            FaultPlan::FailAppendsAfter { at } if start >= at => Err(persistence_error(
                self.inner.label(),
                start,
                format!("injected append failure (plan cuts at {at})"),
            )),
            FaultPlan::FailAppendsAfter { .. } => self.inner.append(data),
            FaultPlan::ShortWriteAt { at } if end > at => {
                let keep = at.saturating_sub(start) as usize;
                self.inner.append(&data[..keep])?;
                Err(persistence_error(
                    self.inner.label(),
                    start,
                    format!("injected short write: {keep} of {} bytes", data.len()),
                ))
            }
            FaultPlan::ShortWriteAt { .. } => self.inner.append(data),
            FaultPlan::TornAfter { at } if end > at => {
                let keep = at.saturating_sub(start) as usize;
                self.inner.append(&data[..keep])?;
                Ok(()) // silently torn: the caller believes the write landed
            }
            FaultPlan::TornAfter { .. } => self.inner.append(data),
            FaultPlan::FailSync => self.inner.append(data),
        }
    }

    fn sync(&mut self) -> Result<()> {
        match self.plan {
            FaultPlan::FailSync => {
                let len = self.inner.len()?;
                Err(persistence_error(
                    self.inner.label(),
                    len,
                    "injected fsync failure",
                ))
            }
            FaultPlan::TornAfter { at } => {
                let len = self.inner.len()?;
                if len >= at {
                    Err(persistence_error(
                        self.inner.label(),
                        at,
                        "injected fsync failure past torn offset",
                    ))
                } else {
                    self.inner.sync()
                }
            }
            _ => self.inner.sync(),
        }
    }

    fn read_all(&mut self) -> Result<Vec<u8>> {
        self.inner.read_all()
    }

    fn truncate(&mut self, len: u64) -> Result<()> {
        self.inner.truncate(len)
    }
}

/// In-memory [`StorageFactory`] whose stores live in a shared map — the
/// bytes survive engine drops, so a test can "crash" an engine and recover
/// a new one over the same map. Per-name [`FaultPlan`]s are applied when a
/// store is opened.
#[derive(Default)]
pub struct MemFactory {
    files: SharedFiles,
    faults: HashMap<String, FaultPlan>,
}

impl MemFactory {
    /// Creates an empty in-memory namespace.
    pub fn new() -> Self {
        Self::default()
    }

    /// A second factory over the same namespace (the "remount" after a
    /// simulated crash). Configured fault plans carry over.
    pub fn handle(&self) -> MemFactory {
        MemFactory {
            files: Arc::clone(&self.files),
            faults: self.faults.clone(),
        }
    }

    /// Injects `plan` into every future open of the store called `name`.
    pub fn set_fault(&mut self, name: &str, plan: FaultPlan) {
        self.faults.insert(name.to_string(), plan);
    }

    /// Drops every configured fault plan — the "replace the bad disk"
    /// remount for recovery tests.
    pub fn clear_faults(&mut self) {
        self.faults.clear();
    }

    /// Raw bytes of the store called `name`, if it exists — the corruption
    /// hook for bit-flip tests.
    pub fn raw(&self, name: &str) -> Option<SharedBytes> {
        self.files.lock().unwrap().get(name).map(Arc::clone)
    }
}

impl StorageFactory for MemFactory {
    fn open(&mut self, name: &str) -> Result<Box<dyn Storage>> {
        let bytes = Arc::clone(
            self.files
                .lock()
                .unwrap()
                .entry(name.to_string())
                .or_default(),
        );
        let storage = MemStorage {
            label: format!("mem:{name}"),
            bytes,
        };
        Ok(match self.faults.get(name).copied() {
            Some(plan) if plan != FaultPlan::None => Box::new(FaultStorage::new(storage, plan)),
            _ => Box::new(storage),
        })
    }

    fn list(&mut self) -> Result<Vec<String>> {
        Ok(self.files.lock().unwrap().keys().cloned().collect())
    }

    fn remove(&mut self, name: &str) -> Result<()> {
        self.files
            .lock()
            .unwrap()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| persistence_error(&format!("mem:{name}"), 0, "no such store"))
    }

    fn location(&self) -> String {
        "mem:".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_persistence_err(err: Error, path_part: &str, detail_part: &str) {
        match err {
            Error::Persistence {
                path,
                offset: _,
                detail,
            } => {
                assert!(path.contains(path_part), "path `{path}`");
                assert!(detail.contains(detail_part), "detail `{detail}`");
            }
            other => panic!("expected Error::Persistence, got {other:?}"),
        }
    }

    #[test]
    fn mem_storage_append_read_truncate() {
        let mut s = MemStorage::new("mem:wal");
        s.append(b"hello ").unwrap();
        s.append(b"world").unwrap();
        assert_eq!(s.read_all().unwrap(), b"hello world");
        assert_eq!(s.len().unwrap(), 11);
        s.truncate(5).unwrap();
        assert_eq!(s.read_all().unwrap(), b"hello");
        // Truncating past the end is a no-op, matching file semantics the
        // recovery path relies on (never grows a store).
        s.truncate(100).unwrap();
        assert_eq!(s.len().unwrap(), 5);
    }

    #[test]
    fn mem_storage_survives_drop_via_handle() {
        let s = MemStorage::new("mem:wal");
        let mut handle = s.handle();
        {
            let mut doomed = s;
            doomed.append(b"durable").unwrap();
            // `doomed` dropped here: the "process" dies.
        }
        assert_eq!(handle.read_all().unwrap(), b"durable");
    }

    #[test]
    fn file_storage_round_trips(/* uses a real temp file */) {
        let path = std::env::temp_dir().join(format!("gsm-persist-test-{}", std::process::id()));
        let _ = fs::remove_file(&path);
        {
            let mut s = FileStorage::open(path.clone()).unwrap();
            s.append(b"abc").unwrap();
            s.sync().unwrap();
            s.append(b"def").unwrap();
            assert_eq!(s.read_all().unwrap(), b"abcdef");
            s.truncate(4).unwrap();
        }
        let mut reopened = FileStorage::open(path.clone()).unwrap();
        assert_eq!(reopened.read_all().unwrap(), b"abcd");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fail_appends_after_is_typed_and_writes_nothing() {
        let mut s = FaultStorage::new(
            MemStorage::new("mem:w"),
            FaultPlan::FailAppendsAfter { at: 4 },
        );
        s.append(b"abcd").unwrap();
        let err = s.append(b"efgh").unwrap_err();
        assert_persistence_err(err, "mem:w", "injected append failure");
        assert_eq!(
            s.read_all().unwrap(),
            b"abcd",
            "failed append wrote nothing"
        );
    }

    #[test]
    fn short_write_persists_prefix_and_errors() {
        let mut s = FaultStorage::new(MemStorage::new("mem:w"), FaultPlan::ShortWriteAt { at: 6 });
        s.append(b"abcd").unwrap();
        let err = s.append(b"efgh").unwrap_err();
        assert_persistence_err(err, "mem:w", "short write");
        assert_eq!(
            s.read_all().unwrap(),
            b"abcdef",
            "prefix below the cut persists"
        );
    }

    #[test]
    fn torn_write_lies_about_success_but_sync_notices() {
        let mut s = FaultStorage::new(MemStorage::new("mem:w"), FaultPlan::TornAfter { at: 6 });
        s.append(b"abcd").unwrap();
        s.sync().unwrap();
        s.append(b"efgh").unwrap(); // reported OK, silently torn at 6
        assert_eq!(s.read_all().unwrap(), b"abcdef");
        let err = s.sync().unwrap_err();
        assert_persistence_err(err, "mem:w", "fsync failure past torn offset");
    }

    #[test]
    fn fail_sync_is_typed() {
        let mut s = FaultStorage::new(MemStorage::new("mem:w"), FaultPlan::FailSync);
        s.append(b"abcd").unwrap();
        let err = s.sync().unwrap_err();
        assert_persistence_err(err, "mem:w", "fsync");
    }

    #[test]
    fn mem_factory_namespace_survives_and_lists() {
        let mut f = MemFactory::new();
        let remount = f.handle();
        f.open("wal-0.log").unwrap().append(b"x").unwrap();
        f.open("ckpt").unwrap().append(b"y").unwrap();
        let mut names = remount.handle().list().unwrap();
        names.sort();
        assert_eq!(names, vec!["ckpt".to_string(), "wal-0.log".to_string()]);
        let mut f2 = remount.handle();
        assert_eq!(f2.open("wal-0.log").unwrap().read_all().unwrap(), b"x");
        f2.remove("ckpt").unwrap();
        assert!(f2.remove("ckpt").is_err(), "double remove is typed");
    }

    #[test]
    fn dir_factory_lists_and_removes_real_files() {
        let dir = std::env::temp_dir().join(format!("gsm-persist-dir-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut f = DirFactory::new(dir.clone()).unwrap();
        f.open("wal-0.log").unwrap().append(b"abc").unwrap();
        assert_eq!(f.list().unwrap(), vec!["wal-0.log".to_string()]);
        f.remove("wal-0.log").unwrap();
        assert!(f.list().unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
