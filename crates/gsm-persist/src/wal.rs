//! The write-ahead update log.
//!
//! Every durable operation — symbol interning, query registration, signed
//! update batches, checkpoint markers — is appended to a WAL stripe as one
//! checksummed, length-prefixed record **before** the in-memory engine sees
//! it. The frame is
//!
//! ```text
//! [len: u32 LE][crc32(payload): u32 LE][payload]
//! payload = [kind: u8][seq: u64 LE][operation body]
//! ```
//!
//! `seq` is the global operation sequence number; with `wal_stripes > 1`
//! record `seq` lands on stripe `seq % stripes`, and recovery merges the
//! stripes back into one sequence (see [`merge_stripes`]).
//!
//! Durability is group-commit: [`Wal::append`] buffers in the backing
//! storage and fsyncs once every `group_commit` records (and on
//! [`Wal::sync`], which the engine calls before reporting a batch applied
//! when the boundary is reached). Reading ([`read_records`]) is
//! prefix-tolerant by construction — a torn tail, a short header, or a
//! bit-flipped payload fails its length/CRC/decode check and reading stops
//! cleanly at the last valid record, returning the byte offset of the valid
//! prefix so recovery can [`Storage::truncate`] the garbage away.

use gsm_core::engine::QueryId;
use gsm_core::error::Result;
use gsm_core::model::update::Update;
use gsm_core::query::pattern::QueryPattern;

use crate::codec::{self, crc32, put_str, put_u32, put_u64, Cursor};
use crate::storage::{persistence_error, Storage};

/// One logical WAL operation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// A symbol interned into the table; replaying interns in seq order
    /// reproduces the identical dense `Sym` assignment.
    Intern {
        /// The interned name.
        name: String,
    },
    /// A continuous query registered with the engine.
    Register {
        /// The registered pattern.
        pattern: QueryPattern,
    },
    /// A signed update batch applied (or staged) by the engine.
    Batch {
        /// The batch's updates, in application order.
        updates: Vec<Update>,
    },
    /// A checkpoint completed; state up to (and including) `ckpt_seq` is
    /// captured in the checkpoint file, so replay may start after it.
    Checkpoint {
        /// Sequence number the checkpoint covers through.
        ckpt_seq: u64,
    },
    /// A continuous query unregistered from the engine. The id's slot is
    /// tombstoned, never reused — replay re-registers every slot in order,
    /// then unregisters the dead ones, so later ids keep their meaning.
    Unregister {
        /// The unregistered query id.
        query: QueryId,
    },
}

const KIND_INTERN: u8 = 1;
const KIND_REGISTER: u8 = 2;
const KIND_BATCH: u8 = 3;
const KIND_CHECKPOINT: u8 = 4;
const KIND_UNREGISTER: u8 = 5;

/// A decoded WAL record: the global sequence number plus the operation.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Global operation sequence number (dense, starting at 0).
    pub seq: u64,
    /// The logged operation.
    pub op: WalOp,
}

/// Encodes one record into its on-disk frame.
pub fn encode_record(seq: u64, op: &WalOp) -> Vec<u8> {
    let mut payload = Vec::new();
    match op {
        WalOp::Intern { name } => {
            payload.push(KIND_INTERN);
            put_u64(&mut payload, seq);
            put_str(&mut payload, name);
        }
        WalOp::Register { pattern } => {
            payload.push(KIND_REGISTER);
            put_u64(&mut payload, seq);
            codec::put_pattern(&mut payload, pattern);
        }
        WalOp::Batch { updates } => {
            payload.push(KIND_BATCH);
            put_u64(&mut payload, seq);
            codec::put_updates(&mut payload, updates);
        }
        WalOp::Checkpoint { ckpt_seq } => {
            payload.push(KIND_CHECKPOINT);
            put_u64(&mut payload, seq);
            put_u64(&mut payload, *ckpt_seq);
        }
        WalOp::Unregister { query } => {
            payload.push(KIND_UNREGISTER);
            put_u64(&mut payload, seq);
            put_u32(&mut payload, query.0);
        }
    }
    let mut frame = Vec::with_capacity(8 + payload.len());
    put_u32(&mut frame, payload.len() as u32);
    put_u32(&mut frame, crc32(&payload));
    frame.extend_from_slice(&payload);
    frame
}

fn decode_payload(payload: &[u8]) -> codec::CodecResult<WalRecord> {
    let mut c = Cursor::new(payload);
    let kind = c.u8()?;
    let seq = c.u64()?;
    let op = match kind {
        KIND_INTERN => WalOp::Intern { name: c.str()? },
        KIND_REGISTER => WalOp::Register {
            pattern: codec::get_pattern(&mut c)?,
        },
        KIND_BATCH => WalOp::Batch {
            updates: codec::get_updates(&mut c)?,
        },
        KIND_CHECKPOINT => WalOp::Checkpoint { ckpt_seq: c.u64()? },
        KIND_UNREGISTER => WalOp::Unregister {
            query: QueryId(c.u32()?),
        },
        other => {
            return Err(codec::CodecError {
                offset: 0,
                detail: format!("invalid WAL record kind {other}"),
            })
        }
    };
    if !c.is_exhausted() {
        return Err(codec::CodecError {
            offset: c.pos() as u64,
            detail: format!("{} trailing bytes in WAL payload", c.remaining()),
        });
    }
    Ok(WalRecord { seq, op })
}

/// Reads every valid record from the start of `storage`, stopping cleanly
/// at the first record whose frame is truncated, whose CRC mismatches, or
/// whose payload fails to decode. Returns the records together with the
/// byte length of the valid prefix; everything past that offset is a torn
/// or corrupt tail the caller should truncate before appending again.
pub fn read_records(storage: &mut dyn Storage) -> Result<(Vec<WalRecord>, u64)> {
    let bytes = storage.read_all()?;
    let mut records = Vec::new();
    let mut valid = 0usize;
    while bytes.len() - valid >= 8 {
        let len = u32::from_le_bytes(bytes[valid..valid + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[valid + 4..valid + 8].try_into().unwrap());
        let Some(end) = valid.checked_add(8 + len) else {
            break; // length overflows: corrupt header
        };
        if end > bytes.len() {
            break; // torn tail: frame extends past the storage end
        }
        let payload = &bytes[valid + 8..end];
        if crc32(payload) != crc {
            break; // bit flip (or torn overwrite) inside the record
        }
        let Ok(record) = decode_payload(payload) else {
            break; // checksum fine but vocabulary invalid: treat as corrupt
        };
        records.push(record);
        valid = end;
    }
    Ok((records, valid as u64))
}

/// Merges per-stripe record lists back into one ascending `seq` sequence
/// and cuts it at the first gap at or after `start_seq`.
///
/// A gap means a stripe lost its tail (torn write on one file while its
/// sibling kept later records), so every record after the gap must be
/// discarded — replaying around a hole would reorder the stream. Returns
/// the contiguous records with `seq >= start_seq` and, per stripe, the byte
/// offset of the last *kept* record's end (the truncation point that
/// discards the stripe's now-unreachable suffix). Stripe offsets start from
/// the valid-prefix offsets passed in, so CRC-level garbage is already
/// excluded.
pub fn merge_stripes(
    stripes: Vec<(Vec<WalRecord>, u64)>,
    start_seq: u64,
) -> (Vec<WalRecord>, Vec<u64>) {
    let stripe_count = stripes.len().max(1) as u64;
    // Highest contiguous seq: walk upward from start_seq while every seq is
    // present in its home stripe.
    let mut present: Vec<std::collections::HashMap<u64, usize>> = Vec::new();
    for (records, _) in &stripes {
        present.push(
            records
                .iter()
                .enumerate()
                .map(|(i, r)| (r.seq, i))
                .collect(),
        );
    }
    let mut merged = Vec::new();
    let mut next = start_seq;
    loop {
        let stripe = (next % stripe_count) as usize;
        match present.get(stripe).and_then(|m| m.get(&next)) {
            Some(&idx) => {
                merged.push(stripes[stripe].0[idx].clone());
                next += 1;
            }
            None => break,
        }
    }
    // Truncation points: for each stripe, the end offset of its last record
    // with seq < next (kept), computed by re-walking the frames.
    let mut cuts = Vec::with_capacity(stripes.len());
    for (records, valid) in &stripes {
        let keep = records.iter().take_while(|r| r.seq < next).count();
        if keep == records.len() {
            cuts.push(*valid);
        } else {
            let mut offset = 0u64;
            for r in &records[..keep] {
                offset += encode_record(r.seq, &r.op).len() as u64;
            }
            cuts.push(offset);
        }
    }
    (merged, cuts)
}

/// An append handle over one WAL stripe with group-commit durability.
pub struct Wal {
    storage: Box<dyn Storage>,
    group_commit: usize,
    pending: usize,
}

impl Wal {
    /// Wraps `storage` as a WAL stripe syncing every `group_commit`
    /// appended records (`0` is treated as `1`: sync every record).
    pub fn new(storage: Box<dyn Storage>, group_commit: usize) -> Self {
        Wal {
            storage,
            group_commit: group_commit.max(1),
            pending: 0,
        }
    }

    /// Appends one record and fsyncs if the group-commit boundary is
    /// reached. Returns whether this append synced.
    pub fn append(&mut self, seq: u64, op: &WalOp) -> Result<bool> {
        let frame = encode_record(seq, op);
        self.storage.append(&frame)?;
        self.pending += 1;
        if self.pending >= self.group_commit {
            self.sync()?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Forces everything appended so far to durable media.
    pub fn sync(&mut self) -> Result<()> {
        if self.pending > 0 {
            self.storage.sync()?;
            self.pending = 0;
        }
        Ok(())
    }

    /// Records appended since the last sync (durability debt).
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// The underlying storage label (for error context in callers).
    pub fn label(&self) -> &str {
        self.storage.label()
    }

    /// Truncates the stripe to `len` bytes — recovery's torn-tail cut.
    pub fn truncate(&mut self, len: u64) -> Result<()> {
        self.storage.truncate(len)
    }

    /// Reads the stripe's valid records (see [`read_records`]).
    pub fn read(&mut self) -> Result<(Vec<WalRecord>, u64)> {
        read_records(self.storage.as_mut())
    }

    /// Verifies the stripe ends exactly at its valid prefix, failing with a
    /// typed error naming the first corrupt offset otherwise.
    pub fn check_clean(&mut self) -> Result<()> {
        let (_, valid) = self.read()?;
        let len = self.storage.len()?;
        if valid != len {
            return Err(persistence_error(
                self.storage.label(),
                valid,
                format!("torn or corrupt WAL tail: {} trailing bytes", len - valid),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{FaultPlan, FaultStorage, MemStorage};
    use gsm_core::interner::{Sym, SymbolTable};

    fn sample_ops() -> Vec<WalOp> {
        let mut symbols = SymbolTable::new();
        let pattern = QueryPattern::parse("?x -knows-> ?y", &mut symbols).unwrap();
        vec![
            WalOp::Intern {
                name: "knows".to_string(),
            },
            WalOp::Register { pattern },
            WalOp::Batch {
                updates: vec![
                    Update::new(Sym(0), Sym(1), Sym(2)),
                    Update::retraction(Sym(0), Sym(1), Sym(2)),
                ],
            },
            WalOp::Checkpoint { ckpt_seq: 2 },
            WalOp::Unregister { query: QueryId(0) },
        ]
    }

    #[test]
    fn records_round_trip_in_order() {
        let store = MemStorage::new("mem:wal");
        let mut handle = store.handle();
        let mut wal = Wal::new(Box::new(store), 2);
        for (seq, op) in sample_ops().into_iter().enumerate() {
            wal.append(seq as u64, &op).unwrap();
        }
        wal.sync().unwrap();
        let (records, valid) = read_records(&mut handle).unwrap();
        assert_eq!(records.len(), 5);
        assert_eq!(valid, handle.len().unwrap());
        assert_eq!(
            records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert_eq!(records[3].op, WalOp::Checkpoint { ckpt_seq: 2 });
        assert_eq!(records[4].op, WalOp::Unregister { query: QueryId(0) });
    }

    #[test]
    fn reader_stops_cleanly_at_every_truncation_offset() {
        let store = MemStorage::new("mem:wal");
        let raw = store.raw();
        let mut wal = Wal::new(Box::new(store.handle()), 1);
        for (seq, op) in sample_ops().into_iter().enumerate() {
            wal.append(seq as u64, &op).unwrap();
        }
        let full = raw.lock().unwrap().clone();
        // Record boundaries, for checking the expected record count.
        let mut boundaries = vec![0usize];
        for (seq, op) in sample_ops().into_iter().enumerate() {
            boundaries.push(boundaries.last().unwrap() + encode_record(seq as u64, &op).len());
        }
        for cut in 0..=full.len() {
            *raw.lock().unwrap() = full[..cut].to_vec();
            let mut handle = store.handle();
            let (records, valid) = read_records(&mut handle).unwrap();
            let expect = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            assert_eq!(records.len(), expect, "cut at {cut}");
            assert_eq!(valid as usize, boundaries[expect], "cut at {cut}");
        }
    }

    #[test]
    fn bit_flip_invalidates_exactly_the_flipped_suffix() {
        let store = MemStorage::new("mem:wal");
        let raw = store.raw();
        let mut wal = Wal::new(Box::new(store.handle()), 1);
        for (seq, op) in sample_ops().into_iter().enumerate() {
            wal.append(seq as u64, &op).unwrap();
        }
        let first_len = encode_record(0, &sample_ops()[0]).len();
        // Flip one bit inside record 1's payload: records 0 stays valid,
        // everything from record 1 on is rejected.
        raw.lock().unwrap()[first_len + 10] ^= 0x40;
        let mut handle = store.handle();
        let (records, valid) = read_records(&mut handle).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(valid as usize, first_len);
        assert_eq!(records[0].seq, 0);
    }

    #[test]
    fn group_commit_syncs_at_the_boundary() {
        // FailSync makes every fsync fail, so the group-commit boundary is
        // observable: appends below the boundary succeed (no sync yet), the
        // append that reaches it surfaces the typed sync error.
        let store = FaultStorage::new(MemStorage::new("mem:wal"), FaultPlan::FailSync);
        let mut wal = Wal::new(Box::new(store), 3);
        let op = WalOp::Intern {
            name: "x".to_string(),
        };
        assert!(!wal.append(0, &op).unwrap());
        assert!(!wal.append(1, &op).unwrap());
        assert_eq!(wal.pending(), 2);
        let err = wal.append(2, &op).unwrap_err();
        match err {
            gsm_core::error::Error::Persistence { detail, .. } => {
                assert!(detail.contains("fsync"), "{detail}");
            }
            other => panic!("expected persistence error, got {other:?}"),
        }
    }

    #[test]
    fn merge_stripes_replays_only_the_contiguous_prefix() {
        // Two stripes; stripe 1 lost the record for seq 3, so replay must
        // stop at seq 2 even though stripe 0 still has seq 4.
        let ops = |seq| WalOp::Checkpoint { ckpt_seq: seq };
        let stripe0: Vec<WalRecord> = [0u64, 2, 4]
            .iter()
            .map(|&seq| WalRecord { seq, op: ops(seq) })
            .collect();
        let stripe1: Vec<WalRecord> = [1u64]
            .iter()
            .map(|&seq| WalRecord { seq, op: ops(seq) })
            .collect();
        let len = |records: &[WalRecord]| {
            records
                .iter()
                .map(|r| encode_record(r.seq, &r.op).len() as u64)
                .sum::<u64>()
        };
        let (v0, v1) = (len(&stripe0), len(&stripe1));
        let (merged, cuts) = merge_stripes(vec![(stripe0.clone(), v0), (stripe1, v1)], 0);
        assert_eq!(
            merged.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        // Stripe 0 must drop its record for seq 4; stripe 1 keeps its whole
        // prefix.
        assert_eq!(cuts[0], len(&stripe0[..2]));
        assert_eq!(cuts[1], v1);
    }

    #[test]
    fn merge_stripes_starts_from_the_checkpoint_seq() {
        let ops = |seq| WalOp::Checkpoint { ckpt_seq: seq };
        let records: Vec<WalRecord> = (0..5u64)
            .map(|seq| WalRecord { seq, op: ops(seq) })
            .collect();
        let valid = records
            .iter()
            .map(|r| encode_record(r.seq, &r.op).len() as u64)
            .sum::<u64>();
        let (merged, cuts) = merge_stripes(vec![(records, valid)], 3);
        assert_eq!(merged.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![3, 4]);
        assert_eq!(cuts, vec![valid]);
    }
}
