//! Property-based tests for the persistence codecs and the WAL reader.
//!
//! Two families:
//!
//! * **Round trips** — arbitrary signed update batches, query patterns,
//!   symbol tables and (multi-chunk) relations survive encode → decode
//!   bit-exactly: the decoded value re-encodes to the identical byte string
//!   and compares equal field by field.
//! * **Torn tails** — a WAL image cut at *any* byte offset still reads
//!   cleanly: the reader returns a strict prefix of the written records and
//!   a valid-prefix offset that is itself a fixed point (truncating to it
//!   and re-reading changes nothing). A single flipped bit anywhere in the
//!   image likewise never panics and never yields a record that was not
//!   written.

use proptest::prelude::*;

use gsm_core::interner::{Sym, SymbolTable};
use gsm_core::model::term::{PatternEdge, Term};
use gsm_core::model::update::Update;
use gsm_core::query::pattern::QueryPattern;
use gsm_core::relation::{Relation, CHUNK_ROWS};
use gsm_persist::codec::{self, Cursor};
use gsm_persist::wal::{self, WalOp, WalRecord};
use gsm_persist::{MemStorage, Storage, Wal};

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

fn update_strategy() -> impl Strategy<Value = Update> {
    (0u32..64, 0u32..512, 0u32..512, any::<bool>()).prop_map(|(label, src, tgt, retract)| {
        if retract {
            Update::retraction(Sym(label), Sym(src), Sym(tgt))
        } else {
            Update::new(Sym(label), Sym(src), Sym(tgt))
        }
    })
}

fn batch_strategy() -> impl Strategy<Value = Vec<Update>> {
    proptest::collection::vec(update_strategy(), 0..=80)
}

/// A connected query pattern (same construction as the core property
/// suite): every edge anchors on a variable vertex already in use.
fn pattern_strategy() -> impl Strategy<Value = QueryPattern> {
    let edge = (0u32..4, 0u32..6, 0u32..6, any::<bool>(), any::<bool>());
    proptest::collection::vec(edge, 1..=6).prop_map(|specs| {
        let mut edges = Vec::new();
        let mut used: Vec<u32> = vec![0];
        for (label, a, b, other_const, flip) in specs {
            let anchor = used[(a as usize) % used.len()];
            let anchor_term = Term::Var(anchor);
            let other_term = if other_const {
                Term::Const(Sym(1000 + b))
            } else {
                if !used.contains(&b) {
                    used.push(b);
                }
                Term::Var(b)
            };
            let (src, tgt) = if flip {
                (other_term, anchor_term)
            } else {
                (anchor_term, other_term)
            };
            edges.push(PatternEdge::new(Sym(label), src, tgt));
        }
        QueryPattern::from_edges(edges).expect("constructed patterns are connected")
    })
}

fn relation_strategy() -> impl Strategy<Value = Relation> {
    // The vendored proptest stand-in has no flat_map: draw rows at the
    // maximum arity and truncate each to the drawn arity instead.
    (
        1usize..=4,
        0u64..8,
        proptest::collection::vec(proptest::collection::vec(0u32..50, 4..=4), 0..=200),
    )
        .prop_map(|(arity, generation, rows)| {
            let mut rel = Relation::restore(arity, generation);
            for row in rows {
                let row: Vec<Sym> = row[..arity].iter().copied().map(Sym).collect();
                rel.push(&row);
            }
            rel
        })
}

fn op_strategy() -> impl Strategy<Value = WalOp> {
    // One tuple with every payload, discriminated by `kind` (the stand-in
    // has no prop_oneof).
    (
        0u32..4,
        0u32..200,
        pattern_strategy(),
        batch_strategy(),
        0u64..1000,
    )
        .prop_map(|(kind, name, pattern, updates, ckpt_seq)| match kind {
            0 => WalOp::Intern {
                name: format!("sym{name}"),
            },
            1 => WalOp::Register { pattern },
            2 => WalOp::Batch { updates },
            _ => WalOp::Checkpoint { ckpt_seq },
        })
}

fn encode_relation(rel: &Relation) -> Vec<u8> {
    let mut out = Vec::new();
    codec::put_relation(&mut out, rel);
    out
}

/// Writes `ops` through a [`Wal`] (fsync every record) and returns the
/// resulting storage image.
fn wal_image(ops: &[WalOp]) -> Vec<u8> {
    let store = MemStorage::new("prop-wal");
    let mut wal = Wal::new(Box::new(store.handle()), 1);
    for (seq, op) in ops.iter().enumerate() {
        wal.append(seq as u64, op).expect("append");
    }
    let raw = store.raw();
    let bytes = raw.lock().unwrap().clone();
    bytes
}

fn read_image(bytes: &[u8]) -> (Vec<WalRecord>, u64) {
    let store = MemStorage::new("prop-wal-read");
    {
        let raw = store.raw();
        raw.lock().unwrap().extend_from_slice(bytes);
    }
    let mut boxed: Box<dyn Storage> = Box::new(store);
    wal::read_records(boxed.as_mut()).expect("read_records never errors on a readable store")
}

// ---------------------------------------------------------------------------
// Deterministic multi-chunk spill case
// ---------------------------------------------------------------------------

/// A relation spanning two frozen chunks plus a partial tail round-trips
/// with its chunk layout, generation and row order intact.
#[test]
fn multi_chunk_relation_roundtrip() {
    let arity = 3;
    let mut rel = Relation::restore(arity, 42);
    for i in 0..(2 * CHUNK_ROWS + 7) as u32 {
        rel.push(&[Sym(i), Sym(i ^ 1), Sym(i / 3)]);
    }
    assert!(rel.frozen_chunks() >= 2, "test must span frozen chunks");

    let bytes = encode_relation(&rel);
    let mut c = Cursor::new(&bytes);
    let back = codec::get_relation(&mut c).expect("decode");
    assert!(c.is_exhausted());
    assert_eq!(back.arity(), rel.arity());
    assert_eq!(back.generation(), rel.generation());
    assert_eq!(back.len(), rel.len());
    assert_eq!(back.to_vec(), rel.to_vec());
    assert_eq!(encode_relation(&back), bytes, "re-encode must be bit-exact");
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Signed update batches round-trip bit-exactly.
    #[test]
    fn updates_roundtrip_bit_exact(batch in batch_strategy()) {
        let mut bytes = Vec::new();
        codec::put_updates(&mut bytes, &batch);
        let mut c = Cursor::new(&bytes);
        let back = codec::get_updates(&mut c).expect("decode");
        prop_assert!(c.is_exhausted());
        prop_assert_eq!(&back, &batch);
        let mut again = Vec::new();
        codec::put_updates(&mut again, &back);
        prop_assert_eq!(again, bytes);
    }

    /// Query patterns round-trip bit-exactly (including the re-validation
    /// pass the decoder runs through `QueryPattern::from_edges`).
    #[test]
    fn patterns_roundtrip_bit_exact(pattern in pattern_strategy()) {
        let mut bytes = Vec::new();
        codec::put_pattern(&mut bytes, &pattern);
        let mut c = Cursor::new(&bytes);
        let back = codec::get_pattern(&mut c).expect("decode");
        prop_assert!(c.is_exhausted());
        let mut again = Vec::new();
        codec::put_pattern(&mut again, &back);
        prop_assert_eq!(again, bytes);
    }

    /// Symbol tables round-trip with the identical dense `Sym` assignment.
    #[test]
    fn symbols_roundtrip_bit_exact(names in proptest::collection::vec(0u32..60, 0..=40)) {
        let mut table = SymbolTable::new();
        for name in &names {
            table.intern(&format!("name-{name}"));
        }
        let mut bytes = Vec::new();
        codec::put_symbols(&mut bytes, &table);
        let mut c = Cursor::new(&bytes);
        let back = codec::get_symbols(&mut c).expect("decode");
        prop_assert!(c.is_exhausted());
        prop_assert_eq!(back.len(), table.len());
        for i in 0..table.len() as u32 {
            prop_assert_eq!(back.resolve(Sym(i)), table.resolve(Sym(i)));
        }
        let mut again = Vec::new();
        codec::put_symbols(&mut again, &back);
        prop_assert_eq!(again, bytes);
    }

    /// Relations (arbitrary arity, generation and row set) round-trip
    /// bit-exactly, preserving row order and the compaction generation.
    #[test]
    fn relations_roundtrip_bit_exact(rel in relation_strategy()) {
        let bytes = encode_relation(&rel);
        let mut c = Cursor::new(&bytes);
        let back = codec::get_relation(&mut c).expect("decode");
        prop_assert!(c.is_exhausted());
        prop_assert_eq!(back.arity(), rel.arity());
        prop_assert_eq!(back.generation(), rel.generation());
        prop_assert_eq!(back.to_vec(), rel.to_vec());
        prop_assert_eq!(encode_relation(&back), bytes);
    }

    /// Every WAL operation kind round-trips through its on-disk frame.
    #[test]
    fn wal_records_roundtrip(ops in proptest::collection::vec(op_strategy(), 0..=12)) {
        let bytes = wal_image(&ops);
        let (records, prefix) = read_image(&bytes);
        prop_assert_eq!(prefix, bytes.len() as u64);
        prop_assert_eq!(records.len(), ops.len());
        for (seq, (rec, op)) in records.iter().zip(&ops).enumerate() {
            prop_assert_eq!(rec.seq, seq as u64);
            prop_assert_eq!(&rec.op, op);
        }
    }

    /// The WAL reader stops cleanly at ANY truncation offset: it returns a
    /// prefix of the written records, its valid-prefix offset never exceeds
    /// the cut, and that offset is a fixed point of truncate-and-reread.
    #[test]
    fn wal_reader_stops_cleanly_at_any_cut(
        ops in proptest::collection::vec(op_strategy(), 1..=10),
        cut_seed in any::<u64>(),
    ) {
        let bytes = wal_image(&ops);
        let cut = (cut_seed % (bytes.len() as u64 + 1)) as usize;
        let (records, prefix) = read_image(&bytes[..cut]);
        prop_assert!(prefix <= cut as u64);
        prop_assert!(records.len() <= ops.len());
        for (seq, (rec, op)) in records.iter().zip(&ops).enumerate() {
            prop_assert_eq!(rec.seq, seq as u64);
            prop_assert_eq!(&rec.op, op);
        }
        // Fixed point: the valid prefix re-reads to exactly the same state.
        let (again, prefix2) = read_image(&bytes[..prefix as usize]);
        prop_assert_eq!(prefix2, prefix);
        prop_assert_eq!(again, records);
    }

    /// One flipped bit anywhere in the image never panics the reader and
    /// never produces a record that was not written: the CRC (or the frame
    /// geometry) stops the scan at or before the damaged record.
    #[test]
    fn wal_reader_survives_any_bit_flip(
        ops in proptest::collection::vec(op_strategy(), 1..=10),
        pos_seed in any::<u64>(),
        bit in 0u32..8,
    ) {
        let mut bytes = wal_image(&ops);
        prop_assume!(!bytes.is_empty());
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= 1u8 << bit;
        let (records, prefix) = read_image(&bytes);
        prop_assert!(prefix <= bytes.len() as u64);
        // Any record that does survive must be one of the originals, in
        // order, except possibly a final Intern whose flipped bit landed in
        // the name and re-validated by luck — the CRC makes even that
        // astronomically unlikely, so insist on exact prefix equality.
        prop_assert!(records.len() <= ops.len());
        for (seq, (rec, op)) in records.iter().zip(&ops).enumerate() {
            prop_assert_eq!(rec.seq, seq as u64);
            prop_assert_eq!(&rec.op, op);
        }
    }
}
