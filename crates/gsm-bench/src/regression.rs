//! The hot-path regression gate: compares freshly measured `hotpath_update`
//! throughput against the committed baseline (`BENCH_PR1.json`) and fails
//! when an engine regresses beyond a tolerance.
//!
//! The baseline files are written by hand after each benchmarked PR, so this
//! module carries its own tiny JSON number extractor instead of a full JSON
//! parser (the workspace vendors no serde): it scans for a section key, then
//! an engine key, then the `updates_per_sec` field — enough for the flat,
//! well-known layout of the `BENCH_PR*.json` files.

/// Default allowed relative regression before the gate fails (20%).
pub const DEFAULT_TOLERANCE: f64 = 0.20;

/// Extracts `updates_per_sec` for `engine` inside the object of `section`
/// (e.g. section `"after"`, engine `"TRIC+"`) from one of the repo's
/// `BENCH_PR*.json` files. Returns `None` when the keys or the number cannot
/// be found.
pub fn extract_updates_per_sec(json: &str, section: &str, engine: &str) -> Option<f64> {
    let section_at = json.find(&format!("\"{section}\""))?;
    let tail = &json[section_at..];
    // Engine names are matched as fully quoted keys, so "TRIC" never matches
    // inside "TRIC+".
    let engine_at = tail.find(&format!("\"{engine}\""))?;
    let tail = &tail[engine_at..];
    let field_at = tail.find("\"updates_per_sec\"")?;
    let tail = &tail[field_at + "\"updates_per_sec\"".len()..];
    let colon = tail.find(':')?;
    let tail = tail[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(tail.len());
    tail[..end].trim().parse().ok()
}

/// Outcome of gating one engine's measurement against the baseline.
#[derive(Debug, Clone, PartialEq)]
pub enum GateOutcome {
    /// Within tolerance (or faster); carries a human-readable summary.
    Pass(String),
    /// Regressed beyond the tolerance; carries the failure description.
    Fail(String),
    /// The baseline has no entry for this engine.
    MissingBaseline(String),
}

impl GateOutcome {
    /// True for [`GateOutcome::Fail`].
    pub fn is_fail(&self) -> bool {
        matches!(self, GateOutcome::Fail(_))
    }
}

/// Gates one engine: fails when `measured` falls more than `tolerance`
/// (relative) below the baseline's `after` throughput for that engine.
pub fn gate_engine(
    baseline_json: &str,
    engine: &str,
    measured_updates_per_sec: f64,
    tolerance: f64,
) -> GateOutcome {
    let Some(baseline) = extract_updates_per_sec(baseline_json, "after", engine) else {
        return GateOutcome::MissingBaseline(format!(
            "{engine}: no baseline updates_per_sec found — gate skipped"
        ));
    };
    let floor = baseline * (1.0 - tolerance);
    let ratio = measured_updates_per_sec / baseline;
    let summary = format!(
        "{engine}: measured {measured_updates_per_sec:.1} updates/s vs baseline {baseline:.1} \
         ({:+.1}%, floor {floor:.1})",
        (ratio - 1.0) * 100.0
    );
    if measured_updates_per_sec < floor {
        GateOutcome::Fail(summary)
    } else {
        GateOutcome::Pass(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
      "baseline": {
        "results": {
          "TRIC": { "mean_ms_per_replay": 597.951, "updates_per_sec": 668.95 },
          "TRIC+": { "mean_ms_per_replay": 192.202, "updates_per_sec": 2081.1 }
        }
      },
      "after": {
        "results": {
          "TRIC": { "mean_ms_per_replay": 181.953, "updates_per_sec": 2198.4 },
          "TRIC+": { "mean_ms_per_replay": 63.953, "updates_per_sec": 6254.6 }
        }
      }
    }"#;

    #[test]
    fn extracts_section_and_engine_scoped_numbers() {
        assert_eq!(
            extract_updates_per_sec(SAMPLE, "after", "TRIC"),
            Some(2198.4)
        );
        assert_eq!(
            extract_updates_per_sec(SAMPLE, "after", "TRIC+"),
            Some(6254.6)
        );
        assert_eq!(
            extract_updates_per_sec(SAMPLE, "baseline", "TRIC"),
            Some(668.95)
        );
        assert_eq!(extract_updates_per_sec(SAMPLE, "after", "INV"), None);
        assert_eq!(extract_updates_per_sec(SAMPLE, "nope", "TRIC"), None);
    }

    #[test]
    fn quoted_key_match_does_not_confuse_tric_with_tric_plus() {
        // "TRIC" appears textually inside "TRIC+"; the quoted-key search must
        // land on the exact key. In SAMPLE the TRIC key precedes TRIC+, so a
        // substring bug would return TRIC's number for TRIC+ — pin both.
        let tric = extract_updates_per_sec(SAMPLE, "after", "TRIC").unwrap();
        let plus = extract_updates_per_sec(SAMPLE, "after", "TRIC+").unwrap();
        assert_ne!(tric, plus);
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_beyond() {
        // Baseline after.TRIC = 2198.4; 20% floor = 1758.7.
        assert!(!gate_engine(SAMPLE, "TRIC", 2400.0, 0.2).is_fail());
        assert!(!gate_engine(SAMPLE, "TRIC", 1800.0, 0.2).is_fail());
        assert!(gate_engine(SAMPLE, "TRIC", 1700.0, 0.2).is_fail());
        match gate_engine(SAMPLE, "TRIC", 1700.0, 0.2) {
            GateOutcome::Fail(msg) => assert!(msg.contains("1700.0")),
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn unknown_engine_is_reported_not_failed() {
        let outcome = gate_engine(SAMPLE, "INV", 100.0, 0.2);
        assert!(matches!(outcome, GateOutcome::MissingBaseline(_)));
        assert!(!outcome.is_fail());
    }
}
