//! One experiment definition per figure/table of the paper's evaluation.
//!
//! Every function takes an [`ExperimentScale`] so the same experiment can run
//! at laptop scale (the defaults, used by the `experiments` binary and the
//! Criterion benches) or closer to the paper's sizes when more time is
//! available. The *shape* of each experiment — which parameter is swept,
//! which engines participate, what is measured — follows the paper exactly.

use crate::harness::{run_engines, EngineKind, RunLimits, RunResult};
use crate::report::{figure_from_runs, FigureResult};
use gsm_datagen::{Dataset, Workload, WorkloadConfig};

/// Scale knobs shared by every experiment.
///
/// The paper's baseline configuration is `|GE| = 100K` edges and
/// `|QDB| = 5K` queries on a 24-hour budget; the defaults here shrink both by
/// roughly 25× so the whole suite completes in minutes on a laptop while
/// preserving the relative behaviour of the engines.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentScale {
    /// The stand-in for the paper's 100K-edge graph.
    pub base_graph_edges: usize,
    /// The stand-in for the paper's 5K-query database.
    pub base_queries: usize,
    /// Per-run time budget (the paper's 24-hour threshold).
    pub limits: RunLimits,
}

impl Default for ExperimentScale {
    fn default() -> Self {
        ExperimentScale {
            base_graph_edges: 4_000,
            base_queries: 200,
            limits: RunLimits::seconds(15),
        }
    }
}

impl ExperimentScale {
    /// A very small scale used by unit tests and the Criterion benches.
    pub fn tiny() -> Self {
        ExperimentScale {
            base_graph_edges: 600,
            base_queries: 30,
            limits: RunLimits::seconds(5),
        }
    }

    /// Scales every size by a factor.
    pub fn scaled(factor: f64) -> Self {
        let d = ExperimentScale::default();
        ExperimentScale {
            base_graph_edges: ((d.base_graph_edges as f64 * factor) as usize).max(200),
            base_queries: ((d.base_queries as f64 * factor) as usize).max(10),
            ..d
        }
    }
}

/// All experiment identifiers, in paper order.
pub fn all_figure_ids() -> Vec<&'static str> {
    vec![
        "fig12a", "fig12b", "fig12c", "fig12d", "fig12e", "fig12f", "fig13a", "fig13b", "tab13c",
        "fig14a", "fig14b", "fig14c",
    ]
}

/// Runs an experiment by identifier.
pub fn run_figure(id: &str, scale: &ExperimentScale) -> Option<FigureResult> {
    Some(match id {
        "fig12a" => fig12a(scale),
        "fig12b" => fig12b(scale),
        "fig12c" => fig12c(scale),
        "fig12d" => fig12d(scale),
        "fig12e" => fig12e(scale),
        "fig12f" => fig12f(scale),
        "fig13a" => fig13a(scale),
        "fig13b" => fig13b(scale),
        "tab13c" => tab13c(scale),
        "fig14a" => fig14a(scale),
        "fig14b" => fig14b(scale),
        "fig14c" => fig14c(scale),
        _ => return None,
    })
}

fn sweep<F>(
    engines: &[EngineKind],
    xs: &[f64],
    limits: RunLimits,
    mut workload_for: F,
) -> (Vec<f64>, Vec<Vec<RunResult>>)
where
    F: FnMut(f64) -> Workload,
{
    let mut runs = Vec::with_capacity(xs.len());
    for &x in xs {
        let workload = workload_for(x);
        runs.push(run_engines(engines, &workload, limits));
    }
    (xs.to_vec(), runs)
}

/// Fig. 12(a): answering time vs graph size, SNB, all engines.
pub fn fig12a(scale: &ExperimentScale) -> FigureResult {
    let xs: Vec<f64> = (1..=5)
        .map(|i| (scale.base_graph_edges as f64 * i as f64 / 5.0).round())
        .collect();
    let (x_values, runs) = sweep(&EngineKind::all(), &xs, scale.limits, |edges| {
        Workload::generate(WorkloadConfig::new(
            Dataset::Snb,
            edges as usize,
            scale.base_queries,
        ))
    });
    figure_from_runs(
        "fig12a",
        "SNB: query answering time vs. graph size".into(),
        "graph size (edges)",
        "answering time (ms/update)",
        x_values,
        runs,
    )
}

/// Fig. 12(b): answering time vs selectivity σ, SNB, all engines.
pub fn fig12b(scale: &ExperimentScale) -> FigureResult {
    let xs = vec![0.10, 0.15, 0.20, 0.25, 0.30];
    let (x_values, runs) = sweep(&EngineKind::all(), &xs, scale.limits, |sigma| {
        Workload::generate(
            WorkloadConfig::new(Dataset::Snb, scale.base_graph_edges, scale.base_queries)
                .with_selectivity(sigma),
        )
    });
    figure_from_runs(
        "fig12b",
        "SNB: query answering time vs. selectivity σ".into(),
        "selectivity σ",
        "answering time (ms/update)",
        x_values,
        runs,
    )
}

/// Fig. 12(c): answering time vs query-database size |QDB|, SNB, all engines.
pub fn fig12c(scale: &ExperimentScale) -> FigureResult {
    let xs: Vec<f64> = [0.2, 0.6, 1.0]
        .iter()
        .map(|f| (scale.base_queries as f64 * f).round())
        .collect();
    let (x_values, runs) = sweep(&EngineKind::all(), &xs, scale.limits, |qdb| {
        Workload::generate(WorkloadConfig::new(
            Dataset::Snb,
            scale.base_graph_edges,
            qdb as usize,
        ))
    });
    figure_from_runs(
        "fig12c",
        "SNB: query answering time vs. |QDB|".into(),
        "query database size |QDB|",
        "answering time (ms/update)",
        x_values,
        runs,
    )
}

/// Fig. 12(d): answering time vs average query size l, SNB, all engines.
pub fn fig12d(scale: &ExperimentScale) -> FigureResult {
    let xs = vec![3.0, 5.0, 7.0, 9.0];
    let (x_values, runs) = sweep(&EngineKind::all(), &xs, scale.limits, |l| {
        Workload::generate(
            WorkloadConfig::new(Dataset::Snb, scale.base_graph_edges, scale.base_queries)
                .with_query_size(l as usize),
        )
    });
    figure_from_runs(
        "fig12d",
        "SNB: query answering time vs. average query size l".into(),
        "average query size l (edges)",
        "answering time (ms/update)",
        x_values,
        runs,
    )
}

/// Fig. 12(e): answering time vs query overlap o, SNB, all engines.
pub fn fig12e(scale: &ExperimentScale) -> FigureResult {
    let xs = vec![0.25, 0.35, 0.45, 0.55, 0.65];
    let (x_values, runs) = sweep(&EngineKind::all(), &xs, scale.limits, |o| {
        Workload::generate(
            WorkloadConfig::new(Dataset::Snb, scale.base_graph_edges, scale.base_queries)
                .with_overlap(o),
        )
    });
    figure_from_runs(
        "fig12e",
        "SNB: query answering time vs. query overlap o".into(),
        "query overlap o",
        "answering time (ms/update)",
        x_values,
        runs,
    )
}

/// Fig. 12(f): answering time on a 10× larger SNB graph — the experiment
/// where the inverted-index baselines hit the time threshold first.
pub fn fig12f(scale: &ExperimentScale) -> FigureResult {
    let xs: Vec<f64> = (1..=5)
        .map(|i| (scale.base_graph_edges as f64 * 2.0 * i as f64).round())
        .collect();
    let (x_values, runs) = sweep(&EngineKind::all(), &xs, scale.limits, |edges| {
        Workload::generate(WorkloadConfig::new(
            Dataset::Snb,
            edges as usize,
            scale.base_queries,
        ))
    });
    figure_from_runs(
        "fig12f",
        "SNB: query answering time on large graphs (baseline timeouts)".into(),
        "graph size (edges)",
        "answering time (ms/update)",
        x_values,
        runs,
    )
}

/// Fig. 13(a): very large SNB graph, TRIC / TRIC+ / graph database only.
pub fn fig13a(scale: &ExperimentScale) -> FigureResult {
    let xs: Vec<f64> = (1..=4)
        .map(|i| (scale.base_graph_edges as f64 * 5.0 * i as f64).round())
        .collect();
    let (x_values, runs) = sweep(
        &EngineKind::large_graph_subset(),
        &xs,
        scale.limits,
        |edges| {
            Workload::generate(WorkloadConfig::new(
                Dataset::Snb,
                edges as usize,
                scale.base_queries,
            ))
        },
    );
    figure_from_runs(
        "fig13a",
        "SNB: query answering time on very large graphs (TRIC/TRIC+/GraphDB)".into(),
        "graph size (edges)",
        "answering time (ms/update)",
        x_values,
        runs,
    )
}

/// Fig. 13(b): query insertion (indexing) time vs |QDB|, all engines.
pub fn fig13b(scale: &ExperimentScale) -> FigureResult {
    let steps: Vec<f64> = (1..=5)
        .map(|i| (scale.base_queries as f64 * i as f64 / 5.0).round())
        .collect();
    let engines = EngineKind::all();
    let mut runs_by_x = Vec::new();
    for &qdb in &steps {
        let workload = Workload::generate(WorkloadConfig::new(
            Dataset::Snb,
            scale.base_graph_edges / 2,
            qdb as usize,
        ));
        // Indexing time only: replay zero updates by truncating the stream.
        let mut indexing_workload = workload;
        indexing_workload.stream.truncate(0);
        let mut runs = run_engines(&engines, &indexing_workload, scale.limits);
        // Re-purpose the plotted value: indexing ms per query.
        for r in &mut runs {
            r.answer_ms_per_update = r.indexing_ms_per_query;
            r.timed_out = false;
        }
        runs_by_x.push(runs);
    }
    figure_from_runs(
        "fig13b",
        "SNB: query insertion time vs. |QDB|".into(),
        "query database size |QDB|",
        "indexing time (ms/query)",
        steps,
        runs_by_x,
    )
}

/// Fig. 13(c): memory requirements per engine on SNB / TAXI / BioGRID.
pub fn tab13c(scale: &ExperimentScale) -> FigureResult {
    let datasets = [Dataset::Snb, Dataset::Taxi, Dataset::BioGrid];
    let engines = EngineKind::all();
    let mut runs_by_x = Vec::new();
    for dataset in datasets {
        let mut config = WorkloadConfig::new(dataset, scale.base_graph_edges, scale.base_queries);
        if dataset == Dataset::BioGrid {
            config = config.with_query_size(3);
        }
        let workload = Workload::generate(config);
        let mut runs = run_engines(&engines, &workload, scale.limits);
        // Plotted value: heap megabytes after the run.
        for r in &mut runs {
            r.answer_ms_per_update = r.heap_bytes as f64 / (1024.0 * 1024.0);
            r.timed_out = false;
        }
        runs_by_x.push(runs);
    }
    figure_from_runs(
        "tab13c",
        "Memory requirements (MB) per engine — x: 1=SNB, 2=TAXI, 3=BioGRID".into(),
        "dataset (1=SNB, 2=TAXI, 3=BioGRID)",
        "engine state (MB)",
        vec![1.0, 2.0, 3.0],
        runs_by_x,
    )
}

/// Fig. 14(a): answering time vs graph size on the taxi dataset, all engines.
pub fn fig14a(scale: &ExperimentScale) -> FigureResult {
    let xs: Vec<f64> = (1..=5)
        .map(|i| (scale.base_graph_edges as f64 * i as f64 / 5.0 * 2.0).round())
        .collect();
    let (x_values, runs) = sweep(&EngineKind::all(), &xs, scale.limits, |edges| {
        Workload::generate(WorkloadConfig::new(
            Dataset::Taxi,
            edges as usize,
            scale.base_queries,
        ))
    });
    figure_from_runs(
        "fig14a",
        "TAXI: query answering time vs. graph size".into(),
        "graph size (edges)",
        "answering time (ms/update)",
        x_values,
        runs,
    )
}

/// Fig. 14(b): BioGRID stress test on small graphs, all engines.
pub fn fig14b(scale: &ExperimentScale) -> FigureResult {
    let xs: Vec<f64> = (1..=5)
        .map(|i| (scale.base_graph_edges as f64 * i as f64 / 10.0).round())
        .collect();
    let (x_values, runs) = sweep(&EngineKind::all(), &xs, scale.limits, |edges| {
        Workload::generate(
            WorkloadConfig::new(Dataset::BioGrid, edges as usize, scale.base_queries)
                .with_query_size(3),
        )
    });
    figure_from_runs(
        "fig14b",
        "BioGRID: query answering time vs. graph size (stress test)".into(),
        "graph size (edges)",
        "answering time (ms/update)",
        x_values,
        runs,
    )
}

/// Fig. 14(c): BioGRID on larger graphs, TRIC / TRIC+ / graph database only.
pub fn fig14c(scale: &ExperimentScale) -> FigureResult {
    let xs: Vec<f64> = (1..=4)
        .map(|i| (scale.base_graph_edges as f64 * i as f64 / 2.0).round())
        .collect();
    let (x_values, runs) = sweep(
        &EngineKind::large_graph_subset(),
        &xs,
        scale.limits,
        |edges| {
            Workload::generate(
                WorkloadConfig::new(Dataset::BioGrid, edges as usize, scale.base_queries)
                    .with_query_size(3),
            )
        },
    );
    figure_from_runs(
        "fig14c",
        "BioGRID: query answering time on larger graphs (TRIC/TRIC+/GraphDB)".into(),
        "graph size (edges)",
        "answering time (ms/update)",
        x_values,
        runs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ids_resolve() {
        let scale = ExperimentScale::tiny();
        for id in all_figure_ids() {
            assert!(run_figure(id, &scale).is_some(), "figure {id} must resolve");
        }
        assert!(run_figure("nonexistent", &scale).is_none());
    }

    #[test]
    fn fig12a_runs_at_tiny_scale_and_tric_wins() {
        let mut scale = ExperimentScale::tiny();
        scale.base_graph_edges = 250;
        scale.base_queries = 12;
        let fig = fig12a(&scale);
        assert_eq!(fig.series.len(), 7);
        assert_eq!(fig.x_values.len(), 5);
        let tric = fig.series_for("TRIC+").unwrap();
        let inv = fig.series_for("INV").unwrap();
        // At the largest size TRIC+ must not be slower than INV (it should be
        // much faster; allow equality for degenerate tiny runs).
        if let (Some(t), Some(i)) = (
            tric.values.last().copied().flatten(),
            inv.values.last().copied().flatten(),
        ) {
            assert!(
                t <= i * 1.5,
                "TRIC+ ({t}) unexpectedly slower than INV ({i})"
            );
        }
    }

    #[test]
    fn tab13c_reports_memory_for_every_engine_and_dataset() {
        let mut scale = ExperimentScale::tiny();
        scale.base_graph_edges = 200;
        scale.base_queries = 10;
        let fig = tab13c(&scale);
        assert_eq!(fig.x_values.len(), 3);
        for series in &fig.series {
            for v in &series.values {
                assert!(
                    v.unwrap_or(0.0) > 0.0,
                    "{} reported zero memory",
                    series.engine
                );
            }
        }
    }

    #[test]
    fn fig13b_reports_indexing_time() {
        let mut scale = ExperimentScale::tiny();
        scale.base_graph_edges = 200;
        scale.base_queries = 20;
        let fig = fig13b(&scale);
        assert_eq!(fig.series.len(), 7);
        for series in &fig.series {
            assert!(series.values.iter().all(|v| v.is_some()));
        }
    }
}
