//! Subscriber load-test harness: hundreds of concurrent live-query
//! subscribers against one `gsm-server`, over the paper's generated
//! workloads.
//!
//! Each subscriber gets its own TCP connection, registers one query
//! from the generated query set and consumes its notification stream on
//! a dedicated thread; one pusher connection streams the update batches
//! and pins the final epoch boundary. The harness reports end-to-end
//! wall time, update throughput and delivered-notification throughput.
//!
//! ```text
//! subscriber_load [--subscribers N] [--updates N] [--dataset snb|taxi|biogrid]
//!                 [--batch N] [--answer-threads N]
//! ```

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gsm_core::{ContinuousEngine, PipelineConfig, SymbolTable, Term, Update};
use gsm_datagen::{Dataset, Workload, WorkloadConfig};
use gsm_server::{Client, Server, ServerConfig};
use gsm_tric::TricEngine;

struct Args {
    subscribers: usize,
    updates: usize,
    dataset: Dataset,
    batch: usize,
    answer_threads: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        subscribers: 200,
        updates: 10_000,
        dataset: Dataset::Snb,
        batch: 64,
        answer_threads: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        let num = |text: String| -> Result<usize, String> {
            text.parse().map_err(|_| format!("invalid number `{text}`"))
        };
        match flag.as_str() {
            "--subscribers" => args.subscribers = num(value("--subscribers")?)?,
            "--updates" => args.updates = num(value("--updates")?)?,
            "--batch" => args.batch = num(value("--batch")?)?,
            "--answer-threads" => args.answer_threads = num(value("--answer-threads")?)?,
            "--dataset" => {
                args.dataset = match value("--dataset")?.as_str() {
                    "snb" => Dataset::Snb,
                    "taxi" => Dataset::Taxi,
                    "biogrid" => Dataset::BioGrid,
                    other => return Err(format!("unknown dataset `{other}`")),
                }
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn render_term(term: &Term, symbols: &SymbolTable) -> String {
    match term {
        Term::Var(v) => format!("?x{v}"),
        Term::Const(s) => symbols.resolve(*s).to_string(),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: subscriber_load [--subscribers N] [--updates N] \
                 [--dataset snb|taxi|biogrid] [--batch N] [--answer-threads N]"
            );
            return ExitCode::from(2);
        }
    };

    // Query-set generation cost grows steeply with the query count, so
    // generate a bounded set and hand queries to subscribers
    // round-robin: the load axis under test is connections, not
    // distinct patterns.
    let distinct_queries = args.subscribers.min(60);
    let workload = Workload::generate(WorkloadConfig::new(
        args.dataset,
        args.updates,
        distinct_queries,
    ));
    let symbols = &workload.symbols;
    let query_texts: Vec<String> = workload
        .queries
        .iter()
        .map(|q| {
            q.edges()
                .iter()
                .map(|e| {
                    format!(
                        "{} -{}-> {}",
                        render_term(&e.src, symbols),
                        symbols.resolve(e.label),
                        render_term(&e.tgt, symbols),
                    )
                })
                .collect::<Vec<_>>()
                .join("; ")
        })
        .collect();
    let edges: Vec<(bool, String, String, String)> = workload
        .stream
        .as_slice()
        .iter()
        .map(|u: &Update| {
            (
                u.is_retraction(),
                symbols.resolve(u.label).to_string(),
                symbols.resolve(u.src).to_string(),
                symbols.resolve(u.tgt).to_string(),
            )
        })
        .collect();

    let mut pipeline = PipelineConfig::new(args.batch, Duration::from_millis(5));
    if args.answer_threads > 0 {
        pipeline.answer_thread = true;
        pipeline.answer_workers = args.answer_threads;
    }
    let config = ServerConfig {
        pipeline,
        max_conns: args.subscribers + 2,
        outbound_queue: 16_384,
        idle_poll: Duration::from_millis(2),
    };
    let engine: Box<dyn ContinuousEngine + Send> = Box::new(TricEngine::tric_plus());
    let server = match Server::bind("127.0.0.1:0", engine, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "subscriber_load: {} subscribers, {} updates ({}), batch {}, answer threads {}",
        args.subscribers,
        edges.len(),
        workload.name,
        args.batch,
        args.answer_threads,
    );

    // Connect + register every subscriber, then hand each connection to
    // a consumer thread that counts delivered notifications.
    let connect_start = Instant::now();
    let mut subscriber_conns = Vec::with_capacity(args.subscribers);
    for i in 0..args.subscribers {
        let mut client = Client::connect(server.local_addr()).expect("connect subscriber");
        client
            .register(&query_texts[i % query_texts.len()])
            .expect("register");
        subscriber_conns.push(client);
    }
    let mut pusher = Client::connect(server.local_addr()).expect("connect pusher");
    pusher.flush().expect("activation boundary");
    println!(
        "connected + registered in {:.2?} ({} live queries)",
        connect_start.elapsed(),
        args.subscribers
    );

    let done = Arc::new(AtomicBool::new(false));
    let delivered = Arc::new(AtomicU64::new(0));
    let embeddings = Arc::new(AtomicU64::new(0));
    let consumers: Vec<_> = subscriber_conns
        .into_iter()
        .map(|mut client| {
            let done = Arc::clone(&done);
            let delivered = Arc::clone(&delivered);
            let embeddings = Arc::clone(&embeddings);
            std::thread::spawn(move || loop {
                match client.recv_notification(Duration::from_millis(50)) {
                    Ok(Some(n)) => {
                        delivered.fetch_add(1, Ordering::Relaxed);
                        embeddings.fetch_add(n.new + n.retracted, Ordering::Relaxed);
                    }
                    Ok(None) => {
                        if done.load(Ordering::Relaxed) {
                            return;
                        }
                    }
                    Err(_) => return,
                }
            })
        })
        .collect();

    // Stream the updates and pin the final boundary.
    let stream_start = Instant::now();
    for chunk in edges.chunks(args.batch) {
        let borrowed: Vec<(bool, &str, &str, &str)> = chunk
            .iter()
            .map(|(r, l, s, t)| (*r, l.as_str(), s.as_str(), t.as_str()))
            .collect();
        pusher.push(&borrowed).expect("push");
    }
    pusher.flush().expect("final boundary");
    let push_elapsed = stream_start.elapsed();

    // Let consumers drain their sockets, then stop them.
    std::thread::sleep(Duration::from_millis(300));
    done.store(true, Ordering::Relaxed);
    for consumer in consumers {
        let _ = consumer.join();
    }
    let total_elapsed = stream_start.elapsed();

    let delivered = delivered.load(Ordering::Relaxed);
    let embeddings = embeddings.load(Ordering::Relaxed);
    println!(
        "pushed {} updates in {:.2?} ({:.0} updates/s)",
        edges.len(),
        push_elapsed,
        edges.len() as f64 / push_elapsed.as_secs_f64()
    );
    println!(
        "delivered {delivered} notifications ({embeddings} embeddings) across {} subscribers \
         in {:.2?} ({:.0} notifications/s)",
        args.subscribers,
        total_elapsed,
        delivered as f64 / total_elapsed.as_secs_f64()
    );
    ExitCode::SUCCESS
}
