//! Regenerates the paper's figures and tables as markdown + CSV.
//!
//! ```text
//! cargo run -p gsm-bench --release --bin experiments -- [--figure <id>|all]
//!     [--scale <factor>] [--budget <seconds>] [--batch <n>] [--shards <n>]
//!     [--pipeline] [--flush-ms <ms>] [--threads <n>] [--out <dir>]
//! ```
//!
//! * `--figure` — one of fig12a…fig14c / tab13c, or `all` (default).
//! * `--scale`  — multiplier on the default laptop-scale sizes (default 1.0).
//! * `--budget` — per-run time budget in seconds (default 15).
//! * `--batch`  — answering batch size: updates per `apply_batch` call
//!   (default 1 = the paper's per-update answering, 0 = whole stream at once).
//! * `--shards` — worker shards the engines are partitioned into by root
//!   generic edge (default 1 = unsharded).
//! * `--pipeline` — drive the stream through the pipelined streaming
//!   executor: `--batch` becomes the latency-budgeted batcher's flush size
//!   and each batch's answer phase overlaps the next batch's routing.
//! * `--flush-ms` — the pipelined batcher's flush deadline in milliseconds
//!   (default 5; implies `--pipeline`).
//! * `--threads` — threads for the pipelined executor (default 1; `>= 2`
//!   runs each batch's covering-path join on a dedicated answer thread
//!   while the next batch is routed; implies `--pipeline`).
//! * `--answer-threads` — answer-stage workers for the threaded pipeline
//!   (default: `GSM_ANSWER_THREADS` or 1). Ignored unless `--threads >= 2`.
//! * `--persist-dir` — wrap every run's engine in the durable persistence
//!   layer (`gsm-persist`): WAL stripes (one per shard) and checkpoint
//!   files under the given directory, fsynced per group commit.
//! * `--checkpoint-every` — auto-checkpoint cadence in batches for the
//!   persistence layer (default 0 = WAL only; implies nothing without
//!   `--persist-dir`).
//! * `--group-commit` — WAL records per fsync for the persistence layer
//!   (default 1 = every record).
//! * `--out`    — output directory for `<id>.md` / `<id>.csv` (default `results`).

use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use gsm_bench::figures::{all_figure_ids, run_figure, ExperimentScale};
use gsm_bench::harness::RunLimits;

struct Args {
    figures: Vec<String>,
    scale: f64,
    budget_secs: u64,
    batch_size: usize,
    shards: usize,
    pipeline: bool,
    flush_ms: u64,
    threads: usize,
    answer_threads: usize,
    persist_dir: Option<String>,
    checkpoint_every: u64,
    group_commit: usize,
    out_dir: PathBuf,
}

/// The default answer-worker count: `GSM_ANSWER_THREADS` when set and
/// parseable, 1 otherwise (mirroring the `--answer-threads` flag).
fn default_answer_threads() -> usize {
    std::env::var("GSM_ANSWER_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map(|n| n.max(1))
        .unwrap_or(1)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        figures: vec!["all".to_string()],
        scale: 1.0,
        budget_secs: 15,
        batch_size: 1,
        shards: 1,
        pipeline: false,
        flush_ms: 5,
        threads: 1,
        answer_threads: default_answer_threads(),
        persist_dir: None,
        checkpoint_every: 0,
        group_commit: 1,
        out_dir: PathBuf::from("results"),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = argv.get(i + 1).cloned();
        match flag {
            "--figure" | "-f" => {
                let v = value.ok_or("--figure needs a value")?;
                args.figures = v.split(',').map(|s| s.trim().to_string()).collect();
                i += 2;
            }
            "--scale" | "-s" => {
                args.scale = value
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid --scale: {e}"))?;
                i += 2;
            }
            "--budget" | "-b" => {
                args.budget_secs = value
                    .ok_or("--budget needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid --budget: {e}"))?;
                i += 2;
            }
            "--batch" => {
                args.batch_size = value
                    .ok_or("--batch needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid --batch: {e}"))?;
                i += 2;
            }
            "--shards" => {
                args.shards = value
                    .ok_or("--shards needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid --shards: {e}"))?;
                i += 2;
            }
            "--pipeline" => {
                args.pipeline = true;
                i += 1;
            }
            "--flush-ms" => {
                args.flush_ms = value
                    .ok_or("--flush-ms needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid --flush-ms: {e}"))?;
                args.pipeline = true;
                i += 2;
            }
            "--threads" => {
                args.threads = value
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid --threads: {e}"))?;
                if args.threads >= 2 {
                    args.pipeline = true;
                }
                i += 2;
            }
            "--answer-threads" => {
                args.answer_threads = value
                    .ok_or("--answer-threads needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid --answer-threads: {e}"))?;
                i += 2;
            }
            "--persist-dir" => {
                args.persist_dir = Some(value.ok_or("--persist-dir needs a value")?);
                i += 2;
            }
            "--checkpoint-every" => {
                args.checkpoint_every = value
                    .ok_or("--checkpoint-every needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid --checkpoint-every: {e}"))?;
                i += 2;
            }
            "--group-commit" => {
                args.group_commit = value
                    .ok_or("--group-commit needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid --group-commit: {e}"))?;
                i += 2;
            }
            "--out" | "-o" => {
                args.out_dir = PathBuf::from(value.ok_or("--out needs a value")?);
                i += 2;
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--figure <id,...>|all] [--scale <f>] [--budget <secs>] [--batch <n>] [--shards <n>] [--pipeline] [--flush-ms <ms>] [--threads <n>] [--answer-threads <n>] [--persist-dir <dir>] [--checkpoint-every <n>] [--group-commit <n>] [--out <dir>]\n\nknown figures: {}",
                    all_figure_ids().join(", ")
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let mut scale = ExperimentScale::scaled(args.scale);
    scale.limits = RunLimits::seconds(args.budget_secs)
        .with_batch_size(args.batch_size)
        .with_shards(args.shards)
        .with_threads(args.threads)
        .with_answer_threads(args.answer_threads);
    if args.pipeline {
        scale.limits = scale
            .limits
            .with_pipeline(Duration::from_millis(args.flush_ms));
    }
    if let Some(dir) = &args.persist_dir {
        // RunLimits is Copy, so the one CLI path is leaked into a 'static
        // string (once per process).
        let dir: &'static str = Box::leak(dir.clone().into_boxed_str());
        scale.limits = scale
            .limits
            .with_persistence(dir, args.checkpoint_every, args.group_commit);
    }

    let requested: Vec<String> = if args.figures.iter().any(|f| f == "all") {
        all_figure_ids().iter().map(|s| s.to_string()).collect()
    } else {
        args.figures.clone()
    };

    fs::create_dir_all(&args.out_dir).expect("create output directory");
    let mut summary = String::new();
    summary.push_str(&format!(
        "# Reproduced evaluation (scale {:.2}, budget {}s per run, batch size {}, {} shard(s){})\n\n",
        args.scale,
        args.budget_secs,
        args.batch_size,
        args.shards,
        if args.pipeline {
            format!(
                ", pipelined with a {} ms flush deadline on {} thread(s), {} answer worker(s)",
                args.flush_ms,
                args.threads.max(1),
                if args.threads >= 2 {
                    args.answer_threads.max(1)
                } else {
                    1
                }
            )
        } else {
            String::new()
        }
    ));

    for id in &requested {
        let start = Instant::now();
        eprintln!("running {id} …");
        let Some(result) = run_figure(id, &scale) else {
            eprintln!("  unknown figure id {id}, skipping");
            continue;
        };
        let elapsed = start.elapsed();
        eprintln!("  {id} finished in {:.1}s", elapsed.as_secs_f64());

        let md = result.to_markdown();
        let csv = result.to_csv();
        fs::write(args.out_dir.join(format!("{id}.md")), &md).expect("write markdown");
        fs::write(args.out_dir.join(format!("{id}.csv")), &csv).expect("write csv");
        summary.push_str(&md);
        println!("{md}");
    }

    fs::write(args.out_dir.join("summary.md"), &summary).expect("write summary");
    eprintln!("wrote results to {}", args.out_dir.display());
}
