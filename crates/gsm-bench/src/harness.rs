//! Engine construction and the single-run driver.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use gsm_baselines::BaselineEngine;
use gsm_core::engine::ContinuousEngine;
use gsm_core::pipeline::{PipelineConfig, PipelinedEngine};
use gsm_core::shard::ShardedEngine;
use gsm_core::stats::LatencyRecorder;
use gsm_datagen::Workload;
use gsm_graphdb::GraphDbEngine;
use gsm_persist::{DirFactory, PersistConfig, PersistentEngine};
use gsm_tric::TricEngine;

/// The seven engines evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// TRIC (trie-based clustering).
    Tric,
    /// TRIC+ (TRIC with join-structure caching).
    TricPlus,
    /// INV (inverted index, full path joins).
    Inv,
    /// INV+ (INV with join-structure caching).
    InvPlus,
    /// INC (inverted index, update-seeded path joins).
    Inc,
    /// INC+ (INC with join-structure caching).
    IncPlus,
    /// The graph-database baseline (Neo4j substitute).
    GraphDb,
}

impl EngineKind {
    /// All engines, in the order the paper lists them.
    pub fn all() -> Vec<EngineKind> {
        vec![
            EngineKind::Tric,
            EngineKind::TricPlus,
            EngineKind::Inv,
            EngineKind::InvPlus,
            EngineKind::Inc,
            EngineKind::IncPlus,
            EngineKind::GraphDb,
        ]
    }

    /// The subset used for the paper's large-graph experiments
    /// (Fig. 13(a), Fig. 14(c)): TRIC, TRIC+ and the graph database.
    pub fn large_graph_subset() -> Vec<EngineKind> {
        vec![EngineKind::Tric, EngineKind::TricPlus, EngineKind::GraphDb]
    }

    /// Stable display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::Tric => "TRIC",
            EngineKind::TricPlus => "TRIC+",
            EngineKind::Inv => "INV",
            EngineKind::InvPlus => "INV+",
            EngineKind::Inc => "INC",
            EngineKind::IncPlus => "INC+",
            EngineKind::GraphDb => "GraphDB",
        }
    }

    /// Builds a fresh engine instance.
    pub fn build(&self) -> Box<dyn ContinuousEngine + Send> {
        match self {
            EngineKind::Tric => Box::new(TricEngine::tric()),
            EngineKind::TricPlus => Box::new(TricEngine::tric_plus()),
            EngineKind::Inv => Box::new(BaselineEngine::inv()),
            EngineKind::InvPlus => Box::new(BaselineEngine::inv_plus()),
            EngineKind::Inc => Box::new(BaselineEngine::inc()),
            EngineKind::IncPlus => Box::new(BaselineEngine::inc_plus()),
            EngineKind::GraphDb => Box::new(GraphDbEngine::new()),
        }
    }

    /// Builds a fresh engine partitioned across `shards` worker shards by
    /// root generic edge ([`gsm_core::shard::ShardedEngine`]). `shards <= 1`
    /// returns the plain engine — no wrapper, no routing, no overhead — so
    /// the default harness configuration measures exactly what it always
    /// measured.
    pub fn build_sharded(&self, shards: usize) -> Box<dyn ContinuousEngine + Send> {
        if shards <= 1 {
            return self.build();
        }
        let kind = *self;
        Box::new(ShardedEngine::new(shards, move || kind.build()))
    }

    /// Parses an engine name (case-insensitive, `+` accepted).
    pub fn parse(name: &str) -> Option<EngineKind> {
        let n = name.trim().to_ascii_uppercase();
        Some(match n.as_str() {
            "TRIC" => EngineKind::Tric,
            "TRIC+" => EngineKind::TricPlus,
            "INV" => EngineKind::Inv,
            "INV+" => EngineKind::InvPlus,
            "INC" => EngineKind::Inc,
            "INC+" => EngineKind::IncPlus,
            "GRAPHDB" | "NEO4J" => EngineKind::GraphDb,
            _ => return None,
        })
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Execution parameters of a single engine run: the stand-in for the paper's
/// 24-hour execution-time threshold, plus the answering batch size.
#[derive(Debug, Clone, Copy)]
pub struct RunLimits {
    /// Maximum wall-clock time spent answering the stream before the run is
    /// declared timed out.
    pub time_budget: Duration,
    /// Number of updates handed to [`ContinuousEngine::apply_batch`] per
    /// call. `1` reproduces the paper's one-update-at-a-time answering; `0`
    /// means a single batch spanning the whole stream. The time budget is
    /// checked **between** batch calls (a batch is all-or-nothing, since a
    /// partial batch has no well-defined report), so large batch sizes
    /// coarsen timeout enforcement — with `0` the budget is effectively
    /// advisory.
    pub batch_size: usize,
    /// Number of worker shards the engine is partitioned into by root
    /// generic edge. `1` (the default) runs the plain unsharded engine.
    pub shards: usize,
    /// When set, the stream is driven through the pipelined streaming
    /// executor ([`gsm_core::pipeline::PipelinedEngine`]) instead of plain
    /// `apply_batch` chunking: `batch_size` becomes the batcher's flush
    /// size and this duration its flush deadline, and the answer phase of
    /// each batch overlaps the staging of the next. `None` (the default)
    /// reproduces the historical chunked replay exactly.
    pub pipeline: Option<Duration>,
    /// Number of threads the pipelined executor may use: `>= 2` runs the
    /// answer phase on the dedicated answer thread
    /// ([`gsm_core::pipeline::PipelineConfig::answer_thread`]) so the
    /// covering-path join of batch *N* overlaps the staging of batch
    /// *N + 1* across cores. `1` (the default) answers inline on the
    /// calling thread. Ignored without `pipeline`.
    pub threads: usize,
    /// Number of answer workers of the threaded pipelined executor
    /// ([`gsm_core::pipeline::PipelineConfig::answer_workers`]): with more
    /// than one, detached answer tasks run concurrently and the reorder
    /// buffer restores arrival order. Ignored unless `pipeline` is set and
    /// `threads >= 2`. Mirrors `--answer-threads` / `GSM_ANSWER_THREADS`.
    pub answer_threads: usize,
    /// When set, the engine is wrapped in a
    /// [`gsm_persist::PersistentEngine`] over a [`DirFactory`] namespace, so
    /// the run pays the write-ahead-log and checkpoint costs the persistence
    /// layer adds. Mirrors `--persist-dir` / `--checkpoint-every`. The
    /// wrapper sits **outside** the (possibly sharded) engine and **inside**
    /// the pipelined front end, the crash-suite composition.
    pub persist: Option<PersistRun>,
}

/// Persistence settings of a run (see [`RunLimits::persist`]). The directory
/// is a `&'static str` so [`RunLimits`] stays `Copy`; the CLI leaks its one
/// path argument to obtain it.
#[derive(Debug, Clone, Copy)]
pub struct PersistRun {
    /// Directory holding the WAL stripes and checkpoint files.
    pub dir: &'static str,
    /// Auto-checkpoint cadence in batches (0 = never, WAL only).
    pub checkpoint_every: u64,
    /// Records per group-commit fsync (1 = every record).
    pub group_commit: usize,
}

impl Default for RunLimits {
    fn default() -> Self {
        RunLimits {
            time_budget: Duration::from_secs(20),
            batch_size: 1,
            shards: 1,
            pipeline: None,
            threads: 1,
            answer_threads: 1,
            persist: None,
        }
    }
}

impl RunLimits {
    /// A limits object with the given time budget in seconds and per-update
    /// (batch size 1) answering.
    pub fn seconds(secs: u64) -> Self {
        RunLimits {
            time_budget: Duration::from_secs(secs),
            ..Default::default()
        }
    }

    /// Sets the answering batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Sets the number of worker shards.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Routes the stream through the pipelined streaming executor with the
    /// given flush deadline (`batch_size` is the flush size).
    pub fn with_pipeline(mut self, flush: Duration) -> Self {
        self.pipeline = Some(flush);
        self
    }

    /// Sets the pipelined executor's thread count (`>= 2` moves the answer
    /// phase onto the answer workers).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the threaded pipelined executor's answer-worker count.
    pub fn with_answer_threads(mut self, answer_threads: usize) -> Self {
        self.answer_threads = answer_threads.max(1);
        self
    }

    /// Wraps the run's engine in the durable persistence layer: WAL stripes
    /// (one per shard) and checkpoint files under `dir`, auto-checkpointing
    /// every `checkpoint_every` batches (0 = never), fsyncing every
    /// `group_commit` records.
    pub fn with_persistence(
        mut self,
        dir: &'static str,
        checkpoint_every: u64,
        group_commit: usize,
    ) -> Self {
        self.persist = Some(PersistRun {
            dir,
            checkpoint_every,
            group_commit: group_commit.max(1),
        });
        self
    }
}

/// The outcome of one (engine, workload) run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Engine name.
    pub engine: &'static str,
    /// Workload name.
    pub workload: String,
    /// Answering batch size used for the run (1 = per-update answering).
    pub batch_size: usize,
    /// Number of worker shards used for the run (1 = unsharded).
    pub shards: usize,
    /// True if the stream was driven through the pipelined executor.
    pub pipelined: bool,
    /// Threads used by the pipelined executor (1 = inline answering).
    pub threads: usize,
    /// Answer workers used by the threaded pipelined executor (1 unless
    /// pipelined with `threads >= 2`).
    pub answer_threads: usize,
    /// Time spent registering the query set, total.
    pub indexing_total: Duration,
    /// Average query-insertion time in milliseconds.
    pub indexing_ms_per_query: f64,
    /// Average answering time per update in milliseconds (total answering
    /// time divided by updates, whatever the batch size).
    pub answer_ms_per_update: f64,
    /// 95th-percentile answering time per `apply_batch` call in
    /// milliseconds (per update when the batch size is 1).
    pub answer_p95_ms: f64,
    /// Total answering wall-clock time.
    pub answering_total: Duration,
    /// Updates processed before the budget expired.
    pub updates_processed: usize,
    /// Number of (query, update) notifications produced.
    pub notifications: u64,
    /// Total new embeddings reported.
    pub embeddings: u64,
    /// Engine heap footprint after the run, in bytes.
    pub heap_bytes: usize,
    /// True if the run hit the time budget before consuming the stream.
    pub timed_out: bool,
}

impl RunResult {
    /// The value the paper plots: mean answering time per update (ms), or
    /// `None` if the engine timed out (plotted as an asterisk in the paper).
    pub fn plotted_value(&self) -> Option<f64> {
        if self.timed_out {
            None
        } else {
            Some(self.answer_ms_per_update)
        }
    }
}

/// Builds the run's engine: the (possibly sharded) engine for `kind`,
/// wrapped in the durable persistence layer when `limits.persist` is set.
///
/// Every run gets its own fresh namespace under the configured directory —
/// re-opening an existing one would *recover* the previous run's state
/// instead of starting empty, which is the crash suite's job to exercise,
/// not the benchmark's.
fn build_run_engine(kind: EngineKind, limits: RunLimits) -> Box<dyn ContinuousEngine + Send> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

    let Some(persist) = limits.persist else {
        return kind.build_sharded(limits.shards);
    };
    let run_dir = PathBuf::from(persist.dir).join(format!(
        "{}-run{:04}",
        kind.name(),
        RUN_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let factory = DirFactory::new(run_dir).expect("create persistence directory");
    let config = PersistConfig::default()
        .with_group_commit(persist.group_commit)
        .with_checkpoint_every(persist.checkpoint_every)
        .with_wal_stripes(limits.shards.max(1));
    let shards = limits.shards;
    let (engine, _report) = PersistentEngine::open(Box::new(factory), config, move || {
        kind.build_sharded(shards)
    })
    .expect("open persistent engine");
    Box::new(engine)
}

/// Registers the workload's queries and replays its stream against a fresh
/// engine of the given kind, honouring the time budget. The stream is fed
/// through [`ContinuousEngine::apply_batch`] in chunks of
/// `limits.batch_size` updates — size 1 reproduces the paper's per-update
/// answering exactly (engines fall back to `apply_update` for singleton
/// batches).
pub fn run_engine(kind: EngineKind, workload: &Workload, limits: RunLimits) -> RunResult {
    if let Some(flush) = limits.pipeline {
        return run_engine_pipelined(kind, workload, limits, flush);
    }
    let mut engine = build_run_engine(kind, limits);

    // Query indexing phase.
    let index_start = Instant::now();
    for query in &workload.queries {
        engine
            .register_query(query)
            .expect("generated queries are valid");
    }
    let indexing_total = index_start.elapsed();

    // Query answering phase, one timed apply_batch call per chunk.
    let chunk = if limits.batch_size == 0 {
        workload.stream.len().max(1)
    } else {
        limits.batch_size
    };
    let mut latencies = LatencyRecorder::with_capacity(workload.stream.len() / chunk + 1);
    let mut notifications = 0u64;
    let mut embeddings = 0u64;
    let mut processed = 0usize;
    let mut timed_out = false;
    let answering_start = Instant::now();
    for batch in workload.stream.as_slice().chunks(chunk) {
        let t = Instant::now();
        let report = engine.apply_batch(batch);
        latencies.record(t.elapsed());
        notifications += report.len() as u64;
        embeddings += report.total_embeddings();
        processed += batch.len();
        if answering_start.elapsed() > limits.time_budget {
            timed_out = processed < workload.stream.len();
            break;
        }
    }
    let answering_total = answering_start.elapsed();

    RunResult {
        engine: kind.name(),
        workload: workload.name.clone(),
        batch_size: chunk,
        shards: limits.shards.max(1),
        pipelined: false,
        threads: 1,
        answer_threads: 1,
        indexing_total,
        indexing_ms_per_query: if workload.queries.is_empty() {
            0.0
        } else {
            indexing_total.as_secs_f64() * 1e3 / workload.queries.len() as f64
        },
        answer_ms_per_update: if processed == 0 {
            0.0
        } else {
            latencies.total().as_secs_f64() * 1e3 / processed as f64
        },
        answer_p95_ms: latencies.p95_ms(),
        answering_total,
        updates_processed: processed,
        notifications,
        embeddings,
        heap_bytes: engine.heap_bytes(),
        timed_out,
    }
}

/// The pipelined variant of [`run_engine`]: the stream is pushed update by
/// update into a [`PipelinedEngine`] whose batcher flushes at
/// `limits.batch_size` updates or after `flush`, whichever comes first, and
/// whose staged window overlaps each batch's answer phase with the next
/// batch's routing/propagation. Latencies are recorded per `push` call (the
/// streaming caller's view: most pushes just buffer, the flushing push pays
/// the stage + deferred answer), and the final drain is timed too.
fn run_engine_pipelined(
    kind: EngineKind,
    workload: &Workload,
    limits: RunLimits,
    flush: Duration,
) -> RunResult {
    let engine = build_run_engine(kind, limits);
    let chunk = if limits.batch_size == 0 {
        workload.stream.len().max(1)
    } else {
        limits.batch_size
    };
    let mut config = PipelineConfig::new(chunk, flush);
    if limits.threads >= 2 {
        config = config.threaded().with_answer_workers(limits.answer_threads);
    }
    let mut pipe = PipelinedEngine::new(engine, config);

    // Query indexing phase.
    let index_start = Instant::now();
    for query in &workload.queries {
        pipe.register_query(query)
            .expect("generated queries are valid");
    }
    let indexing_total = index_start.elapsed();

    // Streaming answering phase.
    let mut latencies = LatencyRecorder::with_capacity(workload.stream.len() + 1);
    let mut notifications = 0u64;
    let mut embeddings = 0u64;
    let mut processed = 0usize;
    let mut timed_out = false;
    let answering_start = Instant::now();
    for u in workload.stream.iter() {
        let t = Instant::now();
        let done = pipe.push(*u);
        latencies.record(t.elapsed());
        for b in &done {
            notifications += b.report.len() as u64;
            embeddings += b.report.total_embeddings();
        }
        processed += 1;
        if answering_start.elapsed() > limits.time_budget {
            timed_out = processed < workload.stream.len();
            break;
        }
    }
    // Drain the window so every pushed update is answered.
    let t = Instant::now();
    let done = pipe.drain();
    latencies.record(t.elapsed());
    for b in &done {
        notifications += b.report.len() as u64;
        embeddings += b.report.total_embeddings();
    }
    let answering_total = answering_start.elapsed();

    RunResult {
        engine: kind.name(),
        workload: workload.name.clone(),
        batch_size: chunk,
        shards: limits.shards.max(1),
        pipelined: true,
        threads: limits.threads.max(1),
        answer_threads: if limits.threads >= 2 {
            limits.answer_threads.max(1)
        } else {
            1
        },
        indexing_total,
        indexing_ms_per_query: if workload.queries.is_empty() {
            0.0
        } else {
            indexing_total.as_secs_f64() * 1e3 / workload.queries.len() as f64
        },
        answer_ms_per_update: if processed == 0 {
            0.0
        } else {
            latencies.total().as_secs_f64() * 1e3 / processed as f64
        },
        answer_p95_ms: latencies.p95_ms(),
        answering_total,
        updates_processed: processed,
        notifications,
        embeddings,
        heap_bytes: pipe.heap_bytes(),
        timed_out,
    }
}

/// Convenience: runs several engines on the same workload.
pub fn run_engines(kinds: &[EngineKind], workload: &Workload, limits: RunLimits) -> Vec<RunResult> {
    kinds
        .iter()
        .map(|&k| run_engine(k, workload, limits))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsm_datagen::{Dataset, WorkloadConfig};

    fn tiny_workload() -> Workload {
        Workload::generate(WorkloadConfig::new(Dataset::Snb, 500, 15).with_query_size(3))
    }

    #[test]
    fn engine_kinds_roundtrip_names() {
        for kind in EngineKind::all() {
            assert_eq!(EngineKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.build().name(), kind.name());
        }
        assert_eq!(EngineKind::parse("neo4j"), Some(EngineKind::GraphDb));
        assert_eq!(EngineKind::parse("bogus"), None);
    }

    #[test]
    fn run_engine_processes_the_whole_stream_within_budget() {
        let w = tiny_workload();
        let result = run_engine(EngineKind::TricPlus, &w, RunLimits::seconds(30));
        assert_eq!(result.updates_processed, w.num_updates());
        assert!(!result.timed_out);
        assert!(result.heap_bytes > 0);
        assert!(result.answer_ms_per_update >= 0.0);
        assert!(result.plotted_value().is_some());
    }

    #[test]
    fn all_engines_report_identical_notification_totals() {
        let w = tiny_workload();
        let results = run_engines(&EngineKind::all(), &w, RunLimits::seconds(60));
        let reference = results[0].notifications;
        for r in &results {
            assert!(!r.timed_out, "{} timed out on a tiny workload", r.engine);
            assert_eq!(
                r.notifications, reference,
                "{} disagrees on notification count",
                r.engine
            );
            assert_eq!(r.embeddings, results[0].embeddings, "{}", r.engine);
        }
    }

    #[test]
    fn batched_runs_process_the_same_stream() {
        let w = tiny_workload();
        let reference = run_engine(EngineKind::TricPlus, &w, RunLimits::seconds(30));
        for batch_size in [16usize, 0] {
            let r = run_engine(
                EngineKind::TricPlus,
                &w,
                RunLimits::seconds(30).with_batch_size(batch_size),
            );
            assert!(!r.timed_out);
            assert_eq!(r.updates_processed, w.num_updates());
            // Batch answering must report exactly the same embeddings; the
            // notification count is batch-granular and therefore ≤ per-update.
            assert_eq!(r.embeddings, reference.embeddings, "batch {batch_size}");
            assert!(r.notifications <= reference.notifications);
            assert_eq!(
                r.batch_size,
                if batch_size == 0 {
                    w.num_updates()
                } else {
                    batch_size
                }
            );
        }
    }

    #[test]
    fn sharded_runs_report_the_same_embeddings() {
        let w = tiny_workload();
        let reference = run_engine(EngineKind::TricPlus, &w, RunLimits::seconds(30));
        assert_eq!(reference.shards, 1);
        for shards in [2usize, 4] {
            let r = run_engine(
                EngineKind::TricPlus,
                &w,
                RunLimits::seconds(30).with_shards(shards),
            );
            assert!(!r.timed_out);
            assert_eq!(r.shards, shards);
            assert_eq!(r.updates_processed, w.num_updates());
            assert_eq!(r.embeddings, reference.embeddings, "shards {shards}");
            assert_eq!(r.notifications, reference.notifications, "shards {shards}");
        }
    }

    #[test]
    fn pipelined_runs_report_the_same_embeddings() {
        let w = tiny_workload();
        let reference = run_engine(EngineKind::TricPlus, &w, RunLimits::seconds(30));
        assert!(!reference.pipelined);
        for batch_size in [1usize, 16] {
            let r = run_engine(
                EngineKind::TricPlus,
                &w,
                RunLimits::seconds(30)
                    .with_batch_size(batch_size)
                    .with_pipeline(Duration::from_millis(5)),
            );
            assert!(r.pipelined);
            assert!(!r.timed_out);
            assert_eq!(r.updates_processed, w.num_updates());
            // The pipeline answers every update exactly once, so the
            // embedding total matches sequential execution; notification
            // granularity is per completed batch and therefore ≤ per-update.
            assert_eq!(r.embeddings, reference.embeddings, "batch {batch_size}");
            assert!(r.notifications <= reference.notifications);
        }
        // Pipeline × sharding composition through the harness entry point.
        let r = run_engine(
            EngineKind::TricPlus,
            &w,
            RunLimits::seconds(30)
                .with_batch_size(16)
                .with_shards(2)
                .with_pipeline(Duration::from_millis(5)),
        );
        assert!(r.pipelined && !r.timed_out);
        assert_eq!(r.embeddings, reference.embeddings);

        // Threaded answer stage (with and without sharding): same
        // embeddings, `threads` recorded in the result.
        for shards in [1usize, 2] {
            let r = run_engine(
                EngineKind::TricPlus,
                &w,
                RunLimits::seconds(30)
                    .with_batch_size(16)
                    .with_shards(shards)
                    .with_pipeline(Duration::from_millis(5))
                    .with_threads(2),
            );
            assert!(r.pipelined && !r.timed_out);
            assert_eq!(r.threads, 2);
            assert_eq!(r.embeddings, reference.embeddings, "shards {shards}");
        }

        // Multi-worker answer stage: same embeddings, worker count recorded
        // (and clamped to 1 when the pipeline is inline).
        let r = run_engine(
            EngineKind::TricPlus,
            &w,
            RunLimits::seconds(30)
                .with_batch_size(16)
                .with_pipeline(Duration::from_millis(5))
                .with_threads(2)
                .with_answer_threads(4),
        );
        assert!(r.pipelined && !r.timed_out);
        assert_eq!(r.answer_threads, 4);
        assert_eq!(r.embeddings, reference.embeddings);
        let r = run_engine(
            EngineKind::TricPlus,
            &w,
            RunLimits::seconds(30)
                .with_batch_size(16)
                .with_pipeline(Duration::from_millis(5))
                .with_answer_threads(4),
        );
        assert_eq!(r.answer_threads, 1, "inline pipeline has no answer pool");
        assert_eq!(r.embeddings, reference.embeddings);
    }

    #[test]
    fn zero_budget_times_out() {
        let w = tiny_workload();
        let result = run_engine(
            EngineKind::Inv,
            &w,
            RunLimits {
                time_budget: Duration::ZERO,
                batch_size: 1,
                shards: 1,
                pipeline: None,
                threads: 1,
                answer_threads: 1,
                persist: None,
            },
        );
        assert!(result.timed_out);
        assert!(result.updates_processed < w.num_updates());
        assert!(result.plotted_value().is_none());
    }
}
