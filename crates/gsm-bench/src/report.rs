//! Rendering of experiment results as markdown tables and CSV.

use crate::harness::RunResult;

/// One engine's series across the x-axis of a figure.
#[derive(Debug, Clone)]
pub struct Series {
    /// Engine name.
    pub engine: &'static str,
    /// One y-value per x-value; `None` marks a timed-out run (the asterisks
    /// in the paper's plots).
    pub values: Vec<Option<f64>>,
}

/// The reproduced data behind one figure or table of the paper.
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// Experiment identifier (e.g. `fig12a`).
    pub id: &'static str,
    /// Human-readable title.
    pub title: String,
    /// Label of the x-axis.
    pub x_label: &'static str,
    /// Label of the y-axis / cell values.
    pub y_label: &'static str,
    /// The x-axis values.
    pub x_values: Vec<f64>,
    /// One series per engine.
    pub series: Vec<Series>,
    /// Full per-run details (flattened), for CSV output and EXPERIMENTS.md.
    pub runs: Vec<RunResult>,
}

impl FigureResult {
    /// Renders the figure as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {} — {}\n\n", self.id, self.title));
        out.push_str(&format!(
            "{} vs. {} (timed-out runs shown as `*`).\n\n",
            self.y_label, self.x_label
        ));
        out.push_str(&format!("| {} |", self.x_label));
        for s in &self.series {
            out.push_str(&format!(" {} |", s.engine));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &self.series {
            out.push_str("---|");
        }
        out.push('\n');
        for (i, x) in self.x_values.iter().enumerate() {
            out.push_str(&format!("| {} |", format_number(*x)));
            for s in &self.series {
                match s.values.get(i).copied().flatten() {
                    Some(v) => out.push_str(&format!(" {v:.3} |")),
                    None => out.push_str(" * |"),
                }
            }
            out.push('\n');
        }
        out.push('\n');
        out
    }

    /// Renders the underlying runs as CSV (one row per engine × x-value).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "figure,x,engine,batch_size,shards,pipelined,threads,answer_threads,answer_ms_per_update,p95_ms,indexing_ms_per_query,updates_processed,notifications,embeddings,heap_bytes,timed_out\n",
        );
        let per_x = self.series.len();
        for (i, run) in self.runs.iter().enumerate() {
            let x = self
                .x_values
                .get(i.checked_div(per_x).unwrap_or(0))
                .copied()
                .unwrap_or(f64::NAN);
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{:.6},{:.6},{:.6},{},{},{},{},{}\n",
                self.id,
                x,
                run.engine,
                run.batch_size,
                run.shards,
                run.pipelined,
                run.threads,
                run.answer_threads,
                run.answer_ms_per_update,
                run.answer_p95_ms,
                run.indexing_ms_per_query,
                run.updates_processed,
                run.notifications,
                run.embeddings,
                run.heap_bytes,
                run.timed_out
            ));
        }
        out
    }

    /// The series of a given engine, if present.
    pub fn series_for(&self, engine: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.engine == engine)
    }
}

/// Formats an x value without trailing `.0` noise.
pub fn format_number(x: f64) -> String {
    if (x.fract()).abs() < 1e-9 {
        format!("{}", x as i64)
    } else {
        format!("{x:.2}")
    }
}

/// Builds a [`FigureResult`] from per-x-value runs: `runs_by_x[i]` holds the
/// results of every engine at `x_values[i]`, in the same engine order.
pub fn figure_from_runs(
    id: &'static str,
    title: String,
    x_label: &'static str,
    y_label: &'static str,
    x_values: Vec<f64>,
    runs_by_x: Vec<Vec<RunResult>>,
) -> FigureResult {
    let engines: Vec<&'static str> = runs_by_x
        .first()
        .map(|rs| rs.iter().map(|r| r.engine).collect())
        .unwrap_or_default();
    let mut series: Vec<Series> = engines
        .iter()
        .map(|&engine| Series {
            engine,
            values: Vec::with_capacity(x_values.len()),
        })
        .collect();
    for runs in &runs_by_x {
        for (slot, run) in series.iter_mut().zip(runs.iter()) {
            debug_assert_eq!(slot.engine, run.engine);
            slot.values.push(run.plotted_value());
        }
    }
    FigureResult {
        id,
        title,
        x_label,
        y_label,
        x_values,
        series,
        runs: runs_by_x.into_iter().flatten().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn fake_run(engine: &'static str, ms: f64, timed_out: bool) -> RunResult {
        RunResult {
            engine,
            workload: "w".into(),
            batch_size: 1,
            shards: 1,
            pipelined: false,
            threads: 1,
            answer_threads: 1,
            indexing_total: Duration::from_millis(5),
            indexing_ms_per_query: 0.05,
            answer_ms_per_update: ms,
            answer_p95_ms: ms * 2.0,
            answering_total: Duration::from_millis(100),
            updates_processed: 100,
            notifications: 10,
            embeddings: 20,
            heap_bytes: 1024,
            timed_out,
        }
    }

    fn fake_figure() -> FigureResult {
        figure_from_runs(
            "figX",
            "test figure".into(),
            "graph size",
            "ms/update",
            vec![1000.0, 2000.0],
            vec![
                vec![fake_run("TRIC", 0.1, false), fake_run("INV", 1.5, false)],
                vec![fake_run("TRIC", 0.2, false), fake_run("INV", 0.0, true)],
            ],
        )
    }

    #[test]
    fn markdown_contains_all_series_and_timeouts() {
        let md = fake_figure().to_markdown();
        assert!(md.contains("| graph size | TRIC | INV |"));
        assert!(md.contains("| 1000 | 0.100 | 1.500 |"));
        assert!(md.contains("| 2000 | 0.200 | * |"));
    }

    #[test]
    fn csv_has_one_row_per_run() {
        let csv = fake_figure().to_csv();
        assert_eq!(csv.lines().count(), 1 + 4);
        assert!(csv.lines().last().unwrap().contains("true"));
    }

    #[test]
    fn series_lookup() {
        let fig = fake_figure();
        assert!(fig.series_for("TRIC").is_some());
        assert!(fig.series_for("TRIC+").is_none());
        assert_eq!(fig.series_for("INV").unwrap().values[1], None);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_number(5.0), "5");
        assert_eq!(format_number(0.25), "0.25");
    }
}
