//! # gsm-bench
//!
//! The benchmark harness that regenerates the paper's evaluation
//! (Section 6). It has three layers:
//!
//! * [`harness`] — engine construction, a single-run driver that registers a
//!   workload's query set, replays its update stream, records per-update
//!   latency and memory, and honours a per-run time budget (the equivalent of
//!   the paper's 24-hour timeout);
//! * [`figures`] — one experiment definition per figure/table of the paper
//!   (Fig. 12(a)–(f), Fig. 13(a)–(c), Fig. 14(a)–(c)), each producing a
//!   [`report::FigureResult`] with one series per engine;
//! * [`report`] — markdown/CSV rendering of figure results;
//! * [`regression`] — the hot-path throughput gate CI runs against the
//!   committed `BENCH_PR*.json` baselines.
//!
//! The `experiments` binary (`cargo run -p gsm-bench --release --bin
//! experiments`) runs any subset of the figures at a configurable scale and
//! writes the rendered results; the Criterion benches under `benches/` time
//! the same experiments at a reduced, fixed scale so that `cargo bench`
//! completes quickly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod harness;
pub mod regression;
pub mod report;

pub use harness::{EngineKind, RunLimits, RunResult};
pub use report::{FigureResult, Series};
