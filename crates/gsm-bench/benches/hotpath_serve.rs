//! The serve tax: in-process pipeline throughput vs the same workload
//! through the `gsm-server` TCP/JSONL front end, plus subscriber
//! fan-out and single-update notification latency.
//!
//! One SNB-like workload is generated once and rendered to wire form
//! (pattern text and `(sign, label, src, tgt)` string edges — the
//! server interns its own symbols from the wire, so both modes do the
//! interning work). Every timed iteration runs against a freshly built
//! engine/server warmed with the stream prefix (`iter_batched`, setup
//! untimed):
//!
//! * `direct-64` — library mode: the measured suffix through a bare
//!   [`PipelinedEngine`] in `push_at` steps (batch 64) plus a final
//!   drain. The no-sockets baseline.
//! * `serve-64` — one client owning every query pushes the suffix in
//!   64-edge `push` requests, then `flush` and collects its
//!   notifications. Prices JSON framing + TCP round trips + the engine
//!   thread handoff.
//! * `serve-fanout-4` — the query set is split across 4 subscriber
//!   connections; a fifth connection pushes the suffix. After the
//!   flush, each subscriber drains its notifications (a `ping` reply
//!   fences them: the engine enqueues all notifications for a batch
//!   before any later reply). Prices per-connection notification
//!   routing and delivery.
//! * `serve-latency-1` — one edge, `push` + `flush` + notification
//!   receipt. End-to-end notification latency, reported as time per
//!   element.

use criterion::{
    black_box, criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput,
};
use gsm_core::{ContinuousEngine, PipelineConfig, PipelinedEngine, SymbolTable, Term, Update};
use gsm_datagen::{Dataset, Workload, WorkloadConfig};
use gsm_server::{Client, Server, ServerConfig};
use gsm_tric::TricEngine;
use std::time::Duration;

/// Updates pushed before the timed replay (untimed warm-up).
const WARM_UPDATES: usize = 800;

/// Updates replayed inside the timed region.
const MEASURED_UPDATES: usize = 400;

/// Edges per `push` request / per `push_at` batch.
const BATCH: usize = 64;

/// Continuous queries in the workload.
const QUERIES: usize = 20;

/// Subscriber connections in the fan-out series.
const SUBSCRIBERS: usize = 4;

/// The workload rendered to wire form.
struct WireWorkload {
    queries: Vec<String>,
    warm: Vec<(bool, String, String, String)>,
    measured: Vec<(bool, String, String, String)>,
}

fn render_term(term: &Term, symbols: &SymbolTable) -> String {
    match term {
        Term::Var(v) => format!("?x{v}"),
        Term::Const(s) => symbols.resolve(*s).to_string(),
    }
}

fn render_update(u: &Update, symbols: &SymbolTable) -> (bool, String, String, String) {
    (
        u.is_retraction(),
        symbols.resolve(u.label).to_string(),
        symbols.resolve(u.src).to_string(),
        symbols.resolve(u.tgt).to_string(),
    )
}

fn wire_workload() -> WireWorkload {
    let workload = Workload::generate(WorkloadConfig::new(
        Dataset::Snb,
        WARM_UPDATES + MEASURED_UPDATES,
        QUERIES,
    ));
    let symbols = &workload.symbols;
    let queries = workload
        .queries
        .iter()
        .map(|q| {
            q.edges()
                .iter()
                .map(|e| {
                    format!(
                        "{} -{}-> {}",
                        render_term(&e.src, symbols),
                        symbols.resolve(e.label),
                        render_term(&e.tgt, symbols),
                    )
                })
                .collect::<Vec<_>>()
                .join("; ")
        })
        .collect();
    let stream = workload.stream.as_slice();
    WireWorkload {
        queries,
        warm: stream[..WARM_UPDATES]
            .iter()
            .map(|u| render_update(u, symbols))
            .collect(),
        measured: stream[WARM_UPDATES..]
            .iter()
            .map(|u| render_update(u, symbols))
            .collect(),
    }
}

fn pipeline_config() -> PipelineConfig {
    PipelineConfig::new(BATCH, Duration::from_millis(5))
}

fn borrow(edges: &[(bool, String, String, String)]) -> Vec<(bool, &str, &str, &str)> {
    edges
        .iter()
        .map(|(r, l, s, t)| (*r, l.as_str(), s.as_str(), t.as_str()))
        .collect()
}

/// Library mode, warmed and with every query registered. Untimed.
fn warmed_pipeline(wire: &WireWorkload) -> (PipelinedEngine<TricEngine>, SymbolTable) {
    let mut symbols = SymbolTable::new();
    let mut pipe = PipelinedEngine::new(TricEngine::tric_plus(), pipeline_config());
    for text in &wire.queries {
        let pattern = gsm_core::QueryPattern::parse(text, &mut symbols).expect("valid pattern");
        pipe.queue_register(&pattern);
    }
    pipe.drain();
    let now = std::time::Instant::now();
    for (retract, label, src, tgt) in &wire.warm {
        let (l, s, t) = (
            symbols.intern(label),
            symbols.intern(src),
            symbols.intern(tgt),
        );
        let update = if *retract {
            Update::retraction(l, s, t)
        } else {
            Update::new(l, s, t)
        };
        pipe.push_at(update, now);
    }
    pipe.drain();
    (pipe, symbols)
}

fn server_config() -> ServerConfig {
    ServerConfig {
        pipeline: pipeline_config(),
        max_conns: SUBSCRIBERS + 2,
        outbound_queue: 8192,
        idle_poll: Duration::from_millis(2),
    }
}

/// Server mode with the query set spread over `owners` connections and
/// a dedicated pusher, warmed and drained. Untimed.
fn warmed_server(wire: &WireWorkload, owners: usize) -> (Server, Client, Vec<Client>) {
    let engine: Box<dyn ContinuousEngine + Send> = Box::new(TricEngine::tric_plus());
    let server = Server::bind("127.0.0.1:0", engine, server_config()).expect("bind");
    let mut subscribers: Vec<Client> = (0..owners)
        .map(|_| Client::connect(server.local_addr()).expect("connect subscriber"))
        .collect();
    let mut pusher = Client::connect(server.local_addr()).expect("connect pusher");
    for (i, text) in wire.queries.iter().enumerate() {
        subscribers[i % owners].register(text).expect("register");
    }
    pusher.flush().expect("boundary");
    for chunk in wire.warm.chunks(BATCH) {
        pusher.push(&borrow(chunk)).expect("warm push");
    }
    pusher.flush().expect("warm flush");
    // Drain warm-up notifications so the timed region starts clean.
    for sub in &mut subscribers {
        sub.ping().expect("fence");
        sub.take_notifications();
    }
    pusher.take_notifications();
    (server, pusher, subscribers)
}

fn bench(c: &mut Criterion) {
    let wire = wire_workload();

    let mut group = c.benchmark_group("hotpath_serve");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(400));
    group.throughput(Throughput::Elements(MEASURED_UPDATES as u64));

    group.bench_with_input(BenchmarkId::new("direct", BATCH), &wire, |b, wire| {
        b.iter_batched(
            || warmed_pipeline(wire),
            |(mut pipe, mut symbols)| {
                let now = std::time::Instant::now();
                let mut notified = 0u64;
                for (retract, label, src, tgt) in &wire.measured {
                    let (l, s, t) = (
                        symbols.intern(label),
                        symbols.intern(src),
                        symbols.intern(tgt),
                    );
                    let update = if *retract {
                        Update::retraction(l, s, t)
                    } else {
                        Update::new(l, s, t)
                    };
                    for batch in pipe.push_at(update, now) {
                        notified += batch.report.matches.len() as u64;
                    }
                }
                for batch in pipe.drain() {
                    notified += batch.report.matches.len() as u64;
                }
                black_box(notified);
                (pipe, symbols)
            },
            BatchSize::LargeInput,
        );
    });

    group.bench_with_input(BenchmarkId::new("serve", BATCH), &wire, |b, wire| {
        b.iter_batched(
            || warmed_server(wire, 1),
            |(server, mut pusher, mut subscribers)| {
                for chunk in wire.measured.chunks(BATCH) {
                    pusher.push(&borrow(chunk)).expect("push");
                }
                pusher.flush().expect("flush");
                let sub = &mut subscribers[0];
                sub.ping().expect("fence");
                black_box(sub.take_notifications().len());
                (server, pusher, subscribers)
            },
            BatchSize::LargeInput,
        );
    });

    group.bench_with_input(
        BenchmarkId::new(format!("serve-fanout-{SUBSCRIBERS}"), BATCH),
        &wire,
        |b, wire| {
            b.iter_batched(
                || warmed_server(wire, SUBSCRIBERS),
                |(server, mut pusher, mut subscribers)| {
                    for chunk in wire.measured.chunks(BATCH) {
                        pusher.push(&borrow(chunk)).expect("push");
                    }
                    pusher.flush().expect("flush");
                    let mut delivered = 0usize;
                    for sub in &mut subscribers {
                        sub.ping().expect("fence");
                        delivered += sub.take_notifications().len();
                    }
                    black_box(delivered);
                    (server, pusher, subscribers)
                },
                BatchSize::LargeInput,
            );
        },
    );

    group.finish();

    // Single-update latency: its own group so the element count is 1.
    let mut latency = c.benchmark_group("hotpath_serve_latency");
    latency.sample_size(10);
    latency.warm_up_time(Duration::from_millis(300));
    latency.measurement_time(Duration::from_millis(400));
    latency.throughput(Throughput::Elements(1));
    latency.bench_with_input(BenchmarkId::new("serve-rtt", 1), &wire, |b, wire| {
        b.iter_batched(
            || warmed_server(wire, 1),
            |(server, mut pusher, mut subscribers)| {
                // One edge through push + flush + notification drain:
                // the full request → boundary → notify round trip.
                let edge = &wire.measured[0];
                pusher
                    .push(&[(edge.0, edge.1.as_str(), edge.2.as_str(), edge.3.as_str())])
                    .expect("push");
                pusher.flush().expect("flush");
                let sub = &mut subscribers[0];
                sub.ping().expect("fence");
                black_box(sub.take_notifications().len());
                (server, pusher, subscribers)
            },
            BatchSize::LargeInput,
        );
    });
    latency.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
