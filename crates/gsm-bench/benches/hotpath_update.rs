//! Hot-path update throughput: TRIC vs TRIC+ in updates/sec.
//!
//! This is the bench guarding the zero-allocation join hot path: an SNB-like
//! workload is generated once, and every timed iteration replays the same
//! 400-update measured suffix on a **freshly built and warmed engine**
//! (`iter_batched`: the build/warm setup is untimed). Each measurement
//! therefore drives the full insert/delta-propagation pipeline on identical
//! state — never the duplicate-elimination early-return a repeated replay on
//! a persistent engine would hit, and never a drifting stream position.
//! Throughput is reported in updates/sec so BENCH_PR1.json can track the
//! before/after speedup of the relation/join refactor.

mod common;

use criterion::{
    black_box, criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput,
};
use gsm_bench::harness::EngineKind;
use gsm_core::engine::ContinuousEngine;
use gsm_datagen::{Dataset, Workload, WorkloadConfig};
use std::time::Duration;

/// Updates the engine is warmed with before the timed replay.
const WARM_UPDATES: usize = 3_600;

/// Updates replayed inside the timed region.
const MEASURED_UPDATES: usize = 400;

fn warmed_engine(kind: EngineKind, workload: &Workload) -> Box<dyn ContinuousEngine> {
    let mut engine = kind.build();
    for q in &workload.queries {
        engine.register_query(q).expect("valid query");
    }
    for u in &workload.stream.as_slice()[..WARM_UPDATES] {
        engine.apply_update(*u);
    }
    engine
}

fn bench(c: &mut Criterion) {
    let total = WARM_UPDATES + MEASURED_UPDATES;
    let workload = Workload::generate(WorkloadConfig::new(Dataset::Snb, total, 60));

    let mut group = c.benchmark_group("hotpath_update");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(400));
    group.throughput(Throughput::Elements(MEASURED_UPDATES as u64));

    for kind in [EngineKind::Tric, EngineKind::TricPlus] {
        group.bench_with_input(
            BenchmarkId::new(kind.name(), MEASURED_UPDATES),
            &kind,
            |b, &kind| {
                b.iter_batched(
                    || warmed_engine(kind, &workload),
                    |mut engine| {
                        for u in &workload.stream.as_slice()[WARM_UPDATES..] {
                            black_box(engine.apply_update(*u));
                        }
                        engine
                    },
                    BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
