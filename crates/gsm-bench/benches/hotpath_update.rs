//! Hot-path update throughput: TRIC vs TRIC+ in updates/sec.
//!
//! This is the bench guarding the zero-allocation join hot path: an SNB-like
//! workload is generated once, and every timed iteration replays the same
//! 400-update measured suffix on a **freshly built and warmed engine**
//! (`iter_batched`: the build/warm setup is untimed). Each measurement
//! therefore drives the full insert/delta-propagation pipeline on identical
//! state — never the duplicate-elimination early-return a repeated replay on
//! a persistent engine would hit, and never a drifting stream position.
//! Throughput is reported in updates/sec so BENCH_PR1.json can track the
//! before/after speedup of the relation/join refactor.
//!
//! **Regression gate:** when `HOTPATH_GATE_BASELINE` points at a
//! `BENCH_PR*.json` file, the measured updates/s of each engine is compared
//! against that file's `after` section and the process exits non-zero if any
//! engine regressed by more than `HOTPATH_GATE_TOLERANCE` (default 0.20).
//! CI runs the bench in this mode on every push.

mod common;

use criterion::{black_box, BatchSize, BenchmarkId, Criterion, Throughput};
use gsm_bench::harness::EngineKind;
use gsm_bench::regression::{gate_engine, GateOutcome, DEFAULT_TOLERANCE};
use gsm_core::engine::ContinuousEngine;
use gsm_datagen::{Dataset, Workload, WorkloadConfig};
use std::time::Duration;

/// Updates the engine is warmed with before the timed replay.
const WARM_UPDATES: usize = 3_600;

/// Updates replayed inside the timed region.
const MEASURED_UPDATES: usize = 400;

fn warmed_engine(kind: EngineKind, workload: &Workload) -> Box<dyn ContinuousEngine> {
    let mut engine = kind.build();
    for q in &workload.queries {
        engine.register_query(q).expect("valid query");
    }
    for u in &workload.stream.as_slice()[..WARM_UPDATES] {
        engine.apply_update(*u);
    }
    engine
}

fn bench(c: &mut Criterion) {
    let total = WARM_UPDATES + MEASURED_UPDATES;
    let workload = Workload::generate(WorkloadConfig::new(Dataset::Snb, total, 60));

    let mut group = c.benchmark_group("hotpath_update");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(400));
    group.throughput(Throughput::Elements(MEASURED_UPDATES as u64));

    for kind in [EngineKind::Tric, EngineKind::TricPlus] {
        group.bench_with_input(
            BenchmarkId::new(kind.name(), MEASURED_UPDATES),
            &kind,
            |b, &kind| {
                b.iter_batched(
                    || warmed_engine(kind, &workload),
                    |mut engine| {
                        for u in &workload.stream.as_slice()[WARM_UPDATES..] {
                            black_box(engine.apply_update(*u));
                        }
                        engine
                    },
                    BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

/// Custom harness entry point (instead of `criterion_main!`) so the gate can
/// inspect the measured results after the benches ran.
fn main() {
    let mut criterion = Criterion::default();
    bench(&mut criterion);

    let Ok(baseline_path) = std::env::var("HOTPATH_GATE_BASELINE") else {
        return;
    };
    let tolerance = std::env::var("HOTPATH_GATE_TOLERANCE")
        .ok()
        .and_then(|t| t.parse().ok())
        .unwrap_or(DEFAULT_TOLERANCE);
    // Cargo runs bench binaries with the package directory as CWD; resolve
    // relative baseline paths against the workspace root as a fallback so
    // `HOTPATH_GATE_BASELINE=BENCH_PR1.json` works from either location.
    let baseline = std::fs::read_to_string(&baseline_path)
        .or_else(|_| {
            let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(&baseline_path);
            std::fs::read_to_string(root)
        })
        .unwrap_or_else(|e| panic!("cannot read gate baseline {baseline_path}: {e}"));

    let mut failed = false;
    for result in criterion.results() {
        // Ids look like `hotpath_update/TRIC+/400`: the engine is segment 1.
        let Some(engine) = result.id.split('/').nth(1) else {
            continue;
        };
        let Some(rate) = result.per_second() else {
            continue;
        };
        let outcome = gate_engine(&baseline, engine, rate, tolerance);
        match &outcome {
            GateOutcome::Pass(msg) => println!("gate PASS  {msg}"),
            GateOutcome::Fail(msg) => {
                eprintln!("gate FAIL  {msg}");
                failed = true;
            }
            GateOutcome::MissingBaseline(msg) => println!("gate SKIP  {msg}"),
        }
    }
    if failed {
        eprintln!(
            "hotpath_update regressed more than {:.0}% against {baseline_path}",
            tolerance * 100.0
        );
        std::process::exit(1);
    }
}
