//! Fig. 13(a): SNB very large graphs, TRIC/TRIC+/GraphDB.
//!
//! Criterion micro-benchmark counterpart of the `experiments` binary's
//! `fig13a` series (see gsm_bench::figures::fig13a), at a reduced fixed scale.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use gsm_bench::harness::EngineKind;
use gsm_datagen::{Dataset, Workload, WorkloadConfig};

fn bench(c: &mut Criterion) {
    let w = Workload::generate(WorkloadConfig::new(Dataset::Snb, 3000, 40));
    common::bench_answering(c, "fig13a/E3000", &w, &EngineKind::large_graph_subset());
}

criterion_group!(benches, bench);
criterion_main!(benches);
