//! Fig. 12(b): SNB answering time vs selectivity sigma.
//!
//! Criterion micro-benchmark counterpart of the `experiments` binary's
//! `fig12b` series (see gsm_bench::figures::fig12b), at a reduced fixed scale.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use gsm_bench::harness::EngineKind;
use gsm_datagen::{Dataset, Workload, WorkloadConfig};

fn bench(c: &mut Criterion) {
    {
        let sigma = 0.30f64;
        let w =
            Workload::generate(WorkloadConfig::new(Dataset::Snb, 1000, 40).with_selectivity(sigma));
        let label = format!("fig12b/s{}", (sigma * 100.0) as u32);
        common::bench_answering(c, &label, &w, &EngineKind::all());
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
