//! Fig. 13(c): memory requirements per engine and dataset.
//!
//! Criterion micro-benchmark counterpart of the `experiments` binary's
//! `tab13c` series (see gsm_bench::figures::tab13c), at a reduced fixed scale.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use gsm_bench::harness::EngineKind;
use gsm_datagen::{Dataset, Workload, WorkloadConfig};

fn bench(c: &mut Criterion) {
    use criterion::black_box;
    for (dataset, name) in [
        (Dataset::Snb, "SNB"),
        (Dataset::Taxi, "TAXI"),
        (Dataset::BioGrid, "BioGRID"),
    ] {
        let mut cfg = WorkloadConfig::new(dataset, 600, 25);
        if dataset == Dataset::BioGrid {
            cfg = cfg.with_query_size(3);
        }
        let w = Workload::generate(cfg);
        let mut group = common::configure(c, &format!("tab13c/{name}"));
        for kind in EngineKind::all() {
            group.bench_function(kind.name(), |b| {
                let mut engine = kind.build();
                for q in &w.queries {
                    engine.register_query(q).expect("valid query");
                }
                for u in w.stream.iter() {
                    engine.apply_update(*u);
                }
                b.iter(|| black_box(engine.heap_bytes()));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
