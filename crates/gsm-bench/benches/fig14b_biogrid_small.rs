//! Fig. 14(b): BioGRID stress test on small graphs, all engines.
//!
//! Criterion micro-benchmark counterpart of the `experiments` binary's
//! `fig14b` series (see gsm_bench::figures::fig14b), at a reduced fixed scale.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use gsm_bench::harness::EngineKind;
use gsm_datagen::{Dataset, Workload, WorkloadConfig};

fn bench(c: &mut Criterion) {
    {
        let edges = 500usize;
        let w =
            Workload::generate(WorkloadConfig::new(Dataset::BioGrid, edges, 30).with_query_size(3));
        common::bench_answering(c, &format!("fig14b/E{edges}"), &w, &EngineKind::all());
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
