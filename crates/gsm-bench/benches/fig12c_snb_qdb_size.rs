//! Fig. 12(c): SNB answering time vs query database size.
//!
//! Criterion micro-benchmark counterpart of the `experiments` binary's
//! `fig12c` series (see gsm_bench::figures::fig12c), at a reduced fixed scale.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use gsm_bench::harness::EngineKind;
use gsm_datagen::{Dataset, Workload, WorkloadConfig};

fn bench(c: &mut Criterion) {
    {
        let qdb = 60usize;
        let w = Workload::generate(WorkloadConfig::new(Dataset::Snb, 1000, qdb));
        common::bench_answering(c, &format!("fig12c/Q{qdb}"), &w, &EngineKind::all());
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
