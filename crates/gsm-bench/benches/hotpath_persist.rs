//! Persistence overhead: WAL-on vs WAL-off batch throughput.
//!
//! Same measurement discipline as `hotpath_batch`: one SNB-like workload is
//! generated once, and every timed iteration replays the same 400-update
//! measured suffix in `apply_batch` chunks of 64 on a freshly built engine
//! warmed with the 3600-update prefix (`iter_batched`, setup untimed). The
//! series differ only in the persistence wrapper around the engine:
//!
//! * `<engine>-off` — the bare engine, no persistence. This is the
//!   configuration the `hotpath_update` regression gate keeps guarding; the
//!   other series price the durability tax against it.
//! * `<engine>-wal-mem` — [`PersistentEngine`] over a [`MemFactory`]: every
//!   batch is encoded, CRC-stamped and framed into an in-memory WAL, but no
//!   file I/O happens. Isolates the codec + framing overhead.
//! * `<engine>-wal-gc1` — [`PersistentEngine`] over a [`DirFactory`] in a
//!   fresh temp directory, `group_commit = 1`: every batch record is
//!   appended to the WAL file **and fsynced** before `apply_batch` returns.
//!   The full durability guarantee, dominated by fsync latency.
//! * `<engine>-wal-gc8` — same, `group_commit = 8`: fsync every 8th batch
//!   record; acked-but-unsynced batches can be lost on a crash (recovery
//!   reports the resume point). Prices the group-commit amortization.
//!
//! Results land in BENCH_PR9.json. No checkpoints fire inside the timed
//! region (`checkpoint_every = 0`): checkpoint cost is a background/cadence
//! concern, while this group isolates the per-batch hot-path tax.

mod common;

use criterion::{
    black_box, criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput,
};
use gsm_bench::harness::EngineKind;
use gsm_core::engine::ContinuousEngine;
use gsm_datagen::{Dataset, Workload, WorkloadConfig};
use gsm_persist::{DirFactory, MemFactory, PersistConfig, PersistentEngine, StorageFactory};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Updates the engine is warmed with before the timed replay.
const WARM_UPDATES: usize = 3_600;

/// Updates replayed inside the timed region.
const MEASURED_UPDATES: usize = 400;

/// Updates per `apply_batch` call (matches the `hotpath_batch` sweep point).
const BATCH: usize = 64;

/// The persistence mode of one benchmark series.
#[derive(Clone, Copy)]
enum Mode {
    Off,
    WalMem,
    WalDir { group_commit: usize },
}

impl Mode {
    fn series(&self, kind: EngineKind) -> String {
        match self {
            Mode::Off => format!("{}-off", kind.name()),
            Mode::WalMem => format!("{}-wal-mem", kind.name()),
            Mode::WalDir { group_commit } => format!("{}-wal-gc{group_commit}", kind.name()),
        }
    }
}

fn bench_base() -> PathBuf {
    std::env::temp_dir().join(format!("gsm-hotpath-persist-{}", std::process::id()))
}

/// Builds a fresh (optionally persistent) engine and warms it with the
/// query set and the stream prefix. Untimed.
fn warmed_engine(
    kind: EngineKind,
    mode: Mode,
    workload: &Workload,
) -> Box<dyn ContinuousEngine + Send> {
    static NAMESPACE: AtomicU64 = AtomicU64::new(0);
    let mut engine: Box<dyn ContinuousEngine + Send> = match mode {
        Mode::Off => kind.build(),
        Mode::WalMem | Mode::WalDir { .. } => {
            let (factory, group_commit): (Box<dyn StorageFactory>, usize) = match mode {
                Mode::WalMem => (Box::new(MemFactory::new()), 1),
                Mode::WalDir { group_commit } => {
                    let dir = bench_base().join(format!(
                        "ns{:05}",
                        NAMESPACE.fetch_add(1, Ordering::Relaxed)
                    ));
                    (
                        Box::new(DirFactory::new(dir).expect("create bench WAL dir")),
                        group_commit,
                    )
                }
                Mode::Off => unreachable!(),
            };
            let config = PersistConfig::default().with_group_commit(group_commit);
            let (engine, _report) = PersistentEngine::open(factory, config, || kind.build())
                .expect("open persistent engine");
            Box::new(engine)
        }
    };
    for q in &workload.queries {
        engine.register_query(q).expect("valid query");
    }
    for batch in workload.stream.as_slice()[..WARM_UPDATES].chunks(BATCH) {
        engine.apply_batch(batch);
    }
    engine
}

fn bench(c: &mut Criterion) {
    let total = WARM_UPDATES + MEASURED_UPDATES;
    let workload = Workload::generate(WorkloadConfig::new(Dataset::Snb, total, 60));

    let mut group = c.benchmark_group("hotpath_persist");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(400));
    group.throughput(Throughput::Elements(MEASURED_UPDATES as u64));

    let modes = [
        Mode::Off,
        Mode::WalMem,
        Mode::WalDir { group_commit: 1 },
        Mode::WalDir { group_commit: 8 },
    ];
    for kind in [EngineKind::Tric, EngineKind::TricPlus] {
        for mode in modes {
            group.bench_with_input(
                BenchmarkId::new(mode.series(kind), BATCH),
                &mode,
                |b, &mode| {
                    b.iter_batched(
                        || warmed_engine(kind, mode, &workload),
                        |mut engine| {
                            let suffix = &workload.stream.as_slice()[WARM_UPDATES..];
                            for batch in suffix.chunks(BATCH) {
                                black_box(engine.apply_batch(batch));
                            }
                            engine
                        },
                        BatchSize::LargeInput,
                    );
                },
            );
        }
    }
    group.finish();
    let _ = std::fs::remove_dir_all(bench_base());
}

criterion_group!(benches, bench);
criterion_main!(benches);
