//! Sharded answering throughput: TRIC and TRIC+ updates/sec as a function
//! of the worker shard count.
//!
//! Same measurement discipline as `hotpath_batch`: one SNB-like workload is
//! generated once, and every timed iteration replays the same 400-update
//! measured suffix on a freshly built engine warmed with the 3600-update
//! prefix (`iter_batched`, setup untimed), driving `apply_batch` in chunks
//! of 64 (the PR 2 sweet spot, where routed batches are real work slices).
//! Shard count 1 is the plain engine behind `EngineKind::build_sharded`'s
//! zero-overhead path and therefore reproduces the `hotpath_batch` numbers;
//! the larger counts measure what root-generic-edge partitioning costs (or
//! buys) on this machine — on the 1-core CI box the parallel absorption is
//! pure overhead, so these numbers are the *floor* of the design, recorded
//! in BENCH_PR3.json.

mod common;

use criterion::{
    black_box, criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput,
};
use gsm_bench::harness::EngineKind;
use gsm_core::engine::ContinuousEngine;
use gsm_datagen::{Dataset, Workload, WorkloadConfig};
use std::time::Duration;

/// Updates the engine is warmed with before the timed replay.
const WARM_UPDATES: usize = 3_600;

/// Updates replayed inside the timed region.
const MEASURED_UPDATES: usize = 400;

/// Answering batch size for the sharded replay.
const BATCH_SIZE: usize = 64;

/// Swept worker shard counts.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn warmed_engine(
    kind: EngineKind,
    shards: usize,
    workload: &Workload,
) -> Box<dyn ContinuousEngine + Send> {
    let mut engine = kind.build_sharded(shards);
    for q in &workload.queries {
        engine.register_query(q).expect("valid query");
    }
    for batch in workload.stream.as_slice()[..WARM_UPDATES].chunks(BATCH_SIZE) {
        engine.apply_batch(batch);
    }
    engine
}

fn bench(c: &mut Criterion) {
    let total = WARM_UPDATES + MEASURED_UPDATES;
    let workload = Workload::generate(WorkloadConfig::new(Dataset::Snb, total, 60));

    let mut group = c.benchmark_group("hotpath_shards");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(400));
    group.throughput(Throughput::Elements(MEASURED_UPDATES as u64));

    for kind in [EngineKind::Tric, EngineKind::TricPlus] {
        for shards in SHARD_COUNTS {
            group.bench_with_input(
                BenchmarkId::new(kind.name(), shards),
                &shards,
                |b, &shards| {
                    b.iter_batched(
                        || warmed_engine(kind, shards, &workload),
                        |mut engine| {
                            let suffix = &workload.stream.as_slice()[WARM_UPDATES..];
                            for batch in suffix.chunks(BATCH_SIZE) {
                                black_box(engine.apply_batch(batch));
                            }
                            engine
                        },
                        BatchSize::LargeInput,
                    );
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
