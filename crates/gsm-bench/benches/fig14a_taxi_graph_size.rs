//! Fig. 14(a): TAXI answering time vs graph size, all engines.
//!
//! Criterion micro-benchmark counterpart of the `experiments` binary's
//! `fig14a` series (see gsm_bench::figures::fig14a), at a reduced fixed scale.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use gsm_bench::harness::EngineKind;
use gsm_datagen::{Dataset, Workload, WorkloadConfig};

fn bench(c: &mut Criterion) {
    {
        let edges = 1000usize;
        let w = Workload::generate(WorkloadConfig::new(Dataset::Taxi, edges, 40));
        common::bench_answering(c, &format!("fig14a/E{edges}"), &w, &EngineKind::all());
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
