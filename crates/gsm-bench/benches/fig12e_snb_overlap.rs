//! Fig. 12(e): SNB answering time vs query overlap o.
//!
//! Criterion micro-benchmark counterpart of the `experiments` binary's
//! `fig12e` series (see gsm_bench::figures::fig12e), at a reduced fixed scale.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use gsm_bench::harness::EngineKind;
use gsm_datagen::{Dataset, Workload, WorkloadConfig};

fn bench(c: &mut Criterion) {
    {
        let o = 0.65f64;
        let w = Workload::generate(WorkloadConfig::new(Dataset::Snb, 1000, 40).with_overlap(o));
        let label = format!("fig12e/o{}", (o * 100.0) as u32);
        common::bench_answering(c, &label, &w, &EngineKind::all());
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
