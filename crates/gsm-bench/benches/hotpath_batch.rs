//! Batched answering throughput: TRIC and TRIC+ updates/sec as a function of
//! the answering batch size.
//!
//! Same measurement discipline as `hotpath_update`: one SNB-like workload is
//! generated once, and every timed iteration replays the same 400-update
//! measured suffix on a freshly built engine warmed with the 3600-update
//! prefix (`iter_batched`, setup untimed) — but the suffix is driven through
//! `apply_batch` in chunks of the swept batch size instead of one
//! `apply_update` per edge. Batch size 1 goes through the engines' singleton
//! fast path and therefore reproduces the `hotpath_update` numbers, making
//! the sweep directly comparable with BENCH_PR1.json; the larger sizes
//! measure how much routing, join-build and covering-path-join amortization
//! buys. Results land in BENCH_PR2.json.

mod common;

use criterion::{
    black_box, criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput,
};
use gsm_bench::harness::EngineKind;
use gsm_core::engine::ContinuousEngine;
use gsm_datagen::{Dataset, Workload, WorkloadConfig};
use std::time::Duration;

/// Updates the engine is warmed with before the timed replay.
const WARM_UPDATES: usize = 3_600;

/// Updates replayed inside the timed region.
const MEASURED_UPDATES: usize = 400;

/// Swept answering batch sizes.
const BATCH_SIZES: [usize; 4] = [1, 8, 64, 512];

fn warmed_engine(kind: EngineKind, workload: &Workload) -> Box<dyn ContinuousEngine> {
    let mut engine = kind.build();
    for q in &workload.queries {
        engine.register_query(q).expect("valid query");
    }
    for u in &workload.stream.as_slice()[..WARM_UPDATES] {
        engine.apply_update(*u);
    }
    engine
}

fn bench(c: &mut Criterion) {
    let total = WARM_UPDATES + MEASURED_UPDATES;
    let workload = Workload::generate(WorkloadConfig::new(Dataset::Snb, total, 60));

    let mut group = c.benchmark_group("hotpath_batch");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(400));
    group.throughput(Throughput::Elements(MEASURED_UPDATES as u64));

    for kind in [EngineKind::Tric, EngineKind::TricPlus] {
        for batch_size in BATCH_SIZES {
            group.bench_with_input(
                BenchmarkId::new(kind.name(), batch_size),
                &batch_size,
                |b, &batch_size| {
                    b.iter_batched(
                        || warmed_engine(kind, &workload),
                        |mut engine| {
                            let suffix = &workload.stream.as_slice()[WARM_UPDATES..];
                            for batch in suffix.chunks(batch_size) {
                                black_box(engine.apply_batch(batch));
                            }
                            engine
                        },
                        BatchSize::LargeInput,
                    );
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
