//! Pipelined streaming throughput: TRIC and TRIC+ updates/sec through the
//! latency-budgeted [`PipelinedEngine`] front end.
//!
//! Same measurement discipline as `hotpath_batch`: one SNB-like workload is
//! generated once, and every timed iteration replays the same 400-update
//! measured suffix on a freshly built engine warmed with the 3600-update
//! prefix (`iter_batched`, setup untimed) — but the suffix is *streamed*
//! update by update through `PipelinedEngine::push` with a real-clock flush
//! deadline, so the timed region covers the batcher, the staged window
//! (answer of batch *N* after the routing/propagation of batch *N + 1*) and
//! the final drain. A flush size of 64 makes the run directly comparable
//! with the `hotpath_batch` batch-64 numbers in BENCH_PR2.json: the
//! acceptance bar is that the pipeline sustains at least that throughput
//! while bounding how long any update can sit buffered (the 5 ms deadline).
//! Results land in BENCH_PR4.json.
//!
//! The `<engine>-threaded-w{N}` series run the same sweep with the answer
//! phase on the answer-stage worker pool (`PipelineConfig::threaded` +
//! `with_answer_workers`), N swept over {1, 2, 4}: each batch is staged on
//! the bench thread, detached — publishing Arc-shared read-mostly state
//! into the task — and answered on a pool worker while the next batch is
//! routed, with the reorder buffer re-sequencing completions. On a 1-core
//! box this records the **overhead floor** of the cross-thread handoff
//! (publication, channel hops, reordering, absorb), the same role
//! BENCH_PR3.json played for sharding; multi-core hosts read it as the
//! speedup baseline. Results land in BENCH_PR6.json (w1 is directly
//! comparable to BENCH_PR5.json's single-worker `-threaded` series).
//!
//! The `hotpath_pipeline_deletions` group streams a deletion-heavy SNB
//! variant (35% retractions of live edges) through the same front end, with
//! every `-staged` series paired against an `-eager` series that flips
//! [`PipelineConfig::with_eager_retractions`] — the PR 7 barrier path that
//! drained the staged window and answered every retraction flush inline.
//! The pairing is the un-barrier acceptance measurement: staged retraction
//! tokens must hold (threaded) throughput above the eager baseline on the
//! identical stream. Results land in BENCH_PR8.json.

mod common;

use criterion::{
    black_box, criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput,
};
use gsm_bench::harness::EngineKind;
use gsm_core::engine::ContinuousEngine;
use gsm_core::pipeline::{PipelineConfig, PipelinedEngine};
use gsm_datagen::{Dataset, Workload, WorkloadConfig};
use std::time::Duration;

/// Updates the engine is warmed with before the timed replay.
const WARM_UPDATES: usize = 3_600;

/// Updates replayed inside the timed region.
const MEASURED_UPDATES: usize = 400;

/// Swept batcher flush sizes (64 matches the `hotpath_batch` sweep point).
const FLUSH_SIZES: [usize; 3] = [8, 64, 512];

/// The batcher's flush deadline: no update waits longer than this buffered.
const FLUSH_DEADLINE: Duration = Duration::from_millis(5);

fn warmed_engine(kind: EngineKind, workload: &Workload) -> Box<dyn ContinuousEngine + Send> {
    let mut engine = kind.build();
    for q in &workload.queries {
        engine.register_query(q).expect("valid query");
    }
    for u in &workload.stream.as_slice()[..WARM_UPDATES] {
        engine.apply_update(*u);
    }
    engine
}

fn bench(c: &mut Criterion) {
    let total = WARM_UPDATES + MEASURED_UPDATES;
    let workload = Workload::generate(WorkloadConfig::new(Dataset::Snb, total, 60));

    let mut group = c.benchmark_group("hotpath_pipeline");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(400));
    group.throughput(Throughput::Elements(MEASURED_UPDATES as u64));

    for kind in [EngineKind::Tric, EngineKind::TricPlus] {
        // 0 = inline (no answer pool); N >= 1 = threaded with N answer workers.
        for answer_workers in [0usize, 1, 2, 4] {
            for flush_size in FLUSH_SIZES {
                let series = if answer_workers > 0 {
                    format!("{}-threaded-w{answer_workers}", kind.name())
                } else {
                    kind.name().to_string()
                };
                group.bench_with_input(
                    BenchmarkId::new(series, flush_size),
                    &flush_size,
                    |b, &flush_size| {
                        b.iter_batched(
                            || {
                                let mut config = PipelineConfig::new(flush_size, FLUSH_DEADLINE);
                                if answer_workers > 0 {
                                    config = config.threaded().with_answer_workers(answer_workers);
                                }
                                PipelinedEngine::new(warmed_engine(kind, &workload), config)
                            },
                            |mut pipe| {
                                let suffix = &workload.stream.as_slice()[WARM_UPDATES..];
                                for &u in suffix {
                                    black_box(pipe.push(u));
                                }
                                black_box(pipe.drain());
                                pipe
                            },
                            BatchSize::LargeInput,
                        );
                    },
                );
            }
        }
    }
    group.finish();
}

/// Deletion-heavy sweep: staged retraction tokens vs the eager barrier on
/// the identical mixed stream, inline and threaded. Flush 64 keeps the
/// series comparable with the insert-only sweep's middle point.
fn bench_deletions(c: &mut Criterion) {
    let total = WARM_UPDATES + MEASURED_UPDATES;
    let workload =
        Workload::generate(WorkloadConfig::new(Dataset::Snb, total, 60).with_delete_ratio(0.35));
    const FLUSH_SIZE: usize = 64;

    let mut group = c.benchmark_group("hotpath_pipeline_deletions");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(400));
    group.throughput(Throughput::Elements(MEASURED_UPDATES as u64));

    for kind in [EngineKind::Tric, EngineKind::TricPlus] {
        // 0 = inline (no answer pool); N >= 1 = threaded with N answer workers.
        for answer_workers in [0usize, 2, 4] {
            for eager in [false, true] {
                let mode = if eager { "eager" } else { "staged" };
                let series = if answer_workers > 0 {
                    format!("{}-del-{mode}-w{answer_workers}", kind.name())
                } else {
                    format!("{}-del-{mode}", kind.name())
                };
                group.bench_with_input(
                    BenchmarkId::new(series, FLUSH_SIZE),
                    &FLUSH_SIZE,
                    |b, &flush_size| {
                        b.iter_batched(
                            || {
                                let mut config = PipelineConfig::new(flush_size, FLUSH_DEADLINE);
                                if answer_workers > 0 {
                                    config = config.threaded().with_answer_workers(answer_workers);
                                }
                                if eager {
                                    config = config.with_eager_retractions();
                                }
                                PipelinedEngine::new(warmed_engine(kind, &workload), config)
                            },
                            |mut pipe| {
                                let suffix = &workload.stream.as_slice()[WARM_UPDATES..];
                                for &u in suffix {
                                    black_box(pipe.push(u));
                                }
                                black_box(pipe.drain());
                                pipe
                            },
                            BatchSize::LargeInput,
                        );
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench, bench_deletions);
criterion_main!(benches);
