//! Fig. 13(b): query insertion (indexing) time vs |QDB|.
//!
//! Criterion micro-benchmark counterpart of the `experiments` binary's
//! `fig13b` series (see gsm_bench::figures::fig13b), at a reduced fixed scale.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use gsm_bench::harness::EngineKind;
use gsm_datagen::{Dataset, Workload, WorkloadConfig};

fn bench(c: &mut Criterion) {
    {
        let qdb = 150usize;
        let w = Workload::generate(WorkloadConfig::new(Dataset::Snb, 800, qdb));
        common::bench_indexing(c, &format!("fig13b/Q{qdb}"), &w, &EngineKind::all());
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
