//! Fig. 12(d): SNB answering time vs average query size l.
//!
//! Criterion micro-benchmark counterpart of the `experiments` binary's
//! `fig12d` series (see gsm_bench::figures::fig12d), at a reduced fixed scale.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use gsm_bench::harness::EngineKind;
use gsm_datagen::{Dataset, Workload, WorkloadConfig};

fn bench(c: &mut Criterion) {
    {
        let l = 7usize;
        let w = Workload::generate(WorkloadConfig::new(Dataset::Snb, 1000, 40).with_query_size(l));
        common::bench_answering(c, &format!("fig12d/l{l}"), &w, &EngineKind::all());
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
