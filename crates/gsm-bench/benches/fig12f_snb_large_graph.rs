//! Fig. 12(f): SNB answering time on large graphs (baseline timeouts).
//!
//! Criterion micro-benchmark counterpart of the `experiments` binary's
//! `fig12f` series (see gsm_bench::figures::fig12f), at a reduced fixed scale.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use gsm_bench::harness::EngineKind;
use gsm_datagen::{Dataset, Workload, WorkloadConfig};

fn bench(c: &mut Criterion) {
    let w = Workload::generate(WorkloadConfig::new(Dataset::Snb, 1800, 40));
    common::bench_answering(c, "fig12f/E1800", &w, &EngineKind::all());
}

criterion_group!(benches, bench);
criterion_main!(benches);
