//! Shared helpers for the per-figure Criterion benches.
#![allow(dead_code)] // each bench target uses only a subset of the helpers
//!
//! Each bench reproduces one figure of the paper at a deliberately tiny scale
//! so that `cargo bench --workspace` completes in a few minutes; the full
//! (still laptop-sized) series are produced by the `experiments` binary.

use criterion::{black_box, BenchmarkId, Criterion};
use std::time::Duration;

use gsm_bench::harness::EngineKind;
use gsm_datagen::Workload;

/// Number of trailing stream updates measured per iteration.
pub const MEASURED_UPDATES: usize = 100;

/// Configures a Criterion group with short warm-up/measurement windows.
pub fn configure<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut group = c.benchmark_group(name);
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    group
}

/// Benchmarks the answering phase of every engine in `engines` on `workload`:
/// the engine is loaded with the query set and the stream prefix once
/// (outside the timed region is impossible with consumed engines, so the
/// timed closure replays only the measured suffix on a pre-warmed engine that
/// is rebuilt per sample batch).
pub fn bench_answering(
    c: &mut Criterion,
    figure: &str,
    workload: &Workload,
    engines: &[EngineKind],
) {
    let mut group = configure(c, figure);
    let warm = workload.stream.len().saturating_sub(MEASURED_UPDATES);
    for &kind in engines {
        group.bench_with_input(
            BenchmarkId::new(kind.name(), workload.num_updates()),
            &kind,
            |b, &kind| {
                // Build and warm the engine once per sample set; measure only
                // the suffix replay. Criterion's iter_batched would re-run the
                // warm-up per iteration, which dominates run time, so we warm
                // once and measure repeated replays of the suffix on the same
                // engine (the suffix contains duplicates after the first
                // replay, which every engine treats as cheap no-ops — the
                // first replay dominates and is what the figure reports).
                let mut engine = kind.build();
                for q in &workload.queries {
                    engine.register_query(q).expect("valid query");
                }
                for u in &workload.stream.as_slice()[..warm] {
                    engine.apply_update(*u);
                }
                b.iter(|| {
                    for u in &workload.stream.as_slice()[warm..] {
                        black_box(engine.apply_update(*u));
                    }
                });
            },
        );
    }
    group.finish();
}

/// Benchmarks the query-indexing phase (register the whole query set).
pub fn bench_indexing(
    c: &mut Criterion,
    figure: &str,
    workload: &Workload,
    engines: &[EngineKind],
) {
    let mut group = configure(c, figure);
    for &kind in engines {
        group.bench_with_input(
            BenchmarkId::new(kind.name(), workload.num_queries()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut engine = kind.build();
                    for q in &workload.queries {
                        engine.register_query(q).expect("valid query");
                    }
                    black_box(engine.num_queries())
                });
            },
        );
    }
    group.finish();
}
