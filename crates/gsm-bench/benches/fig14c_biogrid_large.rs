//! Fig. 14(c): BioGRID on larger graphs, TRIC/TRIC+/GraphDB.
//!
//! Criterion micro-benchmark counterpart of the `experiments` binary's
//! `fig14c` series (see gsm_bench::figures::fig14c), at a reduced fixed scale.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use gsm_bench::harness::EngineKind;
use gsm_datagen::{Dataset, Workload, WorkloadConfig};

fn bench(c: &mut Criterion) {
    let w = Workload::generate(WorkloadConfig::new(Dataset::BioGrid, 900, 30).with_query_size(3));
    common::bench_answering(c, "fig14c/E900", &w, &EngineKind::large_graph_subset());
}

criterion_group!(benches, bench);
criterion_main!(benches);
