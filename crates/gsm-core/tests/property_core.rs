//! Property-based tests for the core substrate: covering paths, relations,
//! joins and the join cache.

use proptest::prelude::*;

use gsm_core::interner::Sym;
use gsm_core::model::term::{PatternEdge, Term};
use gsm_core::query::paths::{covering_paths, is_valid_cover};
use gsm_core::query::pattern::QueryPattern;
use gsm_core::relation::cache::JoinCache;
use gsm_core::relation::join::{hash_join, hash_join_with_build, nested_loop_join};
use gsm_core::relation::Relation;

/// Strategy: a connected query pattern with up to `max_edges` edges over a
/// small variable/constant universe. Connectivity is ensured by always
/// attaching each new edge to a vertex already used (or to vertex 0).
fn query_strategy(max_edges: usize) -> impl Strategy<Value = QueryPattern> {
    let edge = (0u32..4, 0u32..6, 0u32..6, any::<bool>(), any::<bool>());
    proptest::collection::vec(edge, 1..=max_edges).prop_map(|specs| {
        let mut edges = Vec::new();
        // Connectivity: every edge touches a variable vertex already in use
        // (variables only — constants are leaves and never act as anchors).
        let mut used: Vec<u32> = vec![0];
        for (label, a, b, other_const, flip) in specs {
            let anchor = used[(a as usize) % used.len()];
            let anchor_term = Term::Var(anchor);
            let other_term = if other_const {
                Term::Const(Sym(1000 + b))
            } else {
                if !used.contains(&b) {
                    used.push(b);
                }
                Term::Var(b)
            };
            let (src, tgt) = if flip {
                (other_term, anchor_term)
            } else {
                (anchor_term, other_term)
            };
            edges.push(PatternEdge::new(Sym(label), src, tgt));
        }
        QueryPattern::from_edges(edges).expect("constructed patterns are connected")
    })
}

fn relation_strategy(arity: usize, max_rows: usize) -> impl Strategy<Value = Relation> {
    proptest::collection::vec(
        proptest::collection::vec(0u32..12, arity..=arity),
        0..=max_rows,
    )
    .prop_map(move |rows| {
        let mut rel = Relation::new(arity);
        for row in rows {
            let row: Vec<Sym> = row.into_iter().map(Sym).collect();
            rel.push(&row);
        }
        rel
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The covering-path extraction always produces a valid cover: every
    /// vertex and edge covered, consecutive edges chained, no empty paths.
    #[test]
    fn covering_paths_cover_everything(query in query_strategy(7)) {
        let paths = covering_paths(&query);
        prop_assert!(!paths.is_empty());
        prop_assert!(is_valid_cover(&query, &paths));
        // No more paths than edges (each path has at least one edge).
        prop_assert!(paths.len() <= query.num_edges());
    }

    /// Path vertex sequences are consistent with the pattern's endpoints.
    #[test]
    fn covering_path_vertex_sequences_chain(query in query_strategy(7)) {
        for path in covering_paths(&query) {
            let seq = path.vertex_sequence(&query);
            prop_assert_eq!(seq.len(), path.len() + 1);
            for (i, &e) in path.edges.iter().enumerate() {
                let (s, t) = query.edge_endpoints(e);
                prop_assert_eq!(seq[i], s);
                prop_assert_eq!(seq[i + 1], t);
            }
        }
    }

    /// Hash join ≡ nested-loop join on arbitrary inputs and key columns.
    #[test]
    fn hash_join_equals_nested_loop(
        left in relation_strategy(3, 40),
        right in relation_strategy(2, 40),
        lk in 0usize..3,
        rk in 0usize..2,
    ) {
        let a = hash_join(&left, &right, &[lk], &[rk]);
        let b = nested_loop_join(&left, &right, &[lk], &[rk]);
        prop_assert_eq!(a.to_sorted_vec(), b.to_sorted_vec());
    }

    /// A cached, incrementally-maintained build produces exactly the same
    /// join result as a freshly built one, no matter how the relation grows.
    #[test]
    fn cached_builds_are_equivalent_to_fresh_builds(
        initial in relation_strategy(2, 30),
        extra in proptest::collection::vec(proptest::collection::vec(0u32..12, 2), 0..30),
        probe in relation_strategy(2, 20),
    ) {
        let mut cache = JoinCache::new();
        let mut rel = initial;
        cache.get_or_build(&rel, &[0]);
        for row in extra {
            let row: Vec<Sym> = row.into_iter().map(Sym).collect();
            rel.push(&row);
        }
        let build = cache.get_or_build(&rel, &[0]);
        let cached = hash_join_with_build(&probe, &rel, &[1], &[0], build);
        let fresh = hash_join(&probe, &rel, &[1], &[0]);
        prop_assert_eq!(cached.to_sorted_vec(), fresh.to_sorted_vec());
    }

    /// Relations never contain duplicate rows, whatever is pushed into them.
    #[test]
    fn relations_are_duplicate_free(rows in proptest::collection::vec(proptest::collection::vec(0u32..5, 2), 0..100)) {
        let mut rel = Relation::new(2);
        for row in &rows {
            let row: Vec<Sym> = row.iter().copied().map(Sym).collect();
            rel.push(&row);
        }
        let distinct: std::collections::HashSet<Vec<Sym>> =
            rel.iter().map(|r| r.to_vec()).collect();
        prop_assert_eq!(distinct.len(), rel.len());
        // And every pushed row is present.
        for row in &rows {
            let row: Vec<Sym> = row.iter().copied().map(Sym).collect();
            prop_assert!(rel.contains(&row));
        }
    }

    /// Projection keeps exactly the selected columns in order.
    #[test]
    fn projection_is_column_selection(rel in relation_strategy(3, 40)) {
        let projected = rel.project(&[2, 0]);
        prop_assert_eq!(projected.arity(), 2);
        for row in rel.iter() {
            prop_assert!(projected.contains(&[row[2], row[0]]));
        }
        prop_assert!(projected.len() <= rel.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The chunked-storage snapshot contract under a concurrent writer:
    /// whatever interleaving of appends, snapshots and `delta_since` reads
    /// happens, a snapshot taken at watermark `v` is bitwise stable while
    /// the writer — moved to a second thread — keeps appending (including
    /// across chunk-freeze boundaries), and prefix + delta always
    /// repartition the final relation exactly.
    #[test]
    fn chunked_snapshots_are_stable_under_a_threaded_writer(
        // Offsets around the chunk edge so freezes happen mid-test: the
        // relation starts within one chunk, the writer pushes it past the
        // boundary.
        initial_rows in 1usize..40,
        near_edge in any::<bool>(),
        watermark_pct in 0usize..=100,
        writer_appends in 1usize..80,
    ) {
        use gsm_core::relation::CHUNK_ROWS;
        let base = if near_edge { CHUNK_ROWS - 20 } else { 0 };
        let n = base + initial_rows;
        let mut rel = Relation::new(2);
        for i in 0..n as u32 {
            rel.push(&[Sym(i), Sym(i.wrapping_mul(7))]);
        }
        let v = n * watermark_pct / 100;
        let snap = rel.snapshot_owned(v);
        let before: Vec<Vec<Sym>> = snap.to_vec();
        prop_assert_eq!(snap.len(), v);

        // Writer thread appends (distinct) rows behind the watermark; the
        // snapshot is read back on this thread afterwards.
        let writer = std::thread::spawn(move || {
            for i in 0..writer_appends as u32 {
                rel.push(&[Sym(1_000_000 + i), Sym(i)]);
            }
            rel
        });
        let rel = writer.join().expect("writer thread");

        let after: Vec<Vec<Sym>> = snap.to_vec();
        prop_assert_eq!(&after, &before, "snapshot moved under the writer");

        // The snapshot is exactly the first v rows of the final relation…
        let prefix: Vec<Vec<Sym>> = rel.iter().take(v).map(|r| r.to_vec()).collect();
        prop_assert_eq!(&after, &prefix);
        // …and delta_since(v) is exactly the rest.
        let delta: Vec<Vec<Sym>> = rel.delta_since(v).map(|r| r.to_vec()).collect();
        prop_assert_eq!(delta.len(), rel.len() - v);
        let mut reassembled = after.clone();
        reassembled.extend(delta);
        let all: Vec<Vec<Sym>> = rel.iter().map(|r| r.to_vec()).collect();
        prop_assert_eq!(reassembled, all);
    }

    /// Version-bounded joins around chunk edges: for relations whose length
    /// and watermark both straddle a chunk boundary, `hash_join_prefix`
    /// equals a join over physically truncated copies.
    #[test]
    fn prefix_joins_match_truncated_joins_across_chunk_edges(
        extra in 0usize..4,
        cut_back in 0usize..40,
        keys in proptest::collection::vec(0u32..9, 1..6),
    ) {
        use gsm_core::relation::CHUNK_ROWS;
        let n = CHUNK_ROWS - 2 + extra; // lengths straddling the edge
        let mut right = Relation::new(2);
        for i in 0..n as u32 {
            right.push(&[Sym(i % 9), Sym(i)]);
        }
        let cut = n.saturating_sub(cut_back);
        let mut left = Relation::new(1);
        for &k in &keys {
            left.push(&[Sym(k)]);
        }

        let bounded = gsm_core::relation::join::hash_join_prefix(
            &left, left.len(), &right, cut, &[0], &[0]);
        let mut truncated = Relation::new(2);
        for row in right.iter().take(cut) {
            truncated.push(row);
        }
        let expected = hash_join(&left, &truncated, &[0], &[0]);
        prop_assert_eq!(bounded.to_sorted_vec(), expected.to_sorted_vec());
    }
}
