//! Property-based tests for the pipelined executor's ordering machinery:
//! the [`ReorderBuffer`] in isolation, the multi-worker answer stage end to
//! end, and panic propagation from detached answer tasks.

use std::time::{Duration, Instant};

use proptest::prelude::*;

use gsm_core::engine::{
    ContinuousEngine, DetachedAnswer, EngineStats, MatchReport, QueryId, StagedBatch,
};
use gsm_core::error::Result;
use gsm_core::interner::Sym;
use gsm_core::model::update::Update;
use gsm_core::pipeline::{PipelineConfig, PipelinedEngine, ReorderBuffer};
use gsm_core::query::pattern::QueryPattern;

fn u(label: u32, src: u32, tgt: u32) -> Update {
    Update::new(Sym(label), Sym(src), Sym(tgt))
}

/// Strategy: a permutation of `0..n` (a random completion order), built by
/// repeatedly removing a strategy-chosen index from the remaining pool.
fn permutation(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(any::<u32>(), 1..=max_len).prop_map(|picks| {
        let mut pool: Vec<u64> = (0..picks.len() as u64).collect();
        let mut out = Vec::with_capacity(pool.len());
        for p in picks {
            out.push(pool.remove(p as usize % pool.len()));
        }
        out
    })
}

/// A split engine whose detached answer tasks genuinely run on the answer
/// workers, each sleeping a per-batch delay picked by the strategy — so any
/// completion interleaving the scheduler allows is actually exercised. Every
/// batch's report names its own stage sequence number, making completion
/// order directly observable in the [`gsm_core::pipeline::CompletedBatch`]
/// stream.
struct DelayedDetachToy {
    stats: EngineStats,
    seq: u64,
    /// Per-batch answer-task sleep, microseconds (`seq % len` indexes it).
    delays_us: Vec<u64>,
    /// Batch sequence number whose answer task panics, if any.
    panic_at: Option<u64>,
}

struct DelayedToken {
    seq: u64,
    updates: u64,
}

impl DelayedDetachToy {
    fn new(delays_us: Vec<u64>, panic_at: Option<u64>) -> Self {
        DelayedDetachToy {
            stats: EngineStats::default(),
            seq: 0,
            delays_us,
            panic_at,
        }
    }
}

impl ContinuousEngine for DelayedDetachToy {
    fn name(&self) -> &'static str {
        "DELAYED-DETACH-TOY"
    }
    fn register_query(&mut self, _q: &QueryPattern) -> Result<QueryId> {
        Ok(QueryId(0))
    }
    fn apply_update(&mut self, update: Update) -> MatchReport {
        self.apply_batch(&[update])
    }
    fn apply_batch(&mut self, updates: &[Update]) -> MatchReport {
        let staged = self.stage_batch(updates);
        self.answer_staged(staged)
    }
    fn stage_batch(&mut self, updates: &[Update]) -> StagedBatch {
        self.stats.updates_processed += updates.len() as u64;
        let seq = self.seq;
        self.seq += 1;
        StagedBatch::deferred(DelayedToken {
            seq,
            updates: updates.len() as u64,
        })
    }
    fn answer_staged(&mut self, staged: StagedBatch) -> MatchReport {
        let token = staged.into_deferred::<DelayedToken>().expect("own token");
        let report = MatchReport::from_counts(vec![(QueryId(token.seq as u32), token.updates)]);
        self.stats.notifications += report.len() as u64;
        self.stats.embeddings += report.total_embeddings();
        report
    }
    fn detach_staged(&mut self, staged: StagedBatch) -> DetachedAnswer {
        let token = staged.into_deferred::<DelayedToken>().expect("own token");
        let delay = self.delays_us[token.seq as usize % self.delays_us.len()];
        let panics = self.panic_at == Some(token.seq);
        DetachedAnswer::task(move || {
            if delay > 0 {
                std::thread::sleep(Duration::from_micros(delay));
            }
            if panics {
                panic!("injected answer panic #{}", token.seq);
            }
            MatchReport::from_counts(vec![(QueryId(token.seq as u32), token.updates)])
        })
    }
    fn absorb_answered(&mut self, report: &MatchReport) {
        self.stats.notifications += report.len() as u64;
        self.stats.embeddings += report.total_embeddings();
    }
    fn num_queries(&self) -> usize {
        1
    }
    fn heap_bytes(&self) -> usize {
        0
    }
    fn stats(&self) -> EngineStats {
        self.stats
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever order sequence numbers complete in — and however the drain
    /// interleaves with the arrivals — the reorder buffer releases exactly
    /// `0, 1, 2, …`, never early, never duplicated.
    #[test]
    fn reorder_buffer_always_releases_in_sequence_order(
        order in permutation(48),
        drain_every in 1usize..5,
    ) {
        let n = order.len() as u64;
        let mut buf: ReorderBuffer<u64> = ReorderBuffer::new();
        let mut released = Vec::new();
        for (i, &seq) in order.iter().enumerate() {
            buf.insert(seq, seq);
            // Interleave partial drains with the arrivals.
            if i % drain_every == 0 {
                while let Some(v) = buf.pop_next() {
                    released.push(v);
                }
            }
            // Nothing younger than a missing predecessor ever escapes.
            prop_assert_eq!(buf.next_seq(), released.len() as u64);
        }
        while let Some(v) = buf.pop_next() {
            released.push(v);
        }
        prop_assert_eq!(released, (0..n).collect::<Vec<_>>());
        prop_assert!(buf.is_empty());
        prop_assert_eq!(buf.next_seq(), n);
    }
}

proptest! {
    // Each case spins up a worker pool and sleeps real (micro)durations, so
    // keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any window depth, worker count, flush size and per-batch answer
    /// delays, the threaded pipeline completes batches strictly in arrival
    /// order and reproduces the stream's update count exactly.
    #[test]
    fn threaded_pipeline_completes_in_arrival_order(
        depth in 0usize..4,
        workers in 1usize..5,
        max_batch in 1usize..5,
        num_updates in 1usize..25,
        delays_us in proptest::collection::vec(0u64..400, 1..8),
    ) {
        let config = PipelineConfig::new(max_batch, Duration::from_secs(60))
            .with_depth(depth)
            .threaded()
            .with_answer_workers(workers);
        let mut pipe = PipelinedEngine::new(DelayedDetachToy::new(delays_us, None), config);
        let now = Instant::now();
        let mut completed = Vec::new();
        for i in 0..num_updates as u32 {
            completed.extend(pipe.push_at(u(0, i, i + 1), now));
        }
        completed.extend(pipe.drain());

        // Every batch's report names its stage sequence number: arrival
        // order is exactly 0, 1, 2, … whatever order the workers finished.
        for (i, batch) in completed.iter().enumerate() {
            prop_assert_eq!(
                batch.report.satisfied_queries(),
                vec![QueryId(i as u32)],
                "batch #{} out of order", i
            );
        }
        let total_updates: usize = completed.iter().map(|b| b.updates).sum();
        prop_assert_eq!(total_updates, num_updates);
        prop_assert_eq!(pipe.in_flight(), 0);
        prop_assert_eq!(pipe.stats().updates_processed, num_updates as u64);
        // One notification per batch, `updates` embeddings per batch.
        prop_assert_eq!(pipe.stats().notifications, completed.len() as u64);
        prop_assert_eq!(pipe.stats().embeddings, num_updates as u64);
    }

    /// A panic injected into any batch's answer task — under any worker
    /// count and delay pattern — resurfaces on the caller thread with its
    /// original payload instead of hanging or being swallowed.
    #[test]
    fn injected_answer_panic_propagates_with_its_payload(
        workers in 1usize..5,
        num_updates in 1usize..17,
        panic_batch in 0u64..8,
        delays_us in proptest::collection::vec(0u64..300, 1..6),
    ) {
        // Flush size 2 → ceil(num_updates / 2) batches; aim the panic at a
        // batch that actually exists.
        let num_batches = num_updates.div_ceil(2) as u64;
        let panic_at = panic_batch % num_batches;
        let config = PipelineConfig::new(2, Duration::from_secs(60))
            .threaded()
            .with_answer_workers(workers);
        let mut pipe =
            PipelinedEngine::new(DelayedDetachToy::new(delays_us, Some(panic_at)), config);

        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let now = Instant::now();
            for i in 0..num_updates as u32 {
                pipe.push_at(u(0, i, i + 1), now);
            }
            pipe.drain();
        }));
        let payload = outcome.expect_err("injected panic must propagate");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        prop_assert_eq!(
            message,
            format!("injected answer panic #{panic_at}"),
            "panic payload must survive the trip across the worker"
        );
    }
}
