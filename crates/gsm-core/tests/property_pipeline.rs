//! Property-based tests for the pipelined executor's ordering machinery:
//! the [`ReorderBuffer`] in isolation, the multi-worker answer stage end to
//! end, panic propagation from detached answer tasks, and the sign-run
//! splitter on mixed insert+retraction flushes.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use gsm_core::engine::{
    ContinuousEngine, DetachedAnswer, EngineStats, MatchReport, QueryId, StagedBatch,
};
use gsm_core::error::Result;
use gsm_core::interner::Sym;
use gsm_core::model::update::{sign_runs, Update};
use gsm_core::pipeline::{CompletedBatch, PipelineConfig, PipelinedEngine, ReorderBuffer};
use gsm_core::query::pattern::QueryPattern;

fn u(label: u32, src: u32, tgt: u32) -> Update {
    Update::new(Sym(label), Sym(src), Sym(tgt))
}

/// Strategy: a permutation of `0..n` (a random completion order), built by
/// repeatedly removing a strategy-chosen index from the remaining pool.
fn permutation(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(any::<u32>(), 1..=max_len).prop_map(|picks| {
        let mut pool: Vec<u64> = (0..picks.len() as u64).collect();
        let mut out = Vec::with_capacity(pool.len());
        for p in picks {
            out.push(pool.remove(p as usize % pool.len()));
        }
        out
    })
}

/// A split engine whose detached answer tasks genuinely run on the answer
/// workers, each sleeping a per-batch delay picked by the strategy — so any
/// completion interleaving the scheduler allows is actually exercised. Every
/// batch's report names its own stage sequence number, making completion
/// order directly observable in the [`gsm_core::pipeline::CompletedBatch`]
/// stream.
struct DelayedDetachToy {
    stats: EngineStats,
    seq: u64,
    /// Per-batch answer-task sleep, microseconds (`seq % len` indexes it).
    delays_us: Vec<u64>,
    /// Batch sequence number whose answer task panics, if any.
    panic_at: Option<u64>,
}

struct DelayedToken {
    seq: u64,
    updates: u64,
}

impl DelayedDetachToy {
    fn new(delays_us: Vec<u64>, panic_at: Option<u64>) -> Self {
        DelayedDetachToy {
            stats: EngineStats::default(),
            seq: 0,
            delays_us,
            panic_at,
        }
    }
}

impl ContinuousEngine for DelayedDetachToy {
    fn name(&self) -> &'static str {
        "DELAYED-DETACH-TOY"
    }
    fn register_query(&mut self, _q: &QueryPattern) -> Result<QueryId> {
        Ok(QueryId(0))
    }
    fn apply_update(&mut self, update: Update) -> MatchReport {
        self.apply_batch(&[update])
    }
    fn apply_batch(&mut self, updates: &[Update]) -> MatchReport {
        let staged = self.stage_batch(updates);
        self.answer_staged(staged)
    }
    fn stage_batch(&mut self, updates: &[Update]) -> StagedBatch {
        self.stats.updates_processed += updates.len() as u64;
        let seq = self.seq;
        self.seq += 1;
        StagedBatch::deferred(DelayedToken {
            seq,
            updates: updates.len() as u64,
        })
    }
    fn answer_staged(&mut self, staged: StagedBatch) -> MatchReport {
        let token = staged.into_deferred::<DelayedToken>().expect("own token");
        let report = MatchReport::from_counts(vec![(QueryId(token.seq as u32), token.updates)]);
        self.stats.notifications += report.len() as u64;
        self.stats.embeddings += report.total_embeddings();
        report
    }
    fn detach_staged(&mut self, staged: StagedBatch) -> DetachedAnswer {
        let token = staged.into_deferred::<DelayedToken>().expect("own token");
        let delay = self.delays_us[token.seq as usize % self.delays_us.len()];
        let panics = self.panic_at == Some(token.seq);
        DetachedAnswer::task(move || {
            if delay > 0 {
                std::thread::sleep(Duration::from_micros(delay));
            }
            if panics {
                panic!("injected answer panic #{}", token.seq);
            }
            MatchReport::from_counts(vec![(QueryId(token.seq as u32), token.updates)])
        })
    }
    fn absorb_answered(&mut self, report: &MatchReport) {
        self.stats.notifications += report.len() as u64;
        self.stats.embeddings += report.total_embeddings();
    }
    fn num_queries(&self) -> usize {
        1
    }
    fn heap_bytes(&self) -> usize {
        0
    }
    fn stats(&self) -> EngineStats {
        self.stats
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever order sequence numbers complete in — and however the drain
    /// interleaves with the arrivals — the reorder buffer releases exactly
    /// `0, 1, 2, …`, never early, never duplicated.
    #[test]
    fn reorder_buffer_always_releases_in_sequence_order(
        order in permutation(48),
        drain_every in 1usize..5,
    ) {
        let n = order.len() as u64;
        let mut buf: ReorderBuffer<u64> = ReorderBuffer::new();
        let mut released = Vec::new();
        for (i, &seq) in order.iter().enumerate() {
            buf.insert(seq, seq);
            // Interleave partial drains with the arrivals.
            if i % drain_every == 0 {
                while let Some(v) = buf.pop_next() {
                    released.push(v);
                }
            }
            // Nothing younger than a missing predecessor ever escapes.
            prop_assert_eq!(buf.next_seq(), released.len() as u64);
        }
        while let Some(v) = buf.pop_next() {
            released.push(v);
        }
        prop_assert_eq!(released, (0..n).collect::<Vec<_>>());
        prop_assert!(buf.is_empty());
        prop_assert_eq!(buf.next_seq(), n);
    }
}

/// A toy z-set engine with the commit-at-stage-time staging shape the real
/// engines use: state is a multiset of edges; a sign-pure run commits its
/// transitions at stage time and defers the report — 0→1 transitions are
/// new embeddings, 1→0 retracted — into a token whose detached task sleeps
/// a strategy-picked delay and stamps the report with the run's stage
/// sequence number, making FIFO completion directly observable. The toy
/// *panics* if `stage_batch` ever receives a mixed-sign batch, pinning the
/// executor's obligation to split flushes with [`sign_runs`] first.
struct ZSetToy {
    state: HashMap<(Sym, Sym, Sym), i64>,
    stats: EngineStats,
    delays_us: Vec<u64>,
    seq: u64,
}

struct ZSetToken {
    seq: u64,
    new: u64,
    gone: u64,
}

impl ZSetToy {
    fn new(delays_us: Vec<u64>) -> Self {
        ZSetToy {
            state: HashMap::new(),
            stats: EngineStats::default(),
            delays_us,
            seq: 0,
        }
    }

    /// Commits a run into the z-set, returning the `(0→1, 1→0)` transition
    /// counts. Retractions of absent edges are no-ops, like the real views.
    fn commit_run(&mut self, updates: &[Update]) -> (u64, u64) {
        let (mut new, mut gone) = (0u64, 0u64);
        for u in updates {
            let e = u.edge();
            let entry = self.state.entry((e.label, e.src, e.tgt)).or_insert(0);
            if u.is_retraction() {
                if *entry > 0 {
                    *entry -= 1;
                    if *entry == 0 {
                        gone += 1;
                    }
                }
            } else {
                *entry += 1;
                if *entry == 1 {
                    new += 1;
                }
            }
        }
        (new, gone)
    }

    /// A sign-pure run reports either appearing or disappearing embeddings,
    /// never both, under the query id `qid`.
    fn run_report(qid: QueryId, new: u64, gone: u64) -> MatchReport {
        if gone > 0 {
            MatchReport::from_retraction_counts(vec![(qid, gone)])
        } else if new > 0 {
            MatchReport::from_counts(vec![(qid, new)])
        } else {
            MatchReport::empty()
        }
    }
}

impl ContinuousEngine for ZSetToy {
    fn name(&self) -> &'static str {
        "ZSET-TOY"
    }
    fn register_query(&mut self, _q: &QueryPattern) -> Result<QueryId> {
        Ok(QueryId(0))
    }
    fn apply_update(&mut self, update: Update) -> MatchReport {
        self.apply_batch(&[update])
    }
    /// The eager path: splits into sign runs itself and merges the run
    /// reports (under query id 0 — an eager flush has no stage sequence).
    fn apply_batch(&mut self, updates: &[Update]) -> MatchReport {
        self.stats.updates_processed += updates.len() as u64;
        let mut report = MatchReport::empty();
        for run in sign_runs(updates) {
            let (new, gone) = self.commit_run(run);
            report = report.merge(&Self::run_report(QueryId(0), new, gone));
        }
        self.stats.notifications += report.len() as u64;
        self.stats.embeddings += report.total_embeddings();
        self.stats.retracted += report.total_retracted();
        report
    }
    fn stage_batch(&mut self, updates: &[Update]) -> StagedBatch {
        assert!(
            updates
                .windows(2)
                .all(|w| w[0].is_retraction() == w[1].is_retraction()),
            "executor staged a mixed-sign batch instead of splitting it"
        );
        self.stats.updates_processed += updates.len() as u64;
        let (new, gone) = self.commit_run(updates);
        let seq = self.seq;
        self.seq += 1;
        StagedBatch::deferred(ZSetToken { seq, new, gone })
    }
    fn answer_staged(&mut self, staged: StagedBatch) -> MatchReport {
        match staged.into_deferred::<ZSetToken>() {
            Ok(t) => {
                let report = Self::run_report(QueryId(t.seq as u32), t.new, t.gone);
                self.stats.notifications += report.len() as u64;
                self.stats.embeddings += report.total_embeddings();
                self.stats.retracted += report.total_retracted();
                report
            }
            Err(report) => report,
        }
    }
    fn detach_staged(&mut self, staged: StagedBatch) -> DetachedAnswer {
        match staged.into_deferred::<ZSetToken>() {
            Ok(t) => {
                let delay = self.delays_us[t.seq as usize % self.delays_us.len()];
                DetachedAnswer::task(move || {
                    if delay > 0 {
                        std::thread::sleep(Duration::from_micros(delay));
                    }
                    ZSetToy::run_report(QueryId(t.seq as u32), t.new, t.gone)
                })
            }
            Err(report) => DetachedAnswer::ready(report),
        }
    }
    fn absorb_answered(&mut self, report: &MatchReport) {
        self.stats.notifications += report.len() as u64;
        self.stats.embeddings += report.total_embeddings();
        self.stats.retracted += report.total_retracted();
    }
    fn num_queries(&self) -> usize {
        1
    }
    fn heap_bytes(&self) -> usize {
        0
    }
    fn stats(&self) -> EngineStats {
        self.stats
    }
}

proptest! {
    // Each case spins up a worker pool and sleeps real (micro)durations, so
    // keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any window depth, worker count, flush size and per-batch answer
    /// delays, the threaded pipeline completes batches strictly in arrival
    /// order and reproduces the stream's update count exactly.
    #[test]
    fn threaded_pipeline_completes_in_arrival_order(
        depth in 0usize..4,
        workers in 1usize..5,
        max_batch in 1usize..5,
        num_updates in 1usize..25,
        delays_us in proptest::collection::vec(0u64..400, 1..8),
    ) {
        let config = PipelineConfig::new(max_batch, Duration::from_secs(60))
            .with_depth(depth)
            .threaded()
            .with_answer_workers(workers);
        let mut pipe = PipelinedEngine::new(DelayedDetachToy::new(delays_us, None), config);
        let now = Instant::now();
        let mut completed = Vec::new();
        for i in 0..num_updates as u32 {
            completed.extend(pipe.push_at(u(0, i, i + 1), now));
        }
        completed.extend(pipe.drain());

        // Every batch's report names its stage sequence number: arrival
        // order is exactly 0, 1, 2, … whatever order the workers finished.
        for (i, batch) in completed.iter().enumerate() {
            prop_assert_eq!(
                batch.report.satisfied_queries(),
                vec![QueryId(i as u32)],
                "batch #{} out of order", i
            );
        }
        let total_updates: usize = completed.iter().map(|b| b.updates).sum();
        prop_assert_eq!(total_updates, num_updates);
        prop_assert_eq!(pipe.in_flight(), 0);
        prop_assert_eq!(pipe.stats().updates_processed, num_updates as u64);
        // One notification per batch, `updates` embeddings per batch.
        prop_assert_eq!(pipe.stats().notifications, completed.len() as u64);
        prop_assert_eq!(pipe.stats().embeddings, num_updates as u64);
    }

    /// A panic injected into any batch's answer task — under any worker
    /// count and delay pattern — resurfaces on the caller thread with its
    /// original payload instead of hanging or being swallowed.
    #[test]
    fn injected_answer_panic_propagates_with_its_payload(
        workers in 1usize..5,
        num_updates in 1usize..17,
        panic_batch in 0u64..8,
        delays_us in proptest::collection::vec(0u64..300, 1..6),
    ) {
        // Flush size 2 → ceil(num_updates / 2) batches; aim the panic at a
        // batch that actually exists.
        let num_batches = num_updates.div_ceil(2) as u64;
        let panic_at = panic_batch % num_batches;
        let config = PipelineConfig::new(2, Duration::from_secs(60))
            .threaded()
            .with_answer_workers(workers);
        let mut pipe =
            PipelinedEngine::new(DelayedDetachToy::new(delays_us, Some(panic_at)), config);

        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let now = Instant::now();
            for i in 0..num_updates as u32 {
                pipe.push_at(u(0, i, i + 1), now);
            }
            pipe.drain();
        }));
        let payload = outcome.expect_err("injected panic must propagate");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        prop_assert_eq!(
            message,
            format!("injected answer panic #{panic_at}"),
            "panic payload must survive the trip across the worker"
        );
    }

    /// Mixed-sign flushes through the threaded pipeline split into
    /// separately-staged sign-pure runs: completed batches arrive in FIFO
    /// stage order, tile the stream at sign-run granularity, and report
    /// exactly what a sequential stage-and-answer of the same runs reports.
    /// The eager-barrier configuration over the same stream reproduces the
    /// same embedding/retraction totals.
    #[test]
    fn mixed_sign_flushes_split_into_fifo_sign_runs(
        ops in proptest::collection::vec((any::<bool>(), 0u32..5), 1..40),
        max_batch in 1usize..6,
        workers in 1usize..5,
        depth in 0usize..4,
        delays_us in proptest::collection::vec(0u64..300, 1..6),
    ) {
        // A tiny edge universe, so retractions genuinely hit live edges.
        let stream: Vec<Update> = ops
            .iter()
            .map(|&(retract, e)| {
                let base = u(0, e, e + 1);
                if retract { base.inverted() } else { base }
            })
            .collect();

        // Flush boundaries are deterministic at a fixed clock (the deadline
        // never fires): chunks of `max_batch`, refined into sign runs.
        let mut expected_runs: Vec<&[Update]> = Vec::new();
        for flush in stream.chunks(max_batch) {
            expected_runs.extend(sign_runs(flush));
        }

        // Sequential reference: stage + answer each run in order, which
        // numbers the runs exactly as the pipeline's stage phase will.
        let mut reference = ZSetToy::new(vec![0]);
        let expected: Vec<MatchReport> = expected_runs
            .iter()
            .map(|run| {
                let staged = reference.stage_batch(run);
                reference.answer_staged(staged)
            })
            .collect();

        let config = PipelineConfig::new(max_batch, Duration::from_secs(60))
            .with_depth(depth)
            .threaded()
            .with_answer_workers(workers);
        let mut pipe = PipelinedEngine::new(ZSetToy::new(delays_us.clone()), config);
        let now = Instant::now();
        let mut completed = Vec::new();
        for &update in &stream {
            completed.extend(pipe.push_at(update, now));
        }
        completed.extend(pipe.drain());

        prop_assert_eq!(completed.len(), expected_runs.len());
        for (i, batch) in completed.iter().enumerate() {
            prop_assert_eq!(batch.updates, expected_runs[i].len(), "tile #{}", i);
            // Reports are stamped with the stage sequence number, so this
            // equality is simultaneously the FIFO-order check.
            prop_assert_eq!(
                &batch.report, &expected[i],
                "batch #{} out of FIFO order or wrong", i
            );
        }
        prop_assert_eq!(pipe.stats().updates_processed, stream.len() as u64);

        // Eager-barrier A/B over the same stream and flush boundaries:
        // different batch granularity (a flush with a retraction drains the
        // window and applies whole), identical totals.
        let eager_config = PipelineConfig::new(max_batch, Duration::from_secs(60))
            .with_depth(depth)
            .threaded()
            .with_answer_workers(workers)
            .with_eager_retractions();
        let mut eager = PipelinedEngine::new(ZSetToy::new(delays_us), eager_config);
        let mut eager_completed = Vec::new();
        for &update in &stream {
            eager_completed.extend(eager.push_at(update, now));
        }
        eager_completed.extend(eager.drain());
        let totals = |batches: &[CompletedBatch]| {
            batches.iter().fold((0u64, 0u64), |(n, g), b| {
                (
                    n + b.report.total_embeddings(),
                    g + b.report.total_retracted(),
                )
            })
        };
        prop_assert_eq!(totals(&completed), totals(&eager_completed));
    }
}

/// Pins the **checkpoint-while-staged contract** the persistence layer
/// builds on: a durable checkpoint must capture a state no in-flight token
/// can still mutate, and the chosen contract is **barrier** — the
/// checkpointing caller drains the pipeline first, and
/// [`PipelinedEngine::in_flight`] is the observable it keys on.
/// Specifically: staging increments `in_flight`, collecting a completed
/// batch decrements it, updates merely *buffered* by the batcher are not
/// in flight (they are not yet staged, hence not yet WAL-logged — a crash
/// loses them and the stream driver re-feeds), and `drain()` always leaves
/// `in_flight() == 0` with the engine reachable through `engine()`. The
/// persistence crate's `PersistentEngine::checkpoint` refuses to run while
/// its wrapped engine has staged tokens outstanding (typed
/// `Error::Persistence`), which is sound precisely because of the
/// accounting pinned here.
#[test]
fn checkpoint_barrier_contract_in_flight_accounting() {
    // Depth 3 and a frozen clock: pushes buffer until max_batch is hit,
    // then stage without answering (inline mode answers lazily as the
    // window overflows), so in_flight is directly observable.
    let config = PipelineConfig::new(2, Duration::from_secs(60)).with_depth(3);
    let mut pipe = PipelinedEngine::new(ZSetToy::new(vec![0]), config);
    let now = Instant::now();

    assert_eq!(pipe.in_flight(), 0);
    pipe.push_at(u(0, 1, 2), now);
    assert_eq!(pipe.in_flight(), 0, "buffered updates are not staged");
    assert_eq!(pipe.buffered(), 1);

    // Second push flushes a full batch: staged, answer deferred.
    pipe.push_at(u(0, 2, 3), now);
    assert_eq!(pipe.in_flight(), 1, "a flushed batch stages one token");
    assert_eq!(pipe.buffered(), 0);

    pipe.push_at(u(0, 3, 4), now);
    pipe.push_at(u(0, 4, 5), now);
    assert_eq!(pipe.in_flight(), 2, "depth 3 window holds both tokens");

    // The barrier: after drain, nothing is staged or buffered, and the
    // wrapped engine is quiescent — the state a checkpoint may capture.
    let completed = pipe.drain();
    assert_eq!(pipe.in_flight(), 0, "drain leaves no tokens outstanding");
    assert_eq!(pipe.buffered(), 0);
    assert_eq!(completed.len(), 2);
    assert_eq!(pipe.engine().stats().updates_processed, 4);
}
