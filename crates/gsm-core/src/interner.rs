//! String interning.
//!
//! Every vertex identity and edge label in the data and query model is a
//! string (e.g. `"person_42"`, `"knows"`). Engines never look at the strings
//! themselves — they only compare identities — so all strings are interned
//! once into compact [`Sym`] handles and the engines operate on `u32`s.

use std::collections::HashMap;

use crate::memory::HeapSize;

/// A compact handle to an interned string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

impl Sym {
    /// Returns the raw index of the symbol.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A bidirectional string ⇄ [`Sym`] table.
///
/// Interning the same string twice returns the same symbol. Symbols are dense
/// indices starting at zero, so they can be used directly as vector indices.
#[derive(Debug, Default, Clone)]
pub struct SymbolTable {
    by_name: HashMap<Box<str>, Sym>,
    names: Vec<Box<str>>,
}

impl SymbolTable {
    /// Creates an empty symbol table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its symbol. Idempotent.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&sym) = self.by_name.get(name) {
            return sym;
        }
        let sym = Sym(self.names.len() as u32);
        let boxed: Box<str> = name.into();
        self.names.push(boxed.clone());
        self.by_name.insert(boxed, sym);
        sym
    }

    /// Returns the symbol for `name` if it was previously interned.
    pub fn get(&self, name: &str) -> Option<Sym> {
        self.by_name.get(name).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if the symbol was not produced by this table.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.names[sym.index()]
    }

    /// Resolves a symbol, returning `None` for foreign symbols.
    pub fn try_resolve(&self, sym: Sym) -> Option<&str> {
        self.names.get(sym.index()).map(|s| s.as_ref())
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

impl HeapSize for Sym {
    #[inline]
    fn heap_size(&self) -> usize {
        0
    }
}

impl HeapSize for SymbolTable {
    fn heap_size(&self) -> usize {
        let strings: usize = self.names.iter().map(|s| s.len()).sum();
        // names vector + map entries (key box + value) — the key boxes share
        // allocations conceptually but are distinct `Box<str>` clones here.
        self.names.capacity() * std::mem::size_of::<Box<str>>()
            + strings * 2
            + self.by_name.capacity()
                * (std::mem::size_of::<Box<str>>() + std::mem::size_of::<Sym>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("knows");
        let b = t.intern("knows");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let mut t = SymbolTable::new();
        let a = t.intern("knows");
        let b = t.intern("likes");
        assert_ne!(a, b);
        assert_eq!(t.resolve(a), "knows");
        assert_eq!(t.resolve(b), "likes");
    }

    #[test]
    fn get_without_interning() {
        let mut t = SymbolTable::new();
        assert_eq!(t.get("x"), None);
        let s = t.intern("x");
        assert_eq!(t.get("x"), Some(s));
    }

    #[test]
    fn symbols_are_dense_indices() {
        let mut t = SymbolTable::new();
        for i in 0..100 {
            let s = t.intern(&format!("v{i}"));
            assert_eq!(s.index(), i);
        }
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn try_resolve_foreign_symbol() {
        let t = SymbolTable::new();
        assert_eq!(t.try_resolve(Sym(42)), None);
    }

    #[test]
    fn heap_size_grows_with_content() {
        let mut t = SymbolTable::new();
        let before = t.heap_size();
        for i in 0..1000 {
            t.intern(&format!("some_rather_long_label_{i}"));
        }
        assert!(t.heap_size() > before);
    }
}
