//! # gsm-core
//!
//! Core substrate for **continuous multi-query processing over graph streams**,
//! a reproduction of the TRIC system (Zervakis et al., EDBT 2020).
//!
//! This crate provides everything that the concrete engines (TRIC/TRIC+, the
//! inverted-index baselines INV/INC and the graph-database baseline) build on:
//!
//! * [`interner`] — a compact string interner mapping labels to [`Sym`] ids.
//! * [`model`] — the attribute-graph data model: [`Update`]s, [`GraphStream`]s,
//!   [`AttributeGraph`], pattern terms and edges, and the *generic edge*
//!   normalisation used by every index structure.
//! * [`query`] — query graph patterns ([`QueryPattern`]), a small textual
//!   pattern parser, query-class detection and the covering-path
//!   decomposition of Section 4.1 of the paper.
//! * [`relation`] — binding tables (materialized views), hash joins, delta
//!   joins, and the join-build cache that powers the `+` engine variants.
//! * [`views`] — the shared per-edge materialized-view store.
//! * [`engine`] — the [`ContinuousEngine`] trait implemented by every engine,
//!   plus match reports.
//! * [`shard`] — [`ShardedEngine`], the root-generic-edge partitioning of
//!   any engine across worker shards with a deterministic report merge.
//! * [`pipeline`] — [`PipelinedEngine`], the latency-budgeted batcher and
//!   pipelined streaming executor built on delta-view versioning, with an
//!   optional cross-thread answer stage.
//! * [`pool`] — [`WorkerPool`], the persistent worker threads behind the
//!   sharded absorb phase and the pipelined answer stage.
//! * [`stats`] / [`memory`] — latency statistics and heap accounting used by
//!   the benchmark harness.
//!
//! ## Quick example
//!
//! ```
//! use gsm_core::prelude::*;
//!
//! let mut symbols = SymbolTable::new();
//! let query = QueryPattern::parse("?x -knows-> ?y; ?y -checksIn-> rio", &mut symbols).unwrap();
//! assert_eq!(query.num_edges(), 2);
//! let paths = covering_paths(&query);
//! assert_eq!(paths.len(), 1); // a single chain covers the whole pattern
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod interner;
pub mod memory;
pub mod model;
pub mod pipeline;
pub mod pool;
pub mod query;
pub mod relation;
pub mod shard;
pub mod stats;
pub mod views;

pub use engine::{
    ContinuousEngine, DetachedAnswer, EngineStats, MatchReport, QueryId, QueryMatch, StagedBatch,
};
pub use error::{Error, Result};
pub use interner::{Sym, SymbolTable};
pub use model::generic::{GenTerm, GenericEdge};
pub use model::graph::AttributeGraph;
pub use model::term::{PatternEdge, Term, VarId};
pub use model::update::{GraphStream, Update};
pub use pipeline::{CompletedBatch, DeadlineBatcher, PipelineConfig, PipelinedEngine};
pub use pool::WorkerPool;
pub use query::classes::QueryClass;
pub use query::paths::{covering_paths, CoveringPath};
pub use query::pattern::{QVertexId, QueryPattern};
pub use relation::cache::JoinCache;
pub use relation::eval::{join_paths, PathBinding};
pub use relation::{Relation, RelationSnapshot};
pub use shard::{shard_of, ShardedEngine};
pub use views::{EdgeViewStore, FrozenViews, ViewSource, ViewsVersion};

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::engine::{ContinuousEngine, MatchReport, QueryId, QueryMatch};
    pub use crate::error::{Error, Result};
    pub use crate::interner::{Sym, SymbolTable};
    pub use crate::model::generic::{GenTerm, GenericEdge};
    pub use crate::model::graph::AttributeGraph;
    pub use crate::model::term::{PatternEdge, Term, VarId};
    pub use crate::model::update::{GraphStream, Update};
    pub use crate::pipeline::{CompletedBatch, PipelineConfig, PipelinedEngine};
    pub use crate::query::classes::QueryClass;
    pub use crate::query::paths::{covering_paths, CoveringPath};
    pub use crate::query::pattern::{QVertexId, QueryPattern};
    pub use crate::relation::Relation;
    pub use crate::shard::{shard_of, ShardedEngine};
    pub use crate::views::EdgeViewStore;
}
