//! Heap-size accounting.
//!
//! The paper's Figure 13(c) compares the main-memory requirements of every
//! engine. Since the engines are plain in-memory data structures, we estimate
//! their footprint by walking them with the [`HeapSize`] trait: the *heap*
//! bytes owned by a value (excluding the size of the value itself, which is
//! accounted for by the parent container).

use std::collections::{BTreeMap, HashMap, HashSet};

/// Estimates the number of heap bytes transitively owned by a value.
pub trait HeapSize {
    /// Heap bytes owned by `self` (not counting `size_of::<Self>()`).
    fn heap_size(&self) -> usize;

    /// Heap bytes plus the inline size of the value itself.
    fn total_size(&self) -> usize
    where
        Self: Sized,
    {
        self.heap_size() + std::mem::size_of::<Self>()
    }
}

macro_rules! impl_heap_size_zero {
    ($($t:ty),* $(,)?) => {
        $(impl HeapSize for $t {
            #[inline]
            fn heap_size(&self) -> usize { 0 }
        })*
    };
}

impl_heap_size_zero!(
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    bool,
    char,
    ()
);

impl HeapSize for String {
    fn heap_size(&self) -> usize {
        self.capacity()
    }
}

impl HeapSize for Box<str> {
    fn heap_size(&self) -> usize {
        self.len()
    }
}

impl<T: HeapSize> HeapSize for Option<T> {
    fn heap_size(&self) -> usize {
        self.as_ref().map_or(0, HeapSize::heap_size)
    }
}

impl<T: HeapSize> HeapSize for Box<T> {
    fn heap_size(&self) -> usize {
        std::mem::size_of::<T>() + self.as_ref().heap_size()
    }
}

impl<T: HeapSize> HeapSize for std::sync::Arc<T> {
    /// Attributes the full payload to every handle (shared ownership is not
    /// tracked), plus the two reference counts of the Arc header.
    fn heap_size(&self) -> usize {
        std::mem::size_of::<T>() + 2 * std::mem::size_of::<usize>() + self.as_ref().heap_size()
    }
}

impl<T: HeapSize> HeapSize for Vec<T> {
    fn heap_size(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
            + self.iter().map(HeapSize::heap_size).sum::<usize>()
    }
}

impl<T: HeapSize> HeapSize for Box<[T]> {
    fn heap_size(&self) -> usize {
        self.len() * std::mem::size_of::<T>() + self.iter().map(HeapSize::heap_size).sum::<usize>()
    }
}

impl<T: HeapSize, const N: usize> HeapSize for [T; N] {
    fn heap_size(&self) -> usize {
        self.iter().map(HeapSize::heap_size).sum::<usize>()
    }
}

impl<A: HeapSize, B: HeapSize> HeapSize for (A, B) {
    fn heap_size(&self) -> usize {
        self.0.heap_size() + self.1.heap_size()
    }
}

impl<A: HeapSize, B: HeapSize, C: HeapSize> HeapSize for (A, B, C) {
    fn heap_size(&self) -> usize {
        self.0.heap_size() + self.1.heap_size() + self.2.heap_size()
    }
}

impl<K: HeapSize, V: HeapSize, S> HeapSize for HashMap<K, V, S> {
    fn heap_size(&self) -> usize {
        // Approximation: hashbrown stores (K, V) pairs plus one control byte
        // per bucket; capacity() underestimates raw buckets slightly.
        self.capacity() * (std::mem::size_of::<K>() + std::mem::size_of::<V>() + 1)
            + self
                .iter()
                .map(|(k, v)| k.heap_size() + v.heap_size())
                .sum::<usize>()
    }
}

impl<K: HeapSize, S> HeapSize for HashSet<K, S> {
    fn heap_size(&self) -> usize {
        self.capacity() * (std::mem::size_of::<K>() + 1)
            + self.iter().map(HeapSize::heap_size).sum::<usize>()
    }
}

impl<K: HeapSize, V: HeapSize> HeapSize for BTreeMap<K, V> {
    fn heap_size(&self) -> usize {
        self.len() * (std::mem::size_of::<K>() + std::mem::size_of::<V>() + 16)
            + self
                .iter()
                .map(|(k, v)| k.heap_size() + v.heap_size())
                .sum::<usize>()
    }
}

impl<T: HeapSize + ?Sized> HeapSize for &T {
    fn heap_size(&self) -> usize {
        0
    }
}

/// Formats a byte count the way the paper's memory table does (MB with one
/// decimal, or KB below one megabyte).
pub fn format_bytes(bytes: usize) -> String {
    const MB: f64 = 1024.0 * 1024.0;
    const KB: f64 = 1024.0;
    let b = bytes as f64;
    if b >= MB {
        format!("{:.1}MB", b / MB)
    } else if b >= KB {
        format!("{:.1}KB", b / KB)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_have_no_heap() {
        assert_eq!(42u64.heap_size(), 0);
        assert_eq!(true.heap_size(), 0);
    }

    #[test]
    fn vec_accounts_capacity() {
        let v: Vec<u64> = Vec::with_capacity(128);
        assert_eq!(v.heap_size(), 128 * 8);
        let v = vec![1u64, 2, 3];
        assert!(v.heap_size() >= 24);
    }

    #[test]
    fn nested_containers_accumulate() {
        let v = vec![vec![1u32; 10], vec![2u32; 20]];
        assert!(v.heap_size() >= 10 * 4 + 20 * 4);
    }

    #[test]
    fn string_heap_is_capacity() {
        let s = String::from("hello world");
        assert!(s.heap_size() >= 11);
    }

    #[test]
    fn map_heap_grows() {
        let mut m: HashMap<u32, Vec<u32>> = HashMap::new();
        let empty = m.heap_size();
        for i in 0..100 {
            m.insert(i, vec![i; 10]);
        }
        assert!(m.heap_size() > empty + 100 * 10 * 4);
    }

    #[test]
    fn format_bytes_units() {
        assert_eq!(format_bytes(512), "512B");
        assert_eq!(format_bytes(2048), "2.0KB");
        assert_eq!(format_bytes(3 * 1024 * 1024), "3.0MB");
    }
}
