//! The shared per-edge materialized-view store.
//!
//! Every algorithm of the paper maintains, for each distinct (generic) query
//! edge appearing in the query database, a materialized view `matV[e]`
//! containing all updates that satisfy that edge (Section 4.1,
//! "Materialization"). This store is the common implementation: engines
//! register the generic edges of their query set and feed updates; the store
//! routes each update to the affected views with O(1) hash lookups.

use std::collections::HashMap;

use crate::interner::Sym;
use crate::memory::HeapSize;
use crate::model::generic::GenericEdge;
use crate::model::update::Update;
use crate::relation::cache::BuildCache;
use crate::relation::fasthash::FxHashMap;
use crate::relation::join::JoinBuild;
use crate::relation::Relation;

/// Per-generic-edge materialized views.
#[derive(Debug, Default)]
pub struct EdgeViewStore {
    views: HashMap<GenericEdge, Relation>,
}

impl EdgeViewStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures a view exists for `edge` (idempotent). Views always have two
    /// columns: the concrete source and target vertices of matching updates.
    pub fn register(&mut self, edge: GenericEdge) {
        self.views.entry(edge).or_insert_with(|| Relation::new(2));
    }

    /// Registers a view for `edge` and replays `source`'s rows into it —
    /// the catch-up path for views created mid-stream (e.g. a shard whose
    /// spanning view must see history that was routed before the owning
    /// query registered). Rows already present are absorbed by the dedup
    /// push, so backfilling is idempotent and safe to interleave with a
    /// view that independently received some of the same history. Returns
    /// the number of rows actually added.
    pub fn backfill_from(&mut self, edge: GenericEdge, source: &Relation) -> usize {
        self.register(edge);
        let view = self.views.get_mut(&edge).expect("just registered");
        let mut added = 0;
        for row in source.iter() {
            if view.push(row) {
                added += 1;
            }
        }
        added
    }

    /// True if a view is registered for `edge`.
    pub fn is_registered(&self, edge: &GenericEdge) -> bool {
        self.views.contains_key(edge)
    }

    /// The view of `edge`, if registered.
    pub fn get(&self, edge: &GenericEdge) -> Option<&Relation> {
        self.views.get(edge)
    }

    /// Number of registered views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True if no view is registered.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Routes an update to every registered view it satisfies and appends the
    /// `(src, tgt)` tuple. Returns the generic edges whose view actually
    /// gained a new tuple (an exact duplicate of an earlier update leaves all
    /// views unchanged and therefore cannot produce new embeddings).
    pub fn apply_update(&mut self, u: &Update) -> Vec<GenericEdge> {
        debug_assert!(
            !u.is_retraction(),
            "retractions route through remove_deltas/retract_deltas"
        );
        let row: [Sym; 2] = [u.src, u.tgt];
        let mut affected = Vec::new();
        for shape in GenericEdge::shapes_of_update(u) {
            if let Some(view) = self.views.get_mut(&shape) {
                if view.push(&row) {
                    affected.push(shape);
                }
            }
        }
        affected
    }

    /// Routes a whole batch of updates, returning for every affected generic
    /// edge the **delta relation** of the batch: the `(src, tgt)` tuples that
    /// were actually new for that edge's view (exact duplicates — of earlier
    /// stream history or of an earlier update in the same batch — are
    /// absorbed exactly as they would be one at a time). Routing walks the
    /// generic-edge shapes of each update once, so the per-edge hash lookups
    /// are shared across the whole batch instead of being re-done per call
    /// site downstream.
    pub fn apply_batch(&mut self, updates: &[Update]) -> FxHashMap<GenericEdge, Relation> {
        let mut deltas: FxHashMap<GenericEdge, Relation> = FxHashMap::default();
        for u in updates {
            debug_assert!(
                !u.is_retraction(),
                "retractions route through remove_deltas/retract_deltas"
            );
            let row: [Sym; 2] = [u.src, u.tgt];
            for shape in GenericEdge::shapes_of_update(u) {
                if let Some(view) = self.views.get_mut(&shape) {
                    if view.push(&row) {
                        // The view accepted the row as new, so it cannot
                        // repeat within this batch's delta either — the
                        // delta skips the dedup index.
                        deltas
                            .entry(shape)
                            .or_insert_with(|| Relation::new_distinct(2))
                            .append_distinct(&row);
                    }
                }
            }
        }
        deltas
    }

    /// Routes a batch of **retractions** against the *pre-removal* state,
    /// returning for every affected generic edge the rows its view will
    /// lose: the `(src, tgt)` tuples of retracted updates that are actually
    /// present in that view (retracting an absent edge is a no-op;
    /// duplicate retractions within the batch are absorbed). The store is
    /// **not** modified — engines answer their deletion joins against the
    /// pre-removal views first and then commit with
    /// [`retract_deltas`](EdgeViewStore::retract_deltas).
    pub fn remove_deltas(&self, updates: &[Update]) -> FxHashMap<GenericEdge, Relation> {
        let mut deltas: FxHashMap<GenericEdge, Relation> = FxHashMap::default();
        for u in updates {
            debug_assert!(u.is_retraction(), "remove_deltas takes retractions");
            let row: [Sym; 2] = [u.src, u.tgt];
            for shape in GenericEdge::shapes_of_update(u) {
                if let Some(view) = self.views.get(&shape) {
                    if view.contains(&row) {
                        // The per-edge delta is indexed so a doubly-retracted
                        // edge contributes one removed row, not two.
                        deltas
                            .entry(shape)
                            .or_insert_with(|| Relation::new(2))
                            .push(&row);
                    }
                }
            }
        }
        deltas
    }

    /// Commits a retraction batch: removes every delta row from its view,
    /// compacting the storage (see [`Relation::retract_rows`]). Pass the
    /// map produced by [`remove_deltas`](EdgeViewStore::remove_deltas)
    /// after all pre-removal answering is done.
    pub fn retract_deltas(&mut self, deltas: &FxHashMap<GenericEdge, Relation>) {
        for (edge, removed) in deltas {
            if let Some(view) = self.views.get_mut(edge) {
                view.retract_rows(removed);
            }
        }
    }

    /// Iterates over all registered (edge, view) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&GenericEdge, &Relation)> {
        self.views.iter()
    }

    /// Captures the current version of every registered view — an O(#views)
    /// map of row-count watermarks.
    ///
    /// # Versioning contract
    ///
    /// Views are append-only between retraction batches (see
    /// [`Relation::version`]), so the captured watermarks identify a
    /// consistent frozen prefix of the whole store until the next
    /// [`retract_deltas`](EdgeViewStore::retract_deltas) commit:
    /// [`snapshot_at`] exposes exactly the
    /// rows each view held at capture time, and [`delta_since`] exactly the
    /// rows routed in afterwards — regardless of how many updates a writer
    /// has applied in between. Single-writer discipline is assumed: capture
    /// the version *between* `apply_update`/`apply_batch` calls, never
    /// concurrently with one.
    ///
    /// [`snapshot_at`]: EdgeViewStore::snapshot_at
    /// [`delta_since`]: EdgeViewStore::delta_since
    pub fn version(&self) -> ViewsVersion {
        ViewsVersion {
            versions: self
                .views
                .iter()
                .map(|(e, rel)| (*e, rel.version()))
                .collect(),
        }
    }

    /// A read view of the store frozen at `version`: every view is bounded
    /// by its captured watermark, and views registered after the capture are
    /// invisible.
    pub fn snapshot_at<'a>(&'a self, version: &'a ViewsVersion) -> ViewsSnapshot<'a> {
        ViewsSnapshot {
            store: self,
            version,
        }
    }

    /// Iterates over the views that gained rows since `version` was
    /// captured, yielding one [`ViewDelta`] per grown view (views registered
    /// after the capture report all their rows as delta).
    pub fn delta_since<'a>(
        &'a self,
        version: &'a ViewsVersion,
    ) -> impl Iterator<Item = ViewDelta<'a>> {
        self.views.iter().filter_map(move |(edge, view)| {
            let from = version.versions.get(edge).copied().unwrap_or(0);
            (view.len() > from).then_some(ViewDelta { edge, view, from })
        })
    }

    /// An **owned**, `Send + Sync` read view of the store frozen at
    /// `version`: every view registered at capture time becomes an
    /// index-free snapshot relation ([`Relation::snapshot_owned`]) cut at
    /// its captured watermark, sharing the underlying frozen storage chunks
    /// instead of copying rows. Views registered after the capture are
    /// invisible, exactly like [`snapshot_at`](EdgeViewStore::snapshot_at).
    ///
    /// `edges` restricts the freeze to the views a deferred answer pass will
    /// actually read (`None` freezes every view registered at capture
    /// time) — the staged engines pass the affected queries' edges so a
    /// batch's token does not pay for untouched views.
    ///
    /// This is the handoff point of the cross-thread pipeline: the stage
    /// phase freezes the store into its token, and the answer phase joins
    /// against the frozen views on another thread while this store keeps
    /// absorbing later batches.
    pub fn freeze_at(&self, version: &ViewsVersion, edges: Option<&[GenericEdge]>) -> FrozenViews {
        let mut frozen = FrozenViews {
            views: FxHashMap::default(),
        };
        let mut add = |edge: &GenericEdge| {
            if let (Some(&watermark), Some(view)) =
                (version.versions.get(edge), self.views.get(edge))
            {
                frozen
                    .views
                    .entry(*edge)
                    .or_insert_with(|| view.snapshot_owned(watermark));
            }
        };
        match edges {
            Some(edges) => edges.iter().for_each(&mut add),
            None => self.views.keys().for_each(add),
        }
        frozen
    }

    /// [`freeze_at`](EdgeViewStore::freeze_at) specialised to "now": freezes
    /// exactly the given edges' views at their **current** versions, without
    /// materialising a store-wide [`ViewsVersion`] first. This is the staged
    /// engines' per-batch hot path — the post-routing state of the affected
    /// views *is* the watermark the deferred answer must read, and a batch
    /// typically touches a handful of views out of the whole store.
    pub fn freeze_edges(&self, edges: &[GenericEdge]) -> FrozenViews {
        let mut frozen = FrozenViews {
            views: FxHashMap::default(),
        };
        for edge in edges {
            if let Some(view) = self.views.get(edge) {
                frozen
                    .views
                    .entry(*edge)
                    .or_insert_with(|| view.snapshot_owned(view.version()));
            }
        }
        frozen
    }
}

/// A read abstraction over a set of per-edge materialized views: the live
/// [`EdgeViewStore`] or an owned [`FrozenViews`] snapshot. The shared path
/// join kernels ([`full_path_relation`], [`delta_path_relation`]) are
/// generic over this, so an engine's deferred answer pass runs the exact
/// same code against frozen views on another thread that its eager pass
/// runs against the live store.
pub trait ViewSource {
    /// The view of `edge`, if visible in this source.
    fn view(&self, edge: &GenericEdge) -> Option<&Relation>;
}

impl ViewSource for EdgeViewStore {
    fn view(&self, edge: &GenericEdge) -> Option<&Relation> {
        self.get(edge)
    }
}

/// An owned, `Send + Sync` snapshot of an [`EdgeViewStore`] frozen at a
/// [`ViewsVersion`] — see [`EdgeViewStore::freeze_at`]. Each contained view
/// is an index-free snapshot relation sharing the store's frozen storage
/// chunks.
#[derive(Debug, Default)]
pub struct FrozenViews {
    views: FxHashMap<GenericEdge, Relation>,
}

impl FrozenViews {
    /// The frozen view of `edge`, if it was registered (and requested) at
    /// capture time.
    pub fn get(&self, edge: &GenericEdge) -> Option<&Relation> {
        self.views.get(edge)
    }

    /// Number of frozen views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True if no view was frozen.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }
}

impl ViewSource for FrozenViews {
    fn view(&self, edge: &GenericEdge) -> Option<&Relation> {
        self.views.get(edge)
    }
}

/// A row-count watermark for every view of an [`EdgeViewStore`] at one
/// instant — see [`EdgeViewStore::version`].
#[derive(Debug, Clone, Default)]
pub struct ViewsVersion {
    versions: FxHashMap<GenericEdge, usize>,
}

impl ViewsVersion {
    /// The captured watermark of `edge`'s view (0 if the view did not exist
    /// at capture time).
    pub fn of(&self, edge: &GenericEdge) -> usize {
        self.versions.get(edge).copied().unwrap_or(0)
    }
}

/// A read view of an [`EdgeViewStore`] frozen at a [`ViewsVersion`] — see
/// [`EdgeViewStore::snapshot_at`].
#[derive(Debug, Clone, Copy)]
pub struct ViewsSnapshot<'a> {
    store: &'a EdgeViewStore,
    version: &'a ViewsVersion,
}

impl<'a> ViewsSnapshot<'a> {
    /// The frozen prefix of `edge`'s view, if the view existed at capture
    /// time (views registered after the capture are invisible).
    pub fn get(&self, edge: &GenericEdge) -> Option<crate::relation::RelationSnapshot<'a>> {
        let watermark = *self.version.versions.get(edge)?;
        Some(self.store.get(edge)?.snapshot_at(watermark))
    }
}

/// The rows one view gained since a [`ViewsVersion`] capture — see
/// [`EdgeViewStore::delta_since`].
#[derive(Debug, Clone, Copy)]
pub struct ViewDelta<'a> {
    /// The generic edge whose view grew.
    pub edge: &'a GenericEdge,
    /// The grown view.
    pub view: &'a Relation,
    /// Watermark the delta starts at: `view` rows `from..` are the delta.
    pub from: usize,
}

impl<'a> ViewDelta<'a> {
    /// Iterates over the delta rows.
    pub fn rows(&self) -> impl Iterator<Item = &'a [Sym]> {
        self.view.delta_since(self.from)
    }
}

impl HeapSize for EdgeViewStore {
    fn heap_size(&self) -> usize {
        self.views.heap_size()
    }
}

/// Extends every row of `rel` (last column = frontier vertex) to the right
/// with the matching tuples of `view` (joined on the view's source column).
/// `cache` selects between the persistent join-structure cache of the `+`
/// engine variants (live or a frozen stage-time publication) and a
/// throw-away build; `buf` is caller-provided row scratch so repeated
/// extensions share one allocation.
fn extend_path_right(
    rel: &Relation,
    view: &Relation,
    cache: BuildCache<'_>,
    buf: &mut Vec<Sym>,
) -> Relation {
    let out_arity = rel.arity() + 1;
    // Distinct inputs × distinct view rows keyed on the shared frontier
    // vertex yield distinct outputs; skip the dedup index.
    let mut out = Relation::new_distinct(out_arity);
    if rel.is_empty() || view.is_empty() {
        return out;
    }
    let last = rel.arity() - 1;
    buf.clear();
    buf.resize(out_arity, Sym(0));
    let build_storage;
    let build = match cache {
        BuildCache::Live(cache) => cache.get_or_build(view, &[0]),
        BuildCache::Frozen(frozen) => match frozen.get(view, &[0]) {
            Some(build) => build,
            None => {
                build_storage = JoinBuild::build(view, &[0]);
                &build_storage
            }
        },
        BuildCache::None => {
            build_storage = JoinBuild::build(view, &[0]);
            &build_storage
        }
    };
    for row in rel.iter() {
        build.probe_each(view, &[row[last]], |idx| {
            buf[..row.len()].copy_from_slice(row);
            buf[out_arity - 1] = view.row(idx)[1];
            out.append_distinct(buf);
        });
    }
    out
}

/// Extends every row of `rel` (first column = frontier vertex) to the left
/// with the matching tuples of `view` (joined on the view's target column).
fn extend_path_left(
    rel: &Relation,
    view: &Relation,
    cache: BuildCache<'_>,
    buf: &mut Vec<Sym>,
) -> Relation {
    let out_arity = rel.arity() + 1;
    let mut out = Relation::new_distinct(out_arity);
    if rel.is_empty() || view.is_empty() {
        return out;
    }
    buf.clear();
    buf.resize(out_arity, Sym(0));
    let build_storage;
    let build = match cache {
        BuildCache::Live(cache) => cache.get_or_build(view, &[1]),
        BuildCache::Frozen(frozen) => match frozen.get(view, &[1]) {
            Some(build) => build,
            None => {
                build_storage = JoinBuild::build(view, &[1]);
                &build_storage
            }
        },
        BuildCache::None => {
            build_storage = JoinBuild::build(view, &[1]);
            &build_storage
        }
    };
    for row in rel.iter() {
        build.probe_each(view, &[row[0]], |idx| {
            buf[0] = view.row(idx)[0];
            buf[1..].copy_from_slice(row);
            out.append_distinct(buf);
        });
    }
    out
}

/// The **full** relation of a covering path (one column per path position),
/// joined left-to-right from the per-edge views of `views`. Returns an empty
/// relation of arity `edges.len() + 1` as soon as any view is missing or any
/// intermediate result is empty. Shared by the INV/INC baselines and the
/// spanning-path machinery of [`crate::shard::ShardedEngine`]; generic over
/// [`ViewSource`] so deferred answer passes can run it against
/// [`FrozenViews`] on another thread.
pub fn full_path_relation(
    views: &impl ViewSource,
    edges: &[GenericEdge],
    mut cache: BuildCache<'_>,
    buf: &mut Vec<Sym>,
) -> Relation {
    let empty = || Relation::new(edges.len() + 1);
    let Some(first) = views.view(&edges[0]) else {
        return empty();
    };
    if first.is_empty() {
        return empty();
    }
    let mut rel = first.clone();
    for e in &edges[1..] {
        let Some(view) = views.view(e) else {
            return empty();
        };
        rel = extend_path_right(&rel, view, cache.reborrow(), buf);
        if rel.is_empty() {
            return empty();
        }
    }
    rel
}

/// The **delta** relation of a covering path for one batch: every path tuple
/// that uses at least one tuple of the batch's per-edge delta relations at a
/// position whose generic edge gained it. Seeds each matched position with
/// the merged edge delta and extends right then left over the post-batch
/// views — the standard incremental-join derivative, so the result is
/// exactly `full_after − full_before`. For a single-update batch the seeds
/// are one-row relations and this is the paper's per-update seeding.
///
/// The same kernel computes **deletion** deltas: called with the removed
/// rows as `edge_deltas` while `views` still holds the *pre-removal* state,
/// it yields exactly `full_before − full_after` — every path tuple that
/// used at least one removed row (set semantics make the two derivatives
/// symmetric). Engines exploit this by answering retraction batches before
/// committing them with [`EdgeViewStore::retract_deltas`].
pub fn delta_path_relation(
    views: &impl ViewSource,
    edges: &[GenericEdge],
    edge_deltas: &FxHashMap<GenericEdge, Relation>,
    mut cache: BuildCache<'_>,
    buf: &mut Vec<Sym>,
) -> Relation {
    let len = edges.len();
    let mut delta = Relation::new(len + 1);
    for pos in 0..len {
        let Some(seed) = edge_deltas.get(&edges[pos]) else {
            continue;
        };
        let mut rel = seed.clone();
        let mut ok = true;
        for e in &edges[pos + 1..] {
            match views.view(e) {
                Some(view) => rel = extend_path_right(&rel, view, cache.reborrow(), buf),
                None => {
                    ok = false;
                    break;
                }
            }
            if rel.is_empty() {
                ok = false;
                break;
            }
        }
        if !ok {
            continue;
        }
        for e in edges[..pos].iter().rev() {
            match views.view(e) {
                Some(view) => rel = extend_path_left(&rel, view, cache.reborrow(), buf),
                None => {
                    ok = false;
                    break;
                }
            }
            if rel.is_empty() {
                ok = false;
                break;
            }
        }
        if ok && !rel.is_empty() {
            debug_assert_eq!(rel.arity(), len + 1);
            delta.extend_from(&rel);
        }
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::term::{PatternEdge, Term};

    fn ge(label: u32, src: Term, tgt: Term) -> GenericEdge {
        GenericEdge::from_pattern(&PatternEdge::new(Sym(label), src, tgt))
    }

    #[test]
    fn update_is_routed_to_all_matching_views() {
        let mut store = EdgeViewStore::new();
        let var_var = ge(0, Term::Var(0), Term::Var(1));
        let var_const = ge(0, Term::Var(0), Term::Const(Sym(100)));
        let const_const = ge(0, Term::Const(Sym(50)), Term::Const(Sym(100)));
        let other_label = ge(1, Term::Var(0), Term::Var(1));
        for e in [var_var, var_const, const_const, other_label] {
            store.register(e);
        }
        let affected = store.apply_update(&Update::new(Sym(0), Sym(50), Sym(100)));
        assert_eq!(affected.len(), 3);
        assert!(store.get(&var_var).unwrap().len() == 1);
        assert!(store.get(&var_const).unwrap().len() == 1);
        assert!(store.get(&const_const).unwrap().len() == 1);
        assert!(store.get(&other_label).unwrap().is_empty());
    }

    #[test]
    fn duplicate_updates_do_not_affect_views() {
        let mut store = EdgeViewStore::new();
        let var_var = ge(0, Term::Var(0), Term::Var(1));
        store.register(var_var);
        let u = Update::new(Sym(0), Sym(1), Sym(2));
        assert_eq!(store.apply_update(&u).len(), 1);
        assert_eq!(store.apply_update(&u).len(), 0);
        assert_eq!(store.get(&var_var).unwrap().len(), 1);
    }

    #[test]
    fn self_loop_views_only_get_loop_updates() {
        let mut store = EdgeViewStore::new();
        let loop_edge = ge(0, Term::Var(0), Term::Var(0));
        store.register(loop_edge);
        store.apply_update(&Update::new(Sym(0), Sym(1), Sym(2)));
        assert!(store.get(&loop_edge).unwrap().is_empty());
        store.apply_update(&Update::new(Sym(0), Sym(3), Sym(3)));
        assert_eq!(store.get(&loop_edge).unwrap().len(), 1);
    }

    #[test]
    fn register_is_idempotent() {
        let mut store = EdgeViewStore::new();
        let e = ge(0, Term::Var(0), Term::Var(1));
        store.register(e);
        store.apply_update(&Update::new(Sym(0), Sym(1), Sym(2)));
        store.register(e);
        assert_eq!(
            store.get(&e).unwrap().len(),
            1,
            "re-register must not wipe data"
        );
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn batch_routing_collects_per_edge_deltas() {
        let mut store = EdgeViewStore::new();
        let var_var = ge(0, Term::Var(0), Term::Var(1));
        let loop_edge = ge(0, Term::Var(0), Term::Var(0));
        let other_label = ge(1, Term::Var(0), Term::Var(1));
        for e in [var_var, loop_edge, other_label] {
            store.register(e);
        }
        // One pre-batch update: its row must not reappear in the batch delta.
        store.apply_update(&Update::new(Sym(0), Sym(1), Sym(2)));

        let batch = vec![
            Update::new(Sym(0), Sym(1), Sym(2)), // duplicate of history
            Update::new(Sym(0), Sym(3), Sym(4)),
            Update::new(Sym(0), Sym(3), Sym(4)), // duplicate inside the batch
            Update::new(Sym(0), Sym(5), Sym(5)), // self loop
        ];
        let deltas = store.apply_batch(&batch);

        let vv = deltas.get(&var_var).expect("var-var affected");
        assert_eq!(
            vv.to_sorted_vec(),
            vec![vec![Sym(3), Sym(4)], vec![Sym(5), Sym(5)],]
        );
        let lp = deltas.get(&loop_edge).expect("loop affected");
        assert_eq!(lp.to_sorted_vec(), vec![vec![Sym(5), Sym(5)]]);
        assert!(!deltas.contains_key(&other_label), "label 1 never updated");

        // The views themselves advanced exactly as sequential routing would.
        assert_eq!(store.get(&var_var).unwrap().len(), 3);
        assert_eq!(store.get(&loop_edge).unwrap().len(), 1);
    }

    #[test]
    fn batch_routing_on_empty_batch_is_empty() {
        let mut store = EdgeViewStore::new();
        store.register(ge(0, Term::Var(0), Term::Var(1)));
        assert!(store.apply_batch(&[]).is_empty());
    }

    #[test]
    fn store_snapshot_isolation_freezes_every_view() {
        let mut store = EdgeViewStore::new();
        let var_var = ge(0, Term::Var(0), Term::Var(1));
        let other = ge(1, Term::Var(0), Term::Var(1));
        store.register(var_var);
        store.register(other);
        store.apply_update(&Update::new(Sym(0), Sym(1), Sym(2)));

        let v = store.version();
        assert_eq!(v.of(&var_var), 1);
        assert_eq!(v.of(&other), 0);

        // Writer keeps routing behind the watermark — including into a view
        // registered only after the capture.
        let late = ge(2, Term::Var(0), Term::Var(1));
        store.register(late);
        store.apply_batch(&[
            Update::new(Sym(0), Sym(3), Sym(4)),
            Update::new(Sym(1), Sym(5), Sym(6)),
            Update::new(Sym(2), Sym(7), Sym(8)),
        ]);

        let snap = store.snapshot_at(&v);
        let frozen = snap.get(&var_var).expect("registered at capture");
        assert_eq!(frozen.len(), 1, "reader at v sees only pre-v rows");
        assert_eq!(frozen.row(0), &[Sym(1), Sym(2)]);
        assert!(snap.get(&other).expect("registered, empty").is_empty());
        assert!(
            snap.get(&late).is_none(),
            "view registered after the capture is invisible"
        );

        // The delta is exactly what was routed after the capture.
        let mut deltas: Vec<(GenericEdge, Vec<Vec<Sym>>)> = store
            .delta_since(&v)
            .map(|d| (*d.edge, d.rows().map(|r| r.to_vec()).collect()))
            .collect();
        deltas.sort_by_key(|(e, _)| e.label);
        assert_eq!(deltas.len(), 3);
        assert_eq!(deltas[0].1, vec![vec![Sym(3), Sym(4)]]);
        assert_eq!(deltas[1].1, vec![vec![Sym(5), Sym(6)]]);
        assert_eq!(deltas[2].1, vec![vec![Sym(7), Sym(8)]]);
    }

    #[test]
    fn frozen_views_are_owned_stable_snapshots() {
        let mut store = EdgeViewStore::new();
        let var_var = ge(0, Term::Var(0), Term::Var(1));
        let other = ge(1, Term::Var(0), Term::Var(1));
        store.register(var_var);
        store.register(other);
        store.apply_update(&Update::new(Sym(0), Sym(1), Sym(2)));

        // freeze_at an older watermark vs freeze_edges "now".
        let v = store.version();
        store.apply_update(&Update::new(Sym(0), Sym(3), Sym(4)));
        let at_v = store.freeze_at(&v, Some(&[var_var]));
        let now = store.freeze_edges(&[var_var]);
        assert_eq!(at_v.len(), 1);
        assert!(at_v.get(&other).is_none(), "not requested");
        assert_eq!(at_v.get(&var_var).unwrap().len(), 1, "frozen at v");
        assert_eq!(now.get(&var_var).unwrap().len(), 2, "frozen at now");
        // ViewSource resolution matches direct access.
        assert_eq!(now.view(&var_var).unwrap().len(), 2);

        // The writer keeps routing; both snapshots are unmoved, and they
        // can cross threads (Send) while it happens.
        store.apply_update(&Update::new(Sym(0), Sym(5), Sym(6)));
        let handle = std::thread::spawn(move || (at_v, now));
        store.apply_update(&Update::new(Sym(0), Sym(7), Sym(8)));
        let (at_v, now) = handle.join().expect("snapshots are Send");
        assert_eq!(at_v.get(&var_var).unwrap().len(), 1);
        assert_eq!(now.get(&var_var).unwrap().len(), 2);
        assert_eq!(store.get(&var_var).unwrap().len(), 4);

        // Unregistered edges are simply absent; freezing none is empty.
        assert!(store
            .freeze_edges(&[ge(9, Term::Var(0), Term::Var(1))])
            .is_empty());
        let all = store.freeze_at(&store.version(), None);
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn remove_deltas_collects_present_rows_then_commits() {
        let mut store = EdgeViewStore::new();
        let var_var = ge(0, Term::Var(0), Term::Var(1));
        let other_label = ge(1, Term::Var(0), Term::Var(1));
        store.register(var_var);
        store.register(other_label);
        store.apply_batch(&[
            Update::new(Sym(0), Sym(1), Sym(2)),
            Update::new(Sym(0), Sym(3), Sym(4)),
        ]);

        let batch = vec![
            Update::retraction(Sym(0), Sym(1), Sym(2)),
            Update::retraction(Sym(0), Sym(1), Sym(2)), // duplicate in batch
            Update::retraction(Sym(0), Sym(9), Sym(9)), // absent edge: no-op
            Update::retraction(Sym(1), Sym(5), Sym(6)), // view empty: no-op
        ];
        let deltas = store.remove_deltas(&batch);
        assert_eq!(deltas.len(), 1);
        let d = deltas.get(&var_var).expect("affected");
        assert_eq!(d.to_sorted_vec(), vec![vec![Sym(1), Sym(2)]]);
        // Pre-removal state untouched until commit.
        assert_eq!(store.get(&var_var).unwrap().len(), 2);

        store.retract_deltas(&deltas);
        assert_eq!(
            store.get(&var_var).unwrap().to_sorted_vec(),
            vec![vec![Sym(3), Sym(4)]]
        );
        // A retracted edge can be re-inserted afterwards.
        assert_eq!(
            store
                .apply_update(&Update::new(Sym(0), Sym(1), Sym(2)))
                .len(),
            1
        );
    }

    #[test]
    fn deletion_delta_is_full_before_minus_full_after() {
        // The kernel-reuse property the deletion paths rely on: seeding
        // delta_path_relation with the removed rows over the PRE-removal
        // views yields exactly full_before − full_after.
        let mut store = EdgeViewStore::new();
        let a = ge(0, Term::Var(0), Term::Var(1));
        let b = ge(1, Term::Var(1), Term::Var(2));
        store.register(a);
        store.register(b);
        store.apply_batch(&[
            Update::new(Sym(0), Sym(1), Sym(2)),
            Update::new(Sym(0), Sym(5), Sym(2)),
            Update::new(Sym(1), Sym(2), Sym(3)),
            Update::new(Sym(1), Sym(2), Sym(4)),
        ]);
        let edges = [a, b];
        let mut buf = Vec::new();
        let full_before =
            full_path_relation(&store, &edges, BuildCache::None, &mut buf).to_sorted_vec();

        let batch = vec![Update::retraction(Sym(1), Sym(2), Sym(3))];
        let removed = store.remove_deltas(&batch);
        let deletion_delta =
            delta_path_relation(&store, &edges, &removed, BuildCache::None, &mut buf);

        store.retract_deltas(&removed);
        let full_after =
            full_path_relation(&store, &edges, BuildCache::None, &mut buf).to_sorted_vec();

        let mut expected: Vec<Vec<Sym>> = full_before
            .iter()
            .filter(|row| !full_after.contains(row))
            .cloned()
            .collect();
        expected.sort();
        assert_eq!(deletion_delta.to_sorted_vec(), expected);
        assert_eq!(deletion_delta.len(), 2, "both 3-paths through (2,3) gone");
    }

    #[test]
    fn unregistered_edges_are_ignored() {
        let mut store = EdgeViewStore::new();
        let affected = store.apply_update(&Update::new(Sym(0), Sym(1), Sym(2)));
        assert!(affected.is_empty());
        assert!(store.is_empty());
    }
}
