//! A persistent pool of worker threads.
//!
//! The scaling wrappers used to pay thread spawn/teardown on every batch
//! ([`crate::shard::ShardedEngine`] spawned scoped workers per
//! `apply_batch`). This module replaces that with long-lived, channel-fed
//! workers created once and reused for the engine's whole life:
//!
//! * [`ShardedEngine`](crate::shard::ShardedEngine) runs its per-shard
//!   absorb phase as a [`scatter`](WorkerPool::scatter) over a pool sized to
//!   `min(shards, available_parallelism)` — each shard's state *moves*
//!   through the job (and back out with the result), so no `unsafe` scoped
//!   borrowing is needed.
//! * [`PipelinedEngine`](crate::pipeline::PipelinedEngine) runs its answer
//!   stage on a pool of `answer_workers` threads, feeding it the engine's
//!   detached answer tasks ([`crate::engine::DetachedAnswer`]); completed
//!   reports are re-sequenced by the pipeline's reorder buffer
//!   ([`crate::pipeline::ReorderBuffer`]), so the pool itself needs no
//!   ordering guarantee beyond FIFO dequeue.
//!
//! Jobs are plain `FnOnce() + Send` closures pulled from one shared injector
//! channel; jobs are *dequeued* in submission order, and a single-worker
//! pool therefore also *completes* them strictly in submission order. With
//! several workers, completion order is unconstrained — callers needing
//! order re-sequence results themselves ([`WorkerPool::scatter`] gathers by
//! index; the pipeline reorders by sequence number).
//!
//! Workers exit when the pool is dropped (the injector closes). Workers
//! **survive panicking jobs**: each job runs under `catch_unwind`, so a
//! panic inside one job neither kills the worker thread nor poisons the
//! shared injector lock for every later batch.
//! [`scatter`](WorkerPool::scatter) ships each job's `std::thread::Result`
//! back to the gather side and re-raises the *original* panic payload once,
//! after all sibling jobs have completed — a panicking shard aborts its own
//! batch without wedging unrelated shards or subsequent scatters.
//!
//! # Core pinning (`GSM_PIN_CORES`)
//!
//! Setting `GSM_PIN_CORES=1` (or `true`/`on`/`yes`) makes every worker pin
//! itself to one CPU core (`worker index % available_parallelism`) at
//! startup — **best effort**: on Linux the pin is applied by shelling out
//! to `taskset(1)` against the worker's kernel tid (this crate forbids
//! `unsafe`, so no direct `sched_setaffinity` call); anywhere that fails —
//! other platforms, missing `taskset`, restricted environments — the
//! worker silently runs unpinned. The flag trades scheduler freedom for
//! cache locality on dedicated benchmark boxes; leave it off elsewhere.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of persistent worker threads fed from one shared
/// injector queue. See the [module docs](self).
#[derive(Debug)]
pub struct WorkerPool {
    injector: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns a pool of `threads` persistent workers (clamped to ≥ 1),
    /// honouring the `GSM_PIN_CORES` best-effort pinning flag (see the
    /// [module docs](self)).
    pub fn new(threads: usize) -> Self {
        Self::with_pinning(threads, pin_cores_enabled())
    }

    /// Spawns a pool with pinning explicitly on or off — the testable core
    /// of [`new`](Self::new).
    fn with_pinning(threads: usize, pin: bool) -> Self {
        let threads = threads.max(1);
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let (injector, jobs) = channel::<Job>();
        let jobs = Arc::new(Mutex::new(jobs));
        let workers = (0..threads)
            .map(|i| {
                let jobs = Arc::clone(&jobs);
                std::thread::Builder::new()
                    .name(format!("gsm-worker-{i}"))
                    .spawn(move || {
                        if pin {
                            pin_current_thread(i % cores);
                        }
                        loop {
                            // Hold the lock only while dequeuing, never while
                            // running a job, so workers drain the queue in
                            // parallel. A poisoned lock is recovered rather
                            // than propagated: the guarded value is a plain
                            // `Receiver` with no invariant a mid-panic
                            // unwinder could have broken, and bailing out
                            // here would cascade one job's failure into
                            // every later batch on unrelated shards.
                            let job = {
                                jobs.lock()
                                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                                    .recv()
                            };
                            match job {
                                // Contain the panic to the job: the worker
                                // stays alive for later batches. Jobs that
                                // must surface their payload (scatter) ship
                                // it through their result channel instead.
                                Ok(job) => drop(catch_unwind(AssertUnwindSafe(job))),
                                Err(_) => break, // pool dropped, injector closed
                            }
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            injector: Some(injector),
            workers,
        }
    }

    /// The default worker count: the machine's available parallelism
    /// (`GSM_THREADS` overrides it, mirroring the harness `--threads` flag;
    /// 1 when neither is available).
    pub fn default_threads() -> usize {
        if let Ok(v) = std::env::var("GSM_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues one fire-and-forget job. Jobs are dequeued in submission
    /// order; with a single worker they also *complete* in submission order.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.injector
            .as_ref()
            .expect("pool alive")
            .send(Box::new(job))
            .expect("workers alive while pool is alive");
    }

    /// Runs every job on the pool and blocks until all complete, returning
    /// the results **in job order** (scatter/gather). Jobs may finish in any
    /// order on any worker; the gather re-indexes them.
    ///
    /// A panicking job does not wedge the pool: its payload is caught on the
    /// worker, shipped back with the gather, and re-raised here **once** —
    /// with the original payload, after every sibling job has completed —
    /// so the pool is immediately reusable for the next scatter.
    pub fn scatter<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let n = jobs.len();
        let (tx, rx) = channel::<(usize, std::thread::Result<T>)>();
        for (i, job) in jobs.into_iter().enumerate() {
            let tx = tx.clone();
            self.execute(move || {
                // The gather side hangs up early only if it panicked; a
                // failed send is then irrelevant.
                let _ = tx.send((i, catch_unwind(AssertUnwindSafe(job))));
            });
        }
        drop(tx);
        let mut slots: Vec<Option<std::thread::Result<T>>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (i, value) = rx.recv().expect("worker delivered its result");
            slots[i] = Some(value);
        }
        // Gather everything first, then re-raise the first failure (in job
        // order, for determinism): sibling jobs of a panicking job run to
        // completion and their results are simply dropped.
        let mut results = Vec::with_capacity(n);
        let mut panicked = None;
        for slot in slots {
            match slot.expect("every job reported") {
                Ok(value) => results.push(value),
                Err(payload) => {
                    if panicked.is_none() {
                        panicked = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = panicked {
            resume_unwind(payload);
        }
        results
    }
}

/// Parses a `GSM_PIN_CORES` value: `1`, `true`, `on` and `yes` (any case,
/// surrounding whitespace ignored) enable pinning; anything else — including
/// an unset variable — leaves it off.
fn parse_pin_flag(value: Option<&str>) -> bool {
    matches!(
        value.map(|v| v.trim().to_ascii_lowercase()).as_deref(),
        Some("1" | "true" | "on" | "yes")
    )
}

/// True when the `GSM_PIN_CORES` environment variable requests best-effort
/// worker core pinning.
pub fn pin_cores_enabled() -> bool {
    parse_pin_flag(std::env::var("GSM_PIN_CORES").ok().as_deref())
}

/// Best-effort pin of the calling thread to `core`. Linux only: resolves
/// the thread's kernel tid from `/proc/thread-self/stat` (first field) and
/// applies the affinity mask via `taskset(1)` — the crate forbids `unsafe`,
/// so `sched_setaffinity` cannot be called directly. Every failure mode
/// (unreadable procfs, missing `taskset`, denied affinity change) is
/// silently ignored; the thread then simply runs unpinned.
#[cfg(target_os = "linux")]
fn pin_current_thread(core: usize) {
    let Ok(stat) = std::fs::read_to_string("/proc/thread-self/stat") else {
        return;
    };
    let Some(tid) = stat.split_whitespace().next() else {
        return;
    };
    let _ = std::process::Command::new("taskset")
        .args(["-pc", &core.to_string(), tid])
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status();
}

/// No-op outside Linux: pinning is strictly best effort.
#[cfg(not(target_os = "linux"))]
fn pin_current_thread(_core: usize) {}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the injector wakes every worker out of `recv`.
        self.injector.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scatter_returns_results_in_job_order() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.threads(), 4);
        let jobs: Vec<_> = (0..32u64)
            .map(|i| {
                move || {
                    // Stagger finish times so out-of-order completion is
                    // actually exercised.
                    if i % 3 == 0 {
                        std::thread::yield_now();
                    }
                    i * i
                }
            })
            .collect();
        let results = pool.scatter(jobs);
        assert_eq!(results, (0..32u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_executes_fifo() {
        let pool = WorkerPool::new(1);
        let counter = Arc::new(AtomicUsize::new(0));
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..16 {
            let counter = Arc::clone(&counter);
            let order = Arc::clone(&order);
            pool.execute(move || {
                order.lock().unwrap().push(i);
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        // Jobs owned by the single worker run strictly in submission order.
        let results: Vec<usize> = pool.scatter(vec![|| 7usize]);
        assert_eq!(results, vec![7]);
        assert_eq!(counter.load(Ordering::SeqCst), 16);
        assert_eq!(*order.lock().unwrap(), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_can_move_state_through_and_back() {
        // The ownership ping-pong the sharded absorb phase relies on: move a
        // value into the job, mutate it there, get it back from scatter.
        let pool = WorkerPool::new(2);
        let shards: Vec<Vec<u32>> = vec![vec![1], vec![2, 2], vec![3, 3, 3]];
        let jobs: Vec<_> = shards
            .into_iter()
            .map(|mut shard| {
                move || {
                    shard.push(99);
                    shard
                }
            })
            .collect();
        let back = pool.scatter(jobs);
        assert_eq!(back[0], vec![1, 99]);
        assert_eq!(back[2], vec![3, 3, 3, 99]);
    }

    #[test]
    fn clamps_to_one_thread_and_drops_cleanly() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.scatter(vec![|| 1, || 2]), vec![1, 2]);
        drop(pool); // join must not hang
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(WorkerPool::default_threads() >= 1);
    }

    #[test]
    fn pin_flag_parses_truthy_values_only() {
        for on in ["1", "true", "on", "yes", " TRUE ", "Yes"] {
            assert!(parse_pin_flag(Some(on)), "{on:?} must enable pinning");
        }
        for off in ["0", "false", "off", "no", "", "2", "enabled"] {
            assert!(!parse_pin_flag(Some(off)), "{off:?} must not enable");
        }
        assert!(!parse_pin_flag(None), "unset must not enable");
    }

    #[test]
    fn scatter_survives_a_panicking_job_and_scatters_again() {
        // Regression: a panicking job used to kill its worker thread, so a
        // later scatter on the same pool would hang on a gather that never
        // completes (or die on a poisoned-injector expect) instead of the
        // original payload propagating once.
        let pool = WorkerPool::new(2);
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("shard 1 exploded")),
            Box::new(|| 3),
        ];
        let payload = catch_unwind(AssertUnwindSafe(|| pool.scatter(jobs)))
            .expect_err("the job's panic must propagate to the scatter caller");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .expect("original payload preserved");
        assert_eq!(message, "shard 1 exploded");

        // The same pool must still have live workers for unrelated batches.
        let results = pool.scatter((0..8u32).map(|i| move || i * 2).collect::<Vec<_>>());
        assert_eq!(results, (0..8u32).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn first_panic_in_job_order_wins_when_several_jobs_panic() {
        let pool = WorkerPool::new(4);
        let jobs: Vec<Box<dyn FnOnce() + Send>> = (0..4)
            .map(|i| Box::new(move || panic!("boom {i}")) as Box<dyn FnOnce() + Send>)
            .collect();
        let payload = catch_unwind(AssertUnwindSafe(|| pool.scatter(jobs)))
            .expect_err("panics must propagate");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("formatted payload preserved");
        assert_eq!(message, "boom 0", "job-order first panic is re-raised");
        assert_eq!(pool.scatter(vec![|| 41, || 42]), vec![41, 42]);
    }

    #[test]
    fn fire_and_forget_panic_does_not_kill_the_worker() {
        let pool = WorkerPool::new(1);
        pool.execute(|| panic!("detached job panic"));
        // The single worker must survive to run (and complete) this scatter.
        assert_eq!(pool.scatter(vec![|| 5usize]), vec![5]);
    }

    #[test]
    fn pinned_pool_still_scatters_in_order() {
        // Pinning is best effort — the observable contract (scatter results
        // in job order, clean drop) must hold whether or not any pin call
        // actually succeeded on this machine.
        let pool = WorkerPool::with_pinning(4, true);
        assert_eq!(pool.threads(), 4);
        let jobs: Vec<_> = (0..16u64).map(|i| move || i + 1).collect();
        assert_eq!(
            pool.scatter(jobs),
            (1..=16u64).collect::<Vec<_>>(),
            "pinned pool must preserve the scatter contract"
        );
    }
}
