//! The pipelined streaming executor: a latency-budgeted batcher in front of
//! any [`ContinuousEngine`], overlapping the answer phase of one batch with
//! the routing/propagation of the next.
//!
//! # Why this exists
//!
//! The three phases of the paper's answering algorithm — routing updates to
//! materialized views, delta propagation down the trie forest, and the final
//! covering-path join — run strictly serialized in `apply_batch`. But the
//! views are insert-only, so a version watermark ([`Relation::version`])
//! frozen when batch *N* finishes propagation identifies exactly the state
//! its join pass must read **forever**: batch *N + 1* can be routed and
//! propagated (appending past the watermarks) before batch *N* is answered,
//! and the deferred answer still produces byte-identical reports. The
//! [`ContinuousEngine::stage_batch`] / [`ContinuousEngine::answer_staged`]
//! split encapsulates this per engine; [`PipelinedEngine`] turns it into a
//! streaming executor:
//!
//! ```text
//!   push(u) ─▶ DeadlineBatcher ──flush (size │ deadline)──▶ stage_batch(N+1)
//!                                                               │
//!                staged window (depth ≥ 1)  ◀──────────────────┘
//!                     │ window full
//!                     ▼
//!              answer_staged(N)  ─▶ CompletedBatch reports, arrival order
//! ```
//!
//! With the default window depth of 1, batch *N + 1* is always staged
//! *before* batch *N* is answered — the phase overlap the ROADMAP's
//! delta-view-versioning item asks for. Reports complete in arrival order,
//! so concatenating (or merging) them reproduces sequential execution
//! exactly; the differential suites in `tests/engine_equivalence.rs` and
//! `tests/concurrent_pipeline.rs` pin this for every engine, workload,
//! flush size and deadline.
//!
//! # True cross-thread pipelining
//!
//! With [`PipelineConfig::answer_thread`] the staged window stops being an
//! interleaving on one thread and becomes a real pipeline across threads:
//!
//! ```text
//!   caller thread:   stage(N) ─ stage(N+1) ─ stage(N+2) ─ …
//!                        │detach      │detach      │detach
//!                        ▼            ▼            ▼
//!   answer workers:  answer(N)    answer(N+1)  answer(N+2)   (any order,
//!                        │            │            │          any worker)
//!                        ▼            ▼            ▼
//!   reorder buffer:  CompletedBatch(N), (N+1), (N+2)          (FIFO)
//! ```
//!
//! Each flushed batch is staged on the calling thread, then **detached**
//! ([`ContinuousEngine::detach_staged`]): the engine freezes everything its
//! covering-path join pass reads — batch deltas plus
//! [`Relation::snapshot_owned`] view snapshots at the staged watermarks —
//! into a self-contained `Send` task, which the answer stage (a
//! [`WorkerPool`] of [`PipelineConfig::answer_workers`] threads) executes
//! while the calling thread routes and propagates the next batch. The
//! chunked append-only relation storage is what makes the snapshots cheap:
//! frozen chunks are shared by `Arc`, never copied. With more than one
//! worker, answer tasks run concurrently and may *finish* in any order;
//! every result is tagged with its submission sequence number and a
//! [`ReorderBuffer`] releases reports strictly in arrival order, so the
//! FIFO [`CompletedBatch`] contract holds for any worker count. When more
//! than `max(depth, answer_workers)` batches are in flight the caller
//! blocks on the oldest answer, which bounds the window exactly like the
//! inline mode while still letting every worker stay busy.
//!
//! **Retractions pipeline too.** Every flushed batch is split into
//! same-sign [`sign_runs`] and each run staged separately: insert runs
//! defer their join pass against frozen watermarks as before, and
//! retraction runs commit their removal at stage time while freezing
//! generation-pinned pre-removal snapshots ([`Relation::snapshot_owned`])
//! into the token, so their (expensive) disappearing-embedding join also
//! runs on the answer workers. Deletion-heavy and sliding-window streams
//! therefore keep the window full instead of degenerating to sequential
//! execution behind a barrier (see the staging contract on
//! [`ContinuousEngine::stage_batch`]).
//!
//! # The latency budget
//!
//! [`DeadlineBatcher`] flushes a batch when it reaches `max_batch` updates
//! **or** when the oldest buffered update has waited `max_delay` — the
//! ROADMAP's "adaptive batching" item: throughput keeps rising with batch
//! size, so a streaming caller batches as much as its latency budget allows
//! and no more. The executor is deterministic: deadlines are only observed
//! at [`PipelinedEngine::push_at`] / [`PipelinedEngine::poll_at`] calls
//! (there is no timer thread), and every entry point takes an explicit
//! `Instant` so tests can drive a synthetic clock — in threaded mode only
//! *where* the answer pass runs changes, never which batches exist or what
//! they report.
//!
//! [`Relation::version`]: crate::relation::Relation::version
//! [`Relation::snapshot_owned`]: crate::relation::Relation::snapshot_owned
//! [`WorkerPool`]: crate::pool::WorkerPool

use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::{Duration, Instant};

use crate::engine::{
    ContinuousEngine, DetachedAnswer, EngineStats, MatchReport, QueryId, StagedBatch,
};
use crate::error::{Error, Result};
use crate::model::update::{sign_runs, Update};
use crate::pool::WorkerPool;
use crate::query::pattern::QueryPattern;
use crate::relation::fasthash::FxHashMap;

/// Configuration of the pipelined executor: the batcher's flush policy plus
/// the staged-window depth and the answer-stage placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Flush when the buffer reaches this many updates (clamped to ≥ 1).
    pub max_batch: usize,
    /// Flush when the oldest buffered update has waited this long.
    pub max_delay: Duration,
    /// Staged batches allowed in flight before the oldest is answered.
    /// Depth 1 (the default) answers batch *N* only once batch *N + 1* has
    /// been staged; depth 0 degenerates to stage-then-answer immediately.
    pub depth: usize,
    /// Run the answer phase on dedicated worker threads (**true
    /// cross-thread pipelining**): each flushed batch is staged on the
    /// calling thread, detached ([`ContinuousEngine::detach_staged`]) and
    /// handed to the answer stage, so the covering-path join of batch *N*
    /// runs concurrently with the routing/propagation of batch *N + 1*.
    /// The in-flight window is bounded by `max(depth, answer_workers)`
    /// (the caller blocks on the oldest answer when the window is full —
    /// bounded-channel backpressure). False (the default) answers inline on
    /// the calling thread, exactly as before.
    pub answer_thread: bool,
    /// Number of answer workers in threaded mode (clamped to ≥ 1; ignored
    /// inline). With several workers, detached answer tasks execute
    /// concurrently and complete out of order; a sequence-numbered
    /// [`ReorderBuffer`] restores arrival order before any
    /// [`CompletedBatch`] is released, so reports are byte-identical to the
    /// single-worker (and sequential) execution. Defaults to
    /// `GSM_ANSWER_THREADS` (see
    /// [`default_answer_workers`](PipelineConfig::default_answer_workers)).
    pub answer_workers: usize,
    /// Sliding-window TTL: when set, an edge inserted at time *t* is
    /// retracted automatically at *t + window* unless re-inserted (which
    /// refreshes its deadline) or explicitly retracted first. The
    /// [`DeadlineBatcher`] synthesizes the expiry retractions — it already
    /// owns the clock — and emits them at the front of the next flushed
    /// batch, so registered queries see their matches disappear as edges
    /// age out. `None` (the default) keeps the unbounded, insert-only
    /// stream semantics.
    pub window: Option<Duration>,
    /// Apply retraction runs eagerly behind a full pipeline barrier (the
    /// pre-staging behaviour) instead of staging them like insert runs.
    /// Kept only for A/B comparison in the benches; the staged path is
    /// report-identical and keeps the window full on deletion-heavy
    /// streams. Defaults to false.
    pub eager_retractions: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            max_batch: 64,
            max_delay: Duration::from_millis(5),
            depth: 1,
            answer_thread: false,
            answer_workers: Self::default_answer_workers(),
            window: None,
            eager_retractions: false,
        }
    }
}

impl PipelineConfig {
    /// A config with the given flush size and deadline and the default
    /// window depth.
    pub fn new(max_batch: usize, max_delay: Duration) -> Self {
        PipelineConfig {
            max_batch,
            max_delay,
            ..Default::default()
        }
    }

    /// Sets the staged-window depth.
    pub fn with_depth(mut self, depth: usize) -> Self {
        self.depth = depth;
        self
    }

    /// Moves the answer phase onto dedicated worker threads (see
    /// [`PipelineConfig::answer_thread`]).
    pub fn threaded(mut self) -> Self {
        self.answer_thread = true;
        self
    }

    /// Sets the answer-worker count for threaded mode (see
    /// [`PipelineConfig::answer_workers`]); clamped to ≥ 1.
    pub fn with_answer_workers(mut self, workers: usize) -> Self {
        self.answer_workers = workers.max(1);
        self
    }

    /// Enables sliding-window TTL semantics (see
    /// [`PipelineConfig::window`]): edges expire `window` after their latest
    /// insertion.
    pub fn windowed(mut self, window: Duration) -> Self {
        self.window = Some(window);
        self
    }

    /// Reverts retraction runs to the eager barrier path (see
    /// [`PipelineConfig::eager_retractions`]). Bench-only escape hatch.
    pub fn with_eager_retractions(mut self) -> Self {
        self.eager_retractions = true;
        self
    }

    /// The default answer-worker count: `GSM_ANSWER_THREADS` when set to a
    /// positive integer (mirroring the harness `--answer-threads` flag),
    /// 1 otherwise. One worker reproduces the pre-existing dedicated
    /// answer-thread behaviour exactly.
    pub fn default_answer_workers() -> usize {
        std::env::var("GSM_ANSWER_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map(|n| n.max(1))
            .unwrap_or(1)
    }
}

/// `inserted_at + window`, saturating instead of overflowing: a window wide
/// enough to push the sum past the platform's `Instant` range (for example
/// `Duration::MAX`, the idiomatic "never expire" spelling) yields the
/// farthest representable deadline rather than `None`. Both expiry readers
/// — [`DeadlineBatcher::next_deadline`] and the expiry sweep — go through
/// here, so an unrepresentable deadline means "not yet due", never "drop
/// the edge" or "drop the wakeup bound".
fn saturating_deadline(inserted_at: Instant, window: Duration) -> Instant {
    match inserted_at.checked_add(window) {
        Some(deadline) => deadline,
        None => {
            // Walk the window down until the sum becomes representable; each
            // halving is a ~292-year step at the `Duration::MAX` end, so the
            // loop terminates in at most 64 iterations and the result is
            // still unreachably far in the future.
            let mut w = window / 2;
            loop {
                if let Some(deadline) = inserted_at.checked_add(w) {
                    return deadline;
                }
                w /= 2;
            }
        }
    }
}

/// The latency-budgeted batcher: accumulates updates and emits a batch when
/// it reaches the size bound **or** the oldest buffered update exceeds the
/// delay bound, whichever comes first. Time is always passed in explicitly,
/// so the flush behaviour is deterministic and testable.
///
/// With a sliding window ([`DeadlineBatcher::windowed`]) the batcher also
/// tracks every live edge it has seen and synthesizes an **expiry
/// retraction** once an edge's latest insertion is `window` old: the
/// retraction is buffered like any update (arming the flush deadline), so
/// it reaches the engine at the front of the next flushed batch.
/// Re-inserting a live edge refreshes its deadline; an explicit retraction
/// cancels the pending expiry. Expiries are observed at
/// [`push`](DeadlineBatcher::push)/[`poll`](DeadlineBatcher::poll) time —
/// there is no timer thread — so a windowed caller should poll its idle
/// loops at [`next_deadline`](DeadlineBatcher::next_deadline).
#[derive(Debug)]
pub struct DeadlineBatcher {
    max_batch: usize,
    max_delay: Duration,
    buffer: Vec<Update>,
    /// Deadline of the oldest buffered update (`None` when empty).
    deadline: Option<Instant>,
    /// Sliding-window TTL (`None`: insert-only, nothing ever expires).
    window: Option<Duration>,
    /// Live edge (sign-normalized) → instant of its latest insertion.
    live: FxHashMap<Update, Instant>,
    /// `(inserted_at, edge)` expiry queue in insertion order. Entries whose
    /// edge was re-inserted or explicitly retracted later are stale and
    /// skipped; `live` holds the authoritative latest insertion time.
    expiry: VecDeque<(Instant, Update)>,
}

impl DeadlineBatcher {
    /// Creates an empty batcher; `max_batch` is clamped to at least 1.
    pub fn new(max_batch: usize, max_delay: Duration) -> Self {
        DeadlineBatcher {
            max_batch: max_batch.max(1),
            max_delay,
            buffer: Vec::new(),
            deadline: None,
            window: None,
            live: FxHashMap::default(),
            expiry: VecDeque::new(),
        }
    }

    /// Enables the sliding window: edges expire `window` after their latest
    /// insertion (see the type docs).
    pub fn windowed(mut self, window: Duration) -> Self {
        self.window = Some(window);
        self
    }

    /// Number of buffered updates.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// Number of live (unexpired, unretracted) edges the window tracks.
    /// Always 0 without a window.
    pub fn live_edges(&self) -> usize {
        self.live.len()
    }

    /// The live (unexpired, unretracted) edge set, in arbitrary order. With
    /// an empty buffer this is exactly the surviving edge set of everything
    /// flushed so far — the from-scratch state a windowed differential
    /// oracle replays. Always empty without a window.
    pub fn live_snapshot(&self) -> Vec<Update> {
        self.live.keys().copied().collect()
    }

    /// The next instant something must happen by: the buffered batch's
    /// flush deadline or the earliest pending edge expiry, whichever comes
    /// first. Expiry bounds saturate (`saturating_deadline`): a window
    /// wide enough to overflow `Instant` means "effectively never", not
    /// "drop the bound" — the edge stays tracked and a poller sleeping on
    /// this instant is still (eventually) woken. Stale expiry entries (refreshed or retracted edges) are
    /// pruned from the queue front as they arise, so the expiry bound
    /// always names a real pending expiry — an idle caller woken at this
    /// instant never polls for a guaranteed no-op.
    pub fn next_deadline(&self) -> Option<Instant> {
        let expiry = self.window.and_then(|w| {
            self.expiry
                .front()
                .map(|&(at, _)| saturating_deadline(at, w))
        });
        match (self.deadline, expiry) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Drops expiry-queue entries whose edge was re-inserted (refreshed) or
    /// explicitly retracted from the **front** of the queue, so the front
    /// entry — the one [`next_deadline`](DeadlineBatcher::next_deadline)
    /// reports — is always live. Interior stale entries are skipped lazily
    /// when they reach the front.
    fn prune_stale_expiry(&mut self) {
        while let Some(&(at, edge)) = self.expiry.front() {
            if self.live.get(&edge) == Some(&at) {
                break;
            }
            self.expiry.pop_front();
        }
    }

    /// Records `update` in the live-edge window (no-op without a window):
    /// an insertion (re-)arms the edge's expiry, a retraction cancels it.
    fn track(&mut self, update: Update, now: Instant) {
        if self.window.is_none() {
            return;
        }
        let edge = update.edge();
        if update.is_retraction() {
            self.live.remove(&edge);
        } else {
            self.live.insert(edge, now);
            self.expiry.push_back((now, edge));
        }
        self.prune_stale_expiry();
    }

    /// Buffers a synthesized expiry retraction for every live edge whose
    /// latest insertion is at least `window` old at `now`, appending any
    /// batch that reaches `max_batch` to `out` along the way — an expiry
    /// storm emits several full batches instead of one oversized one.
    /// Stale queue entries (re-inserted or explicitly retracted edges) are
    /// dropped as they surface at the queue front.
    fn absorb_expired(&mut self, now: Instant, out: &mut Vec<Vec<Update>>) {
        let Some(window) = self.window else {
            return;
        };
        while let Some(&(inserted_at, edge)) = self.expiry.front() {
            if self.live.get(&edge) != Some(&inserted_at) {
                self.expiry.pop_front();
                continue; // stale: refreshed or retracted since.
            }
            if now < saturating_deadline(inserted_at, window) {
                break;
            }
            self.expiry.pop_front();
            self.live.remove(&edge);
            if self.buffer.is_empty() {
                self.deadline = Some(now + self.max_delay);
            }
            self.buffer.push(edge.inverted());
            if self.buffer.len() >= self.max_batch {
                self.deadline = None;
                out.push(std::mem::take(&mut self.buffer));
            }
        }
    }

    /// Flushes the buffer into `out` if it is full or the oldest buffered
    /// update's deadline has passed at `now`.
    fn flush_if_due(&mut self, now: Instant, out: &mut Vec<Vec<Update>>) {
        if self.buffer.len() >= self.max_batch || self.deadline.is_some_and(|d| now >= d) {
            self.deadline = None;
            if !self.buffer.is_empty() {
                out.push(std::mem::take(&mut self.buffer));
            }
        }
    }

    /// Buffers one update at time `now`, returning every batch that became
    /// due: the buffer when this push filled it or the oldest update's
    /// deadline has passed, preceded by any full expiry batches. With a
    /// sliding window, expiry retractions due by `now` are buffered first
    /// (so a re-inserted expired edge is retracted before its re-insertion
    /// and stays live). No returned batch ever exceeds `max_batch` updates.
    pub fn push(&mut self, update: Update, now: Instant) -> Vec<Vec<Update>> {
        let mut out = Vec::new();
        self.absorb_expired(now, &mut out);
        self.track(update, now);
        if self.buffer.is_empty() {
            self.deadline = Some(now + self.max_delay);
        }
        self.buffer.push(update);
        self.flush_if_due(now, &mut out);
        out
    }

    /// Deadline check without a new update: buffers any expiry retractions
    /// due by `now` (flushing every batch that fills up), then flushes the
    /// buffer if it is full or the oldest buffered update has waited past
    /// its deadline.
    pub fn poll(&mut self, now: Instant) -> Vec<Vec<Update>> {
        let mut out = Vec::new();
        self.absorb_expired(now, &mut out);
        self.flush_if_due(now, &mut out);
        out
    }

    /// Unconditionally flushes whatever is buffered. Takes no clock, so no
    /// expiries are synthesized — pending window state survives the flush
    /// and is observed by the next [`push`](DeadlineBatcher::push) or
    /// [`poll`](DeadlineBatcher::poll).
    pub fn flush(&mut self) -> Option<Vec<Update>> {
        self.deadline = None;
        if self.buffer.is_empty() {
            None
        } else {
            Some(std::mem::take(&mut self.buffer))
        }
    }
}

/// A sequence-numbered reorder buffer: completions tagged `0, 1, 2, …` are
/// accepted in **any** order and released strictly in sequence order.
///
/// This is what lets the threaded answer stage run [`PipelineConfig::
/// answer_workers`] concurrent answer tasks while preserving the FIFO
/// [`CompletedBatch`] contract: each detached task is tagged with its
/// submission sequence number, finished results park here, and
/// [`pop_next`](ReorderBuffer::pop_next) only ever yields the oldest
/// outstanding sequence number. The type is deliberately public (and
/// generic) so its ordering contract can be property-tested in isolation.
#[derive(Debug, Default)]
pub struct ReorderBuffer<T> {
    /// The next sequence number to release.
    next: u64,
    /// Completed-but-not-yet-oldest values, keyed by sequence number.
    parked: std::collections::BTreeMap<u64, T>,
}

impl<T> ReorderBuffer<T> {
    /// An empty buffer expecting sequence number 0 first.
    pub fn new() -> Self {
        ReorderBuffer {
            next: 0,
            parked: std::collections::BTreeMap::new(),
        }
    }

    /// Parks one completion. `seq` must not have been released or parked
    /// before (every sequence number completes exactly once).
    pub fn insert(&mut self, seq: u64, value: T) {
        debug_assert!(seq >= self.next, "sequence {seq} already released");
        let prev = self.parked.insert(seq, value);
        debug_assert!(prev.is_none(), "sequence {seq} completed twice");
    }

    /// Releases the value with the oldest outstanding sequence number, or
    /// `None` if that sequence number has not completed yet (younger parked
    /// values keep waiting — out-of-order release never happens).
    pub fn pop_next(&mut self) -> Option<T> {
        let value = self.parked.remove(&self.next)?;
        self.next += 1;
        Some(value)
    }

    /// The sequence number the next [`pop_next`](ReorderBuffer::pop_next)
    /// will release.
    pub fn next_seq(&self) -> u64 {
        self.next
    }

    /// Number of parked (completed but unreleased) values.
    pub fn len(&self) -> usize {
        self.parked.len()
    }

    /// True if nothing is parked.
    pub fn is_empty(&self) -> bool {
        self.parked.is_empty()
    }
}

/// A batch whose report completed: the number of updates it covered (in
/// stream order) and its merged [`MatchReport`]. Batches complete strictly
/// in arrival order, so concatenating `CompletedBatch`es reconstructs the
/// stream segmentation the executor chose: the batcher's flush points,
/// refined by same-sign runs (a mixed-sign flush is staged as one batch
/// per [`sign_runs`] run, each completing separately).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletedBatch {
    /// Number of stream updates this batch covered.
    pub updates: usize,
    /// The batch's report — identical to `apply_batch` over those updates.
    pub report: MatchReport,
}

/// A queued dynamic-lifecycle operation, held until the next epoch
/// boundary (see [`PipelinedEngine::queue_register`]).
#[derive(Debug)]
enum LifecycleOp {
    /// Register this pattern; it was promised the attached id at queue time.
    Register(QueryPattern, QueryId),
    /// Unregister this id.
    Unregister(QueryId),
}

/// The pipelined streaming executor: a [`DeadlineBatcher`] feeding an
/// engine's [`stage_batch`](ContinuousEngine::stage_batch) /
/// [`answer_staged`](ContinuousEngine::answer_staged) split through a small
/// staged window, so the covering-path join of batch *N* runs after the
/// routing/propagation of batch *N + 1* (see the [module docs](self)).
///
/// The wrapper is itself a [`ContinuousEngine`]: the trait entry points
/// drain the window first (a pipeline barrier) and then behave exactly like
/// the inner engine, so the executor can be dropped into any harness.
/// Reports produced while draining are retained and returned by the next
/// [`take_completed`](PipelinedEngine::take_completed) /
/// [`push`](PipelinedEngine::push) / [`drain`](PipelinedEngine::drain) call
/// — nothing is ever silently discarded.
///
/// # Dynamic query lifecycle (epochs)
///
/// A live stream cannot barrier for every subscription change, so the
/// executor also offers a **queued** lifecycle:
/// [`queue_register`](PipelinedEngine::queue_register) /
/// [`queue_unregister`](PipelinedEngine::queue_unregister) validate and
/// enqueue the operation immediately (no [`Error::RegistrationWhileStaged`], no barrier) and
/// apply it at the next **epoch boundary** — the point where the pipeline
/// drains anyway ([`drain`](PipelinedEngine::drain) or any trait entry
/// point's barrier). Every boundary increments
/// [`epoch`](PipelinedEngine::epoch); a query queued in epoch *e* observes
/// exactly
/// the updates streamed after the boundary that opened epoch *e + 1* —
/// never a partial batch.
#[derive(Debug)]
pub struct PipelinedEngine<E> {
    engine: E,
    batcher: DeadlineBatcher,
    depth: usize,
    /// Queued lifecycle operations, applied in queue order at the next
    /// epoch boundary.
    pending_ops: Vec<LifecycleOp>,
    /// Number of epoch boundaries passed (monotone; one per barrier).
    epoch: u64,
    /// Bench-only escape hatch: apply retraction runs eagerly behind a
    /// barrier instead of staging them ([`PipelineConfig::eager_retractions`]).
    eager_retractions: bool,
    /// In-flight staged batches, oldest first: `(updates, token)`. Used in
    /// inline mode only; the threaded answer stage tracks its window in
    /// [`AnswerStage::pending`].
    staged: VecDeque<(usize, StagedBatch)>,
    /// The dedicated answer thread (`Some` iff
    /// [`PipelineConfig::answer_thread`]).
    answer: Option<AnswerStage>,
    /// Answered batches not yet handed to the caller, arrival order.
    completed: Vec<CompletedBatch>,
}

/// The cross-thread answer stage: a persistent [`WorkerPool`] of
/// [`PipelineConfig::answer_workers`] threads (the same primitive the
/// sharded absorb phase runs on) executing detached answer tasks, plus the
/// FIFO bookkeeping that keeps [`CompletedBatch`]es in arrival order. Tasks
/// are dequeued in submission order but, with several workers, may *finish*
/// in any order; every result returns over `results` tagged with its
/// submission sequence number and parks in the [`ReorderBuffer`] until it
/// is the oldest outstanding one. The caller thread submits
/// `(detach → execute)` per flushed batch; blocking on the oldest report
/// when the window exceeds `max(depth, workers)` is what bounds the
/// in-flight tokens.
#[derive(Debug)]
struct AnswerStage {
    results_tx: Sender<(u64, std::thread::Result<MatchReport>)>,
    results_rx: Receiver<(u64, std::thread::Result<MatchReport>)>,
    /// Update counts of submitted, not-yet-collected batches (FIFO).
    pending: VecDeque<usize>,
    /// Sequence number of the next submission.
    next_seq: u64,
    /// Out-of-order completions awaiting their FIFO turn. A caught panic
    /// parks here like any result and is re-raised only at its own FIFO
    /// position, so reports of earlier batches are never lost to a later
    /// batch's failure.
    reorder: ReorderBuffer<std::thread::Result<MatchReport>>,
    /// The answer workers. Declared last: dropped after the result channel,
    /// once every queued task has drained.
    pool: WorkerPool,
}

impl AnswerStage {
    fn new(workers: usize) -> Self {
        let (results_tx, results_rx) = channel();
        AnswerStage {
            results_tx,
            results_rx,
            pending: VecDeque::new(),
            next_seq: 0,
            reorder: ReorderBuffer::new(),
            pool: WorkerPool::new(workers.max(1)),
        }
    }

    /// Number of answer workers.
    fn workers(&self) -> usize {
        self.pool.threads()
    }

    /// Submits one detached answer task for execution on the answer workers.
    /// Panics inside the task are caught and shipped back as the result, so
    /// the worker survives and the caller re-raises the panic on its own
    /// thread when it collects the answer — a buggy join pass fails the
    /// test/run instead of deadlocking the executor against a dead worker.
    fn submit(&mut self, updates: usize, task: DetachedAnswer) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let tx = self.results_tx.clone();
        self.pool.execute(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task.run()));
            // The receiver only hangs up when the executor is being torn
            // down; the result is then intentionally discarded.
            let _ = tx.send((seq, result));
        });
        self.pending.push_back(updates);
    }

    /// Parks every result already sitting in the channel, then releases the
    /// oldest outstanding one if it has completed (non-blocking).
    fn try_collect(&mut self) -> Option<std::thread::Result<MatchReport>> {
        while let Ok((seq, result)) = self.results_rx.try_recv() {
            self.reorder.insert(seq, result);
        }
        self.reorder.pop_next()
    }

    /// Blocks until the oldest outstanding result has completed and releases
    /// it. Must only be called with at least one pending submission.
    fn collect_blocking(&mut self) -> std::thread::Result<MatchReport> {
        loop {
            if let Some(result) = self.reorder.pop_next() {
                return result;
            }
            let (seq, result) = self
                .results_rx
                .recv()
                .expect("answer workers outlive the executor");
            self.reorder.insert(seq, result);
        }
    }
}

/// Drain-on-drop: dropping the executor mid-stream with detached answer
/// tasks outstanding blocks for each of them and **re-raises the first
/// worker panic** on the dropping thread — an in-flight join-pass failure
/// is never silently lost to teardown. Successful reports are discarded
/// (the wrapper they would complete through is going away); call
/// [`PipelinedEngine::drain`] before dropping if they matter. When the
/// thread is already unwinding, pending panics are swallowed instead of
/// aborting the process with a double panic.
impl Drop for AnswerStage {
    fn drop(&mut self) {
        while !self.pending.is_empty() {
            let result = self.collect_blocking();
            self.pending.pop_front();
            if let Err(payload) = result {
                if !std::thread::panicking() {
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

impl<E: ContinuousEngine> PipelinedEngine<E> {
    /// Wraps `engine` behind a pipelined front end.
    pub fn new(engine: E, config: PipelineConfig) -> Self {
        let mut batcher = DeadlineBatcher::new(config.max_batch, config.max_delay);
        if let Some(window) = config.window {
            batcher = batcher.windowed(window);
        }
        PipelinedEngine {
            engine,
            batcher,
            depth: config.depth,
            pending_ops: Vec::new(),
            epoch: 0,
            eager_retractions: config.eager_retractions,
            staged: VecDeque::new(),
            answer: config
                .answer_thread
                .then(|| AnswerStage::new(config.answer_workers)),
            completed: Vec::new(),
        }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Unwraps the engine. Outstanding staged batches are answered first so
    /// no staged state is abandoned; any resulting reports are dropped with
    /// the wrapper, so call [`drain`](Self::drain) first if they matter.
    pub fn into_inner(mut self) -> E {
        self.barrier();
        self.engine
    }

    /// Number of staged batches whose answer has not been collected yet.
    pub fn in_flight(&self) -> usize {
        self.staged.len() + self.answer.as_ref().map_or(0, |a| a.pending.len())
    }

    /// True if the answer phase runs on the dedicated answer thread.
    pub fn is_threaded(&self) -> bool {
        self.answer.is_some()
    }

    /// Number of updates buffered by the batcher (not yet staged).
    pub fn buffered(&self) -> usize {
        self.batcher.len()
    }

    /// Number of live edges tracked by the sliding window (always 0 without
    /// [`PipelineConfig::window`]).
    pub fn live_edges(&self) -> usize {
        self.batcher.live_edges()
    }

    /// The live (unexpired, unretracted) edge set of the sliding window, in
    /// arbitrary order. After a [`Self::drain`] this is exactly the edge set
    /// the inner engine's state reflects. Always empty without a window.
    pub fn live_snapshot(&self) -> Vec<Update> {
        self.batcher.live_snapshot()
    }

    /// Number of epoch boundaries passed so far. Every pipeline barrier —
    /// [`drain`](PipelinedEngine::drain), or any trait entry point — closes
    /// the current epoch (applying queued lifecycle operations) and opens
    /// the next.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of queued lifecycle operations awaiting the next epoch
    /// boundary.
    pub fn pending_lifecycle(&self) -> usize {
        self.pending_ops.len()
    }

    /// Queues a query registration for the next epoch boundary and returns
    /// the id the query **will** get when it applies. Unlike the trait's
    /// [`register_query`](ContinuousEngine::register_query) this never
    /// fails with [`Error::RegistrationWhileStaged`]: the operation simply
    /// waits out the in-flight window. The id is authoritative — queued
    /// registrations apply in queue order before any other registration
    /// path can run (every such path barriers first, which applies the
    /// queue) — but the query matches nothing until the boundary: updates
    /// pushed before the boundary are answered under the old epoch's query
    /// set.
    pub fn queue_register(&mut self, query: &QueryPattern) -> QueryId {
        let promised = QueryId(self.predicted_next_id());
        self.pending_ops
            .push(LifecycleOp::Register(query.clone(), promised));
        promised
    }

    /// Queues an unregistration for the next epoch boundary. The id is
    /// validated now — it must name a query that is currently registered
    /// (or queued to register) and not already queued to unregister —
    /// and the query keeps reporting until the boundary applies the
    /// operation. Never fails with [`Error::RegistrationWhileStaged`].
    pub fn queue_unregister(&mut self, query: QueryId) -> Result<()> {
        let mut live_at_boundary = self.engine.is_registered(query);
        for op in &self.pending_ops {
            match op {
                LifecycleOp::Register(_, promised) if *promised == query => {
                    live_at_boundary = true;
                }
                LifecycleOp::Unregister(q) if *q == query => {
                    live_at_boundary = false;
                }
                _ => {}
            }
        }
        if !live_at_boundary {
            return Err(Error::UnknownQuery(query.0));
        }
        self.pending_ops.push(LifecycleOp::Unregister(query));
        Ok(())
    }

    /// The id the next queued registration will be promised: the inner
    /// engine's next slot, advanced past every queued-but-unapplied
    /// registration.
    fn predicted_next_id(&self) -> u32 {
        let queued = self
            .pending_ops
            .iter()
            .filter(|op| matches!(op, LifecycleOp::Register(..)))
            .count();
        self.engine.next_query_id().0 + queued as u32
    }

    /// Applies every queued lifecycle operation, in queue order. Called at
    /// the epoch boundary, after the window has drained — the engine holds
    /// no staged state, so the inner calls cannot fail with
    /// [`Error::RegistrationWhileStaged`]; ids were validated at queue
    /// time, so any remaining failure (e.g. a persistence-layer storage
    /// error) panics like the infallible trait surface does.
    fn apply_pending_ops(&mut self) {
        for op in std::mem::take(&mut self.pending_ops) {
            match op {
                LifecycleOp::Register(pattern, promised) => {
                    let id = self
                        .engine
                        .register_query(&pattern)
                        .expect("queued registration failed at the epoch boundary");
                    debug_assert_eq!(id, promised, "promised id diverged");
                }
                LifecycleOp::Unregister(query) => {
                    self.engine
                        .unregister_query(query)
                        .expect("queued unregistration failed at the epoch boundary");
                }
            }
        }
    }

    /// Streams one update at the current wall-clock time. Returns the
    /// batches that completed as a result (often none — they complete when
    /// the window overflows).
    pub fn push(&mut self, update: Update) -> Vec<CompletedBatch> {
        self.push_at(update, Instant::now())
    }

    /// Streams one update at an explicit time `now` (deterministic variant
    /// of [`push`](Self::push) for tests and replay harnesses).
    pub fn push_at(&mut self, update: Update, now: Instant) -> Vec<CompletedBatch> {
        for batch in self.batcher.push(update, now) {
            self.stage(batch);
        }
        self.advance();
        self.take_completed()
    }

    /// Observes the clock without a new update: flushes the buffered batch
    /// if its deadline has passed and returns any batches that completed.
    /// Call this from idle loops — the executor has no timer thread.
    pub fn poll_at(&mut self, now: Instant) -> Vec<CompletedBatch> {
        for batch in self.batcher.poll(now) {
            self.stage(batch);
        }
        self.advance();
        self.take_completed()
    }

    /// Flushes the buffer and answers every staged batch: the pipeline
    /// barrier. Returns all completed batches, in arrival order.
    pub fn drain(&mut self) -> Vec<CompletedBatch> {
        self.barrier();
        self.take_completed()
    }

    /// Completed batches accumulated since the last call, arrival order.
    pub fn take_completed(&mut self) -> Vec<CompletedBatch> {
        std::mem::take(&mut self.completed)
    }

    /// Streams a whole slice through the pipeline under the real clock
    /// (each update is pushed at its own `Instant::now()`, so windowed
    /// configs synthesize expiries mid-stream as wall time advances),
    /// drains it, and returns the merge of every report — equal to merging
    /// the sequential per-update reports of the stream (both the appearing
    /// and the disappearing embeddings). Convenience for benches and tests;
    /// for a deterministic clock use
    /// [`run_stream_at`](PipelinedEngine::run_stream_at).
    pub fn run_stream(&mut self, updates: &[Update]) -> MatchReport {
        let mut report = MatchReport::empty();
        for &u in updates {
            let done = self.push_at(u, Instant::now());
            Self::fold_reports(&mut report, done);
        }
        let done = self.drain();
        Self::fold_reports(&mut report, done);
        report
    }

    /// Deterministic [`run_stream`](PipelinedEngine::run_stream): update
    /// *i* is pushed at `start + i · tick`, then the pipeline drains. A
    /// zero `tick` freezes the clock (segmentation purely size-driven); a
    /// nonzero one advances it so windowed configs expire edges mid-stream
    /// at reproducible points. The final drain synthesizes no expiries —
    /// pending window state survives for later pushes/polls to observe.
    pub fn run_stream_at(
        &mut self,
        updates: &[Update],
        start: Instant,
        tick: Duration,
    ) -> MatchReport {
        let mut report = MatchReport::empty();
        for (i, &u) in updates.iter().enumerate() {
            let done = self.push_at(u, start + tick * i as u32);
            Self::fold_reports(&mut report, done);
        }
        let done = self.drain();
        Self::fold_reports(&mut report, done);
        report
    }

    fn fold_reports(acc: &mut MatchReport, batches: Vec<CompletedBatch>) {
        for b in batches {
            *acc = acc.merge(&b.report);
        }
    }

    /// Stages one flushed batch into the window, split into same-sign
    /// [`sign_runs`] so every run reaches [`stage_batch`]
    /// (ContinuousEngine::stage_batch) sign-pure — the shape the staging
    /// contract defers: insert runs freeze post-propagation watermarks,
    /// retraction runs commit their removal at stage time and freeze
    /// generation-pinned pre-removal snapshots. Each run is sequenced
    /// separately, so the [`ReorderBuffer`] FIFO contract is untouched and
    /// a mixed flush simply completes as several [`CompletedBatch`]es.
    ///
    /// With [`PipelineConfig::eager_retractions`] (bench-only A/B), a batch
    /// containing retractions reverts to the old barrier: drain the window,
    /// apply eagerly, complete immediately.
    fn stage(&mut self, batch: Vec<Update>) {
        if self.eager_retractions && batch.iter().any(Update::is_retraction) {
            self.drain_window();
            let updates = batch.len();
            let report = self.engine.apply_batch(&batch);
            self.completed.push(CompletedBatch { updates, report });
            return;
        }
        for run in sign_runs(&batch) {
            self.stage_run(run);
        }
    }

    /// Stages one sign-pure run: inline mode keeps the token for a later
    /// `answer_staged` on this thread; threaded mode detaches it
    /// immediately and ships the self-contained answer task to the answer
    /// stage, which starts the covering-path join while this thread returns
    /// to stage the next run.
    ///
    /// Staging a **retraction** run commits the removal (compacting
    /// relation storage and bumping generations) at stage time, so the
    /// staging contract requires every earlier token to have been answered
    /// or detached first. Threaded mode satisfies this by construction —
    /// every token is detached (its answer inputs frozen behind `Arc`
    /// pins) the moment it is staged. Inline tokens may instead hold
    /// watermarks into live relations, so the inline window is answered
    /// first; that costs nothing, as inline answering runs on this thread
    /// anyway.
    fn stage_run(&mut self, run: &[Update]) {
        let updates = run.len();
        if self.answer.is_none() {
            if run.first().is_some_and(Update::is_retraction) {
                while !self.staged.is_empty() {
                    self.answer_oldest();
                }
            }
            let token = self.engine.stage_batch(run);
            self.staged.push_back((updates, token));
            return;
        }
        let token = self.engine.stage_batch(run);
        let task = self.engine.detach_staged(token);
        if let Some(stage) = self.answer.as_mut() {
            stage.submit(updates, task);
        }
    }

    /// Answers/collects staged batches (oldest first) until the window is
    /// back under its bound. In threaded mode, already-finished reports are
    /// drained without blocking first, and the bound is
    /// `max(depth, answer_workers)` — a window at least as deep as the
    /// worker count, so every worker can hold a task; only an over-full
    /// window blocks on the oldest outstanding answer (the pipeline's
    /// backpressure). Inline mode bounds by `depth` exactly as before.
    fn advance(&mut self) {
        if let Some(stage) = self.answer.as_ref() {
            let window = self.depth.max(stage.workers());
            self.collect_ready();
            while self.answer.as_ref().expect("threaded mode").pending.len() > window {
                self.complete_one_blocking();
            }
        } else {
            while self.staged.len() > self.depth {
                self.answer_oldest();
            }
        }
    }

    /// Answers the oldest staged batch into `completed` (inline mode).
    fn answer_oldest(&mut self) {
        if let Some((updates, token)) = self.staged.pop_front() {
            let report = self.engine.answer_staged(token);
            self.completed.push(CompletedBatch { updates, report });
        }
    }

    /// Drains every answer-thread report that is already available, in
    /// FIFO order, without blocking.
    fn collect_ready(&mut self) {
        loop {
            let Some(stage) = self.answer.as_mut() else {
                return;
            };
            if stage.pending.is_empty() {
                return;
            }
            let Some(result) = stage.try_collect() else {
                return;
            };
            let updates = stage.pending.pop_front().expect("pending answer");
            let report = match result {
                Ok(report) => report,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            self.engine.absorb_answered(&report);
            self.completed.push(CompletedBatch { updates, report });
        }
    }

    /// Blocks for the oldest outstanding answer-thread report and completes
    /// it. A panic caught inside the answer task resumes here, on the
    /// caller thread.
    fn complete_one_blocking(&mut self) {
        let (updates, report) = {
            let stage = self.answer.as_mut().expect("threaded mode");
            if stage.pending.is_empty() {
                return;
            }
            let result = stage.collect_blocking();
            let updates = stage.pending.pop_front().expect("pending answer");
            let report = match result {
                Ok(report) => report,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            (updates, report)
        };
        self.engine.absorb_answered(&report);
        self.completed.push(CompletedBatch { updates, report });
    }

    /// Flushes the batcher and empties the staged window (both modes), then
    /// closes the epoch: queued lifecycle operations apply here — after
    /// every pre-boundary update has been answered, before anything
    /// post-boundary runs — and the epoch counter advances.
    fn barrier(&mut self) {
        if let Some(batch) = self.batcher.flush() {
            self.stage(batch);
        }
        self.drain_window();
        self.apply_pending_ops();
        self.epoch += 1;
    }

    /// Empties the staged window without touching the batcher: blocks for
    /// every pending answer-thread report, then answers every inline
    /// staged token, oldest first.
    fn drain_window(&mut self) {
        while self
            .answer
            .as_ref()
            .is_some_and(|stage| !stage.pending.is_empty())
        {
            self.complete_one_blocking();
        }
        while !self.staged.is_empty() {
            self.answer_oldest();
        }
    }
}

impl<E: ContinuousEngine> ContinuousEngine for PipelinedEngine<E> {
    fn name(&self) -> &'static str {
        self.engine.name()
    }

    /// Registers on the inner engine. Registration must not interleave with
    /// staged batches (see the staging contract on
    /// [`ContinuousEngine::stage_batch`]): with staged tokens outstanding
    /// ([`in_flight`](PipelinedEngine::in_flight) > 0) this returns
    /// [`Error::RegistrationWhileStaged`] — call
    /// [`drain`](PipelinedEngine::drain) first. Updates that are merely
    /// *buffered* (not yet staged) are flushed and answered before
    /// registering, so their reports are retained, not lost.
    fn register_query(&mut self, query: &QueryPattern) -> Result<QueryId> {
        let outstanding = self.in_flight();
        if outstanding > 0 {
            return Err(Error::RegistrationWhileStaged(outstanding));
        }
        self.barrier();
        self.engine.register_query(query)
    }

    /// Unregisters on the inner engine behind the same barrier discipline
    /// as [`register_query`](PipelinedEngine::register_query): fails with
    /// [`Error::RegistrationWhileStaged`] while staged tokens are
    /// outstanding. For a live stream, prefer
    /// [`queue_unregister`](PipelinedEngine::queue_unregister), which waits
    /// out the window instead of failing.
    fn unregister_query(&mut self, query: QueryId) -> Result<()> {
        let outstanding = self.in_flight();
        if outstanding > 0 {
            return Err(Error::RegistrationWhileStaged(outstanding));
        }
        self.barrier();
        self.engine.unregister_query(query)
    }

    fn next_query_id(&self) -> QueryId {
        self.engine.next_query_id()
    }

    fn is_registered(&self, query: QueryId) -> bool {
        self.engine.is_registered(query)
    }

    /// Barrier, then the inner engine's `apply_update`: the report covers
    /// exactly this update, like any engine's.
    fn apply_update(&mut self, update: Update) -> MatchReport {
        self.barrier();
        self.engine.apply_update(update)
    }

    /// Barrier, then the inner engine's `apply_batch`: the report covers
    /// exactly this batch, like any engine's.
    fn apply_batch(&mut self, updates: &[Update]) -> MatchReport {
        self.barrier();
        self.engine.apply_batch(updates)
    }

    fn num_queries(&self) -> usize {
        self.engine.num_queries()
    }

    fn heap_bytes(&self) -> usize {
        self.engine.heap_bytes()
    }

    /// The inner engine's counters. While batches are in flight,
    /// `updates_processed` (stage-time) runs ahead of
    /// `notifications`/`embeddings` (answer-time); after a
    /// [`drain`](PipelinedEngine::drain) the counters are exactly those of
    /// sequential batched execution.
    fn stats(&self) -> EngineStats {
        self.engine.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Sym;

    fn u(label: u32, src: u32, tgt: u32) -> Update {
        Update::new(Sym(label), Sym(src), Sym(tgt))
    }

    fn t0() -> Instant {
        Instant::now()
    }

    const MS: Duration = Duration::from_millis(1);

    /// Unwraps a push/poll result expected to contain exactly one batch.
    fn only(batches: Vec<Vec<Update>>) -> Vec<Update> {
        assert_eq!(batches.len(), 1, "expected exactly one flushed batch");
        batches.into_iter().next().unwrap()
    }

    #[test]
    fn batcher_flushes_on_size() {
        let mut b = DeadlineBatcher::new(3, Duration::from_secs(60));
        let now = t0();
        assert!(b.push(u(0, 1, 2), now).is_empty());
        assert!(b.push(u(0, 2, 3), now).is_empty());
        assert_eq!(b.len(), 2);
        let batch = only(b.push(u(0, 3, 4), now));
        assert_eq!(batch.len(), 3);
        assert!(b.is_empty());
        assert!(b.next_deadline().is_none());
    }

    #[test]
    fn batcher_flushes_on_deadline() {
        let mut b = DeadlineBatcher::new(1000, 5 * MS);
        let now = t0();
        assert!(b.push(u(0, 1, 2), now).is_empty());
        let deadline = b.next_deadline().expect("armed");
        assert_eq!(deadline, now + 5 * MS);
        // Deadline is measured from the *oldest* buffered update.
        assert!(b.push(u(0, 2, 3), now + 3 * MS).is_empty());
        assert!(b.poll(now + 4 * MS).is_empty(), "before the deadline");
        let batch = only(b.poll(now + 5 * MS));
        assert_eq!(batch.len(), 2);
        // A push at/after the deadline flushes too (no poll needed).
        assert!(b.push(u(0, 3, 4), now + 10 * MS).is_empty());
        let batch = only(b.push(u(0, 4, 5), now + 16 * MS));
        assert_eq!(batch.len(), 2);
        // Empty batcher never deadline-flushes.
        assert!(b.poll(now + 100 * MS).is_empty());
    }

    #[test]
    fn batcher_clamps_degenerate_size() {
        let mut b = DeadlineBatcher::new(0, Duration::from_secs(1));
        assert_eq!(only(b.push(u(0, 1, 2), t0())).len(), 1);
    }

    #[test]
    fn batcher_never_exceeds_max_batch_under_expiry_storms() {
        // 5 live edges all expire at once with max_batch 2: the expiry
        // storm plus the incoming push must come out as bounded batches
        // ([2, 2, 2], never one batch of 6) with every update preserved in
        // order.
        let mut b = DeadlineBatcher::new(2, Duration::from_secs(60)).windowed(10 * MS);
        let now = t0();
        let mut flushed: Vec<Vec<Update>> = Vec::new();
        for i in 0..5u32 {
            flushed.extend(b.push(u(0, i, i + 1), now));
        }
        assert_eq!(flushed.len(), 2, "5 inserts at size 2 flush twice");
        assert_eq!(b.len(), 1, "one insert still buffered");
        assert_eq!(b.live_edges(), 5);
        let batches = b.push(u(1, 9, 9), now + 10 * MS);
        let total: usize = batches.iter().map(Vec::len).sum();
        assert_eq!(total, 1 + 5, "buffered insert + 5 expiries");
        assert!(
            batches.iter().all(|batch| batch.len() <= 2),
            "a batch exceeded max_batch: {batches:?}"
        );
        // Order: the buffered insert first, then the expiries; the pushed
        // insert stays buffered (it did not fill a batch).
        let flat: Vec<Update> = batches.into_iter().flatten().collect();
        assert_eq!(flat[0], u(0, 4, 5));
        assert!(flat[1..6].iter().all(Update::is_retraction));
        assert_eq!(b.len(), 1, "the pushed insert is buffered");
        assert_eq!(b.live_edges(), 1);
    }

    /// A deterministic split engine that records the interleaving of its
    /// stage and answer phases: every update with an even label satisfies
    /// query 0. Stage stamps the token with a sequence number; answer
    /// verifies FIFO consumption.
    #[derive(Default)]
    struct SplitToy {
        stats: EngineStats,
        staged_seq: u64,
        answered_seq: u64,
        /// Registration slots ever issued (the reports still always name
        /// query 0, whose existence the tests assume).
        queries: u32,
        /// Tombstoned slots.
        dead: std::collections::HashSet<u32>,
        /// Event log: (phase, batch sequence number).
        log: Vec<(&'static str, u64)>,
    }

    struct ToyToken {
        seq: u64,
        hits: u64,
    }

    impl ContinuousEngine for SplitToy {
        fn name(&self) -> &'static str {
            "SPLIT-TOY"
        }
        fn register_query(&mut self, _q: &QueryPattern) -> Result<QueryId> {
            let id = QueryId(self.queries);
            self.queries += 1;
            Ok(id)
        }
        fn unregister_query(&mut self, query: QueryId) -> Result<()> {
            if query.0 >= self.queries || !self.dead.insert(query.0) {
                return Err(Error::UnknownQuery(query.0));
            }
            Ok(())
        }
        fn next_query_id(&self) -> QueryId {
            QueryId(self.queries)
        }
        fn is_registered(&self, query: QueryId) -> bool {
            query.0 < self.queries && !self.dead.contains(&query.0)
        }
        fn apply_update(&mut self, update: Update) -> MatchReport {
            self.apply_batch(&[update])
        }
        fn apply_batch(&mut self, updates: &[Update]) -> MatchReport {
            let staged = self.stage_batch(updates);
            self.answer_staged(staged)
        }
        fn stage_batch(&mut self, updates: &[Update]) -> StagedBatch {
            self.stats.updates_processed += updates.len() as u64;
            let seq = self.staged_seq;
            self.staged_seq += 1;
            self.log.push(("stage", seq));
            let hits = updates
                .iter()
                .filter(|u| u.label.0.is_multiple_of(2))
                .count() as u64;
            StagedBatch::deferred(ToyToken { seq, hits })
        }
        fn answer_staged(&mut self, staged: StagedBatch) -> MatchReport {
            let token = staged.into_deferred::<ToyToken>().expect("own token");
            assert_eq!(token.seq, self.answered_seq, "answers must be FIFO");
            self.answered_seq += 1;
            self.log.push(("answer", token.seq));
            let report = if token.hits > 0 {
                MatchReport::from_counts(vec![(QueryId(0), token.hits)])
            } else {
                MatchReport::empty()
            };
            self.stats.notifications += report.len() as u64;
            self.stats.embeddings += report.total_embeddings();
            report
        }
        fn num_queries(&self) -> usize {
            self.queries as usize - self.dead.len()
        }
        fn heap_bytes(&self) -> usize {
            0
        }
        fn stats(&self) -> EngineStats {
            self.stats
        }
    }

    #[test]
    fn pipeline_overlaps_stage_of_next_with_answer_of_previous() {
        let config = PipelineConfig::new(2, Duration::from_secs(60));
        assert_eq!(config.depth, 1);
        let mut pipe = PipelinedEngine::new(SplitToy::default(), config);
        let now = t0();
        let mut completed = Vec::new();
        for i in 0..8u32 {
            completed.extend(pipe.push_at(u(i % 3, i, i + 1), now));
        }
        completed.extend(pipe.drain());

        // 8 updates in batches of 2 → 4 batches, all completed in order.
        assert_eq!(completed.len(), 4);
        assert!(completed.iter().all(|b| b.updates == 2));

        // The log proves the overlap: every batch N is staged before batch
        // N-1 is answered (depth-1 window).
        let log = &pipe.engine().log;
        assert_eq!(
            log,
            &vec![
                ("stage", 0),
                ("stage", 1),
                ("answer", 0),
                ("stage", 2),
                ("answer", 1),
                ("stage", 3),
                ("answer", 2),
                ("answer", 3),
            ]
        );

        // Labels cycle 0,1,2 → even labels 0 and 2 hit on updates
        // 0,2,3,5,6 → 5 embeddings overall.
        let total: u64 = completed.iter().map(|b| b.report.total_embeddings()).sum();
        assert_eq!(total, 5);
        assert_eq!(pipe.stats().updates_processed, 8);
        assert_eq!(pipe.stats().embeddings, 5);
    }

    #[test]
    fn pipelined_stream_report_equals_sequential() {
        // Any flush size / depth must reproduce the sequential merged
        // report (batch semantics are chunk-invariant under merge).
        let stream: Vec<Update> = (0..50u32).map(|i| u(i % 4, i % 7, (i + 1) % 7)).collect();
        let mut reference = SplitToy::default();
        let mut counts = Vec::new();
        for &up in &stream {
            let r = reference.apply_update(up);
            counts.extend(r.matches.iter().map(|m| (m.query, m.new_embeddings)));
        }
        let expected = MatchReport::from_counts(counts);

        for max_batch in [1usize, 3, 7, 64] {
            for depth in [0usize, 1, 3] {
                let config =
                    PipelineConfig::new(max_batch, Duration::from_secs(60)).with_depth(depth);
                let mut pipe = PipelinedEngine::new(SplitToy::default(), config);
                let got = pipe.run_stream(&stream);
                assert_eq!(got, expected, "max_batch {max_batch} depth {depth}");
                assert_eq!(pipe.in_flight(), 0);
                assert_eq!(pipe.buffered(), 0);
                assert_eq!(pipe.stats().updates_processed, 50);
                assert_eq!(pipe.stats().embeddings, expected.total_embeddings());
            }
        }
    }

    #[test]
    fn deadline_flush_completes_underfull_batches() {
        let config = PipelineConfig::new(1000, 5 * MS).with_depth(0);
        let mut pipe = PipelinedEngine::new(SplitToy::default(), config);
        let now = t0();
        assert!(pipe.push_at(u(0, 1, 2), now).is_empty());
        assert_eq!(pipe.buffered(), 1);
        // The deadline passes with no new updates: poll completes the batch.
        let done = pipe.poll_at(now + 6 * MS);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].updates, 1);
        assert_eq!(done[0].report.total_embeddings(), 1);
        assert_eq!(pipe.buffered(), 0);
    }

    #[test]
    fn threaded_stream_report_equals_sequential() {
        // The threaded answer stage must reproduce the inline pipeline (and
        // therefore sequential execution) bit for bit, across flush sizes
        // and window depths. SplitToy uses the default detach (inline
        // answer at detach time), so this exercises the executor's window
        // bookkeeping, channel plumbing and FIFO collection.
        let stream: Vec<Update> = (0..50u32).map(|i| u(i % 4, i % 7, (i + 1) % 7)).collect();
        let mut reference = SplitToy::default();
        let mut counts = Vec::new();
        for &up in &stream {
            let r = reference.apply_update(up);
            counts.extend(r.matches.iter().map(|m| (m.query, m.new_embeddings)));
        }
        let expected = MatchReport::from_counts(counts);

        for max_batch in [1usize, 7, 64] {
            for depth in [0usize, 1, 3] {
                let config = PipelineConfig::new(max_batch, Duration::from_secs(60))
                    .with_depth(depth)
                    .threaded();
                let mut pipe = PipelinedEngine::new(SplitToy::default(), config);
                assert!(pipe.is_threaded());
                let got = pipe.run_stream(&stream);
                assert_eq!(got, expected, "max_batch {max_batch} depth {depth}");
                assert_eq!(pipe.in_flight(), 0);
                assert_eq!(pipe.stats().updates_processed, 50);
                assert_eq!(pipe.stats().embeddings, expected.total_embeddings());
            }
        }
    }

    /// An engine whose detached answers genuinely run on the answer thread
    /// (and record which thread that was), with a deliberately slow first
    /// batch so FIFO completion is exercised under maximal reordering
    /// temptation.
    #[derive(Default)]
    struct SlowDetachToy {
        stats: EngineStats,
        seq: u64,
    }

    struct SlowToken {
        seq: u64,
        updates: u64,
    }

    impl ContinuousEngine for SlowDetachToy {
        fn name(&self) -> &'static str {
            "SLOW-DETACH-TOY"
        }
        fn register_query(&mut self, _q: &QueryPattern) -> Result<QueryId> {
            Ok(QueryId(0))
        }
        fn apply_update(&mut self, update: Update) -> MatchReport {
            self.apply_batch(&[update])
        }
        fn apply_batch(&mut self, updates: &[Update]) -> MatchReport {
            let staged = self.stage_batch(updates);
            self.answer_staged(staged)
        }
        fn stage_batch(&mut self, updates: &[Update]) -> StagedBatch {
            self.stats.updates_processed += updates.len() as u64;
            let seq = self.seq;
            self.seq += 1;
            StagedBatch::deferred(SlowToken {
                seq,
                updates: updates.len() as u64,
            })
        }
        fn answer_staged(&mut self, staged: StagedBatch) -> MatchReport {
            let token = staged.into_deferred::<SlowToken>().expect("own token");
            let report = MatchReport::from_counts(vec![(QueryId(token.seq as u32), token.updates)]);
            self.stats.notifications += report.len() as u64;
            self.stats.embeddings += report.total_embeddings();
            report
        }
        fn detach_staged(&mut self, staged: StagedBatch) -> DetachedAnswer {
            let token = staged.into_deferred::<SlowToken>().expect("own token");
            DetachedAnswer::task(move || {
                // The first batch is the slowest: any out-of-order
                // completion would surface as reordered reports.
                if token.seq == 0 {
                    std::thread::sleep(Duration::from_millis(25));
                }
                MatchReport::from_counts(vec![(QueryId(token.seq as u32), token.updates)])
            })
        }
        fn absorb_answered(&mut self, report: &MatchReport) {
            self.stats.notifications += report.len() as u64;
            self.stats.embeddings += report.total_embeddings();
        }
        fn num_queries(&self) -> usize {
            1
        }
        fn heap_bytes(&self) -> usize {
            0
        }
        fn stats(&self) -> EngineStats {
            self.stats
        }
    }

    #[test]
    fn threaded_answers_complete_in_arrival_order_despite_slow_answer() {
        let config = PipelineConfig::new(2, Duration::from_secs(60))
            .with_depth(3)
            .threaded();
        let mut pipe = PipelinedEngine::new(SlowDetachToy::default(), config);
        let now = t0();
        let mut completed = Vec::new();
        for i in 0..12u32 {
            completed.extend(pipe.push_at(u(0, i, i + 1), now));
        }
        completed.extend(pipe.drain());

        // 12 updates in batches of 2 → 6 batches; each batch's report names
        // its own sequence number, so arrival order is directly observable.
        assert_eq!(completed.len(), 6);
        for (i, batch) in completed.iter().enumerate() {
            assert_eq!(batch.updates, 2);
            assert_eq!(
                batch.report.satisfied_queries(),
                vec![QueryId(i as u32)],
                "batch #{i} out of order"
            );
        }
        assert_eq!(pipe.stats().updates_processed, 12);
        assert_eq!(pipe.stats().embeddings, 12);
        assert_eq!(pipe.stats().notifications, 6);
    }

    /// An engine whose *first* detached answer blocks on a gate the test
    /// controls: if staging a later batch waited for in-flight answers (a
    /// barrier), the gated worker could only proceed via its 2-second
    /// timeout, which the report makes visible.
    #[derive(Default)]
    struct GatedDetachToy {
        stats: EngineStats,
        seq: u64,
        gate: Option<Receiver<()>>,
    }

    impl ContinuousEngine for GatedDetachToy {
        fn name(&self) -> &'static str {
            "GATED-DETACH-TOY"
        }
        fn register_query(&mut self, _q: &QueryPattern) -> Result<QueryId> {
            Ok(QueryId(0))
        }
        fn apply_update(&mut self, update: Update) -> MatchReport {
            self.apply_batch(&[update])
        }
        fn apply_batch(&mut self, updates: &[Update]) -> MatchReport {
            let staged = self.stage_batch(updates);
            self.answer_staged(staged)
        }
        fn stage_batch(&mut self, updates: &[Update]) -> StagedBatch {
            self.stats.updates_processed += updates.len() as u64;
            let seq = self.seq;
            self.seq += 1;
            StagedBatch::deferred((seq, updates.len() as u64))
        }
        fn answer_staged(&mut self, staged: StagedBatch) -> MatchReport {
            let (seq, n) = staged.into_deferred::<(u64, u64)>().expect("own token");
            MatchReport::from_counts(vec![(QueryId(seq as u32), n)])
        }
        fn detach_staged(&mut self, staged: StagedBatch) -> DetachedAnswer {
            let (seq, n) = staged.into_deferred::<(u64, u64)>().expect("own token");
            let gate = if seq == 0 { self.gate.take() } else { None };
            DetachedAnswer::task(move || {
                let n = match gate {
                    Some(gate) => match gate.recv_timeout(Duration::from_secs(2)) {
                        Ok(()) => n,
                        Err(_) => 999, // barrier: the gate never opened in time.
                    },
                    None => n,
                };
                MatchReport::from_counts(vec![(QueryId(seq as u32), n)])
            })
        }
        fn num_queries(&self) -> usize {
            1
        }
        fn heap_bytes(&self) -> usize {
            0
        }
        fn stats(&self) -> EngineStats {
            self.stats
        }
    }

    #[test]
    fn threaded_retraction_runs_stage_while_earlier_answers_are_in_flight() {
        // Batch 0 (an insert) is detached and its answer blocks on the
        // gate. The retraction flush must stage + detach *without* waiting
        // for it — the un-barriered path. Only after the retraction run is
        // submitted does the test open the gate; under the old barrier the
        // second push would block until the worker's 2s timeout fired, and
        // the sentinel count 999 would surface in the first report.
        let (tx, rx) = channel();
        let config = PipelineConfig::new(1, Duration::from_secs(60))
            .with_depth(4)
            .threaded();
        let toy = GatedDetachToy {
            gate: Some(rx),
            ..GatedDetachToy::default()
        };
        let mut pipe = PipelinedEngine::new(toy, config);
        let now = t0();
        assert!(pipe.push_at(u(0, 1, 2), now).is_empty());
        assert_eq!(pipe.in_flight(), 1);
        assert!(pipe.push_at(u(0, 1, 2).inverted(), now).is_empty());
        assert_eq!(pipe.in_flight(), 2, "retraction staged alongside");
        tx.send(()).expect("worker is waiting on the gate");
        let done = pipe.drain();
        assert_eq!(done.len(), 2);
        assert_eq!(
            done[0].report.total_embeddings(),
            1,
            "gate opened before the worker timed out — no barrier"
        );
        assert_eq!(done[1].report.satisfied_queries(), vec![QueryId(1)]);
    }

    /// An engine whose detached answers always panic — the failure mode a
    /// buggy covering-path join would exhibit on the answer thread.
    #[derive(Default)]
    struct PanickingDetachToy {
        stats: EngineStats,
    }

    impl ContinuousEngine for PanickingDetachToy {
        fn name(&self) -> &'static str {
            "PANIC-TOY"
        }
        fn register_query(&mut self, _q: &QueryPattern) -> Result<QueryId> {
            Ok(QueryId(0))
        }
        fn apply_update(&mut self, update: Update) -> MatchReport {
            self.apply_batch(&[update])
        }
        fn stage_batch(&mut self, updates: &[Update]) -> StagedBatch {
            self.stats.updates_processed += updates.len() as u64;
            StagedBatch::deferred(())
        }
        fn answer_staged(&mut self, staged: StagedBatch) -> MatchReport {
            let _ = staged.into_deferred::<()>();
            MatchReport::empty()
        }
        fn detach_staged(&mut self, _staged: StagedBatch) -> DetachedAnswer {
            DetachedAnswer::task(|| panic!("join pass exploded"))
        }
        fn num_queries(&self) -> usize {
            1
        }
        fn heap_bytes(&self) -> usize {
            0
        }
        fn stats(&self) -> EngineStats {
            self.stats
        }
    }

    #[test]
    #[should_panic(expected = "join pass exploded")]
    fn answer_task_panic_propagates_to_the_caller_instead_of_hanging() {
        // The worker catches the panic and ships it back; collecting the
        // answer re-raises it on this thread. Without that, the drain below
        // would block forever on a channel whose sender died — a CI
        // timeout instead of a test failure.
        let config = PipelineConfig::new(2, Duration::from_secs(60)).threaded();
        let mut pipe = PipelinedEngine::new(PanickingDetachToy::default(), config);
        let now = t0();
        for i in 0..4u32 {
            pipe.push_at(u(0, i, i + 1), now);
        }
        pipe.drain();
    }

    #[test]
    fn trait_entry_points_barrier_first() {
        let config = PipelineConfig::new(1000, Duration::from_secs(60));
        let mut pipe = PipelinedEngine::new(SplitToy::default(), config);
        let now = t0();
        assert!(pipe.push_at(u(0, 1, 2), now).is_empty());
        assert_eq!(pipe.buffered(), 1);

        // apply_update drains the pipeline, then reports exactly its own
        // update; the flushed batch's report is retained, not lost.
        let own = pipe.apply_update(u(2, 5, 6));
        assert_eq!(own.total_embeddings(), 1);
        let earlier = pipe.take_completed();
        assert_eq!(earlier.len(), 1);
        assert_eq!(earlier[0].updates, 1);

        // register_query also barriers (no staged state may be outstanding).
        assert!(pipe.push_at(u(0, 9, 9), now).is_empty());
        let mut symbols = crate::interner::SymbolTable::new();
        let q = QueryPattern::parse("?a -x-> ?b", &mut symbols).unwrap();
        pipe.register_query(&q).unwrap();
        assert_eq!(pipe.in_flight(), 0);
        assert_eq!(pipe.take_completed().len(), 1);

        // into_inner barriers too.
        let inner = pipe.into_inner();
        assert_eq!(inner.staged_seq, inner.answered_seq);
    }

    #[test]
    fn queued_lifecycle_ops_apply_only_at_the_epoch_boundary() {
        let config = PipelineConfig::new(2, Duration::from_secs(60));
        let mut pipe = PipelinedEngine::new(SplitToy::default(), config);
        let mut symbols = crate::interner::SymbolTable::new();
        let q = QueryPattern::parse("?a -x-> ?b", &mut symbols).unwrap();

        // Promised ids are assigned in queue order, before anything applies.
        let id0 = pipe.queue_register(&q);
        let id1 = pipe.queue_register(&q);
        assert_eq!((id0, id1), (QueryId(0), QueryId(1)));
        assert_eq!(pipe.num_queries(), 0, "nothing applied yet");
        assert!(!pipe.is_registered(id0));

        // Unregistering a queued-but-unapplied id is fine; unknown ids and
        // double unregisters are rejected at queue time.
        pipe.queue_unregister(id1).unwrap();
        assert_eq!(pipe.queue_unregister(id1), Err(Error::UnknownQuery(1)));
        assert_eq!(
            pipe.queue_unregister(QueryId(7)),
            Err(Error::UnknownQuery(7))
        );
        assert_eq!(pipe.pending_lifecycle(), 3);

        // Streaming keeps the ops pending: no boundary, no application.
        let now = t0();
        for i in 0..6u32 {
            pipe.push_at(u(0, i, i + 1), now);
        }
        assert_eq!(pipe.num_queries(), 0);
        assert_eq!(pipe.epoch(), 0);

        // The drain boundary applies everything in queue order and opens
        // the next epoch.
        pipe.drain();
        assert_eq!(pipe.epoch(), 1);
        assert_eq!(pipe.pending_lifecycle(), 0);
        assert_eq!(pipe.num_queries(), 1);
        assert!(pipe.is_registered(id0));
        assert!(!pipe.is_registered(id1));
        assert_eq!(pipe.next_query_id(), QueryId(2), "dead ids never reused");
    }

    #[test]
    fn queue_waits_out_the_window_where_the_direct_call_fails() {
        // Depth-1 inline window: after two full batches one token is in
        // flight, so the direct trait calls fail typed while the queued
        // lifecycle accepts the same operations and applies them at the
        // next drain.
        let config = PipelineConfig::new(2, Duration::from_secs(60));
        let mut pipe = PipelinedEngine::new(SplitToy::default(), config);
        let mut symbols = crate::interner::SymbolTable::new();
        let q = QueryPattern::parse("?a -x-> ?b", &mut symbols).unwrap();
        let id = pipe.register_query(&q).unwrap();

        let now = t0();
        for i in 0..4u32 {
            pipe.push_at(u(0, i, i + 1), now);
        }
        assert!(pipe.in_flight() > 0);
        assert!(matches!(
            pipe.unregister_query(id),
            Err(Error::RegistrationWhileStaged(_))
        ));
        assert!(matches!(
            pipe.register_query(&q),
            Err(Error::RegistrationWhileStaged(_))
        ));

        pipe.queue_unregister(id).unwrap();
        let id2 = pipe.queue_register(&q);
        assert!(pipe.is_registered(id), "still live until the boundary");
        pipe.drain();
        assert!(!pipe.is_registered(id));
        assert!(pipe.is_registered(id2));
        assert_eq!(pipe.num_queries(), 1);
    }

    #[test]
    fn reorder_buffer_releases_in_sequence_order() {
        let mut buf = ReorderBuffer::new();
        assert!(buf.is_empty());
        assert_eq!(buf.next_seq(), 0);
        // Out-of-order arrivals park until their predecessors complete.
        buf.insert(2, "c");
        buf.insert(1, "b");
        assert_eq!(buf.pop_next(), None);
        assert_eq!(buf.len(), 2);
        buf.insert(0, "a");
        assert_eq!(buf.pop_next(), Some("a"));
        assert_eq!(buf.pop_next(), Some("b"));
        assert_eq!(buf.pop_next(), Some("c"));
        assert_eq!(buf.pop_next(), None);
        assert!(buf.is_empty());
        assert_eq!(buf.next_seq(), 3);
        // The sequence keeps advancing across later arrivals.
        buf.insert(4, "e");
        assert_eq!(buf.pop_next(), None);
        buf.insert(3, "d");
        assert_eq!(buf.pop_next(), Some("d"));
        assert_eq!(buf.pop_next(), Some("e"));
    }

    #[test]
    fn multi_worker_answers_complete_in_arrival_order() {
        // With 4 answer workers the slow batch 0 finishes long after
        // batches 1..4 — the reorder buffer must still deliver FIFO.
        let config = PipelineConfig::new(2, Duration::from_secs(60))
            .with_depth(3)
            .threaded()
            .with_answer_workers(4);
        let mut pipe = PipelinedEngine::new(SlowDetachToy::default(), config);
        let now = t0();
        let mut completed = Vec::new();
        for i in 0..12u32 {
            completed.extend(pipe.push_at(u(0, i, i + 1), now));
        }
        completed.extend(pipe.drain());

        assert_eq!(completed.len(), 6);
        for (i, batch) in completed.iter().enumerate() {
            assert_eq!(batch.updates, 2);
            assert_eq!(
                batch.report.satisfied_queries(),
                vec![QueryId(i as u32)],
                "batch #{i} out of order"
            );
        }
        assert_eq!(pipe.stats().updates_processed, 12);
        assert_eq!(pipe.stats().embeddings, 12);
        assert_eq!(pipe.stats().notifications, 6);
    }

    #[test]
    #[should_panic(expected = "join pass exploded")]
    fn multi_worker_answer_panic_propagates_to_the_caller() {
        let config = PipelineConfig::new(2, Duration::from_secs(60))
            .threaded()
            .with_answer_workers(2);
        let mut pipe = PipelinedEngine::new(PanickingDetachToy::default(), config);
        let now = t0();
        for i in 0..4u32 {
            pipe.push_at(u(0, i, i + 1), now);
        }
        pipe.drain();
    }

    #[test]
    fn answer_worker_count_is_clamped_positive() {
        assert!(PipelineConfig::default_answer_workers() >= 1);
        let config = PipelineConfig::new(2, Duration::from_secs(60)).with_answer_workers(0);
        assert_eq!(config.answer_workers, 1);
    }

    #[test]
    fn batcher_sliding_window_expires_edges() {
        let mut b = DeadlineBatcher::new(100, MS).windowed(10 * MS);
        let now = t0();
        // Insert, flush on deadline, then let the edge age out: the poll at
        // t+10ms synthesizes the retraction, which flushes at t+11ms.
        assert!(b.push(u(0, 1, 2), now).is_empty());
        assert_eq!(b.live_edges(), 1);
        let batch = only(b.poll(now + MS));
        assert_eq!(batch, vec![u(0, 1, 2)]);
        assert!(b.poll(now + 9 * MS).is_empty(), "not expired yet");
        assert!(b.poll(now + 10 * MS).is_empty(), "expiry buffered, not due");
        assert_eq!(b.live_edges(), 0);
        let batch = only(b.poll(now + 11 * MS));
        assert_eq!(batch, vec![u(0, 1, 2).inverted()]);
        assert!(batch[0].is_retraction());
        // Nothing left: the window is empty and stays quiet.
        assert!(b.poll(now + 100 * MS).is_empty());
    }

    #[test]
    fn batcher_reinsertion_refreshes_the_window_deadline() {
        let mut b = DeadlineBatcher::new(1, MS).windowed(10 * MS);
        let now = t0();
        assert!(!b.push(u(0, 1, 2), now).is_empty(), "size-1 flush");
        // Re-insert at t+6ms: the t0 expiry entry goes stale and is pruned,
        // so the idle deadline moves straight to the refreshed expiry.
        assert!(!b.push(u(0, 1, 2), now + 6 * MS).is_empty());
        assert_eq!(
            b.next_deadline(),
            Some(now + 16 * MS),
            "stale front entry must not schedule a no-op wakeup at t+10ms"
        );
        assert!(b.poll(now + 10 * MS).is_empty(), "stale entry skipped");
        assert_eq!(b.live_edges(), 1);
        // The refreshed deadline (t+16ms) is the one that fires.
        let batch = only(b.poll(now + 16 * MS));
        assert_eq!(batch, vec![u(0, 1, 2).inverted()]);
        assert_eq!(b.live_edges(), 0);
    }

    #[test]
    fn batcher_explicit_retraction_cancels_the_pending_expiry() {
        let mut b = DeadlineBatcher::new(1, MS).windowed(10 * MS);
        let now = t0();
        assert!(!b.push(u(0, 1, 2), now).is_empty());
        assert!(!b.push(u(0, 1, 2).inverted(), now + 2 * MS).is_empty());
        assert_eq!(b.live_edges(), 0);
        // The cancelled expiry entry is pruned: no wakeup is scheduled and
        // no synthesized retraction ever fires for the retracted edge.
        assert_eq!(b.next_deadline(), None);
        assert!(b.poll(now + 50 * MS).is_empty());
    }

    #[test]
    fn batcher_expired_edge_repushed_in_the_same_call_stays_live() {
        let mut b = DeadlineBatcher::new(100, MS).windowed(5 * MS);
        let now = t0();
        assert!(b.push(u(0, 1, 2), now).is_empty());
        b.flush();
        // The re-push observes the expiry first: the flushed batch orders
        // the synthesized retraction before the re-insertion, so the edge
        // ends the batch live.
        assert!(b.push(u(0, 1, 2), now + 7 * MS).is_empty());
        let batch = only(b.poll(now + 8 * MS));
        assert_eq!(batch, vec![u(0, 1, 2).inverted(), u(0, 1, 2)]);
        assert_eq!(b.live_edges(), 1);
    }

    #[test]
    fn huge_window_keeps_the_expiry_wakeup_bound() {
        // Regression: `inserted_at + Duration::MAX` overflows `Instant`, and
        // the overflow used to drop the expiry bound entirely — an idle
        // poller sleeping on `next_deadline` was never woken. The bound must
        // saturate to a far (but representable) deadline instead.
        let mut b = DeadlineBatcher::new(1, MS).windowed(Duration::MAX);
        let now = t0();
        assert!(!b.push(u(0, 1, 2), now).is_empty(), "size-1 flush");
        assert_eq!(b.live_edges(), 1);
        let deadline = b
            .next_deadline()
            .expect("a pending expiry must always report a wakeup bound");
        assert!(deadline > now + Duration::from_secs(3600));
    }

    #[test]
    fn huge_window_edges_stay_live_instead_of_leaking() {
        // Regression: the expiry sweep used to *pop* entries whose deadline
        // overflowed while leaving the edge in the live map — the edge could
        // then never expire, never be refreshed cheaply, and never wake a
        // poller. With saturation the entry stays queued and simply is not
        // due yet.
        let mut b = DeadlineBatcher::new(1, MS).windowed(Duration::MAX);
        let now = t0();
        assert!(!b.push(u(0, 1, 2), now).is_empty());
        assert!(
            b.poll(now + Duration::from_secs(86400)).is_empty(),
            "nowhere near the saturated deadline"
        );
        assert_eq!(b.live_edges(), 1, "the edge is still tracked");
        assert_eq!(
            b.live_snapshot(),
            vec![u(0, 1, 2)],
            "the live set still names the edge"
        );
        // An explicit retraction must still cancel it cleanly.
        assert!(!b
            .push(u(0, 1, 2).inverted(), now + Duration::from_secs(86400))
            .is_empty());
        assert_eq!(b.live_edges(), 0);
        assert_eq!(b.next_deadline(), None);
    }

    #[test]
    fn near_overflow_window_mix_expires_the_representable_edge_only() {
        // A representable deadline sitting behind a saturated one must still
        // fire: the queue is insertion-ordered, so the saturated entry only
        // blocks the sweep until its own (far-future) deadline — which a
        // realistic `now` never reaches.
        let mut huge = DeadlineBatcher::new(10, MS).windowed(Duration::MAX / 2);
        let mut small = DeadlineBatcher::new(10, MS).windowed(10 * MS);
        let now = t0();
        assert!(huge.push(u(0, 1, 2), now).is_empty());
        assert!(small.push(u(0, 1, 2), now).is_empty());
        huge.flush();
        small.flush();
        assert!(huge.poll(now + 20 * MS).is_empty(), "not due");
        assert_eq!(huge.live_edges(), 1);
        assert!(small.poll(now + 11 * MS).is_empty(), "expiry buffered");
        let expired = only(small.poll(now + 12 * MS));
        assert_eq!(expired, vec![u(0, 1, 2).inverted()]);
        assert_eq!(small.live_edges(), 0);
    }

    #[test]
    fn inline_retraction_runs_answer_the_window_first_then_stage() {
        // Inline mode, deep window, flush size 1: two staged insert batches
        // sit in the window when the retraction arrives. Inline tokens may
        // hold watermarks into live relations, so the window is answered
        // (FIFO) before the retraction run stages — but the retraction run
        // itself *stages* like any other batch, it is not applied eagerly.
        let config = PipelineConfig::new(1, Duration::from_secs(60)).with_depth(3);
        let mut pipe = PipelinedEngine::new(SplitToy::default(), config);
        let now = t0();
        assert!(pipe.push_at(u(0, 1, 2), now).is_empty());
        assert!(pipe.push_at(u(2, 2, 3), now).is_empty());
        assert_eq!(pipe.in_flight(), 2);
        let done = pipe.push_at(u(0, 1, 2).inverted(), now);
        assert_eq!(done.len(), 2, "window answered before the retraction");
        assert_eq!(pipe.in_flight(), 1, "the staged retraction run");
        assert_eq!(
            pipe.engine().log,
            vec![
                ("stage", 0),
                ("stage", 1),
                ("answer", 0),
                ("answer", 1),
                ("stage", 2),
            ]
        );
        assert_eq!(pipe.drain().len(), 1, "the retraction run completes");
        assert_eq!(pipe.engine().log.last(), Some(&("answer", 2)));
    }

    #[test]
    fn eager_retraction_config_reverts_to_the_barrier_path() {
        // The bench-only A/B flag restores the old behaviour: the window
        // drains and the whole mixed batch applies eagerly, unsplit.
        let config = PipelineConfig::new(1, Duration::from_secs(60))
            .with_depth(3)
            .with_eager_retractions();
        let mut pipe = PipelinedEngine::new(SplitToy::default(), config);
        let now = t0();
        assert!(pipe.push_at(u(0, 1, 2), now).is_empty());
        assert!(pipe.push_at(u(2, 2, 3), now).is_empty());
        let done = pipe.push_at(u(0, 1, 2).inverted(), now);
        assert_eq!(done.len(), 3, "window drained + eager retraction batch");
        assert_eq!(pipe.in_flight(), 0);
        assert_eq!(
            pipe.engine().log,
            vec![
                ("stage", 0),
                ("stage", 1),
                ("answer", 0),
                ("answer", 1),
                ("stage", 2),
                ("answer", 2),
            ]
        );
    }

    #[test]
    fn mixed_sign_flushes_stage_one_run_per_sign() {
        // One flush of [+, +, −, +] must stage as three separately-sequenced
        // runs whose completions tile the flush in stream order.
        let config = PipelineConfig::new(4, Duration::from_secs(60)).with_depth(0);
        let mut pipe = PipelinedEngine::new(SplitToy::default(), config);
        let now = t0();
        assert!(pipe.push_at(u(0, 1, 2), now).is_empty());
        assert!(pipe.push_at(u(2, 2, 3), now).is_empty());
        assert!(pipe.push_at(u(0, 1, 2).inverted(), now).is_empty());
        let done = pipe.push_at(u(4, 3, 4), now);
        assert_eq!(
            done.iter().map(|b| b.updates).collect::<Vec<_>>(),
            vec![2, 1, 1],
            "runs tile the flush"
        );
        assert_eq!(
            pipe.engine().log,
            vec![
                ("stage", 0),
                ("answer", 0), // inline window answered before the '−' run
                ("stage", 1),
                ("stage", 2),
                ("answer", 1),
                ("answer", 2),
            ]
        );
    }

    #[test]
    fn windowed_pipeline_completes_expiry_batches() {
        let config = PipelineConfig::new(100, 2 * MS).windowed(8 * MS);
        let mut pipe = PipelinedEngine::new(SplitToy::default(), config);
        let now = t0();
        assert!(pipe.push_at(u(0, 1, 2), now).is_empty());
        assert_eq!(pipe.live_edges(), 1);
        assert!(pipe.poll_at(now + 2 * MS).is_empty(), "staged, depth 1");
        // At t+8ms the edge expires; the synthesized retraction flushes at
        // t+10ms. Staging it answers the in-window insert batch first
        // (inline mode), then the retraction run waits in the window.
        assert!(pipe.poll_at(now + 8 * MS).is_empty());
        assert_eq!(pipe.live_edges(), 0);
        let done = pipe.poll_at(now + 10 * MS);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].updates, 1, "the insert batch");
        assert_eq!(pipe.in_flight(), 1, "the staged expiry retraction");
        let done = pipe.drain();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].updates, 1, "the synthesized expiry retraction");
        assert_eq!(pipe.in_flight(), 0);
    }

    #[test]
    fn windowed_run_stream_expires_edges_mid_stream() {
        // run_stream_at with an advancing tick must let the sliding window
        // synthesize expiries *between* pushes — the frozen-clock bug made
        // every windowed run_stream behave as if nothing ever aged out.
        let config = PipelineConfig::new(100, MS).windowed(5 * MS);
        let mut pipe = PipelinedEngine::new(SplitToy::default(), config);
        let stream = [u(0, 1, 2), u(2, 2, 3), u(4, 3, 4)];
        pipe.run_stream_at(&stream, t0(), 10 * MS);
        // Each push is 10ms after the last, so the previous edge has
        // expired every time: 3 inserts + 2 synthesized retractions reach
        // the engine (the third edge is still live at the final drain,
        // which synthesizes no expiries).
        assert_eq!(pipe.stats().updates_processed, 5);
        assert_eq!(pipe.live_edges(), 1);
        // A zero tick reproduces the frozen clock: no expiries.
        let config = PipelineConfig::new(100, MS).windowed(5 * MS);
        let mut pipe = PipelinedEngine::new(SplitToy::default(), config);
        pipe.run_stream_at(&stream, t0(), Duration::ZERO);
        assert_eq!(pipe.stats().updates_processed, 3);
        assert_eq!(pipe.live_edges(), 3);
    }

    #[test]
    fn registration_with_staged_batches_in_flight_is_rejected() {
        let config = PipelineConfig::new(1, Duration::from_secs(60)).with_depth(3);
        let mut pipe = PipelinedEngine::new(SplitToy::default(), config);
        let now = t0();
        assert!(pipe.push_at(u(0, 1, 2), now).is_empty());
        assert!(pipe.push_at(u(2, 2, 3), now).is_empty());
        assert_eq!(pipe.in_flight(), 2);
        let mut symbols = crate::interner::SymbolTable::new();
        let q = QueryPattern::parse("?a -x-> ?b", &mut symbols).unwrap();
        match pipe.register_query(&q) {
            Err(Error::RegistrationWhileStaged(n)) => assert_eq!(n, 2),
            other => panic!("expected RegistrationWhileStaged, got {other:?}"),
        }
        // Draining consumes the tokens; registration is legal again.
        assert_eq!(pipe.drain().len(), 2);
        pipe.register_query(&q).unwrap();
    }

    /// Like [`PanickingDetachToy`], but the detached task sleeps first so
    /// the panic is still in flight when the executor is dropped.
    #[derive(Default)]
    struct SleepyPanicToy {
        stats: EngineStats,
    }

    impl ContinuousEngine for SleepyPanicToy {
        fn name(&self) -> &'static str {
            "SLEEPY-PANIC-TOY"
        }
        fn register_query(&mut self, _q: &QueryPattern) -> Result<QueryId> {
            Ok(QueryId(0))
        }
        fn apply_update(&mut self, update: Update) -> MatchReport {
            self.apply_batch(&[update])
        }
        fn stage_batch(&mut self, updates: &[Update]) -> StagedBatch {
            self.stats.updates_processed += updates.len() as u64;
            StagedBatch::deferred(())
        }
        fn answer_staged(&mut self, staged: StagedBatch) -> MatchReport {
            let _ = staged.into_deferred::<()>();
            MatchReport::empty()
        }
        fn detach_staged(&mut self, _staged: StagedBatch) -> DetachedAnswer {
            DetachedAnswer::task(|| {
                std::thread::sleep(Duration::from_millis(20));
                panic!("slow join pass exploded")
            })
        }
        fn num_queries(&self) -> usize {
            1
        }
        fn heap_bytes(&self) -> usize {
            0
        }
        fn stats(&self) -> EngineStats {
            self.stats
        }
    }

    #[test]
    #[should_panic(expected = "slow join pass exploded")]
    fn dropping_mid_stream_reraises_outstanding_worker_panics() {
        let config = PipelineConfig::new(1, Duration::from_secs(60))
            .with_depth(4)
            .threaded();
        let mut pipe = PipelinedEngine::new(SleepyPanicToy::default(), config);
        // Stage + detach one batch; the worker is still asleep when the
        // executor drops, so the panic must surface via drain-on-drop
        // instead of vanishing with the worker pool.
        pipe.push_at(u(0, 1, 2), t0());
        assert_eq!(pipe.in_flight(), 1);
        drop(pipe);
    }
}
