//! Latency statistics used by the benchmark harness.

use std::time::Duration;

/// Records per-update processing latencies and summarises them the way the
/// paper reports results (average milliseconds per update), plus tail
/// percentiles for the extended experiments.
#[derive(Debug, Default, Clone)]
pub struct LatencyRecorder {
    samples: Vec<Duration>,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a recorder pre-allocated for `n` samples.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            samples: Vec::with_capacity(n),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, d: Duration) {
        self.samples.push(d);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total time across all samples.
    pub fn total(&self) -> Duration {
        self.samples.iter().sum()
    }

    /// Mean latency in milliseconds (0.0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.total().as_secs_f64() * 1e3 / self.samples.len() as f64
    }

    /// The `q`-quantile (0.0 ≤ q ≤ 1.0) latency in milliseconds.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((sorted.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
        sorted[rank].as_secs_f64() * 1e3
    }

    /// Median latency in milliseconds.
    pub fn p50_ms(&self) -> f64 {
        self.quantile_ms(0.50)
    }

    /// 95th-percentile latency in milliseconds.
    pub fn p95_ms(&self) -> f64 {
        self.quantile_ms(0.95)
    }

    /// 99th-percentile latency in milliseconds.
    pub fn p99_ms(&self) -> f64 {
        self.quantile_ms(0.99)
    }

    /// Maximum latency in milliseconds.
    pub fn max_ms(&self) -> f64 {
        self.samples
            .iter()
            .max()
            .map(|d| d.as_secs_f64() * 1e3)
            .unwrap_or(0.0)
    }

    /// Throughput in updates per second over the recorded samples.
    pub fn throughput_per_sec(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.samples.len() as f64 / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn empty_recorder_reports_zeroes() {
        let r = LatencyRecorder::new();
        assert_eq!(r.mean_ms(), 0.0);
        assert_eq!(r.p99_ms(), 0.0);
        assert_eq!(r.max_ms(), 0.0);
        assert_eq!(r.throughput_per_sec(), 0.0);
    }

    #[test]
    fn mean_and_max() {
        let mut r = LatencyRecorder::new();
        for v in [1, 2, 3, 4] {
            r.record(ms(v));
        }
        assert!((r.mean_ms() - 2.5).abs() < 1e-9);
        assert!((r.max_ms() - 4.0).abs() < 1e-9);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut r = LatencyRecorder::with_capacity(100);
        for v in 1..=100 {
            r.record(ms(v));
        }
        assert!(r.p50_ms() <= r.p95_ms());
        assert!(r.p95_ms() <= r.p99_ms());
        assert!(r.p99_ms() <= r.max_ms());
    }

    #[test]
    fn throughput() {
        let mut r = LatencyRecorder::new();
        for _ in 0..10 {
            r.record(ms(100));
        }
        assert!((r.throughput_per_sec() - 10.0).abs() < 1e-6);
    }
}
