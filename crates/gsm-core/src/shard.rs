//! Sharding the trie forest and edge-view store across workers.
//!
//! The unit of partitioning is the **root generic edge**: every covering path
//! of every registered query starts at some generic edge, and
//! [`shard_of`] deterministically assigns each such root — and with it the
//! whole trie (or path state) hanging under it, plus the edge views reachable
//! from it — to one of `N` shards. Each shard owns a disjoint subset of root
//! generic edges and absorbs its slice of a routed update batch
//! independently — on the engine's **persistent worker pool**
//! ([`crate::pool::WorkerPool`], long-lived channel-fed threads sized to
//! `min(shards, available_parallelism)`, spawned once and reused for every
//! batch) when `N > 1`; a deterministic, order-insensitive merge of the
//! per-shard [`MatchReport`]s (see [`MatchReport::merge`]) produces the
//! final report. The staged answer pass can additionally be **detached**
//! ([`ContinuousEngine::detach_staged`]): inner answers and the cross-shard
//! spanning join then run as one self-contained task on the pipelined
//! executor's answer thread, against full relations frozen at the staged
//! watermarks.
//!
//! Two kinds of queries arise:
//!
//! * **Shard-local queries** — all covering-path roots map to the same
//!   shard. The query is registered verbatim on that shard's inner engine;
//!   its trie nodes, edge views and covering-path joins all stay
//!   shard-local.
//! * **Spanning queries** — covering-path roots map to at least two shards.
//!   Each covering path becomes a shard-local *path state* (a materialized
//!   path relation plus its per-batch delta) owned by the shard of its root
//!   edge; path states are shared between spanning queries with identical
//!   edge sequences, mirroring the trie-node sharing of TRIC. Propagation
//!   (computing the per-path deltas) happens inside the owning shard's
//!   worker; the cross-path **covering-path join pass** runs post-merge,
//!   joining each path's delta against the other paths' full relations —
//!   the same separation of propagation from answering that TRIC/TRIC+ use
//!   within a single engine.
//!
//! With `num_shards == 1` the wrapper degenerates to a plain delegation to
//! the single inner engine (no routing, no translation, no threads), so a
//! 1-core deployment pays no sharding overhead.
//!
//! Registration order still assigns [`QueryId`]s sequentially at the
//! wrapper, so reports are directly comparable with an unsharded engine fed
//! the same query set.
//!
//! # Late registration
//!
//! Queries may be added mid-stream. The wrapper keeps a **history store**
//! (an [`EdgeViewStore`] mirroring every generic edge any query has
//! routed), fed once per batch on the routing pass. When a **spanning**
//! query registers mid-stream, each path's owner shard backfills its
//! spanning views from the history store
//! ([`EdgeViewStore::backfill_from`]) before the path's catch-up relation
//! is computed — so a spanning query sees exactly the history an unsharded
//! engine's shared view store would have held, even for edges whose
//! updates previously routed only to *other* shards. The replay is a
//! set-union into deduplicated insert-only views and registration barriers
//! the pipeline first, so backfilling is idempotent and invisible to
//! outstanding work.
//!
//! **Shard-local** queries still catch up only with their home shard's
//! inner-engine history: the inner engine's views are private and
//! replaying through its public update path would repollute its reports
//! and statistics. An unsharded engine may therefore see strictly more
//! history for a *shard-local* query registered mid-stream whose edges
//! were previously driven by queries on other shards. Registering the
//! query database before streaming — what every workload in this
//! workspace does — is always exact, as is mid-stream registration whose
//! new edges carry no prior history.

use std::collections::BTreeSet;
use std::hash::BuildHasher;
use std::sync::Arc;

use crate::engine::{
    ContinuousEngine, DetachedAnswer, EngineStats, MatchReport, QueryId, StagedBatch,
};
use crate::error::{Error, Result};
use crate::interner::Sym;
use crate::memory::HeapSize;
use crate::model::generic::GenericEdge;
use crate::model::update::{sign_runs, Update};
use crate::pool::WorkerPool;
use crate::query::paths::covering_paths;
use crate::query::pattern::{QVertexId, QueryPattern};
use crate::relation::eval::{join_paths, PathBinding};
use crate::relation::fasthash::{FxBuildHasher, FxHashMap};
use crate::relation::Relation;
use crate::views::{delta_path_relation, full_path_relation, EdgeViewStore};

/// Deterministic shard assignment of a root generic edge.
///
/// Uses the workspace's FxHash (no per-process randomness), so the same edge
/// maps to the same shard in every run, test and process — the property the
/// shard-count differential tests rely on. `num_shards == 0` is treated as 1.
pub fn shard_of(root: &GenericEdge, num_shards: usize) -> usize {
    if num_shards <= 1 {
        return 0;
    }
    (FxBuildHasher.hash_one(root) % num_shards as u64) as usize
}

/// The materialized state of one spanning covering path: the path's full
/// relation (one column per path position). Owned by the shard of the
/// path's root generic edge and shared by every spanning query with the
/// same generic-edge sequence; the per-batch delta travels in the staged
/// token ([`StagedSharded`]) rather than living here, so later batches can
/// be staged while earlier deltas await their join pass.
#[derive(Debug)]
struct PathState {
    /// Generic edges along the path. Emptied when the last referencing
    /// query unregisters, which makes every per-batch sweep skip the slot
    /// (the pid itself is never reused).
    edges: Vec<GenericEdge>,
    /// Materialized path relation (`edges.len() + 1` columns). For
    /// **single-edge paths this stays empty and unused**: the shard's edge
    /// view already *is* the path relation, so materializing it here would
    /// double the memory and per-batch write work —
    /// [`Shard::spanning_full`] resolves the right relation at join time.
    full: Relation,
    /// Number of registered spanning covering paths sharing this state.
    refs: usize,
}

impl HeapSize for PathState {
    fn heap_size(&self) -> usize {
        self.edges.heap_size() + self.full.heap_size()
    }
}

/// Per-shard state for the spanning-query machinery: a shard-local edge-view
/// store plus the path states owned by this shard.
#[derive(Debug, Default)]
struct SpanningState {
    views: EdgeViewStore,
    paths: Vec<PathState>,
    /// Edge sequence → index into `paths` (path-state sharing).
    by_key: FxHashMap<Vec<GenericEdge>, usize>,
    /// Row assembly scratch for the shared path-join kernels.
    row_buf: Vec<Sym>,
}

impl HeapSize for SpanningState {
    fn heap_size(&self) -> usize {
        self.views.heap_size()
            + self.paths.heap_size()
            + self.by_key.heap_size()
            + self.row_buf.capacity() * std::mem::size_of::<Sym>()
    }
}

/// One shard's contribution to a staged batch: the inner engine's own
/// staged token, the spanning path deltas this batch produced here, and the
/// post-batch version watermark of every path state's full relation (the
/// frozen prefix the deferred join pass reads — see
/// [`crate::relation::Relation::snapshot_at`]).
#[derive(Debug, Default)]
struct StagedShard {
    inner: Option<StagedBatch>,
    /// `(path-state index, delta relation)` for every path that gained rows.
    spanning_deltas: Vec<(usize, Relation)>,
    /// Per path-state index: version of [`Shard::spanning_full`] at stage
    /// end (covers this batch's appends, not later batches').
    watermarks: Vec<usize>,
}

/// The insert half of the sharded wrapper's deferred-answer token: one
/// [`StagedShard`] per shard, in shard order.
#[derive(Debug, Default)]
struct StagedSharded {
    shards: Vec<StagedShard>,
}

/// The retraction half: each receiving shard's inner staged token (the
/// inner commits already ran at stage time, per the staging contract) plus
/// the spanning join inputs — removed path deltas and the other paths'
/// **pre-removal** fulls, generation-pinned by [`Relation::snapshot_owned`]
/// so the commit that already compacted the live spanning state cannot
/// move them.
struct StagedShardedRetract {
    /// `(shard index, inner staged token)` for every shard the run routed to.
    inners: Vec<(usize, StagedBatch)>,
    spanning: Option<DetachedSpanning>,
}

/// Downcast target of every deferred token the sharded wrapper issues
/// (`num_shards > 1`); single-shard deployments delegate and re-issue the
/// inner engine's own tokens instead.
enum ShardedToken {
    Insert(StagedSharded),
    Retract(StagedShardedRetract),
}

/// One shard: an inner engine for shard-local queries plus the spanning
/// path states owned here.
struct Shard<E> {
    engine: E,
    /// Inner (shard-local) query index → wrapper-level query id.
    /// `Arc`-shared with detached answer tasks (registration barriers the
    /// pipeline first, so the engine thread mutates via [`Arc::make_mut`]
    /// and detachment is an `Arc` bump instead of a per-batch deep copy).
    local_to_global: Arc<Vec<QueryId>>,
    spanning: SpanningState,
    /// Slice of the current batch routed to this shard (reused buffer).
    slice: Vec<Update>,
    /// Inner staged token of the current batch (set by [`Shard::absorb`]).
    staged_inner: Option<StagedBatch>,
    /// Spanning path deltas of the current batch (set by [`Shard::absorb`]).
    staged_deltas: Vec<(usize, Relation)>,
    /// Total updates routed to this shard (observability).
    routed: u64,
}

impl<E: ContinuousEngine> Shard<E> {
    fn new(engine: E) -> Self {
        Shard {
            engine,
            local_to_global: Arc::new(Vec::new()),
            spanning: SpanningState::default(),
            slice: Vec::new(),
            staged_inner: None,
            staged_deltas: Vec::new(),
            routed: 0,
        }
    }

    /// The full (post-batch) relation of spanning path state `pid`: the
    /// shard's edge view itself for single-edge paths, the materialized
    /// path relation otherwise.
    fn spanning_full(&self, pid: usize) -> &Relation {
        let ps = &self.spanning.paths[pid];
        if ps.edges.len() == 1 {
            // Registered at path creation, so the view always exists; the
            // (empty) materialized relation is a safe fallback regardless.
            self.spanning.views.get(&ps.edges[0]).unwrap_or(&ps.full)
        } else {
            &ps.full
        }
    }

    /// Registers a spanning covering path on this shard, returning the index
    /// of its (possibly pre-existing, shared) path state.
    fn register_spanning_path(&mut self, edges: &[GenericEdge]) -> usize {
        for &e in edges {
            self.spanning.views.register(e);
        }
        if let Some(&pid) = self.spanning.by_key.get(edges) {
            self.spanning.paths[pid].refs += 1;
            return pid;
        }
        // Catch up with whatever history this shard's spanning views have
        // already absorbed (queries may be registered mid-stream). A
        // single-edge path needs no materialized relation at all — its
        // edge view is consulted directly.
        let full = if edges.len() == 1 {
            Relation::new(2)
        } else {
            full_path_relation(
                &self.spanning.views,
                edges,
                crate::relation::cache::BuildCache::None,
                &mut self.spanning.row_buf,
            )
        };
        let pid = self.spanning.paths.len();
        self.spanning.paths.push(PathState {
            edges: edges.to_vec(),
            full,
            refs: 1,
        });
        self.spanning.by_key.insert(edges.to_vec(), pid);
        pid
    }

    /// Drops one covering-path reference to path state `pid`. The last
    /// reference clears the state — edges emptied, so every per-batch sweep
    /// skips the slot, and the materialized relation dropped — and unlinks
    /// it from `by_key`; the pid slot itself is never reused, so staged
    /// watermark vectors and path descriptors held elsewhere stay aligned.
    fn release_spanning_path(&mut self, pid: usize) {
        let ps = &mut self.spanning.paths[pid];
        debug_assert!(ps.refs > 0, "releasing an already dead path state");
        ps.refs -= 1;
        if ps.refs > 0 {
            return;
        }
        let edges = std::mem::take(&mut ps.edges);
        ps.full = Relation::new(2);
        self.spanning.by_key.remove(&edges);
    }

    /// Absorbs this shard's slice of the current batch: the inner engine
    /// **stages** its local queries (routing + propagation, answer deferred
    /// into `staged_inner`), and every spanning path state owned here
    /// computes (and appends) its batch delta into `staged_deltas`. Runs on
    /// a worker thread when several shards are active.
    fn absorb(&mut self) {
        self.staged_deltas.clear();
        self.staged_inner = if self.slice.is_empty() {
            None
        } else {
            Some(self.engine.stage_batch(&self.slice))
        };
        if self.slice.is_empty() || self.spanning.paths.is_empty() {
            return;
        }
        let edge_deltas = self.spanning.views.apply_batch(&self.slice);
        if edge_deltas.is_empty() {
            return;
        }
        for pid in 0..self.spanning.paths.len() {
            let touches = self.spanning.paths[pid]
                .edges
                .iter()
                .any(|e| edge_deltas.contains_key(e));
            if !touches {
                continue;
            }
            let delta = delta_path_relation(
                &self.spanning.views,
                &self.spanning.paths[pid].edges,
                &edge_deltas,
                crate::relation::cache::BuildCache::None,
                &mut self.spanning.row_buf,
            );
            if delta.is_empty() {
                continue;
            }
            let ps = &mut self.spanning.paths[pid];
            // Single-edge path relations are the edge views themselves
            // (already advanced by the routing pass above); only genuinely
            // joined paths materialize their full relation.
            if ps.edges.len() > 1 {
                ps.full.extend_from(&delta);
            }
            self.staged_deltas.push((pid, delta));
        }
    }
}

/// One covering path of a spanning query: the owning shard, the index of
/// the (shared) path state inside that shard, and the query-vertex sequence
/// the path's columns bind.
type SpanningPathInfo = (usize, usize, Vec<QVertexId>);

/// A query whose covering paths live on at least two shards. The path
/// descriptors are `Arc`-shared with detached answer tasks (immutable after
/// registration, which barriers the pipeline first), so detaching a batch
/// captures them by reference count instead of deep-copying every vertex
/// sequence.
struct SpanningQuery {
    query: QueryId,
    paths: Arc<Vec<SpanningPathInfo>>,
}

/// Where a wrapper-level query id lives — the unregistration directory.
/// Indexed by id; maintained only for genuinely sharded deployments
/// (`num_shards > 1`; single-shard wrappers delegate the whole lifecycle).
enum QueryHome {
    /// Registered on one shard's inner engine under a local id.
    Local { shard: usize, local: QueryId },
    /// Spanning: answered by the wrapper's covering-path join pass.
    Spanning,
    /// Unregistered; the id slot is never reused.
    Dead,
}

/// The spanning covering-path join pass, shared by the engine-resident
/// answer path ([`ShardedEngine::answer_spanning`]) and the detached
/// cross-thread path ([`DetachedSpanning::answer`]): for every spanning
/// query with at least one staged path delta, join each affected path's
/// delta against the other paths' full relations frozen at the staged
/// watermarks. `delta_of` resolves a path's staged delta, `full_of` its
/// full relation plus watermark (`None`, or a zero watermark, means the
/// path had no tuples at stage time — the query cannot match).
fn join_spanning_queries<'a, Q, D, F>(queries: Q, delta_of: D, full_of: F) -> MatchReport
where
    Q: Iterator<Item = (QueryId, &'a [SpanningPathInfo])>,
    D: Fn(usize, usize) -> Option<&'a Relation>,
    F: Fn(usize, usize) -> Option<(&'a Relation, usize)>,
{
    let mut counts: Vec<(QueryId, u64)> = Vec::new();
    let mut bindings: Vec<PathBinding<'a>> = Vec::new();
    for (query, paths) in queries {
        let mut embeddings: Option<Relation> = None;
        for (i, (shard_i, pid_i, verts_i)) in paths.iter().enumerate() {
            let Some(delta) = delta_of(*shard_i, *pid_i) else {
                continue;
            };
            bindings.clear();
            bindings.push(PathBinding::new(delta, verts_i));
            let mut all_present = true;
            for (j, (shard_j, pid_j, verts_j)) in paths.iter().enumerate() {
                if i == j {
                    continue;
                }
                match full_of(*shard_j, *pid_j) {
                    Some((full, watermark)) if watermark > 0 => {
                        bindings.push(PathBinding::at_version(full, verts_j, watermark));
                    }
                    _ => {
                        all_present = false;
                        break;
                    }
                }
            }
            if !all_present {
                continue;
            }
            if let Some(result) = join_paths(&bindings) {
                let canon = result.canonicalize();
                match &mut embeddings {
                    None => embeddings = Some(canon.rel),
                    Some(acc) => {
                        acc.extend_from(&canon.rel);
                    }
                }
            }
        }
        if let Some(emb) = embeddings {
            if !emb.is_empty() {
                counts.push((query, emb.len() as u64));
            }
        }
    }
    MatchReport::from_counts(counts)
}

/// The spanning half of a detached sharded answer: affected spanning-query
/// descriptors, the staged path deltas, and the other paths' full relations
/// frozen at the staged watermarks ([`Relation::snapshot_owned`]) — all
/// owned, so the covering-path join pass can run on any thread while the
/// shards absorb later batches.
struct DetachedSpanning {
    queries: Vec<(QueryId, Arc<Vec<SpanningPathInfo>>)>,
    /// (shard, path-state index) → staged delta.
    deltas: FxHashMap<(usize, usize), Relation>,
    /// (shard, path-state index) → full relation frozen at the staged
    /// watermark (absent when the watermark was zero).
    fulls: FxHashMap<(usize, usize), Relation>,
}

impl DetachedSpanning {
    fn answer(&self) -> MatchReport {
        join_spanning_queries(
            self.queries.iter().map(|(q, p)| (*q, p.as_slice())),
            |shard, pid| self.deltas.get(&(shard, pid)),
            |shard, pid| self.fulls.get(&(shard, pid)).map(|full| (full, full.len())),
        )
    }

    /// The retraction reading of the same covering-path join: the deltas
    /// hold removed path rows and the fulls are frozen pre-removal, so
    /// every joined row is an embedding that **disappears** with the run.
    fn answer_retract(&self) -> MatchReport {
        let joined = self.answer();
        MatchReport::from_retraction_counts(
            joined
                .matches
                .iter()
                .map(|m| (m.query, m.new_embeddings))
                .collect(),
        )
    }
}

/// Partitions any [`ContinuousEngine`] into `N` shards by root generic edge.
///
/// See the [module documentation](self) for the partitioning and merge
/// contract. The wrapper is itself a `ContinuousEngine`, observationally
/// equivalent to the unsharded inner engine on every stream: this is pinned
/// by the shard-count differential matrix in the workspace test suites.
pub struct ShardedEngine<E> {
    shards: Vec<Shard<E>>,
    /// Persistent absorb workers (lazily spawned on the first genuinely
    /// parallel batch; never spawned for `shards == 1`). Long-lived and
    /// channel-fed — shards *move* through absorb jobs and back — replacing
    /// the per-batch scoped threads of earlier revisions.
    pool: Option<WorkerPool>,
    spanning_queries: Vec<SpanningQuery>,
    /// Reverse routing index: generic edge → shards observing it (sorted,
    /// deduplicated). Routing an update is then O(shapes) lookups,
    /// independent of the shard count.
    route_index: FxHashMap<GenericEdge, Vec<usize>>,
    /// Per-shard "already routed this update" marks (reused buffer).
    route_marks: Vec<bool>,
    /// Shards marked for the current update (reused buffer).
    route_marked: Vec<usize>,
    /// Wrapper-level history: one view per generic edge any query has ever
    /// routed, fed once per batch. Mid-stream spanning registration
    /// backfills owner shards from here (see the module docs).
    history: EdgeViewStore,
    /// Number of live (non-tombstoned) queries.
    num_queries: usize,
    /// Wrapper-level query-id slots ever issued — the next registration's
    /// id. Unregistration tombstones, never reclaims, so `next_id` only
    /// grows.
    next_id: usize,
    /// Id → home directory (see [`QueryHome`]); empty when `shards == 1`.
    query_homes: Vec<QueryHome>,
    /// Staged batch tokens issued by [`ContinuousEngine::stage_batch`] and
    /// not yet consumed by `answer_staged`/`detach_staged`. Registration is
    /// rejected while any are outstanding (it would restructure the tries,
    /// views and id maps a deferred answer pass reads).
    outstanding: usize,
    name: &'static str,
    stats: EngineStats,
}

impl<E: ContinuousEngine + Send + 'static> ShardedEngine<E> {
    /// Builds a sharded engine with `num_shards` shards (clamped to at least
    /// one), each backed by a fresh inner engine from `factory`.
    pub fn new(num_shards: usize, mut factory: impl FnMut() -> E) -> Self {
        let n = num_shards.max(1);
        let shards: Vec<Shard<E>> = (0..n).map(|_| Shard::new(factory())).collect();
        let name = shards[0].engine.name();
        ShardedEngine {
            shards,
            pool: None,
            spanning_queries: Vec::new(),
            route_index: FxHashMap::default(),
            route_marks: vec![false; n],
            route_marked: Vec::new(),
            history: EdgeViewStore::new(),
            num_queries: 0,
            next_id: 0,
            query_homes: Vec::new(),
            outstanding: 0,
            name,
            stats: EngineStats::default(),
        }
    }

    /// Records that `shard` observes `edge` in the reverse routing index,
    /// and starts mirroring the edge in the wrapper-level history store.
    fn route_edge_to(&mut self, edge: GenericEdge, shard: usize) {
        self.history.register(edge);
        let shards = self.route_index.entry(edge).or_default();
        if !shards.contains(&shard) {
            shards.push(shard);
            shards.sort_unstable();
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The inner engines, in shard order — for inspection in tests and
    /// experiments.
    pub fn shard_engines(&self) -> impl Iterator<Item = &E> {
        self.shards.iter().map(|s| &s.engine)
    }

    /// How many updates have been routed to each shard so far. An update
    /// matching edges on several shards counts once per receiving shard.
    pub fn routed_per_shard(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.routed).collect()
    }

    /// Number of registered queries whose covering paths span shards.
    pub fn num_spanning_queries(&self) -> usize {
        self.spanning_queries.len()
    }

    /// Routes a batch into the per-shard slices: an update goes to every
    /// shard observing one of its generic-edge shapes, via the reverse
    /// routing index — O(shapes) hash lookups per update, independent of
    /// the shard count. The marks deduplicate shards reached through
    /// several shapes of the same update.
    fn route_into_slices(&mut self, updates: &[Update]) {
        for shard in &mut self.shards {
            shard.slice.clear();
        }
        for &u in updates {
            for shape in GenericEdge::shapes_of_update(&u) {
                let Some(shards) = self.route_index.get(&shape) else {
                    continue;
                };
                for &s in shards {
                    if !self.route_marks[s] {
                        self.route_marks[s] = true;
                        self.route_marked.push(s);
                        self.shards[s].slice.push(u);
                        self.shards[s].routed += 1;
                    }
                }
            }
            for s in self.route_marked.drain(..) {
                self.route_marks[s] = false;
            }
        }
    }

    /// The staging core for `num_shards > 1`: route the batch into
    /// per-shard slices and absorb the slices (in parallel when at least two
    /// shards are active and the batch is a real batch). Inner engines stage
    /// their local queries, spanning path deltas are computed and appended,
    /// and everything the deferred merge + covering-path join pass needs —
    /// inner tokens, spanning deltas, per-path version watermarks — is
    /// collected into the returned token.
    fn stage_batch_routed(&mut self, updates: &[Update]) -> StagedSharded {
        self.stats.updates_processed += updates.len() as u64;
        if updates.is_empty() {
            return StagedSharded::default();
        }

        // Mirror the batch into the wrapper-level history store (dropping
        // the per-edge deltas — only mid-stream registration reads it).
        self.history.apply_batch(updates);

        self.route_into_slices(updates);

        // Absorb. Worker threads only pay off when several shards have real
        // work; single-update calls and single-active-shard batches take the
        // in-place sequential path. The parallel path scatters the shards
        // over the persistent worker pool — each shard (engine, spanning
        // state and routed slice) *moves* into its absorb job and comes back
        // with the gathered results, so the long-lived workers need no
        // scoped borrows. The pool is spawned once, on the first batch that
        // needs it, and reused for the engine's whole life.
        let active = self.shards.iter().filter(|s| !s.slice.is_empty()).count();
        if active >= 2 && updates.len() > 1 {
            let threads = self.shards.len().min(WorkerPool::default_threads());
            let pool = self.pool.get_or_insert_with(|| WorkerPool::new(threads));
            let shards = std::mem::take(&mut self.shards);
            let jobs: Vec<_> = shards
                .into_iter()
                .map(|mut shard| {
                    move || {
                        if shard.slice.is_empty() {
                            shard.staged_inner = None;
                            shard.staged_deltas.clear();
                        } else {
                            shard.absorb();
                        }
                        shard
                    }
                })
                .collect();
            self.shards = pool.scatter(jobs);
        } else {
            for shard in self.shards.iter_mut() {
                if shard.slice.is_empty() {
                    shard.staged_inner = None;
                    shard.staged_deltas.clear();
                } else {
                    shard.absorb();
                }
            }
        }

        // Collect the token: inner staged tokens and spanning deltas move
        // out of the shards, and every path state's full relation is
        // watermarked — including on shards this batch never touched, whose
        // fulls the join pass may still read (they must be frozen against
        // appends by later staged batches). When *no* spanning path gained
        // rows anywhere — the common case for sparse per-update staging —
        // the join pass never reads a watermark, so none are captured.
        let any_spanning_delta = self.shards.iter().any(|s| !s.staged_deltas.is_empty());
        StagedSharded {
            shards: self
                .shards
                .iter_mut()
                .map(|shard| StagedShard {
                    inner: shard.staged_inner.take(),
                    spanning_deltas: std::mem::take(&mut shard.staged_deltas),
                    watermarks: if any_spanning_delta {
                        (0..shard.spanning.paths.len())
                            .map(|pid| shard.spanning_full(pid).version())
                            .collect()
                    } else {
                        Vec::new()
                    },
                })
                .collect(),
        }
    }

    /// The deferred merge + answer pass for `num_shards > 1`: every shard's
    /// inner engine answers its staged token (translating local ids to
    /// wrapper ids; each query is reported by at most one shard, so one
    /// sort-and-fold over the concatenated pairs merges all shards at once),
    /// then the spanning covering-path join pass joins the staged deltas
    /// against the other paths' watermarked fulls, and the two reports
    /// combine via the associative, order-insensitive report merge.
    fn answer_batch_routed(&mut self, mut token: StagedSharded) -> MatchReport {
        let mut counts: Vec<(QueryId, u64)> = Vec::new();
        for (s, staged) in token.shards.iter_mut().enumerate() {
            let Some(inner) = staged.inner.take() else {
                continue;
            };
            let report = self.shards[s].engine.answer_staged(inner);
            counts.extend(report.matches.iter().map(|m| {
                (
                    self.shards[s].local_to_global[m.query.index()],
                    m.new_embeddings,
                )
            }));
        }
        let merged = MatchReport::from_counts(counts).merge(&self.answer_spanning(&token));
        self.stats.notifications += merged.len() as u64;
        self.stats.embeddings += merged.total_embeddings();
        merged
    }

    /// The post-merge covering-path join pass: for every spanning query with
    /// at least one non-empty staged path delta, join each affected path's
    /// delta against the other paths' full relations **frozen at the staged
    /// watermarks** — exactly the final answering step the engines run
    /// locally (Fig. 8, lines 8–13 of the paper), lifted across shards.
    /// Rows appended to the fulls by later staged batches sit past the
    /// watermarks and are invisible.
    fn answer_spanning(&self, token: &StagedSharded) -> MatchReport {
        // The staged delta lists say exactly whether any path state gained
        // rows in the staged batch; without one, no spanning query can
        // report, so skip the per-query delta scan entirely.
        if self.spanning_queries.is_empty()
            || token.shards.iter().all(|s| s.spanning_deltas.is_empty())
        {
            return MatchReport::empty();
        }
        // (path-state id → staged delta) per shard, for O(1) lookups below.
        let delta_index: Vec<FxHashMap<usize, &Relation>> = token
            .shards
            .iter()
            .map(|s| {
                s.spanning_deltas
                    .iter()
                    .map(|(pid, delta)| (*pid, delta))
                    .collect()
            })
            .collect();
        join_spanning_queries(
            self.spanning_queries
                .iter()
                .map(|sq| (sq.query, sq.paths.as_slice())),
            |shard, pid| delta_index[shard].get(&pid).copied(),
            |shard, pid| {
                let watermark = token.shards[shard]
                    .watermarks
                    .get(pid)
                    .copied()
                    .unwrap_or(0);
                Some((self.shards[shard].spanning_full(pid), watermark))
            },
        )
    }

    /// The cross-thread form of [`answer_batch_routed`]
    /// (`ShardedEngine::answer_batch_routed`): every shard's inner engine
    /// detaches its own staged token (freezing whatever its answer pass
    /// reads), the spanning machinery freezes the staged deltas plus the
    /// other paths' fulls at the staged watermarks, and the combined task —
    /// inner answers, id translation, one merged fold, spanning join —
    /// owns all of it and runs on any thread.
    fn detach_batch_routed(&mut self, mut token: StagedSharded) -> DetachedAnswer {
        let mut inners: Vec<(DetachedAnswer, Arc<Vec<QueryId>>)> = Vec::new();
        for (s, staged) in token.shards.iter_mut().enumerate() {
            if let Some(inner) = staged.inner.take() {
                inners.push((
                    self.shards[s].engine.detach_staged(inner),
                    Arc::clone(&self.shards[s].local_to_global),
                ));
            }
        }

        let any_delta = token.shards.iter().any(|s| !s.spanning_deltas.is_empty());
        let spanning = if any_delta && !self.spanning_queries.is_empty() {
            // Only queries with at least one staged path delta can report;
            // capture exactly those (and the fulls their joins will read).
            let queries: Vec<(QueryId, Arc<Vec<SpanningPathInfo>>)> = self
                .spanning_queries
                .iter()
                .filter(|sq| {
                    sq.paths.iter().any(|(s, pid, _)| {
                        token.shards[*s]
                            .spanning_deltas
                            .iter()
                            .any(|(p, _)| p == pid)
                    })
                })
                .map(|sq| (sq.query, Arc::clone(&sq.paths)))
                .collect();
            let mut fulls: FxHashMap<(usize, usize), Relation> = FxHashMap::default();
            for (_, paths) in &queries {
                for (s, pid, _) in paths.iter() {
                    let watermark = token.shards[*s].watermarks.get(*pid).copied().unwrap_or(0);
                    if watermark > 0 {
                        fulls.entry((*s, *pid)).or_insert_with(|| {
                            self.shards[*s]
                                .spanning_full(*pid)
                                .snapshot_owned(watermark)
                        });
                    }
                }
            }
            let deltas: FxHashMap<(usize, usize), Relation> = token
                .shards
                .into_iter()
                .enumerate()
                .flat_map(|(s, staged)| {
                    staged
                        .spanning_deltas
                        .into_iter()
                        .map(move |(pid, delta)| ((s, pid), delta))
                })
                .collect();
            Some(DetachedSpanning {
                queries,
                deltas,
                fulls,
            })
        } else {
            None
        };

        DetachedAnswer::task(move || {
            let mut counts: Vec<(QueryId, u64)> = Vec::new();
            for (inner, local_to_global) in inners {
                let report = inner.run();
                counts.extend(
                    report
                        .matches
                        .iter()
                        .map(|m| (local_to_global[m.query.index()], m.new_embeddings)),
                );
            }
            let spanning_report = spanning
                .as_ref()
                .map(DetachedSpanning::answer)
                .unwrap_or_default();
            MatchReport::from_counts(counts).merge(&spanning_report)
        })
    }

    /// Stages one all-retraction run for `num_shards > 1` — the deletion
    /// mirror of [`stage_batch_routed`](Self::stage_batch_routed):
    ///
    /// 1. The wrapper-level history store retracts the named edges at stage
    ///    time (mid-stream spanning registration must never backfill
    ///    removed rows).
    /// 2. Spanning path states collect their deletion deltas read-only
    ///    ([`EdgeViewStore::remove_deltas`] seeding [`delta_path_relation`]
    ///    against the pre-removal views), and the other paths' fulls are
    ///    frozen **pre-removal** via [`Relation::snapshot_owned`] —
    ///    generation-pinned, so step 3's compaction cannot move them under
    ///    the deferred join.
    /// 3. The spanning views and materialized fulls commit
    ///    ([`Relation::retract_rows`]), exactly as the eager path did.
    /// 4. Each receiving shard's inner engine **stages** its slice: inner
    ///    commits land now (per the staging contract), the disappearing-
    ///    embedding joins defer into the inner tokens.
    ///
    /// Routing runs sequentially — the commits are cheap compactions; all
    /// the join work rides in the returned token and overlaps later stages.
    fn stage_retract_run(&mut self, updates: &[Update]) -> StagedShardedRetract {
        self.stats.updates_processed += updates.len() as u64;

        let removed_hist = self.history.remove_deltas(updates);
        self.history.retract_deltas(&removed_hist);

        self.route_into_slices(updates);

        // Spanning: collect every shard's removed view rows and the removed
        // rows of each affected path state — all against pre-removal state.
        let mut removed_by_shard: Vec<FxHashMap<GenericEdge, Relation>> =
            Vec::with_capacity(self.shards.len());
        let mut removed_paths: FxHashMap<(usize, usize), Relation> = FxHashMap::default();
        for s in 0..self.shards.len() {
            let shard = &mut self.shards[s];
            if shard.slice.is_empty() || shard.spanning.paths.is_empty() {
                removed_by_shard.push(FxHashMap::default());
                continue;
            }
            let removed = shard.spanning.views.remove_deltas(&shard.slice);
            for pid in 0..shard.spanning.paths.len() {
                let touches = shard.spanning.paths[pid]
                    .edges
                    .iter()
                    .any(|e| removed.contains_key(e));
                if !touches {
                    continue;
                }
                let d = delta_path_relation(
                    &shard.spanning.views,
                    &shard.spanning.paths[pid].edges,
                    &removed,
                    crate::relation::cache::BuildCache::None,
                    &mut shard.spanning.row_buf,
                );
                if !d.is_empty() {
                    removed_paths.insert((s, pid), d);
                }
            }
            removed_by_shard.push(removed);
        }

        // Freeze the spanning join's inputs BEFORE committing: the affected
        // queries and the other paths' fulls pinned at the pre-removal
        // generation (queries without a removed path delta cannot report
        // and are skipped).
        let spanning = if removed_paths.is_empty() {
            None
        } else {
            let queries: Vec<(QueryId, Arc<Vec<SpanningPathInfo>>)> = self
                .spanning_queries
                .iter()
                .filter(|sq| {
                    sq.paths
                        .iter()
                        .any(|(s, pid, _)| removed_paths.contains_key(&(*s, *pid)))
                })
                .map(|sq| (sq.query, Arc::clone(&sq.paths)))
                .collect();
            let mut fulls: FxHashMap<(usize, usize), Relation> = FxHashMap::default();
            for (_, paths) in &queries {
                for (s, pid, _) in paths.iter() {
                    let full = self.shards[*s].spanning_full(*pid);
                    let watermark = full.version();
                    if watermark > 0 {
                        fulls
                            .entry((*s, *pid))
                            .or_insert_with(|| full.snapshot_owned(watermark));
                    }
                }
            }
            Some((queries, fulls))
        };

        // Commit: spanning views compact (covers single-edge path fulls,
        // which are the views themselves), then the materialized multi-edge
        // fulls drop their removed rows.
        for (s, removed) in removed_by_shard.iter().enumerate() {
            if !removed.is_empty() {
                self.shards[s].spanning.views.retract_deltas(removed);
            }
        }
        for ((s, pid), d) in &removed_paths {
            let ps = &mut self.shards[*s].spanning.paths[*pid];
            if ps.edges.len() > 1 {
                ps.full.retract_rows(d);
            }
        }

        // Inner engines stage their slices: their commits land here, their
        // disappearing-embedding joins defer into the collected tokens.
        let mut inners: Vec<(usize, StagedBatch)> = Vec::new();
        for s in 0..self.shards.len() {
            if self.shards[s].slice.is_empty() {
                continue;
            }
            let shard = &mut self.shards[s];
            let slice = std::mem::take(&mut shard.slice);
            let token = shard.engine.stage_batch(&slice);
            shard.slice = slice;
            inners.push((s, token));
        }

        StagedShardedRetract {
            inners,
            spanning: spanning.map(|(queries, fulls)| DetachedSpanning {
                queries,
                deltas: removed_paths,
                fulls,
            }),
        }
    }

    /// The deferred answer pass of a staged retraction run: each receiving
    /// shard's inner engine answers its token (reports carry retracted
    /// embeddings; ids translate per shard), the spanning covering-path
    /// join runs over the frozen pre-removal snapshots, and the merged
    /// report feeds the wrapper's retraction counters.
    fn answer_retract_token(&mut self, token: StagedShardedRetract) -> MatchReport {
        let mut counts: Vec<(QueryId, u64)> = Vec::new();
        for (s, inner) in token.inners {
            let report = self.shards[s].engine.answer_staged(inner);
            counts.extend(report.matches.iter().map(|m| {
                (
                    self.shards[s].local_to_global[m.query.index()],
                    m.retracted_embeddings,
                )
            }));
        }
        let spanning_report = token
            .spanning
            .as_ref()
            .map(DetachedSpanning::answer_retract)
            .unwrap_or_default();
        let merged = MatchReport::from_retraction_counts(counts).merge(&spanning_report);
        self.stats.notifications += merged.len() as u64;
        self.stats.retracted += merged.total_retracted();
        merged
    }

    /// The cross-thread form of [`answer_retract_token`]
    /// (`ShardedEngine::answer_retract_token`): inner tokens detach through
    /// their shard's inner engine (retraction tokens are fully frozen
    /// already), the spanning half moves into the task as-is.
    fn detach_retract_token(&mut self, token: StagedShardedRetract) -> DetachedAnswer {
        let inners: Vec<(DetachedAnswer, Arc<Vec<QueryId>>)> = token
            .inners
            .into_iter()
            .map(|(s, inner)| {
                (
                    self.shards[s].engine.detach_staged(inner),
                    Arc::clone(&self.shards[s].local_to_global),
                )
            })
            .collect();
        let spanning = token.spanning;
        DetachedAnswer::task(move || {
            let mut counts: Vec<(QueryId, u64)> = Vec::new();
            for (inner, local_to_global) in inners {
                let report = inner.run();
                counts.extend(
                    report
                        .matches
                        .iter()
                        .map(|m| (local_to_global[m.query.index()], m.retracted_embeddings)),
                );
            }
            let spanning_report = spanning
                .as_ref()
                .map(DetachedSpanning::answer_retract)
                .unwrap_or_default();
            MatchReport::from_retraction_counts(counts).merge(&spanning_report)
        })
    }

    /// Applies one all-retraction run eagerly for `num_shards > 1`,
    /// expressed as stage-then-answer over the very same token the deferred
    /// path issues — equivalence between the two is by construction.
    fn retract_run(&mut self, updates: &[Update]) -> MatchReport {
        let token = self.stage_retract_run(updates);
        self.answer_retract_token(token)
    }
}

impl<E: ContinuousEngine + Send + 'static> ContinuousEngine for ShardedEngine<E> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn register_query(&mut self, query: &QueryPattern) -> Result<QueryId> {
        if self.outstanding > 0 {
            return Err(Error::RegistrationWhileStaged(self.outstanding));
        }
        let gqid = QueryId(self.next_id as u32);
        let n = self.shards.len();
        if n == 1 {
            // Degenerate single-shard deployment: plain delegation, local
            // ids coincide with wrapper ids by construction (the inner
            // engine tombstones unregistered slots too).
            let lid = self.shards[0].engine.register_query(query)?;
            debug_assert_eq!(lid, gqid);
            self.num_queries += 1;
            self.next_id += 1;
            return Ok(gqid);
        }

        let paths = covering_paths(query);
        let path_edges: Vec<Vec<GenericEdge>> = paths
            .iter()
            .map(|p| {
                p.edges
                    .iter()
                    .map(|&e| GenericEdge::from_pattern(&query.edges()[e]))
                    .collect()
            })
            .collect();
        let owners: Vec<usize> = path_edges.iter().map(|es| shard_of(&es[0], n)).collect();
        let home: BTreeSet<usize> = owners.iter().copied().collect();

        if home.len() == 1 {
            // Shard-local query: every covering-path root is owned by the
            // same shard, so the whole query (tries, views, joins) lives
            // there.
            let s = *home.iter().next().expect("non-empty home set");
            let shard = &mut self.shards[s];
            let lid = shard.engine.register_query(query)?;
            debug_assert_eq!(lid.index(), shard.local_to_global.len());
            // Registration barriers the pipeline first, so no detached task
            // holds the map and `make_mut` mutates in place.
            Arc::make_mut(&mut shard.local_to_global).push(gqid);
            for es in &path_edges {
                for &e in es {
                    self.route_edge_to(e, s);
                }
            }
            self.query_homes.push(QueryHome::Local {
                shard: s,
                local: lid,
            });
        } else {
            // Spanning query: each covering path becomes a path state on
            // the shard owning its root edge; answering is deferred to the
            // post-merge covering-path join pass.
            let mut sq_paths: Vec<SpanningPathInfo> = Vec::with_capacity(paths.len());
            for (i, p) in paths.iter().enumerate() {
                // Backfill the owner shard's spanning views from the
                // wrapper-level history store *before* the path state's
                // catch-up relation is computed, so a mid-stream spanning
                // query sees the history of edges that previously routed
                // only to other shards (see the module docs). The replay is
                // a deduplicated set-union, hence idempotent for edges the
                // shard already observes.
                for &e in &path_edges[i] {
                    if let Some(h) = self.history.get(&e) {
                        self.shards[owners[i]].spanning.views.backfill_from(e, h);
                    }
                }
                let pid = self.shards[owners[i]].register_spanning_path(&path_edges[i]);
                for &e in &path_edges[i] {
                    self.route_edge_to(e, owners[i]);
                }
                sq_paths.push((owners[i], pid, p.vertex_sequence(query)));
            }
            self.spanning_queries.push(SpanningQuery {
                query: gqid,
                paths: Arc::new(sq_paths),
            });
            self.query_homes.push(QueryHome::Spanning);
        }
        self.num_queries += 1;
        self.next_id += 1;
        Ok(gqid)
    }

    /// Unregisters via the id → home directory: shard-local queries
    /// delegate to their shard's inner engine (whose tombstoning keeps the
    /// `local_to_global` map aligned), spanning queries leave the join pass
    /// and release their shards' path-state references. Routing-index and
    /// history entries stay — an update routed to a shard with no
    /// interested query is absorbed without output, and a later
    /// registration over the same edges reuses the retained history.
    /// Rejected while staged tokens are outstanding, exactly like
    /// registration (the pipelined executor's epoch queue drains first).
    fn unregister_query(&mut self, query: QueryId) -> Result<()> {
        if self.outstanding > 0 {
            return Err(Error::RegistrationWhileStaged(self.outstanding));
        }
        if self.shards.len() == 1 {
            let r = self.shards[0].engine.unregister_query(query);
            if r.is_ok() {
                self.num_queries -= 1;
            }
            return r;
        }
        match self.query_homes.get(query.index()) {
            None | Some(QueryHome::Dead) => return Err(Error::UnknownQuery(query.0)),
            Some(&QueryHome::Local { shard, local }) => {
                self.shards[shard].engine.unregister_query(local)?;
            }
            Some(QueryHome::Spanning) => {
                let pos = self
                    .spanning_queries
                    .iter()
                    .position(|sq| sq.query == query)
                    .expect("directory and spanning table agree");
                // Preserve registration order: the answer passes walk this
                // table in order and reports are built query-id ascending.
                let sq = self.spanning_queries.remove(pos);
                for &(shard, pid, _) in sq.paths.iter() {
                    self.shards[shard].release_spanning_path(pid);
                }
            }
        }
        self.query_homes[query.index()] = QueryHome::Dead;
        self.num_queries -= 1;
        Ok(())
    }

    fn next_query_id(&self) -> QueryId {
        if self.shards.len() == 1 {
            return self.shards[0].engine.next_query_id();
        }
        QueryId(self.next_id as u32)
    }

    fn is_registered(&self, query: QueryId) -> bool {
        if self.shards.len() == 1 {
            return self.shards[0].engine.is_registered(query);
        }
        matches!(
            self.query_homes.get(query.index()),
            Some(QueryHome::Local { .. } | QueryHome::Spanning)
        )
    }

    fn apply_update(&mut self, update: Update) -> MatchReport {
        if self.shards.len() == 1 {
            return self.shards[0].engine.apply_update(update);
        }
        if update.is_retraction() {
            return self.retract_run(&[update]);
        }
        let token = self.stage_batch_routed(&[update]);
        self.answer_batch_routed(token)
    }

    fn apply_batch(&mut self, updates: &[Update]) -> MatchReport {
        if self.shards.len() == 1 {
            return self.shards[0].engine.apply_batch(updates);
        }
        // Split into maximal same-sign runs: insert runs take the staged
        // routing path, retraction runs apply eagerly (they compact shared
        // state, so nothing may be deferred across them).
        let mut report = MatchReport::empty();
        for run in sign_runs(updates) {
            let r = if run[0].is_retraction() {
                self.retract_run(run)
            } else {
                let token = self.stage_batch_routed(run);
                self.answer_batch_routed(token)
            };
            report = report.merge(&r);
        }
        report
    }

    /// Routing + per-shard absorption with the merge and spanning join pass
    /// deferred: inner engines stage their slices (in parallel when several
    /// shards are active) and the token freezes every path state's version
    /// watermark. See the staging contract on
    /// [`ContinuousEngine::stage_batch`]. All-retraction runs stage too
    /// (`stage_retract_run`): the commits —
    /// spanning compaction, inner-engine removal — land before this returns,
    /// while the disappearing-embedding joins ride the token over
    /// generation-pinned pre-removal snapshots. Only mixed-sign batches
    /// fall back to an immediate token; callers split with
    /// [`sign_runs`] first.
    fn stage_batch(&mut self, updates: &[Update]) -> StagedBatch {
        let staged = if self.shards.len() == 1 {
            self.shards[0].engine.stage_batch(updates)
        } else {
            let retractions = updates.iter().filter(|u| u.is_retraction()).count();
            if retractions == updates.len() && !updates.is_empty() {
                StagedBatch::deferred(ShardedToken::Retract(self.stage_retract_run(updates)))
            } else if retractions > 0 {
                StagedBatch::immediate(self.apply_batch(updates))
            } else {
                StagedBatch::deferred(ShardedToken::Insert(self.stage_batch_routed(updates)))
            }
        };
        self.outstanding += 1;
        staged
    }

    fn answer_staged(&mut self, staged: StagedBatch) -> MatchReport {
        self.outstanding = self.outstanding.saturating_sub(1);
        if self.shards.len() == 1 {
            return self.shards[0].engine.answer_staged(staged);
        }
        match staged.into_deferred::<ShardedToken>() {
            Ok(ShardedToken::Insert(token)) => self.answer_batch_routed(token),
            Ok(ShardedToken::Retract(token)) => self.answer_retract_token(token),
            Err(report) => report,
        }
    }

    /// Detaches the deferred merge + spanning join pass into a
    /// self-contained task (see the detachment contract on
    /// [`ContinuousEngine::detach_staged`]): inner tokens detach through
    /// their shard's inner engine, and the spanning join captures the staged
    /// deltas plus [`Relation::snapshot_owned`] copies of the fulls at the
    /// staged watermarks (retraction tokens froze theirs at stage time
    /// already and just move into the task).
    fn detach_staged(&mut self, staged: StagedBatch) -> DetachedAnswer {
        self.outstanding = self.outstanding.saturating_sub(1);
        if self.shards.len() == 1 {
            return self.shards[0].engine.detach_staged(staged);
        }
        match staged.into_deferred::<ShardedToken>() {
            Ok(ShardedToken::Insert(token)) => self.detach_batch_routed(token),
            Ok(ShardedToken::Retract(token)) => self.detach_retract_token(token),
            Err(report) => DetachedAnswer::ready(report),
        }
    }

    fn absorb_answered(&mut self, report: &MatchReport) {
        if self.shards.len() == 1 {
            return self.shards[0].engine.absorb_answered(report);
        }
        // Inner engines answered inside the detached task and could not
        // count; in sharded deployments the wrapper's counters are the
        // authoritative ones (see `stats`).
        self.stats.notifications += report.len() as u64;
        self.stats.embeddings += report.total_embeddings();
        self.stats.retracted += report.total_retracted();
    }

    fn num_queries(&self) -> usize {
        self.num_queries
    }

    fn heap_bytes(&self) -> usize {
        self.route_index.heap_size()
            + self.history.heap_size()
            + self
                .shards
                .iter()
                .map(|s| {
                    s.engine.heap_bytes() + s.spanning.heap_size() + s.local_to_global.heap_size()
                })
                .sum::<usize>()
    }

    fn stats(&self) -> EngineStats {
        if self.shards.len() == 1 {
            self.shards[0].engine.stats()
        } else {
            self.stats
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::generic::GenTerm;

    fn ge(label: u32) -> GenericEdge {
        GenericEdge {
            label: Sym(label),
            src: GenTerm::Any,
            tgt: GenTerm::Any,
            same_var: false,
        }
    }

    #[test]
    fn shard_assignment_is_deterministic_and_in_range() {
        for n in [1usize, 2, 3, 4, 8, 17] {
            for label in 0..200u32 {
                let s1 = shard_of(&ge(label), n);
                let s2 = shard_of(&ge(label), n);
                assert_eq!(s1, s2);
                assert!(s1 < n);
            }
        }
        assert_eq!(shard_of(&ge(7), 0), 0);
        assert_eq!(shard_of(&ge(7), 1), 0);
    }

    #[test]
    fn shard_assignment_uses_every_shard() {
        // Sanity: over a couple hundred labels, FxHash spreads roots across
        // all shards (a degenerate constant assignment would defeat the
        // point of sharding and silently weaken the differential tests).
        for n in [2usize, 4, 8] {
            let mut seen = vec![false; n];
            for label in 0..200u32 {
                seen[shard_of(&ge(label), n)] = true;
            }
            assert!(seen.iter().all(|&s| s), "{n} shards not all used");
        }
    }

    #[test]
    fn self_loop_and_open_edges_shard_independently() {
        // The same label with and without the same-variable flag are
        // different generic edges and may land on different shards; both
        // must be stable.
        let open = ge(3);
        let mut looped = ge(3);
        looped.same_var = true;
        for n in [2usize, 4, 8] {
            assert_eq!(shard_of(&open, n), shard_of(&open, n));
            assert_eq!(shard_of(&looped, n), shard_of(&looped, n));
        }
    }

    #[test]
    fn path_delta_equals_full_difference() {
        // Two-edge path over labels 0 and 1; stream a few batches and check
        // the documented invariant delta == full_after − full_before.
        let edges = [ge(0), ge(1)];
        let mut views = EdgeViewStore::new();
        for e in &edges {
            views.register(*e);
        }
        let mut full = Relation::new(3);
        let batches: Vec<Vec<Update>> = vec![
            vec![Update::new(Sym(0), Sym(10), Sym(11))],
            vec![
                Update::new(Sym(1), Sym(11), Sym(12)),
                Update::new(Sym(0), Sym(9), Sym(11)),
            ],
            vec![
                Update::new(Sym(1), Sym(11), Sym(13)),
                Update::new(Sym(1), Sym(11), Sym(13)), // duplicate in batch
            ],
        ];
        let mut buf = Vec::new();
        for batch in batches {
            let before = full.to_sorted_vec();
            let deltas = views.apply_batch(&batch);
            let delta = delta_path_relation(
                &views,
                &edges,
                &deltas,
                crate::relation::cache::BuildCache::None,
                &mut buf,
            );
            full.extend_from(&delta);
            let after_expected = full_path_relation(
                &views,
                &edges,
                crate::relation::cache::BuildCache::None,
                &mut buf,
            )
            .to_sorted_vec();
            assert_eq!(full.to_sorted_vec(), after_expected);
            for row in delta.iter() {
                assert!(!before.contains(&row.to_vec()), "delta row not new");
            }
        }
        // Sources {9, 10} reach 11, which reaches targets {12, 13}.
        assert_eq!(full.len(), 4);
    }
}
