//! The attribute-graph data model (Section 3.1 of the paper).
//!
//! * [`term`] — pattern terms (constants and variables) and pattern edges.
//! * [`update`] — edge-addition updates and graph streams.
//! * [`graph`] — a materialized attribute graph (used by workload generation,
//!   examples and the graph-database baseline's reference semantics).
//! * [`generic`] — *generic edges*: the variable-erased normal form of a
//!   pattern edge that every index (tries, inverted indexes) is keyed on.

pub mod generic;
pub mod graph;
pub mod term;
pub mod update;
