//! Graph updates and update streams (Definitions 3.2 and 3.3 of the paper).

use crate::interner::Sym;
use crate::memory::HeapSize;

/// A signed edge update `label = (src, tgt)` applied to the evolving graph:
/// an **addition** (the default, [`Update::new`]) or a **retraction**
/// ([`Update::retraction`]) that removes a previously added edge.
///
/// Following the paper, an addition both creates the edge and (implicitly)
/// any endpoint vertex that did not exist before. A retraction removes the
/// edge (vertices persist); retracting an absent edge is a no-op. Engines
/// that key collections by `Update` (edge sets, window maps) must key by the
/// sign-normalized [`edge`](Update::edge) form, since the derived `Hash`/
/// `Eq` distinguish the two signs of the same edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Update {
    /// Edge label.
    pub label: Sym,
    /// Source vertex identity.
    pub src: Sym,
    /// Target vertex identity.
    pub tgt: Sym,
    /// True for a retraction (the edge disappears), false for an addition.
    pub retract: bool,
}

impl Update {
    /// Creates a new edge-addition update.
    #[inline]
    pub fn new(label: Sym, src: Sym, tgt: Sym) -> Self {
        Self {
            label,
            src,
            tgt,
            retract: false,
        }
    }

    /// Creates a retraction of the edge `label = (src, tgt)`.
    #[inline]
    pub fn retraction(label: Sym, src: Sym, tgt: Sym) -> Self {
        Self {
            label,
            src,
            tgt,
            retract: true,
        }
    }

    /// True when this update removes its edge instead of adding it.
    #[inline]
    pub fn is_retraction(&self) -> bool {
        self.retract
    }

    /// The sign-normalized addition form of this update — the identity of
    /// the edge itself, usable as a set/map key regardless of sign.
    #[inline]
    pub fn edge(&self) -> Update {
        Update::new(self.label, self.src, self.tgt)
    }

    /// This update with the opposite sign (an addition becomes the matching
    /// retraction and vice versa).
    #[inline]
    pub fn inverted(&self) -> Update {
        Update {
            retract: !self.retract,
            ..*self
        }
    }
}

/// Splits a batch into maximal runs of same-signed updates, preserving
/// order: `[+a, +b, -c, +d]` yields `[+a, +b]`, `[-c]`, `[+d]`.
///
/// The staged/pipelined executors stage each run separately — insertion
/// and retraction runs alike take the deferred-answer token shape, only
/// mixed-sign batches fall back to immediate answering — so run splitting
/// is the single place where a mixed batch is decomposed.
pub fn sign_runs(batch: &[Update]) -> impl Iterator<Item = &[Update]> {
    batch.chunk_by(|a, b| a.retract == b.retract)
}

impl HeapSize for Update {
    fn heap_size(&self) -> usize {
        0
    }
}

/// An ordered sequence of updates — the graph stream `S = (u1, u2, …)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphStream {
    updates: Vec<Update>,
}

impl GraphStream {
    /// Creates an empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a stream from a vector of updates.
    pub fn from_updates(updates: Vec<Update>) -> Self {
        Self { updates }
    }

    /// Appends an update at the end of the stream.
    pub fn push(&mut self, update: Update) {
        self.updates.push(update);
    }

    /// Number of updates in the stream.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// True if the stream holds no updates.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// Iterates over the updates in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &Update> {
        self.updates.iter()
    }

    /// Borrow the updates as a slice.
    pub fn as_slice(&self) -> &[Update] {
        &self.updates
    }

    /// Truncate the stream to its first `n` updates.
    pub fn truncate(&mut self, n: usize) {
        self.updates.truncate(n);
    }

    /// Returns a clone of the first `n` updates as a new stream.
    pub fn prefix(&self, n: usize) -> GraphStream {
        GraphStream {
            updates: self.updates[..n.min(self.updates.len())].to_vec(),
        }
    }
}

impl IntoIterator for GraphStream {
    type Item = Update;
    type IntoIter = std::vec::IntoIter<Update>;

    fn into_iter(self) -> Self::IntoIter {
        self.updates.into_iter()
    }
}

impl<'a> IntoIterator for &'a GraphStream {
    type Item = &'a Update;
    type IntoIter = std::slice::Iter<'a, Update>;

    fn into_iter(self) -> Self::IntoIter {
        self.updates.iter()
    }
}

impl FromIterator<Update> for GraphStream {
    fn from_iter<T: IntoIterator<Item = Update>>(iter: T) -> Self {
        Self {
            updates: iter.into_iter().collect(),
        }
    }
}

impl HeapSize for GraphStream {
    fn heap_size(&self) -> usize {
        self.updates.heap_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(l: u32, s: u32, t: u32) -> Update {
        Update::new(Sym(l), Sym(s), Sym(t))
    }

    #[test]
    fn retraction_sign_and_normalization() {
        let add = u(1, 2, 3);
        let del = Update::retraction(Sym(1), Sym(2), Sym(3));
        assert!(!add.is_retraction());
        assert!(del.is_retraction());
        assert_ne!(add, del, "signs are distinct update values");
        assert_eq!(del.edge(), add, "edge() strips the sign");
        assert_eq!(add.edge(), add);
        assert_eq!(add.inverted(), del);
        assert_eq!(del.inverted(), add);
    }

    #[test]
    fn sign_runs_split_on_sign_flips() {
        let batch = vec![u(0, 1, 2), u(0, 2, 3), u(0, 1, 2).inverted(), u(1, 3, 4)];
        let runs: Vec<&[Update]> = sign_runs(&batch).collect();
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[0].len(), 2);
        assert!(runs[1][0].is_retraction() && runs[1].len() == 1);
        assert!(!runs[2][0].is_retraction() && runs[2].len() == 1);
        assert!(sign_runs(&[]).next().is_none());
    }

    #[test]
    fn stream_preserves_order() {
        let mut s = GraphStream::new();
        s.push(u(0, 1, 2));
        s.push(u(0, 2, 3));
        s.push(u(1, 3, 4));
        let labels: Vec<u32> = s.iter().map(|x| x.label.0).collect();
        assert_eq!(labels, vec![0, 0, 1]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn prefix_and_truncate() {
        let s: GraphStream = (0..10).map(|i| u(0, i, i + 1)).collect();
        let p = s.prefix(4);
        assert_eq!(p.len(), 4);
        let p_over = s.prefix(100);
        assert_eq!(p_over.len(), 10);
        let mut t = s.clone();
        t.truncate(2);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn into_iterator_roundtrip() {
        let s: GraphStream = (0..5).map(|i| u(1, i, i)).collect();
        let collected: Vec<Update> = s.clone().into_iter().collect();
        assert_eq!(collected.len(), 5);
        assert_eq!(&collected[..], s.as_slice());
    }
}
