//! Graph updates and update streams (Definitions 3.2 and 3.3 of the paper).

use crate::interner::Sym;
use crate::memory::HeapSize;

/// An edge addition `label = (src, tgt)` applied to the evolving graph.
///
/// Following the paper, an update both creates the edge and (implicitly) any
/// endpoint vertex that did not exist before.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Update {
    /// Edge label.
    pub label: Sym,
    /// Source vertex identity.
    pub src: Sym,
    /// Target vertex identity.
    pub tgt: Sym,
}

impl Update {
    /// Creates a new edge-addition update.
    #[inline]
    pub fn new(label: Sym, src: Sym, tgt: Sym) -> Self {
        Self { label, src, tgt }
    }
}

impl HeapSize for Update {
    fn heap_size(&self) -> usize {
        0
    }
}

/// An ordered sequence of updates — the graph stream `S = (u1, u2, …)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphStream {
    updates: Vec<Update>,
}

impl GraphStream {
    /// Creates an empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a stream from a vector of updates.
    pub fn from_updates(updates: Vec<Update>) -> Self {
        Self { updates }
    }

    /// Appends an update at the end of the stream.
    pub fn push(&mut self, update: Update) {
        self.updates.push(update);
    }

    /// Number of updates in the stream.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// True if the stream holds no updates.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// Iterates over the updates in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &Update> {
        self.updates.iter()
    }

    /// Borrow the updates as a slice.
    pub fn as_slice(&self) -> &[Update] {
        &self.updates
    }

    /// Truncate the stream to its first `n` updates.
    pub fn truncate(&mut self, n: usize) {
        self.updates.truncate(n);
    }

    /// Returns a clone of the first `n` updates as a new stream.
    pub fn prefix(&self, n: usize) -> GraphStream {
        GraphStream {
            updates: self.updates[..n.min(self.updates.len())].to_vec(),
        }
    }
}

impl IntoIterator for GraphStream {
    type Item = Update;
    type IntoIter = std::vec::IntoIter<Update>;

    fn into_iter(self) -> Self::IntoIter {
        self.updates.into_iter()
    }
}

impl<'a> IntoIterator for &'a GraphStream {
    type Item = &'a Update;
    type IntoIter = std::slice::Iter<'a, Update>;

    fn into_iter(self) -> Self::IntoIter {
        self.updates.iter()
    }
}

impl FromIterator<Update> for GraphStream {
    fn from_iter<T: IntoIterator<Item = Update>>(iter: T) -> Self {
        Self {
            updates: iter.into_iter().collect(),
        }
    }
}

impl HeapSize for GraphStream {
    fn heap_size(&self) -> usize {
        self.updates.heap_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(l: u32, s: u32, t: u32) -> Update {
        Update::new(Sym(l), Sym(s), Sym(t))
    }

    #[test]
    fn stream_preserves_order() {
        let mut s = GraphStream::new();
        s.push(u(0, 1, 2));
        s.push(u(0, 2, 3));
        s.push(u(1, 3, 4));
        let labels: Vec<u32> = s.iter().map(|x| x.label.0).collect();
        assert_eq!(labels, vec![0, 0, 1]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn prefix_and_truncate() {
        let s: GraphStream = (0..10).map(|i| u(0, i, i + 1)).collect();
        let p = s.prefix(4);
        assert_eq!(p.len(), 4);
        let p_over = s.prefix(100);
        assert_eq!(p_over.len(), 10);
        let mut t = s.clone();
        t.truncate(2);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn into_iterator_roundtrip() {
        let s: GraphStream = (0..5).map(|i| u(1, i, i)).collect();
        let collected: Vec<Update> = s.clone().into_iter().collect();
        assert_eq!(collected.len(), 5);
        assert_eq!(&collected[..], s.as_slice());
    }
}
