//! A materialized attribute graph.
//!
//! Engines do **not** need the whole graph (the paper stresses that only the
//! materialized views relevant to the query database are retained); this
//! structure exists for workload generation, for the graph-database baseline's
//! reference semantics, and for examples/tests that want to inspect the
//! evolving graph.

use std::collections::{HashMap, HashSet};

use crate::interner::Sym;
use crate::memory::HeapSize;
use crate::model::update::Update;

/// A directed labeled multigraph accumulated from edge-addition updates.
#[derive(Debug, Default, Clone)]
pub struct AttributeGraph {
    /// Outgoing adjacency: source → (label, target), duplicates removed.
    out: HashMap<Sym, Vec<(Sym, Sym)>>,
    /// Incoming adjacency: target → (label, source), duplicates removed.
    inc: HashMap<Sym, Vec<(Sym, Sym)>>,
    /// All edges grouped by label.
    by_label: HashMap<Sym, Vec<(Sym, Sym)>>,
    /// Set of distinct edges, used to de-duplicate repeated updates.
    edges: HashSet<Update>,
    /// Set of vertices.
    vertices: HashSet<Sym>,
}

impl AttributeGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a graph by replaying every update of a stream, sign-aware:
    /// insertions apply, retractions remove. The result is the from-scratch
    /// state of the surviving edge set — the oracle the retraction
    /// differential suites compare engines against.
    pub fn from_updates<'a, I: IntoIterator<Item = &'a Update>>(updates: I) -> Self {
        let mut g = Self::new();
        for u in updates {
            if u.is_retraction() {
                g.remove(*u);
            } else {
                g.apply(*u);
            }
        }
        g
    }

    /// Applies an edge addition. Returns `true` if the edge was new. The
    /// stored key is the sign-normalized [`Update::edge`] form, so additions
    /// and the retractions that later target them always agree.
    pub fn apply(&mut self, u: Update) -> bool {
        let u = u.edge();
        if !self.edges.insert(u) {
            return false;
        }
        self.vertices.insert(u.src);
        self.vertices.insert(u.tgt);
        self.out.entry(u.src).or_default().push((u.label, u.tgt));
        self.inc.entry(u.tgt).or_default().push((u.label, u.src));
        self.by_label
            .entry(u.label)
            .or_default()
            .push((u.src, u.tgt));
        true
    }

    /// Removes the edge named by `u` (either sign — the lookup is
    /// sign-normalized). Returns `true` if the edge existed. The endpoint
    /// vertices persist: a retraction removes the edge only.
    pub fn remove(&mut self, u: Update) -> bool {
        let e = u.edge();
        if !self.edges.remove(&e) {
            return false;
        }
        if let Some(v) = self.out.get_mut(&e.src) {
            v.retain(|&(l, t)| !(l == e.label && t == e.tgt));
        }
        if let Some(v) = self.inc.get_mut(&e.tgt) {
            v.retain(|&(l, s)| !(l == e.label && s == e.src));
        }
        if let Some(v) = self.by_label.get_mut(&e.label) {
            v.retain(|&(s, t)| !(s == e.src && t == e.tgt));
        }
        true
    }

    /// True if the exact edge exists.
    pub fn contains(&self, u: &Update) -> bool {
        self.edges.contains(u)
    }

    /// Number of distinct edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of distinct vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Iterates over all distinct edges.
    pub fn edges(&self) -> impl Iterator<Item = &Update> {
        self.edges.iter()
    }

    /// Iterates over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = &Sym> {
        self.vertices.iter()
    }

    /// Outgoing `(label, target)` pairs of a vertex.
    pub fn out_edges(&self, v: Sym) -> &[(Sym, Sym)] {
        self.out.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Incoming `(label, source)` pairs of a vertex.
    pub fn in_edges(&self, v: Sym) -> &[(Sym, Sym)] {
        self.inc.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All `(source, target)` pairs carrying a given label.
    pub fn edges_with_label(&self, label: Sym) -> &[(Sym, Sym)] {
        self.by_label.get(&label).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Out-degree of a vertex.
    pub fn out_degree(&self, v: Sym) -> usize {
        self.out_edges(v).len()
    }

    /// In-degree of a vertex.
    pub fn in_degree(&self, v: Sym) -> usize {
        self.in_edges(v).len()
    }
}

impl HeapSize for AttributeGraph {
    fn heap_size(&self) -> usize {
        self.out.heap_size()
            + self.inc.heap_size()
            + self.by_label.heap_size()
            + self.edges.heap_size()
            + self.vertices.heap_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(l: u32, s: u32, t: u32) -> Update {
        Update::new(Sym(l), Sym(s), Sym(t))
    }

    #[test]
    fn apply_builds_adjacency() {
        let mut g = AttributeGraph::new();
        assert!(g.apply(u(0, 1, 2)));
        assert!(g.apply(u(0, 1, 3)));
        assert!(g.apply(u(1, 2, 3)));
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.out_degree(Sym(1)), 2);
        assert_eq!(g.in_degree(Sym(3)), 2);
        assert_eq!(g.edges_with_label(Sym(0)).len(), 2);
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let mut g = AttributeGraph::new();
        assert!(g.apply(u(0, 1, 2)));
        assert!(!g.apply(u(0, 1, 2)));
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.out_degree(Sym(1)), 1);
    }

    #[test]
    fn multigraph_allows_parallel_edges_with_distinct_labels() {
        let mut g = AttributeGraph::new();
        assert!(g.apply(u(0, 1, 2)));
        assert!(g.apply(u(1, 1, 2)));
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_degree(Sym(1)), 2);
    }

    #[test]
    fn from_updates_matches_incremental_application() {
        let updates: Vec<Update> = (0..50).map(|i| u(i % 3, i, i + 1)).collect();
        let bulk = AttributeGraph::from_updates(&updates);
        let mut incremental = AttributeGraph::new();
        for upd in &updates {
            incremental.apply(*upd);
        }
        assert_eq!(bulk.num_edges(), incremental.num_edges());
        assert_eq!(bulk.num_vertices(), incremental.num_vertices());
    }

    #[test]
    fn remove_deletes_the_edge_but_keeps_vertices() {
        let mut g = AttributeGraph::new();
        g.apply(u(0, 1, 2));
        g.apply(u(1, 1, 2));
        assert!(g.remove(u(0, 1, 2).inverted()), "either sign removes");
        assert!(!g.remove(u(0, 1, 2)), "second removal is a no-op");
        assert!(!g.contains(&u(0, 1, 2)));
        assert!(g.contains(&u(1, 1, 2)), "parallel edge survives");
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.num_vertices(), 2, "vertices persist");
        assert_eq!(g.out_degree(Sym(1)), 1);
        assert_eq!(g.in_degree(Sym(2)), 1);
        assert!(g.edges_with_label(Sym(0)).is_empty());
        // Re-adding after removal works as if it never existed.
        assert!(g.apply(u(0, 1, 2)));
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn missing_vertex_has_empty_adjacency() {
        let g = AttributeGraph::new();
        assert!(g.out_edges(Sym(99)).is_empty());
        assert!(g.in_edges(Sym(99)).is_empty());
        assert_eq!(g.edges_with_label(Sym(99)).len(), 0);
    }
}
