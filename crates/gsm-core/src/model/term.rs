//! Pattern terms and pattern edges.

use crate::interner::Sym;
use crate::memory::HeapSize;

/// Identifier of a query variable, unique within a single query pattern.
pub type VarId = u32;

/// A term occurring at a vertex position of a query graph pattern.
///
/// A term is either a *constant* (a concrete vertex identity from the data
/// graph, e.g. `"rio"`) or a *variable* (`?x`). Two occurrences of the same
/// constant denote the same query vertex; two occurrences of the same
/// variable likewise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A concrete vertex identity.
    Const(Sym),
    /// A query variable.
    Var(VarId),
}

impl Term {
    /// True if the term is a variable.
    #[inline]
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// True if the term is a constant.
    #[inline]
    pub fn is_const(&self) -> bool {
        matches!(self, Term::Const(_))
    }

    /// Returns the constant symbol, if any.
    #[inline]
    pub fn as_const(&self) -> Option<Sym> {
        match self {
            Term::Const(s) => Some(*s),
            Term::Var(_) => None,
        }
    }

    /// Returns the variable id, if any.
    #[inline]
    pub fn as_var(&self) -> Option<VarId> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    /// Whether a concrete data vertex satisfies this term (variables match
    /// anything, constants only themselves).
    #[inline]
    pub fn admits(&self, vertex: Sym) -> bool {
        match self {
            Term::Const(s) => *s == vertex,
            Term::Var(_) => true,
        }
    }
}

impl HeapSize for Term {
    fn heap_size(&self) -> usize {
        0
    }
}

/// A directed, labeled edge of a query graph pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PatternEdge {
    /// Edge label (always a constant in this query model, as in the paper).
    pub label: Sym,
    /// Source vertex term.
    pub src: Term,
    /// Target vertex term.
    pub tgt: Term,
}

impl PatternEdge {
    /// Creates a new pattern edge.
    pub fn new(label: Sym, src: Term, tgt: Term) -> Self {
        Self { label, src, tgt }
    }
}

impl HeapSize for PatternEdge {
    fn heap_size(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_kind_predicates() {
        let c = Term::Const(Sym(3));
        let v = Term::Var(0);
        assert!(c.is_const() && !c.is_var());
        assert!(v.is_var() && !v.is_const());
        assert_eq!(c.as_const(), Some(Sym(3)));
        assert_eq!(v.as_var(), Some(0));
        assert_eq!(c.as_var(), None);
        assert_eq!(v.as_const(), None);
    }

    #[test]
    fn term_admits() {
        assert!(Term::Var(1).admits(Sym(9)));
        assert!(Term::Const(Sym(9)).admits(Sym(9)));
        assert!(!Term::Const(Sym(9)).admits(Sym(8)));
    }

    #[test]
    fn same_constant_is_same_vertex() {
        // Term equality is what identifies query vertices.
        assert_eq!(Term::Const(Sym(1)), Term::Const(Sym(1)));
        assert_ne!(Term::Const(Sym(1)), Term::Const(Sym(2)));
        assert_eq!(Term::Var(4), Term::Var(4));
        assert_ne!(Term::Var(4), Term::Var(5));
        assert_ne!(Term::Var(1), Term::Const(Sym(1)));
    }
}
