//! Generic edges: the variable-erased normal form of a pattern edge.
//!
//! The paper's indexes (the trie forest of TRIC and the inverted indexes of
//! the baselines) substitute every query variable with the generic marker
//! `?var` so that structurally identical pattern edges of different queries
//! share an index entry (Section 4.1, "Variable Handling"). A self-loop on a
//! single variable (`?x -knows-> ?x`) is *not* the same constraint as two
//! distinct variables (`?x -knows-> ?y`), so the normal form keeps an explicit
//! "both endpoints are the same variable" flag.

use crate::interner::Sym;
use crate::memory::HeapSize;
use crate::model::term::{PatternEdge, Term};
use crate::model::update::Update;

/// A vertex position of a [`GenericEdge`]: either a concrete constant or the
/// generic variable marker `?var`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GenTerm {
    /// A concrete vertex identity that the update must match exactly.
    Const(Sym),
    /// Any vertex (the `?var` marker).
    Any,
}

impl GenTerm {
    /// Whether a concrete data vertex satisfies this position.
    #[inline]
    pub fn admits(&self, vertex: Sym) -> bool {
        match self {
            GenTerm::Const(s) => *s == vertex,
            GenTerm::Any => true,
        }
    }
}

impl HeapSize for GenTerm {
    fn heap_size(&self) -> usize {
        0
    }
}

/// The variable-erased form of a pattern edge, used as the key of every
/// index structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GenericEdge {
    /// Edge label.
    pub label: Sym,
    /// Source position.
    pub src: GenTerm,
    /// Target position.
    pub tgt: GenTerm,
    /// True iff both endpoints are variables *and* the same variable
    /// (a variable self-loop such as `?x -follows-> ?x`).
    pub same_var: bool,
}

impl GenericEdge {
    /// Normalises a pattern edge.
    pub fn from_pattern(edge: &PatternEdge) -> Self {
        let same_var = match (edge.src, edge.tgt) {
            (Term::Var(a), Term::Var(b)) => a == b,
            _ => false,
        };
        let gen = |t: Term| match t {
            Term::Const(s) => GenTerm::Const(s),
            Term::Var(_) => GenTerm::Any,
        };
        GenericEdge {
            label: edge.label,
            src: gen(edge.src),
            tgt: gen(edge.tgt),
            same_var,
        }
    }

    /// True if the incoming update satisfies this generic edge.
    pub fn matches(&self, u: &Update) -> bool {
        if self.label != u.label {
            return false;
        }
        if !self.src.admits(u.src) || !self.tgt.admits(u.tgt) {
            return false;
        }
        if self.same_var && u.src != u.tgt {
            return false;
        }
        true
    }

    /// Enumerates every generic-edge shape an update can match.
    ///
    /// An update `l = (s, t)` can be indexed under at most five shapes:
    /// `(s, t)`, `(s, ?var)`, `(?var, t)`, `(?var, ?var)` and — only when
    /// `s == t` — the self-loop shape. Index lookups therefore cost O(1)
    /// hash probes per update, independent of the query database size.
    pub fn shapes_of_update(u: &Update) -> Vec<GenericEdge> {
        let mut shapes = vec![
            GenericEdge {
                label: u.label,
                src: GenTerm::Const(u.src),
                tgt: GenTerm::Const(u.tgt),
                same_var: false,
            },
            GenericEdge {
                label: u.label,
                src: GenTerm::Const(u.src),
                tgt: GenTerm::Any,
                same_var: false,
            },
            GenericEdge {
                label: u.label,
                src: GenTerm::Any,
                tgt: GenTerm::Const(u.tgt),
                same_var: false,
            },
            GenericEdge {
                label: u.label,
                src: GenTerm::Any,
                tgt: GenTerm::Any,
                same_var: false,
            },
        ];
        if u.src == u.tgt {
            shapes.push(GenericEdge {
                label: u.label,
                src: GenTerm::Any,
                tgt: GenTerm::Any,
                same_var: true,
            });
        }
        shapes
    }
}

impl HeapSize for GenericEdge {
    fn heap_size(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pe(label: u32, src: Term, tgt: Term) -> PatternEdge {
        PatternEdge::new(Sym(label), src, tgt)
    }

    #[test]
    fn normalisation_erases_variable_names() {
        let a = GenericEdge::from_pattern(&pe(0, Term::Var(0), Term::Var(1)));
        let b = GenericEdge::from_pattern(&pe(0, Term::Var(7), Term::Var(9)));
        assert_eq!(a, b);
        assert!(!a.same_var);
    }

    #[test]
    fn self_loop_variable_is_distinguished() {
        let loop_edge = GenericEdge::from_pattern(&pe(0, Term::Var(3), Term::Var(3)));
        let open_edge = GenericEdge::from_pattern(&pe(0, Term::Var(3), Term::Var(4)));
        assert_ne!(loop_edge, open_edge);
        assert!(loop_edge.same_var);
    }

    #[test]
    fn constants_are_kept() {
        let e = GenericEdge::from_pattern(&pe(2, Term::Var(0), Term::Const(Sym(42))));
        assert_eq!(e.src, GenTerm::Any);
        assert_eq!(e.tgt, GenTerm::Const(Sym(42)));
    }

    #[test]
    fn matching_respects_label_and_constants() {
        let e = GenericEdge::from_pattern(&pe(2, Term::Var(0), Term::Const(Sym(42))));
        assert!(e.matches(&Update::new(Sym(2), Sym(7), Sym(42))));
        assert!(!e.matches(&Update::new(Sym(2), Sym(7), Sym(43))));
        assert!(!e.matches(&Update::new(Sym(3), Sym(7), Sym(42))));
    }

    #[test]
    fn matching_respects_self_loop() {
        let e = GenericEdge::from_pattern(&pe(0, Term::Var(1), Term::Var(1)));
        assert!(e.matches(&Update::new(Sym(0), Sym(5), Sym(5))));
        assert!(!e.matches(&Update::new(Sym(0), Sym(5), Sym(6))));
    }

    #[test]
    fn shapes_enumeration_covers_all_matching_shapes() {
        let u = Update::new(Sym(1), Sym(10), Sym(11));
        let shapes = GenericEdge::shapes_of_update(&u);
        assert_eq!(shapes.len(), 4);
        for s in &shapes {
            assert!(s.matches(&u), "{s:?} should match its own update");
        }

        let loop_u = Update::new(Sym(1), Sym(10), Sym(10));
        let shapes = GenericEdge::shapes_of_update(&loop_u);
        assert_eq!(shapes.len(), 5);
        assert!(shapes.iter().any(|s| s.same_var));
    }

    #[test]
    fn every_pattern_shape_matching_an_update_is_enumerated() {
        // Exhaustive check over all pattern-edge shapes on a tiny alphabet.
        let u = Update::new(Sym(0), Sym(1), Sym(1));
        let terms = [
            Term::Var(0),
            Term::Var(1),
            Term::Const(Sym(1)),
            Term::Const(Sym(2)),
        ];
        let shapes = GenericEdge::shapes_of_update(&u);
        for &s in &terms {
            for &t in &terms {
                let ge = GenericEdge::from_pattern(&pe(0, s, t));
                if ge.matches(&u) {
                    assert!(
                        shapes.contains(&ge),
                        "matching shape {ge:?} missing from enumeration"
                    );
                }
            }
        }
    }
}
