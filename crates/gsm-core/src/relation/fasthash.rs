//! Fast non-cryptographic hashing and inline-capacity bucket chains for the
//! join hot path.
//!
//! Every row insert and every join probe hashes a short sequence of [`Sym`]s.
//! `DefaultHasher` (SipHash-1-3) is a poor fit for that: it is keyed against
//! HashDoS, which the engines do not need (symbols are dense interner ids,
//! not attacker-controlled strings), and it costs tens of cycles per row.
//! This module provides the FxHash-style multiply-rotate hasher used by
//! rustc (`rustc-hash`), vendored here so the workspace keeps its
//! `#![forbid(unsafe_code)]` guarantee and zero external dependencies:
//!
//! * [`hash_syms`] / [`hash_projected`] — direct row/key hashing without the
//!   `Hash`-trait indirection or any key materialisation buffer;
//! * [`FxHasher`] / [`FxBuildHasher`] and the [`FxHashMap`] / [`FxHashSet`]
//!   aliases — drop-in `std::collections` replacements for hash-indexed
//!   engine state;
//! * [`Bucket`] — a collision chain of row indices that stores up to
//!   [`INLINE_BUCKET`] entries inline and only spills to the heap beyond
//!   that, so the common short chain costs no allocation at all.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

use crate::interner::Sym;
use crate::memory::HeapSize;

/// The FxHash multiplier (the golden-ratio-derived constant used by rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

#[inline]
fn mix(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(5) ^ word).wrapping_mul(SEED)
}

/// Hashes a row of symbols directly — no `Hash` trait, no length prefix, no
/// intermediate buffer. The hot-path replacement for
/// `DefaultHasher + row.hash(..)`.
#[inline]
pub fn hash_syms(row: &[Sym]) -> u64 {
    let mut h = 0u64;
    for &s in row {
        h = mix(h, s.0 as u64);
    }
    h
}

/// Hashes the projection `row[cols[0]], row[cols[1]], …` without
/// materialising the key, producing the same value [`hash_syms`] would for
/// the extracted key. This is what lets [`super::join::JoinBuild`] index and
/// probe with zero per-row allocations.
#[inline]
pub fn hash_projected(row: &[Sym], cols: &[usize]) -> u64 {
    let mut h = 0u64;
    for &c in cols {
        h = mix(h, row[c].0 as u64);
    }
    h
}

/// An FxHash-style streaming hasher implementing [`std::hash::Hasher`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume 8 bytes at a time, then the remainder as one word.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
            self.hash = mix(self.hash, word);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.hash = mix(self.hash, u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.hash = mix(self.hash, i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.hash = mix(self.hash, i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.hash = mix(self.hash, i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.hash = mix(self.hash, i as u64);
    }
}

/// [`BuildHasher`] for [`FxHasher`], usable as the `S` parameter of the
/// standard hash collections.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Number of row indices a [`Bucket`] stores inline before spilling.
pub const INLINE_BUCKET: usize = 3;

/// A collision chain of row indices with inline capacity.
///
/// Hash indexes over duplicate-free relations have overwhelmingly short
/// chains (usually length 1: one row per distinct key-hash). Storing the
/// first [`INLINE_BUCKET`] indices inside the map entry removes the per-key
/// `Vec` allocation the previous `HashMap<u64, Vec<u32>>` layout paid; only
/// genuinely skewed keys (many rows sharing a join key) spill to the heap.
#[derive(Debug, Clone)]
pub enum Bucket {
    /// Up to [`INLINE_BUCKET`] indices stored inline.
    Inline {
        /// Number of occupied slots.
        len: u8,
        /// The slots; only `..len` are meaningful.
        rows: [u32; INLINE_BUCKET],
    },
    /// A chain that outgrew the inline capacity.
    Spilled(Vec<u32>),
}

impl Default for Bucket {
    #[inline]
    fn default() -> Self {
        Bucket::Inline {
            len: 0,
            rows: [0; INLINE_BUCKET],
        }
    }
}

impl Bucket {
    /// Appends a row index to the chain.
    #[inline]
    pub fn push(&mut self, idx: u32) {
        match self {
            Bucket::Inline { len, rows } => {
                if (*len as usize) < INLINE_BUCKET {
                    rows[*len as usize] = idx;
                    *len += 1;
                } else {
                    let mut spill = Vec::with_capacity(INLINE_BUCKET * 2);
                    spill.extend_from_slice(&rows[..]);
                    spill.push(idx);
                    *self = Bucket::Spilled(spill);
                }
            }
            Bucket::Spilled(v) => v.push(idx),
        }
    }

    /// The chain as a contiguous borrowed slice.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        match self {
            Bucket::Inline { len, rows } => &rows[..*len as usize],
            Bucket::Spilled(v) => v,
        }
    }

    /// Number of indices in the chain.
    #[inline]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True if the chain is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl HeapSize for Bucket {
    fn heap_size(&self) -> usize {
        match self {
            Bucket::Inline { .. } => 0,
            Bucket::Spilled(v) => v.heap_size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_syms_distinguishes_rows() {
        let a = hash_syms(&[Sym(1), Sym(2)]);
        let b = hash_syms(&[Sym(2), Sym(1)]);
        let c = hash_syms(&[Sym(1), Sym(2)]);
        assert_ne!(a, b, "order must matter");
        assert_eq!(a, c, "hashing is deterministic");
    }

    #[test]
    fn hash_projected_matches_materialised_key() {
        let row = [Sym(10), Sym(20), Sym(30)];
        assert_eq!(
            hash_projected(&row, &[2, 0]),
            hash_syms(&[Sym(30), Sym(10)])
        );
        assert_eq!(hash_projected(&row, &[1]), hash_syms(&[Sym(20)]));
        assert_eq!(hash_projected(&row, &[]), hash_syms(&[]));
    }

    #[test]
    fn fx_hasher_streams_like_word_writes() {
        // write() of a full 8-byte word must agree with write_u64.
        let mut a = FxHasher::default();
        a.write(&42u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn fx_hash_map_works() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, (i * 2) as u32);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&21], 42);
    }

    #[test]
    fn bucket_stays_inline_then_spills() {
        let mut b = Bucket::default();
        assert!(b.is_empty());
        for i in 0..INLINE_BUCKET as u32 {
            b.push(i);
            assert!(matches!(b, Bucket::Inline { .. }), "inline up to capacity");
        }
        assert_eq!(b.as_slice(), &[0, 1, 2]);
        b.push(99);
        assert!(matches!(b, Bucket::Spilled(_)), "spills beyond capacity");
        assert_eq!(b.as_slice(), &[0, 1, 2, 99]);
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn hash_distribution_is_reasonable() {
        // Dense symbol ids must not collapse into few buckets.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u32 {
            seen.insert(hash_syms(&[Sym(i), Sym(i + 1)]));
        }
        assert_eq!(seen.len(), 10_000, "no collisions on dense ids");
    }
}
