//! Cross-path evaluation: turning per-path materialized views into query
//! embeddings.
//!
//! Every engine ends the answering phase the same way (Fig. 8, lines 8–13 of
//! the paper): the materialized views of a query's covering paths are joined
//! on the query vertices they share, after enforcing any repeated vertices
//! *within* a path. This module implements that final stage once, so TRIC
//! and the baselines differ only in how the per-path relations are produced.

use std::borrow::Cow;

use super::fasthash::FxHashMap;
use super::join::hash_join_prefix;
use super::Relation;
use crate::query::pattern::QVertexId;

/// A per-path relation together with the query vertex each column binds.
///
/// The relation and vertex sequence are borrowed: bindings are built per
/// affected path on every update, so they must not copy the path's vertex
/// sequence (or worse, its relation) just to describe it. A binding may
/// additionally be **version-bounded** ([`PathBinding::at_version`]): only
/// the rows below the watermark participate in joins, which is how the
/// deferred answering phase of the pipelined executor joins a batch's
/// deltas against frozen snapshots of the other covering paths' insert-only
/// views (see [`Relation::snapshot_at`]).
#[derive(Debug, Clone, Copy)]
pub struct PathBinding<'a> {
    /// The path's materialized view (or delta).
    pub rel: &'a Relation,
    /// For each column of `rel`, the query vertex it binds. Columns may
    /// repeat a vertex (e.g. a path that traverses a cycle).
    pub vertices: &'a [QVertexId],
    /// Number of leading rows of `rel` visible to the join (always
    /// `<= rel.len()`); `rel.len()` for an unbounded binding.
    pub limit: usize,
}

impl<'a> PathBinding<'a> {
    /// Creates an unbounded binding; the number of vertices must match the
    /// arity.
    pub fn new(rel: &'a Relation, vertices: &'a [QVertexId]) -> Self {
        Self::at_version(rel, vertices, rel.len())
    }

    /// Creates a binding frozen at a version watermark: only the first
    /// `version` rows of `rel` participate (clamped to the current length).
    pub fn at_version(rel: &'a Relation, vertices: &'a [QVertexId], version: usize) -> Self {
        assert_eq!(rel.arity(), vertices.len());
        PathBinding {
            rel,
            vertices,
            limit: version.min(rel.len()),
        }
    }

    /// True if no rows are visible to the join.
    pub fn is_empty(&self) -> bool {
        self.limit == 0
    }
}

/// A relation over query vertices: the result of joining path bindings.
#[derive(Debug, Clone)]
pub struct VertexRelation {
    /// The embeddings found.
    pub rel: Relation,
    /// Query vertex bound by each column of `rel`.
    pub vertices: Vec<QVertexId>,
}

impl VertexRelation {
    /// Re-orders columns so vertices appear in ascending order — a canonical
    /// form that allows embeddings from different evaluation orders to be
    /// unioned and compared.
    pub fn canonicalize(&self) -> VertexRelation {
        let mut order: Vec<usize> = (0..self.vertices.len()).collect();
        order.sort_by_key(|&i| self.vertices[i]);
        let rel = self.rel.project(&order);
        let vertices = order.iter().map(|&i| self.vertices[i]).collect();
        VertexRelation { rel, vertices }
    }
}

/// A normalised binding: the relation is borrowed straight from the input
/// when no repeated-vertex work was needed (the common case), and owned only
/// when a selection/projection actually had to materialise rows. `limit`
/// carries the binding's version bound through the join pipeline (it equals
/// the relation's length for owned intermediates, which are built already
/// bounded).
#[derive(Debug, Clone)]
struct Normalised<'a> {
    rel: Cow<'a, Relation>,
    vertices: Vec<QVertexId>,
    limit: usize,
}

/// Normalises a single path binding: enforce repeated vertices (selection)
/// and project to one column per distinct vertex (first occurrence order).
/// Bindings without repeated vertices — the overwhelming majority — are
/// passed through without copying a single row; the version bound of the
/// binding is respected in either case.
fn normalise<'a>(binding: &PathBinding<'a>) -> Normalised<'a> {
    // Find repeated vertices and the first-occurrence projection in one scan.
    let mut groups: FxHashMap<QVertexId, Vec<usize>> = FxHashMap::default();
    for (col, &v) in binding.vertices.iter().enumerate() {
        groups.entry(v).or_default().push(col);
    }
    if groups.len() == binding.vertices.len() {
        // All vertices distinct: nothing to enforce, nothing to project away.
        return Normalised {
            rel: Cow::Borrowed(binding.rel),
            vertices: binding.vertices.to_vec(),
            limit: binding.limit,
        };
    }
    let filter_groups: Vec<Vec<usize>> = groups.values().filter(|g| g.len() > 1).cloned().collect();
    // Bounded selection: only the rows below the binding's watermark are
    // considered (the materialised result is then unbounded by construction).
    let filtered = binding
        .rel
        .filter_equal_groups_prefix(&filter_groups, binding.limit);
    // Project to the first occurrence of each vertex.
    let mut seen = Vec::new();
    let mut cols = Vec::new();
    for (col, &v) in binding.vertices.iter().enumerate() {
        if !seen.contains(&v) {
            seen.push(v);
            cols.push(col);
        }
    }
    let projected = filtered.project(&cols);
    let limit = projected.len();
    Normalised {
        rel: Cow::Owned(projected),
        vertices: seen,
        limit,
    }
}

/// Joins all path bindings of a query into a single relation over query
/// vertices. Returns `None` as soon as any intermediate result is empty.
///
/// The join order is greedy: start from the smallest normalised relation and
/// repeatedly join the remaining relation that shares at least one vertex
/// with the accumulated result (falling back to a cross product only for
/// degenerate inputs, which validated query patterns never produce).
pub fn join_paths(bindings: &[PathBinding<'_>]) -> Option<VertexRelation> {
    if bindings.is_empty() {
        return None;
    }
    let mut normalised: Vec<Normalised<'_>> = bindings.iter().map(normalise).collect();
    if normalised.iter().any(|n| n.limit == 0) {
        return None;
    }
    // Start from the smallest relation.
    normalised.sort_by_key(|n| n.limit);
    let mut acc = normalised.remove(0);

    while !normalised.is_empty() {
        // Pick the relation sharing the most vertices with the accumulator,
        // preferring smaller relations on ties.
        let (idx, _) = normalised
            .iter()
            .enumerate()
            .max_by_key(|(_, n)| {
                let shared = n
                    .vertices
                    .iter()
                    .filter(|v| acc.vertices.contains(v))
                    .count();
                (shared, usize::MAX - n.limit)
            })
            .expect("non-empty");
        let next = normalised.remove(idx);

        let shared: Vec<QVertexId> = next
            .vertices
            .iter()
            .copied()
            .filter(|v| acc.vertices.contains(v))
            .collect();
        let left_keys: Vec<usize> = shared
            .iter()
            .map(|v| acc.vertices.iter().position(|x| x == v).unwrap())
            .collect();
        let right_keys: Vec<usize> = shared
            .iter()
            .map(|v| next.vertices.iter().position(|x| x == v).unwrap())
            .collect();

        let joined = if shared.is_empty() {
            // Cross product: join on zero columns. Implemented by a nested
            // loop through the hash join with an empty key (all rows share
            // the empty key).
            hash_join_prefix(&acc.rel, acc.limit, &next.rel, next.limit, &[], &[])
        } else {
            hash_join_prefix(
                &acc.rel,
                acc.limit,
                &next.rel,
                next.limit,
                &left_keys,
                &right_keys,
            )
        };
        if joined.is_empty() {
            return None;
        }
        let mut vertices = acc.vertices.clone();
        vertices.extend(
            next.vertices
                .iter()
                .copied()
                .filter(|v| !shared.contains(v)),
        );
        // The join output: left columns then right columns minus key cols —
        // but right may still contain a *duplicate* vertex under a different
        // column if the vertex appeared twice; normalise() already removed
        // duplicates, so columns line up with `vertices`.
        let limit = joined.len();
        acc = Normalised {
            rel: Cow::Owned(joined),
            vertices,
            limit,
        };
    }
    // Single-binding passthrough: a version-bounded borrowed binding must
    // not leak rows past its watermark when materialised.
    let rel = if acc.limit < acc.rel.len() {
        let mut cut = Relation::new(acc.rel.arity());
        for row in acc.rel.iter().take(acc.limit) {
            cut.push(row);
        }
        cut
    } else {
        acc.rel.into_owned()
    };
    Some(VertexRelation {
        rel,
        vertices: acc.vertices,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Sym;

    fn s(v: u32) -> Sym {
        Sym(v)
    }

    fn rel(arity: usize, rows: &[&[u32]]) -> Relation {
        let mut r = Relation::new(arity);
        for row in rows {
            let row: Vec<Sym> = row.iter().map(|&v| s(v)).collect();
            r.push(&row);
        }
        r
    }

    #[test]
    fn single_path_passthrough() {
        let r = rel(3, &[&[1, 2, 3], &[4, 5, 6]]);
        let b = PathBinding::new(&r, &[0, 1, 2]);
        let out = join_paths(&[b]).unwrap();
        assert_eq!(out.rel.len(), 2);
        assert_eq!(out.vertices, vec![0, 1, 2]);
    }

    #[test]
    fn repeated_vertex_within_path_is_enforced() {
        // Path visits vertices [0, 1, 0]: only rows with col0 == col2 survive.
        let r = rel(3, &[&[1, 2, 1], &[1, 2, 3]]);
        let b = PathBinding::new(&r, &[0, 1, 0]);
        let out = join_paths(&[b]).unwrap();
        assert_eq!(out.rel.len(), 1);
        assert_eq!(out.vertices, vec![0, 1]);
        assert_eq!(out.rel.row(0), &[s(1), s(2)]);
    }

    #[test]
    fn two_paths_join_on_shared_vertex() {
        // Path A over vertices [0,1], path B over vertices [1,2].
        let a = rel(2, &[&[1, 2], &[3, 4]]);
        let b = rel(2, &[&[2, 10], &[9, 11]]);
        let out =
            join_paths(&[PathBinding::new(&a, &[0, 1]), PathBinding::new(&b, &[1, 2])]).unwrap();
        assert_eq!(out.rel.len(), 1);
        let canon = out.canonicalize();
        assert_eq!(canon.vertices, vec![0, 1, 2]);
        assert_eq!(canon.rel.row(0), &[s(1), s(2), s(10)]);
    }

    #[test]
    fn empty_intermediate_short_circuits() {
        let a = rel(2, &[&[1, 2]]);
        let b = rel(2, &[&[7, 8]]);
        let out = join_paths(&[PathBinding::new(&a, &[0, 1]), PathBinding::new(&b, &[1, 2])]);
        assert!(out.is_none());
    }

    #[test]
    fn empty_input_path_short_circuits() {
        let a = rel(2, &[&[1, 2]]);
        let empty = Relation::new(2);
        let out = join_paths(&[
            PathBinding::new(&a, &[0, 1]),
            PathBinding::new(&empty, &[1, 2]),
        ]);
        assert!(out.is_none());
    }

    #[test]
    fn three_paths_star_join() {
        // Star query: centre vertex 0 with leaves 1, 2, 3 — three paths.
        let p1 = rel(2, &[&[5, 10], &[6, 11]]);
        let p2 = rel(2, &[&[5, 20]]);
        let p3 = rel(2, &[&[5, 30], &[5, 31]]);
        let out = join_paths(&[
            PathBinding::new(&p1, &[0, 1]),
            PathBinding::new(&p2, &[0, 2]),
            PathBinding::new(&p3, &[0, 3]),
        ])
        .unwrap();
        // centre must be 5 ⇒ embeddings: (5,10,20,30) and (5,10,20,31)
        assert_eq!(out.rel.len(), 2);
        let canon = out.canonicalize();
        assert_eq!(canon.vertices, vec![0, 1, 2, 3]);
        assert!(canon.rel.contains(&[s(5), s(10), s(20), s(30)]));
        assert!(canon.rel.contains(&[s(5), s(10), s(20), s(31)]));
    }

    #[test]
    fn shared_vertices_across_paths_constrain_results() {
        // Paths [0,1] and [0,1] (same vertices): intersection semantics.
        let a = rel(2, &[&[1, 2], &[3, 4]]);
        let b = rel(2, &[&[3, 4], &[5, 6]]);
        let out =
            join_paths(&[PathBinding::new(&a, &[0, 1]), PathBinding::new(&b, &[0, 1])]).unwrap();
        assert_eq!(out.rel.len(), 1);
        assert_eq!(out.rel.row(0), &[s(3), s(4)]);
    }

    #[test]
    fn version_bounded_bindings_ignore_rows_past_the_watermark() {
        // Path A over [0,1] with 2 rows; path B over [1,2] grows from 1 to 3
        // rows. A binding frozen at version 1 of B must join as if B still
        // had one row, whatever was appended after the watermark.
        let a = rel(2, &[&[1, 2], &[3, 9]]);
        let mut b = rel(2, &[&[2, 10]]);
        let v = b.version();
        b.push(&[s(2), s(11)]); // appended after the watermark
        b.push(&[s(9), s(12)]);

        let bounded = join_paths(&[
            PathBinding::new(&a, &[0, 1]),
            PathBinding::at_version(&b, &[1, 2], v),
        ])
        .unwrap();
        assert_eq!(bounded.rel.len(), 1, "only the pre-watermark row joins");
        assert_eq!(bounded.canonicalize().rel.row(0), &[s(1), s(2), s(10)]);

        // Unbounded sees all three rows of B: (1,2,10), (1,2,11), (3,9,12).
        let full =
            join_paths(&[PathBinding::new(&a, &[0, 1]), PathBinding::new(&b, &[1, 2])]).unwrap();
        assert_eq!(full.rel.len(), 3);

        // A zero-version binding short-circuits like an empty relation.
        assert!(join_paths(&[
            PathBinding::new(&a, &[0, 1]),
            PathBinding::at_version(&b, &[1, 2], 0),
        ])
        .is_none());

        // Single bounded binding: the passthrough must truncate.
        let single = join_paths(&[PathBinding::at_version(&b, &[1, 2], v)]).unwrap();
        assert_eq!(single.rel.len(), 1);
        assert_eq!(single.rel.row(0), &[s(2), s(10)]);

        // Bounded binding with a repeated vertex: selection is bounded too.
        let mut loops = rel(2, &[&[4, 4]]);
        let lv = loops.version();
        loops.push(&[s(5), s(5)]);
        let looped = join_paths(&[PathBinding::at_version(&loops, &[7, 7], lv)]).unwrap();
        assert_eq!(looped.rel.len(), 1);
        assert_eq!(looped.rel.row(0), &[s(4)]);
    }

    #[test]
    fn canonicalize_sorts_vertex_columns() {
        let r = rel(2, &[&[7, 8]]);
        let out = VertexRelation {
            rel: r,
            vertices: vec![2, 0],
        };
        let canon = out.canonicalize();
        assert_eq!(canon.vertices, vec![0, 2]);
        assert_eq!(canon.rel.row(0), &[s(8), s(7)]);
    }
}
