//! The join-build cache that powers the `+` engine variants.
//!
//! TRIC+, INV+ and INC+ differ from their base algorithms only in that the
//! hash tables constructed during the build phase of each hash join are kept
//! around and incrementally maintained instead of being rebuilt from scratch
//! on every update (Section 4.2, "Caching"). The cache is keyed by the
//! relation's stable identity plus the key columns of the build.

use std::collections::HashMap;

use super::join::JoinBuild;
use super::Relation;
use crate::memory::HeapSize;

/// Key of a cached build: (relation id, key columns).
type CacheKey = (u64, Vec<usize>);

/// A cache of build-side hash tables, incrementally maintained as the
/// underlying (insert-only) relations grow.
#[derive(Debug, Default)]
pub struct JoinCache {
    builds: HashMap<CacheKey, JoinBuild>,
    hits: u64,
    misses: u64,
}

impl JoinCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns an up-to-date build over `rel` keyed by `key_cols`, reusing
    /// and incrementally updating a cached build when one exists.
    pub fn get_or_build(&mut self, rel: &Relation, key_cols: &[usize]) -> &JoinBuild {
        let key: CacheKey = (rel.id(), key_cols.to_vec());
        match self.builds.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                self.hits += 1;
                e.get_mut().update(rel);
                e.into_mut()
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                self.misses += 1;
                e.insert(JoinBuild::build(rel, key_cols))
            }
        }
    }

    /// Number of cached builds.
    pub fn len(&self) -> usize {
        self.builds.len()
    }

    /// True if nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.builds.is_empty()
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drops every cached build (used by tests and memory experiments).
    pub fn clear(&mut self) {
        self.builds.clear();
    }
}

impl HeapSize for JoinCache {
    fn heap_size(&self) -> usize {
        self.builds
            .iter()
            .map(|((_, cols), build)| cols.heap_size() + build.heap_size() + 16)
            .sum::<usize>()
            + self.builds.capacity() * std::mem::size_of::<(CacheKey, JoinBuild)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Sym;
    use crate::relation::join::hash_join_with_build;

    fn s(v: u32) -> Sym {
        Sym(v)
    }

    #[test]
    fn cache_hits_after_first_build() {
        let mut cache = JoinCache::new();
        let mut r = Relation::new(2);
        r.push(&[s(1), s(2)]);
        cache.get_or_build(&r, &[0]);
        assert_eq!(cache.misses(), 1);
        cache.get_or_build(&r, &[0]);
        assert_eq!(cache.hits(), 1);
        // A different key column is a different cache entry.
        cache.get_or_build(&r, &[1]);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cached_build_is_incrementally_maintained() {
        let mut cache = JoinCache::new();
        let mut r = Relation::new(2);
        r.push(&[s(1), s(10)]);
        cache.get_or_build(&r, &[0]);
        r.push(&[s(1), s(11)]);
        let build = cache.get_or_build(&r, &[0]);
        assert_eq!(build.probe(&r, &[s(1)]).len(), 2);
    }

    #[test]
    fn cached_join_result_matches_fresh_result() {
        let mut cache = JoinCache::new();
        let mut left = Relation::new(2);
        let mut right = Relation::new(2);
        for i in 0..50u32 {
            left.push(&[s(i), s(i % 7)]);
            right.push(&[s(i % 7), s(i)]);
        }
        // Prime the cache, then grow and re-join.
        cache.get_or_build(&right, &[0]);
        for i in 50..80u32 {
            right.push(&[s(i % 7), s(i)]);
        }
        let build = cache.get_or_build(&right, &[0]);
        let cached = hash_join_with_build(&left, &right, &[1], &[0], build);
        let fresh = super::super::join::hash_join(&left, &right, &[1], &[0]);
        assert_eq!(cached.to_sorted_vec(), fresh.to_sorted_vec());
    }

    #[test]
    fn distinct_relations_do_not_collide() {
        let mut cache = JoinCache::new();
        let mut a = Relation::new(1);
        a.push(&[s(1)]);
        let mut b = Relation::new(1);
        b.push(&[s(2)]);
        cache.get_or_build(&a, &[0]);
        let build_b = cache.get_or_build(&b, &[0]);
        assert_eq!(build_b.probe(&b, &[s(2)]).len(), 1);
        assert_eq!(build_b.probe(&b, &[s(1)]).len(), 0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn clear_empties_cache() {
        let mut cache = JoinCache::new();
        let r = Relation::new(1);
        cache.get_or_build(&r, &[0]);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
    }
}
