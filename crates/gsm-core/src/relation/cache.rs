//! The join-build cache that powers the `+` engine variants.
//!
//! TRIC+, INV+ and INC+ differ from their base algorithms only in that the
//! hash tables constructed during the build phase of each hash join are kept
//! around and incrementally maintained instead of being rebuilt from scratch
//! on every update (Section 4.2, "Caching"). The cache is keyed by the
//! relation's stable identity plus the key columns of the build.
//!
//! # Sharing builds with detached answer tasks
//!
//! The threaded pipeline answers batches on worker threads while the engine
//! thread stages the next batch. To let those workers reuse cached builds
//! without a global lock, the cache stores every build behind an [`Arc`] and
//! supports copy-on-write publication: [`JoinCache::freeze`] snapshots the
//! current map into an immutable, cheaply-cloneable [`FrozenJoinCache`] that
//! detached tasks read concurrently. Live mutation after a freeze uses
//! [`Arc::make_mut`], so a build is deep-copied only when an outstanding
//! frozen publication still references it — otherwise updates stay in-place
//! and O(Δ), exactly as before.

use std::collections::HashMap;
use std::sync::Arc;

use super::join::JoinBuild;
use super::Relation;
use crate::memory::HeapSize;

/// Key of a cached build: (relation id, key columns).
type CacheKey = (u64, Vec<usize>);

/// A cache of build-side hash tables, incrementally maintained as the
/// underlying (insert-only) relations grow.
#[derive(Debug, Default)]
pub struct JoinCache {
    builds: HashMap<CacheKey, Arc<JoinBuild>>,
    /// The most recent [`freeze`](Self::freeze) publication, reused while
    /// the cache stays unmodified. Dropped before any mutation so the
    /// cache itself never forces an [`Arc::make_mut`] deep copy — only an
    /// outstanding detached task holding the frozen map does.
    published: Option<Arc<HashMap<CacheKey, Arc<JoinBuild>>>>,
    hits: u64,
    misses: u64,
}

impl JoinCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns an up-to-date build over `rel` keyed by `key_cols`, reusing
    /// and incrementally updating a cached build when one exists.
    pub fn get_or_build(&mut self, rel: &Relation, key_cols: &[usize]) -> &JoinBuild {
        self.published = None;
        let key: CacheKey = (rel.id(), key_cols.to_vec());
        match self.builds.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                self.hits += 1;
                Arc::make_mut(e.get_mut()).update(rel);
                e.into_mut()
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                self.misses += 1;
                e.insert(Arc::new(JoinBuild::build(rel, key_cols)))
            }
        }
    }

    /// Publishes the current state of the cache as an immutable snapshot
    /// that detached answer tasks can read concurrently (lock-free; the
    /// map and every build inside it are behind `Arc`s). Repeated freezes
    /// with no intervening mutation reuse the same publication.
    pub fn freeze(&mut self) -> FrozenJoinCache {
        let builds = self
            .published
            .get_or_insert_with(|| Arc::new(self.builds.clone()))
            .clone();
        FrozenJoinCache { builds }
    }

    /// Number of cached builds.
    pub fn len(&self) -> usize {
        self.builds.len()
    }

    /// True if nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.builds.is_empty()
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drops every build cached over the relation with id `rel_id` — called
    /// when a materialized view is destroyed (trie-node pruning on query
    /// unregistration). Relation ids are never reused, so a lingering entry
    /// could never be wrongly served; eviction reclaims the build's memory,
    /// it is not needed for correctness. Outstanding frozen publications
    /// keep their copy alive until dropped.
    pub fn evict_relation(&mut self, rel_id: u64) {
        if self.builds.keys().any(|(id, _)| *id == rel_id) {
            self.published = None;
            self.builds.retain(|(id, _), _| *id != rel_id);
        }
    }

    /// Drops every cached build (used by tests and memory experiments).
    pub fn clear(&mut self) {
        self.published = None;
        self.builds.clear();
    }
}

impl HeapSize for JoinCache {
    fn heap_size(&self) -> usize {
        self.builds
            .iter()
            .map(|((_, cols), build)| cols.heap_size() + build.heap_size() + 16)
            .sum::<usize>()
            + self.builds.capacity() * std::mem::size_of::<(CacheKey, Arc<JoinBuild>)>()
    }
}

/// An immutable, concurrently-readable snapshot of a [`JoinCache`],
/// published at stage time and probed by detached answer tasks. Cloning is
/// a single `Arc` bump.
#[derive(Debug, Clone, Default)]
pub struct FrozenJoinCache {
    builds: Arc<HashMap<CacheKey, Arc<JoinBuild>>>,
}

impl FrozenJoinCache {
    /// Looks up a published build for `rel` keyed by `key_cols`.
    ///
    /// A build is returned only when it was indexed in the **same
    /// compaction generation** as `rel` and indexes **at least**
    /// `rel.len()` rows: probing an over-indexed build against a shorter
    /// snapshot is safe (probe hits are bounds-checked against the
    /// probe-side relation), but an under-indexed build — or one whose row
    /// indices predate a retraction compaction — would silently miss rows,
    /// so it is treated as absent and the caller falls back to building.
    pub fn get(&self, rel: &Relation, key_cols: &[usize]) -> Option<&JoinBuild> {
        let key: CacheKey = (rel.id(), key_cols.to_vec());
        self.builds
            .get(&key)
            .filter(|b| b.generation() == rel.generation() && b.rows_indexed() >= rel.len())
            .map(Arc::as_ref)
    }

    /// Number of published builds.
    pub fn len(&self) -> usize {
        self.builds.len()
    }

    /// True when nothing was published.
    pub fn is_empty(&self) -> bool {
        self.builds.is_empty()
    }
}

/// The cache handle threaded through the view-materialization helpers:
/// either a live mutable cache (engine thread, inline answering), a frozen
/// publication (detached answer tasks), or nothing (cacheless engines).
#[derive(Debug, Default)]
pub enum BuildCache<'a> {
    /// No caching: every build is constructed from scratch and discarded.
    #[default]
    None,
    /// A live cache, incrementally maintained in place.
    Live(&'a mut JoinCache),
    /// An immutable stage-time publication; usable builds are borrowed,
    /// anything missing or stale is built from scratch and discarded.
    Frozen(&'a FrozenJoinCache),
}

impl BuildCache<'_> {
    /// Reborrows the handle for a nested call without consuming it (the
    /// `Option<&mut _>::as_deref_mut` idiom, generalized to three states).
    pub fn reborrow(&mut self) -> BuildCache<'_> {
        match self {
            BuildCache::None => BuildCache::None,
            BuildCache::Live(cache) => BuildCache::Live(cache),
            BuildCache::Frozen(frozen) => BuildCache::Frozen(frozen),
        }
    }
}

impl<'a> From<Option<&'a mut JoinCache>> for BuildCache<'a> {
    fn from(cache: Option<&'a mut JoinCache>) -> Self {
        match cache {
            Some(cache) => BuildCache::Live(cache),
            None => BuildCache::None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Sym;
    use crate::relation::join::hash_join_with_build;

    fn s(v: u32) -> Sym {
        Sym(v)
    }

    #[test]
    fn cache_hits_after_first_build() {
        let mut cache = JoinCache::new();
        let mut r = Relation::new(2);
        r.push(&[s(1), s(2)]);
        cache.get_or_build(&r, &[0]);
        assert_eq!(cache.misses(), 1);
        cache.get_or_build(&r, &[0]);
        assert_eq!(cache.hits(), 1);
        // A different key column is a different cache entry.
        cache.get_or_build(&r, &[1]);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cached_build_is_incrementally_maintained() {
        let mut cache = JoinCache::new();
        let mut r = Relation::new(2);
        r.push(&[s(1), s(10)]);
        cache.get_or_build(&r, &[0]);
        r.push(&[s(1), s(11)]);
        let build = cache.get_or_build(&r, &[0]);
        assert_eq!(build.probe(&r, &[s(1)]).len(), 2);
    }

    #[test]
    fn cached_join_result_matches_fresh_result() {
        let mut cache = JoinCache::new();
        let mut left = Relation::new(2);
        let mut right = Relation::new(2);
        for i in 0..50u32 {
            left.push(&[s(i), s(i % 7)]);
            right.push(&[s(i % 7), s(i)]);
        }
        // Prime the cache, then grow and re-join.
        cache.get_or_build(&right, &[0]);
        for i in 50..80u32 {
            right.push(&[s(i % 7), s(i)]);
        }
        let build = cache.get_or_build(&right, &[0]);
        let cached = hash_join_with_build(&left, &right, &[1], &[0], build);
        let fresh = super::super::join::hash_join(&left, &right, &[1], &[0]);
        assert_eq!(cached.to_sorted_vec(), fresh.to_sorted_vec());
    }

    #[test]
    fn distinct_relations_do_not_collide() {
        let mut cache = JoinCache::new();
        let mut a = Relation::new(1);
        a.push(&[s(1)]);
        let mut b = Relation::new(1);
        b.push(&[s(2)]);
        cache.get_or_build(&a, &[0]);
        let build_b = cache.get_or_build(&b, &[0]);
        assert_eq!(build_b.probe(&b, &[s(2)]).len(), 1);
        assert_eq!(build_b.probe(&b, &[s(1)]).len(), 0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn evict_relation_drops_only_that_relations_builds() {
        let mut cache = JoinCache::new();
        let mut a = Relation::new(2);
        a.push(&[s(1), s(2)]);
        let mut b = Relation::new(1);
        b.push(&[s(3)]);
        cache.get_or_build(&a, &[0]);
        cache.get_or_build(&a, &[1]);
        cache.get_or_build(&b, &[0]);
        assert_eq!(cache.len(), 3);
        cache.evict_relation(a.id());
        assert_eq!(cache.len(), 1, "both of a's key-column builds evicted");
        // The survivor still serves b; a missing id is a no-op.
        assert_eq!(cache.get_or_build(&b, &[0]).probe(&b, &[s(3)]).len(), 1);
        cache.evict_relation(a.id());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_empties_cache() {
        let mut cache = JoinCache::new();
        let r = Relation::new(1);
        cache.get_or_build(&r, &[0]);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn frozen_cache_serves_published_builds() {
        let mut cache = JoinCache::new();
        let mut r = Relation::new(2);
        r.push(&[s(1), s(10)]);
        r.push(&[s(1), s(11)]);
        cache.get_or_build(&r, &[0]);
        let frozen = cache.freeze();
        assert_eq!(frozen.len(), 1);
        let build = frozen.get(&r, &[0]).expect("published build");
        assert_eq!(build.probe(&r, &[s(1)]).len(), 2);
        // A key that was never cached is absent.
        assert!(frozen.get(&r, &[1]).is_none());
    }

    #[test]
    fn frozen_cache_rejects_stale_builds() {
        let mut cache = JoinCache::new();
        let mut r = Relation::new(1);
        r.push(&[s(1)]);
        cache.get_or_build(&r, &[0]);
        let frozen = cache.freeze();
        // The relation grew past the publication: the under-indexed build
        // would miss the new row, so the lookup must fail closed.
        r.push(&[s(2)]);
        assert!(frozen.get(&r, &[0]).is_none());
        // An over-indexed build against a shorter snapshot is safe and
        // therefore served.
        let snap = r.snapshot_owned(1);
        cache.get_or_build(&r, &[0]);
        let frozen = cache.freeze();
        assert!(frozen.get(&snap, &[0]).is_some());
    }

    #[test]
    fn frozen_cache_rejects_builds_from_an_older_generation() {
        let mut cache = JoinCache::new();
        let mut r = Relation::new(1);
        r.push(&[s(1)]);
        r.push(&[s(2)]);
        r.push(&[s(3)]);
        cache.get_or_build(&r, &[0]);
        let frozen = cache.freeze();
        // Compaction shrinks the relation; the stale build indexes *more*
        // rows than rel.len(), so the length guard alone would wrongly
        // serve it — the generation guard must fail it closed.
        let gone = Relation::singleton(&[s(2)]);
        r.retract_rows(&gone);
        assert!(frozen.get(&r, &[0]).is_none(), "stale generation served");
        // The live cache transparently rebuilds on the same key.
        let build = cache.get_or_build(&r, &[0]);
        assert_eq!(build.generation(), r.generation());
        assert_eq!(build.probe(&r, &[s(3)]).len(), 1);
        assert_eq!(build.probe(&r, &[s(2)]).len(), 0);
    }

    #[test]
    fn live_mutation_after_freeze_copies_on_write() {
        let mut cache = JoinCache::new();
        let mut r = Relation::new(1);
        r.push(&[s(1)]);
        cache.get_or_build(&r, &[0]);
        let frozen = cache.freeze();
        // Mutating the live cache while a publication is outstanding must
        // not disturb the frozen view.
        r.push(&[s(2)]);
        let live = cache.get_or_build(&r, &[0]);
        assert_eq!(live.rows_indexed(), 2);
        let published = frozen.builds.get(&(r.id(), vec![0])).expect("kept");
        assert_eq!(published.rows_indexed(), 1);
    }

    #[test]
    fn repeated_freeze_reuses_publication() {
        let mut cache = JoinCache::new();
        let mut r = Relation::new(1);
        r.push(&[s(1)]);
        cache.get_or_build(&r, &[0]);
        let a = cache.freeze();
        let b = cache.freeze();
        assert!(Arc::ptr_eq(&a.builds, &b.builds));
        cache.get_or_build(&r, &[0]);
        let c = cache.freeze();
        assert!(!Arc::ptr_eq(&a.builds, &c.builds));
    }
}
